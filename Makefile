GO ?= go

.PHONY: all build test shard-matrix race lint vet unitlint unitlint-self lint-baseline chaos scenarios fuzz obs-smoke bench bench-baseline bench-smoke bench-check golden ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...
	$(MAKE) shard-matrix

# Shard-count invariance leg: the golden replication pin (experiments
# reads UNIT_SHARDS, comma-separated), the front-door router property
# suites (engine + live server) and the weak-scaled scenario replays,
# all under -race. shards=1 staying green proves sharding disabled is a
# bitwise no-op; 2 and 8 pin the scatter-gather and merge laws.
SHARD_MATRIX ?= 1,2,8
shard-matrix:
	UNIT_SHARDS=$(SHARD_MATRIX) $(GO) test -race -run 'Shard' ./internal/engine/ ./internal/experiments/ ./internal/scenario/ ./internal/server/

# The live server (internal/server) is the concurrency hot spot; -race
# over the whole tree keeps the guarded-by annotations honest.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# unitlint enforces the determinism/concurrency invariants with
# thirteen analyzers — detclock, seededrand, guardedby, usmrange, the
# flow-sensitive locksafe, guardedflow, outcomeonce, the
# interprocedural deadlock, owned, maporder (over a devirtualized call
# graph), and the concurrency-primitive atomicsafe, chandisc, wgsafe
# (see cmd/unitlint -help).
# Findings stream to lint.json (the CI artifact) with a per-analyzer
# timings trailer; anything not in lint.baseline — or recorded there
# but stale, under -strict-baseline — fails the run.
unitlint:
	$(GO) run ./cmd/unitlint -json -timings -strict-baseline ./... > lint.json; code=$$?; cat lint.json; exit $$code

# Dogfood: the analyzers' own CFG/dataflow/callgraph code holds locks,
# ranges maps, and (in the new concurrency-primitive packages) judges
# the very patterns it uses itself. Same gates, scoped to internal/lint
# — ./internal/lint/... picks up atomicsafe, chandisc and wgsafe too.
unitlint-self:
	$(GO) run ./cmd/unitlint -strict-baseline ./internal/lint/... ./cmd/unitlint

# Re-record the tolerated-findings baseline. An empty lint.baseline is
# the healthy state: new findings should be fixed, not baselined.
lint-baseline:
	printf '%s\n' \
	  '# unitlint tolerated-findings baseline (JSON lines, one finding per line;' \
	  '# regenerate with make lint-baseline). Findings match by file, analyzer,' \
	  '# and message - not line numbers, which drift. Empty is the healthy state:' \
	  '# fix new findings instead of baselining them.' > lint.baseline
	$(GO) run ./cmd/unitlint -json -baseline - ./... >> lint.baseline; \
	$(GO) run ./cmd/unitlint ./...

lint: vet unitlint unitlint-self

# Chaos recovery regression: seeded fault injection against the simulator
# (internal/faults) plus the live server's failure paths, under -race.
chaos:
	$(GO) test -race -run 'TestChaos|TestPanic|TestCancellation|TestGracefulDrain|TestShed' ./...

# Scenario library: named, seeded end-to-end failure stories with
# asserted recovery properties (internal/scenario) under -race, then a
# replay of every scenario via cmd/unitscenario, dumping each run's
# report and trace JSONL into scenario-traces/ (the CI artifact). The
# replay exits non-zero if any recovery property is violated. unittrace
# then distills the dumps into one deterministic critical-path report
# (per-stage percentiles, outcome slices, slowest queries) that rides
# along in the same artifact.
scenarios:
	$(GO) test -race ./internal/scenario/
	mkdir -p scenario-traces
	$(GO) run ./cmd/unitscenario run -all -outdir scenario-traces > scenario-traces/reports.json
	$(GO) run ./cmd/unittrace scenario-traces/*.jsonl > scenario-traces/critical-path.txt
	tail -n 5 scenario-traces/critical-path.txt

# Fuzz smoke: each target briefly, catching regressions in the HTTP
# input contract and the shard router's partition/merge laws without an
# open-ended fuzzing session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzParseItems -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -fuzz=FuzzQueryHandler -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -fuzz=FuzzShardRouter -fuzztime=$(FUZZTIME) ./internal/engine/

# Observability smoke: boot unitd on an ephemeral local port, then lint
# the /metrics exposition (cmd/obslint retries the fetch while the server
# boots and fails on any malformed line or missing family — including the
# per-stage latency histograms and the build-info gauge) and probe the
# JSON debug endpoints. Kills the server whichever way the gate ends.
OBS_PORT ?= 18411
obs-smoke:
	$(GO) build -o bin/unitd ./cmd/unitd
	$(GO) build -o bin/obslint ./cmd/obslint
	./bin/unitd -addr 127.0.0.1:$(OBS_PORT) -cr 0.2 -cfm 0.8 -cfs 0.2 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	./bin/obslint -url http://127.0.0.1:$(OBS_PORT)/metrics -timeout 15s \
	  -require unit_queries_total,unit_query_latency_seconds,unit_query_stage_seconds,unit_build_info,unit_usm_window,unit_usm,unit_admission_cflex,unit_queue_length,unit_lbc_decisions_total,unit_lbc_actions_total \
	  -probe http://127.0.0.1:$(OBS_PORT)/debug/slow,http://127.0.0.1:$(OBS_PORT)/debug/trace

# Benchmark harness (cmd/unitbench): run the full suite at a steady
# benchtime and write the schema-versioned BENCH_results.json artifact
# (timings + headline experiment USMs). BENCH_baseline.json is the
# checked-in reference; regenerate it only on a quiet machine and review
# the diff like code.
BENCHTIME ?= 0.2s
BENCHCOUNT ?= 3
bench:
	$(GO) run ./cmd/unitbench -out BENCH_results.json -benchtime $(BENCHTIME) -count $(BENCHCOUNT)

bench-baseline:
	$(GO) run ./cmd/unitbench -out BENCH_baseline.json -benchtime $(BENCHTIME) -count $(BENCHCOUNT)

# CI smoke: a shorter sweep that still exercises every benchmark, writes
# the artifact CI uploads, then gates it against the baseline.
bench-smoke:
	$(GO) run ./cmd/unitbench -out BENCH_results.json -benchtime 0.15s -count 2

bench-check:
	$(GO) run ./cmd/unitbench -check

# Replication pin: the QuickConfig experiment suite must reproduce the
# checked-in golden JSON byte-for-byte, sequentially and in parallel.
golden:
	$(GO) test ./internal/experiments/ -run TestGoldenQuickReplication -v

# Everything CI runs, in CI's order.
ci: build lint test race chaos scenarios obs-smoke
