GO ?= go

.PHONY: all build test race lint vet unitlint lint-baseline chaos fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The live server (internal/server) is the concurrency hot spot; -race
# over the whole tree keeps the guarded-by annotations honest.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# unitlint enforces the determinism/concurrency invariants with seven
# analyzers — detclock, seededrand, guardedby, usmrange, plus the
# flow-sensitive locksafe, guardedflow, and outcomeonce (see
# cmd/unitlint -help). Findings stream to lint.json (the CI artifact);
# anything not in lint.baseline fails the run.
unitlint:
	$(GO) run ./cmd/unitlint -json ./... > lint.json; code=$$?; cat lint.json; exit $$code

# Re-record the tolerated-findings baseline. An empty lint.baseline is
# the healthy state: new findings should be fixed, not baselined.
lint-baseline:
	printf '%s\n' \
	  '# unitlint tolerated-findings baseline (JSON lines, one finding per line;' \
	  '# regenerate with make lint-baseline). Findings match by file, analyzer,' \
	  '# and message - not line numbers, which drift. Empty is the healthy state:' \
	  '# fix new findings instead of baselining them.' > lint.baseline
	$(GO) run ./cmd/unitlint -json -baseline - ./... >> lint.baseline; \
	$(GO) run ./cmd/unitlint ./...

lint: vet unitlint

# Chaos recovery regression: seeded fault injection against the simulator
# (internal/faults) plus the live server's failure paths, under -race.
chaos:
	$(GO) test -race -run 'TestChaos|TestPanic|TestCancellation|TestGracefulDrain|TestShed' ./...

# Fuzz smoke: each target briefly, catching regressions in the HTTP input
# contract without an open-ended fuzzing session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzParseItems -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -fuzz=FuzzQueryHandler -fuzztime=$(FUZZTIME) ./internal/server/

# Everything CI runs, in CI's order.
ci: build lint test race chaos
