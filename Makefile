GO ?= go

.PHONY: all build test race lint vet unitlint chaos fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The live server (internal/server) is the concurrency hot spot; -race
# over the whole tree keeps the guarded-by annotations honest.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# unitlint enforces the determinism/concurrency invariants: detclock,
# seededrand, guardedby, usmrange (see cmd/unitlint -help).
unitlint:
	$(GO) run ./cmd/unitlint ./...

lint: vet unitlint

# Chaos recovery regression: seeded fault injection against the simulator
# (internal/faults) plus the live server's failure paths, under -race.
chaos:
	$(GO) test -race -run 'TestChaos|TestPanic|TestCancellation|TestGracefulDrain|TestShed' ./...

# Fuzz smoke: each target briefly, catching regressions in the HTTP input
# contract without an open-ended fuzzing session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzParseItems -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -fuzz=FuzzQueryHandler -fuzztime=$(FUZZTIME) ./internal/server/

# Everything CI runs, in CI's order.
ci: build lint test race chaos
