GO ?= go

.PHONY: all build test race lint vet unitlint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The live server (internal/server) is the concurrency hot spot; -race
# over the whole tree keeps the guarded-by annotations honest.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# unitlint enforces the determinism/concurrency invariants: detclock,
# seededrand, guardedby, usmrange (see cmd/unitlint -help).
unitlint:
	$(GO) run ./cmd/unitlint ./...

lint: vet unitlint

# Everything CI runs, in CI's order.
ci: build lint test race
