package unit

import "unitdb/internal/server"

// ServerConfig configures the live (wall-clock) web-database server.
type ServerConfig = server.Config

// Server is the live web-database: UNIT's admission control, update
// frequency modulation and feedback control running over a concurrent
// in-memory store with an HTTP front end.
type Server = server.Server

// QueryRequest is a live user query.
type QueryRequest = server.QueryRequest

// QueryResponse is a live query's outcome.
type QueryResponse = server.QueryResponse

// UpdateRequest is a live update-feed write.
type UpdateRequest = server.UpdateRequest

// ShardedServer is the sharded live web-database: N independent Servers
// partitioning the item space behind one front door that scatter-gathers
// cross-shard queries and keeps logical (per-user-query) accounting.
type ShardedServer = server.Sharded

// DefaultServerConfig returns a small live-server configuration.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// NewServer creates and starts a live server. Close it when done.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewShardedServer creates and starts a sharded live server: cfg is the
// per-shard template (Workers is divided across shards), shards is the
// shard count. Close it when done.
func NewShardedServer(cfg ServerConfig, shards int) (*ShardedServer, error) {
	return server.NewSharded(cfg, shards)
}
