package unit

import "unitdb/internal/server"

// ServerConfig configures the live (wall-clock) web-database server.
type ServerConfig = server.Config

// Server is the live web-database: UNIT's admission control, update
// frequency modulation and feedback control running over a concurrent
// in-memory store with an HTTP front end.
type Server = server.Server

// QueryRequest is a live user query.
type QueryRequest = server.QueryRequest

// QueryResponse is a live query's outcome.
type QueryResponse = server.QueryResponse

// UpdateRequest is a live update-feed write.
type UpdateRequest = server.UpdateRequest

// DefaultServerConfig returns a small live-server configuration.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// NewServer creates and starts a live server. Close it when done.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }
