package unit_test

import (
	"fmt"

	"unitdb"
)

// ExampleRun simulates UNIT on a reduced med-unif trace and reports the
// satisfaction metric's components.
func ExampleRun() {
	cfg := unit.QuickConfig()
	cfg.Query.NumQueries = 1500
	cfg.Query.Duration = 6000

	r, err := unit.Run(cfg) // Policy defaults to UNIT, weights to naive
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("policy:", r.Policy)
	fmt.Println("trace:", r.Trace)
	fmt.Println("outcomes:", r.Counts.Total())
	fmt.Println("all queries resolved:", r.Counts.Total() == 1500)
	// Output:
	// policy: UNIT
	// trace: med-unif
	// outcomes: 1500
	// all queries resolved: true
}

// ExampleCompare runs two algorithms on the identical workload and shows
// that the adaptive policy dominates the naive one under update overload.
func ExampleCompare() {
	cfg := unit.QuickConfig()
	cfg.Query.NumQueries = 1500
	cfg.Query.Duration = 6000
	cfg.Volume = unit.Med

	results, err := unit.Compare(cfg, unit.PolicyIMU, unit.PolicyUNIT)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("same workload:", results[0].Counts.Total() == results[1].Counts.Total())
	fmt.Println("UNIT beats IMU:", results[1].USM > results[0].USM)
	// Output:
	// same workload: true
	// UNIT beats IMU: true
}
