// Stockticker: the paper's motivating scenario (§1) on the live server — a
// stock-monitoring service receives price ticks (periodic updates) while
// traders run portfolio queries with firm deadlines ("modern stock trading
// web sites offer guarantees, e.g. 2 seconds") and freshness requirements.
//
// A burst of trader queries overloads the server mid-run; watch UNIT's
// admission control and update modulation keep the satisfaction metric up
// while hot symbols stay fresh.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"unitdb"
)

const (
	numSymbols  = 64
	hotSymbols  = 8 // the symbols most portfolios track
	tickEvery   = 5 * time.Millisecond
	runFor      = 6 * time.Second
	burstStart  = 2 * time.Second
	burstLength = 2 * time.Second
)

func main() {
	// One seed drives every random stream — the tick feed, the trader
	// arrivals, and (through cfg.Seed) the server's degrade lottery — so
	// a run replays exactly; the seededrand analyzer forbids the global
	// math/rand source that would break that.
	seed := flag.Int64("seed", 1, "seed for the tick feed, trader stream and degrade lottery")
	flag.Parse()

	cfg := unit.DefaultServerConfig()
	cfg.NumItems = numSymbols
	cfg.Workers = 2
	cfg.ControlPeriod = 100 * time.Millisecond
	cfg.GracePeriod = 300 * time.Millisecond
	// Traders hate waiting for a verdict more than a polite rejection.
	cfg.Weights = unit.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.4}
	cfg.Seed = uint64(*seed)
	srv, err := unit.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The exchange feed: every symbol ticks periodically; applying a tick
	// costs a little computation (index recalculation, say).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(*seed))
		ticker := time.NewTicker(tickEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				symbol := rng.Intn(numSymbols)
				_, err := srv.Update(unit.UpdateRequest{
					Item:  symbol,
					Value: 100 + rng.Float64()*50,
					Work:  2 * time.Millisecond,
				})
				if err != nil {
					return
				}
			}
		}
	}()

	// Traders: mostly quote the hot symbols, with a firm 150ms deadline
	// and a 90% freshness requirement. During the flash crowd the arrival
	// rate quadruples.
	start := time.Now()
	var mu sync.Mutex
	counts := map[string]int{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var traders sync.WaitGroup
		defer traders.Wait()
		rng := rand.New(rand.NewSource(*seed + 1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			elapsed := time.Since(start)
			gap := 25 * time.Millisecond
			if elapsed > burstStart && elapsed < burstStart+burstLength {
				gap = 2 * time.Millisecond // flash crowd
			}
			time.Sleep(gap)
			symbol := rng.Intn(hotSymbols)
			if rng.Float64() < 0.1 {
				symbol = rng.Intn(numSymbols) // occasional cold lookup
			}
			// Each trader is its own goroutine: arrivals keep coming while
			// earlier queries are still in flight, so the flash crowd
			// genuinely overloads the worker pool.
			traders.Add(1)
			go func(symbol int) {
				defer traders.Done()
				resp := srv.Query(unit.QueryRequest{
					Items:     []int{symbol},
					Deadline:  150 * time.Millisecond,
					Work:      15 * time.Millisecond,
					Freshness: 0.9,
				})
				mu.Lock()
				counts[string(resp.Outcome)]++
				mu.Unlock()
			}(symbol)
		}
	}()

	time.Sleep(runFor)
	close(stop)
	wg.Wait()

	stats := srv.Stats()
	fmt.Printf("after %s of trading:\n", runFor)
	mu.Lock()
	fmt.Printf("  outcomes: %v\n", counts)
	mu.Unlock()
	fmt.Printf("  USM=%.3f cflex=%.2f degraded symbols=%d\n", stats.USM, stats.CFlex, stats.DegradedItems)
	fmt.Printf("  ticks applied=%d dropped=%d\n", stats.UpdatesApplied, stats.UpdatesDropped)
}
