// Flashcrowd: drive the live HTTP server through its REST interface while
// a flash crowd hits it — the "unpredictable access patterns / periods of
// peak request load" the paper's introduction warns about. The example
// starts unitd's server in-process on a loopback listener, fires a
// steady query stream plus a burst, and reads /stats to show admission
// control reacting.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"unitdb"
)

func main() {
	cfg := unit.DefaultServerConfig()
	cfg.NumItems = 128
	cfg.Workers = 2
	cfg.ControlPeriod = 100 * time.Millisecond
	cfg.GracePeriod = 300 * time.Millisecond
	cfg.Weights = unit.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}
	srv, err := unit.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("live server at %s\n", ts.URL)

	var ok, rejected, missed, stale atomic.Int64
	client := &http.Client{Timeout: 5 * time.Second}

	get := func(url string) {
		resp, err := client.Get(url)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok.Add(1)
		case http.StatusTooManyRequests:
			rejected.Add(1)
		case http.StatusGatewayTimeout:
			missed.Add(1)
		case http.StatusPartialContent:
			stale.Add(1)
		}
	}

	// Background update feed over HTTP.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				url := fmt.Sprintf("%s/update?item=%d&value=%d&work=1ms", ts.URL, i%128, i)
				resp, err := client.Post(url, "", nil)
				if err == nil {
					resp.Body.Close()
				}
				i++
			}
		}
	}()

	// Steady load, then a flash crowd, then steady again.
	phase := func(name string, clients int, queries int) {
		var pw sync.WaitGroup
		for c := 0; c < clients; c++ {
			pw.Add(1)
			go func(c int) {
				defer pw.Done()
				for q := 0; q < queries; q++ {
					item := (c + q) % 16 // hot set
					get(fmt.Sprintf("%s/query?items=%d&deadline=120ms&work=15ms&freshness=0.9", ts.URL, item))
				}
			}(c)
		}
		pw.Wait()
		fmt.Printf("%-12s ok=%d rejected=%d missed=%d stale=%d\n",
			name, ok.Load(), rejected.Load(), missed.Load(), stale.Load())
	}

	phase("steady", 2, 40)
	phase("flash crowd", 16, 25)
	phase("recovery", 2, 40)

	close(stop)
	wg.Wait()

	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: usm=%v cflex=%v queue=%v updates applied=%v dropped=%v\n",
		stats["usm"], stats["cflex"], stats["queue_length"],
		stats["updates_applied"], stats["updates_dropped"])
}
