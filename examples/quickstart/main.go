// Quickstart: run the paper's med-unif scenario with all four algorithms
// and print the User Satisfaction Metric comparison — a one-screen tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"unitdb"
)

func main() {
	// A reduced-scale scenario keeps this example fast; use
	// unit.DefaultConfig() for the full paper-scale trace.
	cfg := unit.QuickConfig()
	cfg.Volume = unit.Med           // 75% update-only CPU utilization
	cfg.Distribution = unit.Uniform // updates spread evenly over the data

	// The naive USM (all penalties zero) equals the plain success ratio.
	results, err := unit.Compare(cfg,
		unit.PolicyIMU, unit.PolicyODU, unit.PolicyQMF, unit.PolicyUNIT)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("policy  USM     success  reject  dmf     dsf")
	for _, r := range results {
		fmt.Printf("%-6s  %.4f  %.3f    %.3f   %.3f   %.3f\n",
			r.Policy, r.USM, r.SuccessRatio, r.RejectionRatio, r.DMFRatio, r.DSFRatio)
	}

	// Now the same scenario with user preferences: deadline misses are the
	// most annoying failure (C_fm = 0.8), rejections and staleness less so.
	cfg.Weights = unit.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}
	r, err := unit.Run(cfg) // cfg.Policy defaults to UNIT
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUNIT with high C_fm: USM=%.4f (dmf ratio %.3f)\n", r.USM, r.DMFRatio)
}
