// Newsfeed: personalized blog/news aggregation (another §1 motivating
// workload) as a simulation study. Feeds update articles at very different
// rates (breaking-news feeds churn constantly, archival feeds rarely), and
// readers overwhelmingly request the trending stories. The example sweeps
// user preferences — latency-lovers versus freshness-lovers — and shows
// how UNIT shifts its failure mix while the baselines cannot (the paper's
// §4.4/§4.5 story).
package main

import (
	"fmt"
	"log"

	"unitdb"
	"unitdb/internal/workload"
)

func main() {
	// Reader traffic: strongly skewed toward trending stories.
	qcfg := workload.SmallQueryConfig()
	qcfg.ZipfSkew = 1.4

	// Feed behaviour: update volume anti-correlated with reads — the
	// archival feeds (rarely read) republish aggressively while trending
	// stories change less often. That is the paper's med-neg cell, where
	// most updates are safely droppable.
	ucfg := workload.DefaultUpdateConfig(workload.Med, workload.NegativeCorrelation)

	personas := []struct {
		name    string
		weights unit.Weights
	}{
		{"balanced reader (naive)", unit.Weights{}},
		{"impatient reader (hates waiting)", unit.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}},
		{"accuracy-first reader (hates stale news)", unit.Weights{Cr: 0.2, Cfm: 0.2, Cfs: 0.8}},
	}

	for _, persona := range personas {
		cfg := unit.QuickConfig()
		cfg.Query = qcfg
		cfg.Update = &ucfg
		cfg.Weights = persona.weights

		results, err := unit.Compare(cfg, unit.PolicyODU, unit.PolicyUNIT)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  (Cr=%.1f Cfm=%.1f Cfs=%.1f)\n",
			persona.name, persona.weights.Cr, persona.weights.Cfm, persona.weights.Cfs)
		for _, r := range results {
			fmt.Printf("  %-5s USM=%+.4f success=%.3f reject=%.3f dmf=%.3f dsf=%.3f updates applied=%d\n",
				r.Policy, r.USM, r.SuccessRatio, r.RejectionRatio, r.DMFRatio, r.DSFRatio, r.UpdatesApplied)
		}
		fmt.Println()
	}
	fmt.Println("UNIT's failure mix follows the persona; ODU's cannot move.")

	// Mixed population (the paper's §3.1 extension): impatient and
	// accuracy-first readers share the same server, each query carrying its
	// own penalties; UNIT balances across both.
	mixed := qcfg
	mixed.PreferenceMix = []workload.PreferenceClass{
		{Weights: unit.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}, Fraction: 0.5},
		{Weights: unit.Weights{Cr: 0.2, Cfm: 0.2, Cfs: 0.8}, Fraction: 0.5},
	}
	cfg := unit.QuickConfig()
	cfg.Query = mixed
	cfg.Update = &ucfg
	r, err := unit.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmixed population: overall USM=%+.4f\n", r.USM)
	labels := []string{"impatient half", "accuracy-first half"}
	for i, c := range r.PerClass {
		fmt.Printf("  %-20s USM=%+.4f success=%d reject=%d dmf=%d dsf=%d\n",
			labels[i], c.ClassUSM, c.Counts.Success, c.Counts.Rejected, c.Counts.DMF, c.Counts.DSF)
	}
}
