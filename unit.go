// Package unit is a reproduction of "UNIT: User-centric Transaction
// Management in Web-Database Systems" (Qu, Labrinidis, Mossé, ICDE 2006).
//
// A web-database server answers user queries that carry firm deadlines and
// freshness requirements while a stream of periodic updates refreshes its
// data items. UNIT maximizes a User Satisfaction Metric — success gain
// minus user-weighted penalties for rejections, deadline misses, and stale
// reads — with a feedback controller that steers query admission control
// and update frequency modulation.
//
// This package is the public facade. It wires together the simulation
// engine, the workload synthesizer modeled on the paper's cello99a-based
// traces, the UNIT policy, and the three comparison algorithms (IMU, ODU,
// QMF). The command-line tools under cmd/ and the experiment drivers that
// regenerate every table and figure of the paper build on the same API:
//
//	cfg := unit.DefaultConfig()
//	cfg.Volume, cfg.Distribution = unit.Med, unit.Uniform
//	res, err := unit.Run(cfg)
//
// For live (wall-clock) operation rather than simulation, see NewServer.
package unit

import (
	"fmt"

	"unitdb/internal/baseline"
	"unitdb/internal/baseline/qmf"
	"unitdb/internal/core"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/obs/trace"
	"unitdb/internal/workload"
)

// Weights are the USM penalty parameters (paper §2.3): Cr for rejections,
// Cfm for deadline-missed failures, Cfs for data-stale failures, all
// normalized to the success gain of 1. The zero value is the "naive"
// setting where USM equals the plain success ratio.
type Weights = usm.Weights

// Results summarizes one simulation run: the USM, the outcome ratios, the
// per-item distributions of paper Fig. 3, and engine internals (CPU
// utilization, 2PL-HP aborts, preemptions).
type Results = engine.Results

// Policy is a transaction-management algorithm plugged into the engine.
type Policy = engine.Policy

// Volume is the update workload volume class of paper Table 1.
type Volume = workload.Volume

// Distribution is the spatial update distribution of paper Table 1.
type Distribution = workload.Distribution

// Update volume classes (15% / 75% / 150% update-only CPU utilization).
const (
	Low  = workload.Low
	Med  = workload.Med
	High = workload.High
)

// Spatial update distributions.
const (
	Uniform             = workload.Uniform
	PositiveCorrelation = workload.PositiveCorrelation
	NegativeCorrelation = workload.NegativeCorrelation
)

// PolicyName selects one of the built-in algorithms.
type PolicyName string

// Built-in algorithms.
const (
	PolicyUNIT PolicyName = "UNIT"
	PolicyIMU  PolicyName = "IMU"
	PolicyODU  PolicyName = "ODU"
	PolicyQMF  PolicyName = "QMF"
)

// Config describes one simulation scenario.
type Config struct {
	// Policy selects the algorithm (default UNIT).
	Policy PolicyName
	// Weights are the USM penalties (zero value = naive USM).
	Weights Weights
	// Query configures the synthesized query trace.
	Query workload.QueryConfig
	// Volume and Distribution pick the Table 1 update trace cell.
	Volume       Volume
	Distribution Distribution
	// Update overrides the cell defaults when non-nil.
	Update *workload.UpdateConfig
	// Seeds; identical seeds reproduce runs bit-for-bit.
	QuerySeed  uint64
	UpdateSeed uint64
	PolicySeed uint64
	EngineSeed uint64
	// Trace, when non-nil, records the query lifecycle and the policy's
	// controller decisions during the run (see NewTraceRecorder). A nil
	// recorder leaves the run bitwise-unchanged.
	Trace *TraceRecorder
	// Shards partitions the run across N engine shards behind the
	// front-door router: items hash to shards, multi-item queries
	// scatter-gather (freshness = min over shard answers), and each
	// shard's seeds derive from the run seeds by shard index. Values <= 1
	// run the plain single engine, bitwise-identical to earlier releases.
	Shards int
}

// DefaultConfig returns a full-scale med-unif UNIT scenario with naive
// weights — the paper's §4.2/§4.3 starting point.
func DefaultConfig() Config {
	return Config{
		Policy:       PolicyUNIT,
		Query:        workload.DefaultQueryConfig(),
		Volume:       Med,
		Distribution: Uniform,
		QuerySeed:    42,
		UpdateSeed:   43,
		PolicySeed:   1,
		EngineSeed:   7,
	}
}

// QuickConfig returns a reduced-scale scenario (one tenth of the queries)
// for tests and fast experimentation.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Query = workload.SmallQueryConfig()
	return c
}

// NewPolicy instantiates a built-in algorithm.
func NewPolicy(name PolicyName, weights Weights, seed uint64) (Policy, error) {
	switch name {
	case PolicyUNIT, "":
		cfg := core.DefaultConfig(weights)
		cfg.Seed = seed
		return core.New(cfg), nil
	case PolicyIMU:
		return baseline.NewIMU(), nil
	case PolicyODU:
		return baseline.NewODU(), nil
	case PolicyQMF:
		cfg := qmf.DefaultConfig()
		cfg.Seed = seed
		return qmf.New(cfg), nil
	default:
		return nil, fmt.Errorf("unit: unknown policy %q", name)
	}
}

// BuildWorkload synthesizes the scenario's workload (query trace plus the
// selected update trace cell).
func BuildWorkload(cfg Config) (*workload.Workload, error) {
	q, err := workload.GenerateQueries(cfg.Query, cfg.QuerySeed)
	if err != nil {
		return nil, err
	}
	ucfg := workload.DefaultUpdateConfig(cfg.Volume, cfg.Distribution)
	if cfg.Update != nil {
		ucfg = *cfg.Update
	}
	return workload.GenerateUpdates(q, ucfg, cfg.UpdateSeed)
}

// Run executes one scenario and returns the results.
func Run(cfg Config) (*Results, error) {
	w, err := BuildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	return RunWorkload(cfg, w)
}

// RunWorkload executes a scenario against an already-built workload,
// letting callers amortize trace synthesis across policies.
func RunWorkload(cfg Config, w *workload.Workload) (*Results, error) {
	if cfg.Shards > 1 {
		return runShardedWorkload(cfg, w)
	}
	p, err := NewPolicy(cfg.Policy, cfg.Weights, cfg.PolicySeed)
	if err != nil {
		return nil, err
	}
	ecfg := engine.NewConfig(w, cfg.Weights, cfg.EngineSeed)
	ecfg.Trace = cfg.Trace
	e, err := engine.New(ecfg, p)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// runShardedWorkload routes a scenario through the front-door shard
// router. When a trace recorder is attached, each shard records into its
// own ring and the streams merge into cfg.Trace afterwards, shard-
// stamped and totally ordered (trace.Merge), so sharded dumps replay
// deterministically too.
func runShardedWorkload(cfg Config, w *workload.Workload) (*Results, error) {
	var perShard []*trace.Recorder
	scfg := engine.ShardedConfig{
		Shards:       cfg.Shards,
		Workload:     w,
		Weights:      cfg.Weights,
		Seed:         cfg.EngineSeed,
		PolicySeed:   cfg.PolicySeed,
		PhaseUpdates: true,
		Policy: func(_ int, seed uint64) (engine.Policy, error) {
			return NewPolicy(cfg.Policy, cfg.Weights, seed)
		},
	}
	if cfg.Trace != nil {
		perShard = make([]*trace.Recorder, cfg.Shards)
		scfg.Trace = func(shard int) *trace.Recorder {
			perShard[shard] = trace.New(cfg.Trace.EventCap(), cfg.Trace.DecisionCap())
			return perShard[shard]
		}
	}
	res, err := engine.RunSharded(scfg)
	if err != nil {
		return nil, err
	}
	if cfg.Trace != nil {
		trace.Merge(cfg.Trace, perShard...)
	}
	return res, nil
}

// Compare runs several policies on the identical workload and returns
// their results in the given order.
func Compare(cfg Config, policies ...PolicyName) ([]*Results, error) {
	if len(policies) == 0 {
		policies = []PolicyName{PolicyIMU, PolicyODU, PolicyQMF, PolicyUNIT}
	}
	w, err := BuildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*Results, 0, len(policies))
	for _, p := range policies {
		c := cfg
		c.Policy = p
		r, err := RunWorkload(c, w)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
