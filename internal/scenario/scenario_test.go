package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"unitdb/internal/obs/trace"
)

// scenarioSeed is the suite's master seed; every scenario derives its
// own sub-streams from it, so one integer pins the whole library.
const scenarioSeed = 1

// deterministicNames returns the registered deterministic scenarios.
func deterministicNames() []string {
	var out []string
	for _, n := range Names() {
		if s, _ := Get(n); s.Deterministic {
			out = append(out, n)
		}
	}
	return out
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry holds %d scenarios, want >= 6: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if _, ok := Get("no-such-scenario"); ok {
		t.Fatal("Get returned a scenario for an unknown name")
	}
	for _, n := range names {
		s, ok := Get(n)
		if !ok {
			t.Fatalf("Get(%q) failed for a listed name", n)
		}
		if s.Synopsis == "" || s.Story == "" || s.Property == "" {
			t.Fatalf("scenario %q lacks documentation: %+v", n, s)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, s := range []Scenario{
		{Name: "", Run: func(RunConfig) (*Report, error) { return nil, nil }},
		{Name: "flash-crowd-drift", Run: func(RunConfig) (*Report, error) { return nil, nil }},
		{Name: "runless"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", s.Name)
				}
			}()
			Register(s)
		}()
	}
}

// TestScenarioProperties runs every deterministic scenario once and
// asserts its recovery property holds at the suite seed. Each scenario
// is a subtest so a regression names the story it broke.
func TestScenarioProperties(t *testing.T) {
	for _, name := range deterministicNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Get(name)
			rep, err := s.Run(RunConfig{Seed: scenarioSeed})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range rep.Property.Checks {
				if c.Pass {
					t.Logf("ok   %-20s %s", c.Name, c.Detail)
				} else {
					t.Errorf("FAIL %-20s %s", c.Name, c.Detail)
				}
			}
			if !rep.Property.Pass {
				t.Errorf("property violated (summary %+v)", rep.Summary)
			}
		})
	}
}

// TestScenarioReplayIdentical pins the determinism contract: the same
// seed replays a DeepEqual-identical report and a byte-identical trace
// JSONL; a different seed diverges. Under -short only the first two
// scenarios run.
func TestScenarioReplayIdentical(t *testing.T) {
	names := deterministicNames()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Get(name)
			run := func(seed uint64) (*Report, []byte) {
				rec := trace.New(1<<18, 1<<14)
				rep, err := s.Run(RunConfig{Seed: seed, Trace: rec})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rec.WriteJSONL(&buf); err != nil {
					t.Fatal(err)
				}
				return rep, buf.Bytes()
			}
			r1, t1 := run(scenarioSeed)
			r2, t2 := run(scenarioSeed)
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("same-seed reports diverge:\n%+v\n%+v", r1.Summary, r2.Summary)
			}
			if !bytes.Equal(t1, t2) {
				t.Errorf("same-seed traces diverge (%d vs %d bytes)", len(t1), len(t2))
			}
			if len(t1) == 0 {
				t.Error("trace recorder captured nothing")
			}
			r3, _ := run(scenarioSeed + 1)
			if reflect.DeepEqual(r1.Summary, r3.Summary) {
				t.Error("different seeds replayed identical summaries; the seed is not flowing")
			}
		})
	}
}

// TestReportSerializable: reports round-trip through JSON (the
// cmd/unitscenario output format) without losing the property verdict.
func TestReportSerializable(t *testing.T) {
	s, _ := Get("flash-crowd-drift")
	rep, err := s.Run(RunConfig{Seed: scenarioSeed})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != rep.Scenario || back.Property.Pass != rep.Property.Pass ||
		len(back.Property.Checks) != len(rep.Property.Checks) || len(back.Windows) != len(rep.Windows) {
		t.Fatalf("report did not survive JSON round trip:\n%+v\n%+v", rep, back)
	}
}

// TestWindowCoverage sanity-checks the harness: the window series must
// account for every finalized outcome exactly once.
func TestWindowCoverage(t *testing.T) {
	s, _ := Get("slow-consumer")
	rep, err := s.Run(RunConfig{Seed: scenarioSeed})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range rep.Windows {
		total += w.Counts.Total()
	}
	if total != rep.Summary.Counts.Total() {
		t.Fatalf("windows tally %d outcomes, run finalized %d", total, rep.Summary.Counts.Total())
	}
}
