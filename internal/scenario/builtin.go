package scenario

import (
	"unitdb/internal/core/usm"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/faults"
	"unitdb/internal/workload"
)

// engineScenario is the template every deterministic simulator story
// follows: build a shaped workload from the derived seed, replay it
// under UNIT with a fault schedule, then evaluate the property's
// clauses against the windowed run.
type engineScenario struct {
	name     string
	synopsis string
	story    string
	property string
	// trace builds the workload for the run's derived workload seed,
	// weak-scaled to the run's shard count (1 for unsharded runs).
	trace func(seed uint64, shards int) (*workload.Workload, error)
	// schedule builds the fault schedule; nil means undisturbed (the
	// workload shape itself is the disturbance).
	schedule func() (*faults.Schedule, error)
	// checks evaluates the recovery property.
	checks func(r *engineRun) []Check
}

func (s engineScenario) register() {
	Register(Scenario{
		Name:          s.name,
		Synopsis:      s.synopsis,
		Story:         s.story,
		Property:      s.property,
		Deterministic: true,
		Run:           s.run,
	})
}

func (s engineScenario) run(cfg RunConfig) (*Report, error) {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	w, err := s.trace(runner.DeriveSeed(cfg.Seed, "scenario", s.name, "workload"), shards)
	if err != nil {
		return nil, err
	}
	var sched *faults.Schedule
	if s.schedule != nil {
		if sched, err = s.schedule(); err != nil {
			return nil, err
		}
	}
	r, err := runEngine(s.name, cfg, w, sched)
	if err != nil {
		return nil, err
	}
	summary, windows := r.summarize()
	rshards := 0
	if shards > 1 {
		rshards = shards
	}
	return &Report{
		Scenario:      s.name,
		Seed:          cfg.Seed,
		Deterministic: true,
		Shards:        rshards,
		Summary:       summary,
		Windows:       windows,
		Property:      evaluate(s.checks(r)),
	}, nil
}

// flatTrace is the unshaped base trace (the chaos suite's density).
func flatTrace(seed uint64, shards int) (*workload.Workload, error) {
	return scenarioTrace(seed, shards, workload.Shape{}, workload.Uniform)
}

func init() {
	engineScenario{
		name:     "flash-crowd-drift",
		synopsis: "a flash crowd lands while interest drifts across the catalog",
		story: "A correlated update feed tracks a Zipf read distribution whose " +
			"hot set rotates every 300 s (topic drift). At t=1200 a flash crowd " +
			"concentrates 35% of all queries into a 200 s window on top of the " +
			"drifting background — roughly a 10x arrival-rate spike aimed at a " +
			"hot set the update modulator has just re-learned.",
		property: "Admission control sheds the excess: the windowed USM may dip " +
			"during the crowd but is back inside the pre-crowd operating band " +
			"within 4 windows of the crowd dispersing, never falls below the " +
			"floor, and every query is accounted for exactly once.",
		trace: func(seed uint64, shards int) (*workload.Workload, error) {
			return scenarioTrace(seed, shards, workload.Shape{
				Drift: &workload.Drift{Period: 300, Step: 16},
				Crowd: &workload.Crowd{Start: 1200, Width: 200, Fraction: 0.35},
			}, workload.PositiveCorrelation)
		},
		checks: func(r *engineRun) []Check {
			// minDip 0: at some seeds admission control absorbs the crowd
			// without a visible dent — bound the damage, don't require it.
			cs := recoveryChecks(r.windows, 1200, 1400, 0)
			cs = append(cs, floorCheck(r.windows, -0.50))
			cs = append(cs, conservationCheck(r, 6000))
			return cs
		},
	}.register()

	engineScenario{
		name:     "diurnal-cycle",
		synopsis: "a day/night arrival cycle swings load 3:1 around the controller",
		story: "Arrivals follow a sinusoidal diurnal cycle with a 1000 s period " +
			"and a 3:1 peak-to-trough ratio — three full days of traffic whose " +
			"peaks push utilization well past the trough's. No faults are " +
			"injected; the cycle itself stresses the controller's ability to " +
			"re-tighten and re-loosen admission as load breathes.",
		property: "Steady degradation, not collapse: the mean settled-window USM " +
			"stays high, no settled window ever goes net-negative, the queue " +
			"stays bounded, and every query is accounted for.",
		trace: func(seed uint64, shards int) (*workload.Workload, error) {
			return scenarioTrace(seed, shards, workload.Shape{
				Diurnal: &workload.Diurnal{Period: 1000, PeakTrough: 3},
			}, workload.Uniform)
		},
		checks: func(r *engineRun) []Check {
			// Hash partitioning concentrates the Zipf head: over N shards
			// the shard owning the hottest items runs above the
			// single-engine operating point, so its diurnal peaks bite
			// deeper. The sharded bars admit that extra degradation while
			// still forbidding collapse (observed at the suite seed:
			// mean 0.40, floor -0.03 at eight shards).
			meanBar, floor := 0.50, 0.0
			if r.shards > 1 {
				meanBar, floor = 0.35, -0.10
			}
			cs := []Check{meanUSMCheck(r.windows, meanBar)}
			cs = append(cs, floorCheck(r.windows, floor))
			cs = append(cs, queueBoundCheck(r, 64))
			cs = append(cs, conservationCheck(r, 6000))
			return cs
		},
	}.register()

	engineScenario{
		name:     "update-burst-outage",
		synopsis: "a 3x update burst arrives exactly while a hot feed slice is dark",
		story: "At t=1200 the source feeds for the eight hottest items go dark " +
			"for 200 s (deliveries lost, staleness mounting) while every other " +
			"feed simultaneously bursts to 3x its cadence — the merge of two " +
			"fault schedules a real incident would produce: an upstream " +
			"partition plus the retry flood it triggers.",
		property: "Deliveries lost by the blackout match the injector's tally " +
			"exactly, the update modulator sheds burst volume rather than " +
			"starving queries, and the windowed USM dips but recovers within 4 " +
			"windows of the incident clearing.",
		trace: flatTrace,
		schedule: func() (*faults.Schedule, error) {
			blackout, err := faults.NewSchedule(faults.ItemBlackout(1200, 1400, 0, 1, 2, 3, 4, 5, 6, 7))
			if err != nil {
				return nil, err
			}
			burst, err := faults.NewSchedule(faults.UpdateBurst(1200, 1400, 3))
			if err != nil {
				return nil, err
			}
			return faults.Merge(blackout, burst)
		},
		checks: func(r *engineRun) []Check {
			cs := recoveryChecks(r.windows, 1200, 1400, 0.005)
			cs = append(cs,
				checkf("blackout-accounting", r.res.UpdatesLost > 0 && r.res.UpdatesLost == r.injected.UpdatesBlocked,
					"UpdatesLost %d, injector blocked %d", r.res.UpdatesLost, r.injected.UpdatesBlocked),
				checkf("burst-shed", r.res.UpdatesDropped > 0,
					"updates dropped by modulation: %d", r.res.UpdatesDropped),
				conservationCheck(r, 6000))
			return cs
		},
	}.register()

	engineScenario{
		name:     "slow-consumer",
		synopsis: "slow result consumers triple query service time for 200 s",
		story: "From t=1200 to t=1400 every query presented holds its worker 3x " +
			"longer than its declared work — clients on congested links " +
			"draining results slowly. Update application is unaffected; only " +
			"the query path backs up behind its own consumers.",
		property: "The queue stays bounded (EDF expiry and admission control " +
			"shed the backlog instead of letting it grow), the windowed USM " +
			"dips during the inflation window but recovers within 4 windows of " +
			"consumers speeding back up, and every query is accounted for.",
		trace: flatTrace,
		schedule: func() (*faults.Schedule, error) {
			return faults.NewSchedule(faults.SlowConsumer(1200, 1400, 3))
		},
		checks: func(r *engineRun) []Check {
			cs := recoveryChecks(r.windows, 1200, 1400, 0.03)
			cs = append(cs,
				checkf("inflation", r.injected.QueryInflations > 0,
					"query service times inflated: %d", r.injected.QueryInflations),
				queueBoundCheck(r, 96),
				conservationCheck(r, 6000))
			return cs
		},
	}.register()

	engineScenario{
		name:     "hotspot-blackout",
		synopsis: "a single celebrity item takes 40% of reads while its feed is dark",
		story: "A hotspot pins 40% of all reads to one item. At t=1200 that " +
			"item's source feed goes dark for 300 s: its stored copy ages one " +
			"lag unit per missed delivery while nearly half the read traffic " +
			"keeps demanding it fresh.",
		property: "Lost deliveries match the injector's tally, the windowed USM " +
			"dips as staleness penalties mount on the hot item but recovers " +
			"within 4 windows of the feed returning, and every query is " +
			"accounted for.",
		trace: func(seed uint64, shards int) (*workload.Workload, error) {
			return scenarioTrace(seed, shards, workload.Shape{
				Hotspot: &workload.Hotspot{Item: 7, Fraction: 0.4},
			}, workload.Uniform)
		},
		schedule: func() (*faults.Schedule, error) {
			return faults.NewSchedule(faults.ItemBlackout(1200, 1500, 7))
		},
		checks: func(r *engineRun) []Check {
			cs := recoveryChecks(r.windows, 1200, 1500, 0.005)
			cs = append(cs,
				checkf("blackout-accounting", r.res.UpdatesLost > 0 && r.res.UpdatesLost == r.injected.UpdatesBlocked,
					"UpdatesLost %d, injector blocked %d", r.res.UpdatesLost, r.injected.UpdatesBlocked),
				conservationCheck(r, 6000))
			return cs
		},
	}.register()

	engineScenario{
		name:     "disconnect-wave",
		synopsis: "impatient clients abandon any query unresolved after 200 ms",
		story: "From t=1200 to t=1400 every arriving client hangs up if its " +
			"query has not resolved within 0.2 s of presentation — a wave of " +
			"mid-flight disconnects. Abandoned queries release their locks and " +
			"worker immediately and produce no outcome, mirroring the live " +
			"server's canceled-request path.",
		property: "Outcome conservation is exact — finalized outcomes plus " +
			"abandoned clients equal queries presented, and abandonments never " +
			"exceed the injector's disconnect tally — and the windowed USM over " +
			"the remaining population returns to baseline within 4 windows of " +
			"the wave ending.",
		trace: flatTrace,
		schedule: func() (*faults.Schedule, error) {
			return faults.NewSchedule(faults.ClientDisconnect(1200, 1400, 0.2))
		},
		checks: func(r *engineRun) []Check {
			cs := recoveryChecks(r.windows, 1200, 1400, 0) // abandonment need not dent the survivors' USM
			cs = append(cs,
				checkf("abandonment", r.res.QueriesAbandoned > 0,
					"queries abandoned mid-flight: %d", r.res.QueriesAbandoned),
				checkf("abandonment-bound", r.res.QueriesAbandoned <= r.injected.Disconnects,
					"abandoned %d <= disconnect draws %d", r.res.QueriesAbandoned, r.injected.Disconnects),
				conservationCheck(r, 6000))
			return cs
		},
	}.register()

	engineScenario{
		name:     "composite-storm",
		synopsis: "four staggered faults in one afternoon: outage, slowdown, burst, slow consumers",
		story: "A feed outage at t=900, a 2x CPU slowdown at t=1300, a 3x " +
			"update burst at t=1700 and 2x-slow consumers at t=2100 — four " +
			"distinct disturbances, each ending before the next begins, so the " +
			"controller must recover four times in one run.",
		property: "Every fault kind actually fired (the injector inflated, " +
			"blocked and re-inflated), the windowed USM is back within " +
			"tolerance of the pre-storm baseline within 4 windows of the final " +
			"fault ending, no settled window fell below the floor, and every " +
			"query is accounted for.",
		trace: flatTrace,
		schedule: func() (*faults.Schedule, error) {
			return faults.NewSchedule(
				faults.FeedOutage(900, 1000),
				faults.CPUSlowdown(1300, 1400, 2),
				faults.UpdateBurst(1700, 1800, 3),
				faults.SlowConsumer(2100, 2200, 2),
			)
		},
		checks: func(r *engineRun) []Check {
			// Baseline from the pre-storm windows; recovery judged after the
			// final fault clears at t=2200.
			base, baseLow, ok := baselineUSM(r.windows, 900)
			cs := []Check{checkf("baseline", ok, "pre-storm windowed USM mean %.3f, low %.3f", base, baseLow)}
			if ok {
				cs = append(cs, lateRecoveryCheck(r.windows, baseLow, 2200))
			}
			cs = append(cs,
				checkf("all-faults-fired",
					r.injected.UpdatesBlocked > 0 && r.injected.ExecInflations > 0 &&
						r.injected.QueryInflations > 0 && r.res.UpdatesDropped > 0,
					"blocked %d, exec inflations %d, query inflations %d, dropped %d",
					r.injected.UpdatesBlocked, r.injected.ExecInflations,
					r.injected.QueryInflations, r.res.UpdatesDropped),
				floorCheck(r.windows, -0.50),
				conservationCheck(r, 6000))
			return cs
		},
	}.register()
}

// meanUSMCheck asserts the mean over all settled windows stays at or
// above bar. The mean is the seed-stable statistic here: single-window
// extremes swing ±0.3 with ~200 samples per window, while the settled
// mean varies only a few hundredths across seeds.
func meanUSMCheck(ws []usm.Counts, bar float64) Check {
	sum, n := 0.0, 0
	for i := warmupWindows; i < len(ws); i++ {
		if ws[i].Total() < minWindowSamples {
			continue
		}
		sum += ws[i].USM(scenarioWeights)
		n++
	}
	if n == 0 {
		return checkf("usm-mean", false, "no settled windows")
	}
	mean := sum / float64(n)
	return checkf("usm-mean", mean >= bar, "mean settled-window USM %.3f over %d windows, bar %.3f", mean, n, bar)
}

// lateRecoveryCheck asserts the windowed USM is back within tolerance
// of baseLow — the worst settled pre-fault window, i.e. the lower edge
// of the normal operating band — within recoveryWindows windows after
// t=after.
func lateRecoveryCheck(ws []usm.Counts, baseLow, after float64) Check {
	tol := recoveryTol * scenarioWeights.Range()
	first := int(after/windowWidth) + 1
	for k := 0; k < recoveryWindows; k++ {
		i := first + k
		if i >= len(ws) {
			break
		}
		if ws[i].Total() < minWindowSamples {
			continue
		}
		if u := ws[i].USM(scenarioWeights); u >= baseLow-tol {
			return checkf("recovery", true,
				"windowed USM back to %.3f (baseline low %.3f - tol %.3f) %d windows after t=%g", u, baseLow, tol, k, after)
		}
	}
	return checkf("recovery", false,
		"windowed USM still below %.3f-%.3f %d windows after t=%g:%s",
		baseLow, tol, recoveryWindows, after, dumpWindows(ws))
}
