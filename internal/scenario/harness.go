package scenario

import (
	"fmt"
	"strings"

	"unitdb/internal/core"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/faults"
	"unitdb/internal/obs/trace"
	"unitdb/internal/txn"
	"unitdb/internal/workload"
)

// The windowed-USM harness mirrors the chaos suite
// (internal/faults/recovery_test.go) so scenario properties and chaos
// regressions speak the same language: 100-second measurement windows,
// the first five excluded as controller warmup, thin windows ignored,
// and recovery demanded within four windows of the disturbance ending.
const (
	windowWidth      = 100.0
	warmupWindows    = 5
	minWindowSamples = 50
	recoveryWindows  = 4
	recoveryTol      = 0.05
)

// scenarioWeights are the USM penalties every simulator scenario runs
// under — the chaos suite's mixed-pressure point, where rejection,
// deadline and staleness penalties all pull on the controller.
var scenarioWeights = usm.Weights{Cr: 0.25, Cfm: 0.75, Cfs: 0.25}

// observer wraps the UNIT policy, bucketing every finalized query into
// fixed virtual-time windows and sampling the ready-queue depth on each
// control tick.
type observer struct {
	engine.Policy
	e        *engine.Engine
	windows  []usm.Counts
	maxQueue int
	buf      []*txn.Txn
}

func (p *observer) Attach(e *engine.Engine) {
	p.e = e
	p.Policy.Attach(e)
}

func (p *observer) OnQueryDone(q *txn.Txn) {
	idx := int(p.e.Now() / windowWidth)
	for len(p.windows) <= idx {
		p.windows = append(p.windows, usm.Counts{})
	}
	p.windows[idx].Record(q.Outcome)
	p.Policy.OnQueryDone(q)
}

func (p *observer) OnControlTick() {
	p.buf = p.e.AppendQueuedQueries(p.buf[:0])
	if n := len(p.buf); n > p.maxQueue {
		p.maxQueue = n
	}
	p.Policy.OnControlTick()
}

// engineRun bundles everything a simulator scenario's property can
// reason about. For sharded runs res is the front door's merged logical
// view, windows are the element-wise sum of the per-shard observers'
// windows (shards share the virtual-time axis), maxQueue is the worst
// single shard's sampled depth, and injected sums the per-shard
// injectors' tallies.
type engineRun struct {
	res      *engine.Results
	injected faults.Counts
	windows  []usm.Counts
	maxQueue int
	shards   int
}

// runEngine replays one simulator scenario cell: the given workload
// under the UNIT policy with the given fault schedule, every random
// stream sub-seeded from cfg.Seed via the scenario's name.
func runEngine(name string, cfg RunConfig, w *workload.Workload, sched *faults.Schedule) (*engineRun, error) {
	if cfg.Shards > 1 {
		return runEngineSharded(name, cfg, w, sched)
	}
	pcfg := core.DefaultConfig(scenarioWeights)
	pcfg.Seed = runner.DeriveSeed(cfg.Seed, "scenario", name, "policy")
	pol := &observer{Policy: core.New(pcfg)}
	inj := faults.NewInjector(sched)
	ecfg := engine.NewConfig(w, scenarioWeights, runner.DeriveSeed(cfg.Seed, "scenario", name, "engine"))
	ecfg.Disturbance = inj
	ecfg.Trace = cfg.Trace
	e, err := engine.New(ecfg, pol)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	res, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	return &engineRun{res: res, injected: inj.Counts(), windows: pol.windows, maxQueue: pol.maxQueue, shards: 1}, nil
}

// runEngineSharded replays the scenario cell across cfg.Shards engine
// shards behind the front-door router. Each shard gets its own observer
// policy and fault injector (ShardedConfig factories run sequentially in
// shard order, so capturing them by index is safe); afterwards the
// per-shard window series sum element-wise (all shards share one
// virtual-time axis), the queue bound takes the worst shard, and the
// injection tallies sum. With a trace recorder attached, each shard
// records into its own ring and the streams merge shard-stamped and
// totally ordered (trace.Merge), so sharded replays stay byte-identical
// per seed too.
func runEngineSharded(name string, cfg RunConfig, w *workload.Workload, sched *faults.Schedule) (*engineRun, error) {
	n := cfg.Shards
	observers := make([]*observer, n)
	injectors := make([]*faults.Injector, n)
	var perShard []*trace.Recorder
	scfg := engine.ShardedConfig{
		Shards:       n,
		Workload:     w,
		Weights:      scenarioWeights,
		Seed:         runner.DeriveSeed(cfg.Seed, "scenario", name, "engine"),
		PolicySeed:   runner.DeriveSeed(cfg.Seed, "scenario", name, "policy"),
		PhaseUpdates: true,
		Policy: func(shard int, seed uint64) (engine.Policy, error) {
			pcfg := core.DefaultConfig(scenarioWeights)
			pcfg.Seed = seed
			observers[shard] = &observer{Policy: core.New(pcfg)}
			return observers[shard], nil
		},
		Disturbance: func(shard int) engine.Disturbance {
			injectors[shard] = faults.NewInjector(sched)
			return injectors[shard]
		},
	}
	if cfg.Trace != nil {
		perShard = make([]*trace.Recorder, n)
		scfg.Trace = func(shard int) *trace.Recorder {
			perShard[shard] = trace.New(cfg.Trace.EventCap(), cfg.Trace.DecisionCap())
			return perShard[shard]
		}
	}
	run, err := engine.RunShardedDetail(scfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	if cfg.Trace != nil {
		trace.Merge(cfg.Trace, perShard...)
	}
	r := &engineRun{res: run.Merged, shards: n}
	for i := 0; i < n; i++ {
		for wi, c := range observers[i].windows {
			for len(r.windows) <= wi {
				r.windows = append(r.windows, usm.Counts{})
			}
			r.windows[wi].Add(c)
		}
		if observers[i].maxQueue > r.maxQueue {
			r.maxQueue = observers[i].maxQueue
		}
		c := injectors[i].Counts()
		r.injected.UpdatesBlocked += c.UpdatesBlocked
		r.injected.QueriesStalled += c.QueriesStalled
		r.injected.ExecInflations += c.ExecInflations
		r.injected.QueryInflations += c.QueryInflations
		r.injected.Disconnects += c.Disconnects
	}
	return r, nil
}

// scenarioTrace builds the standard scenario workload: the chaos
// suite's density (64 items, 6000 queries over 3000 s, ~200 outcomes
// per window) with the given arrival/read shape, overlaid with a
// medium-volume update stream. The update stream derives its own seed
// so reshaping queries never silently reshuffles the feeds.
//
// Sharded runs weak-scale: N shards are N CPUs, so the trace carries N
// times the queries at N times the aggregate query utilization, and the
// update stream delivers N times the volume while keeping the N=1 trace's
// update-feed count and per-item periods (TotalOverride pins the feed
// total before the utilization scale spreads the extra volume across
// them). Every shard then sees roughly the single-engine operating point
// and the recovery properties keep their meaning. At shards <= 1 the
// trace is bitwise-identical to earlier releases.
func scenarioTrace(seed uint64, shards int, shape workload.Shape, dist workload.Distribution) (*workload.Workload, error) {
	qc := workload.SmallQueryConfig()
	qc.NumItems = 64
	qc.NumQueries = 6000
	qc.Duration = 3000
	qc.BurstFraction = 0
	qc.NumBursts = 0
	qc.BurstWidth = 0
	ucfg := workload.DefaultUpdateConfig(workload.Med, dist)
	if shards > 1 {
		qc.NumQueries *= shards
		qc.TargetUtilization *= float64(shards)
		ucfg.TotalOverride = workload.Med.TotalUpdates(6000)
		ucfg.UtilizationScale = float64(shards)
	}
	q, err := workload.GenerateShaped(qc, shape, seed)
	if err != nil {
		return nil, err
	}
	return workload.GenerateUpdates(q, ucfg, runner.DeriveSeed(seed, "updates"))
}

// summarize converts an engine run into the Report pieces.
func (r *engineRun) summarize() (Summary, []Window) {
	return Summary{
		Policy:           r.res.Policy,
		USM:              r.res.USM,
		Counts:           r.res.Counts,
		QueriesPresented: r.res.Counts.Total() + r.res.QueriesAbandoned,
		UpdatesApplied:   r.res.UpdatesApplied,
		UpdatesDropped:   r.res.UpdatesDropped,
		UpdatesLost:      r.res.UpdatesLost,
		QueriesStalled:   r.res.QueriesStalled,
		QueriesAbandoned: r.res.QueriesAbandoned,
		MaxQueueDepth:    r.maxQueue,
		Events:           r.res.Events,
		Injection:        r.injected,
	}, windowSeries(r.windows)
}

// windowSeries renders the raw per-window tallies.
func windowSeries(ws []usm.Counts) []Window {
	out := make([]Window, len(ws))
	for i, c := range ws {
		out[i] = Window{
			Index:  i,
			Start:  float64(i) * windowWidth,
			End:    float64(i+1) * windowWidth,
			Counts: c,
			USM:    c.USM(scenarioWeights),
		}
	}
	return out
}

// dumpWindows renders the window series for check detail lines.
func dumpWindows(ws []usm.Counts) string {
	var b strings.Builder
	for i, c := range ws {
		fmt.Fprintf(&b, " w%02d n=%d usm=%+.3f", i, c.Total(), c.USM(scenarioWeights))
	}
	return b.String()
}

// baselineUSM summarizes the settled pre-fault windows (after warmup,
// before faultStart, thin windows skipped): their mean USM and the
// worst single window. The mean anchors the dip clause; the worst
// window anchors recovery, because a single healthy window routinely
// sits a few tenths below the mean and "recovered" must mean "back
// inside the pre-fault operating band", not "above its average".
func baselineUSM(ws []usm.Counts, faultStart float64) (mean, low float64, ok bool) {
	end := int(faultStart / windowWidth)
	sum, n := 0.0, 0
	for i := warmupWindows; i < end && i < len(ws); i++ {
		if ws[i].Total() < minWindowSamples {
			continue
		}
		u := ws[i].USM(scenarioWeights)
		if n == 0 || u < low {
			low = u
		}
		sum += u
		n++
	}
	if n == 0 {
		return 0, 0, false
	}
	return sum / float64(n), low, true
}

// recoveryChecks evaluates the dip-and-recovery contract the chaos
// suite pins (DESIGN.md §9): the windowed USM must fall at least minDip
// below the pre-fault mean in some window overlapping
// [faultStart, faultEnd+windowWidth) — pass minDip <= 0 to skip the dip
// clause for disturbances that need not bite — and must climb back to
// within recoveryTol·Range of the worst pre-fault window (the lower
// edge of the normal operating band) within recoveryWindows windows of
// the fault ending.
func recoveryChecks(ws []usm.Counts, faultStart, faultEnd, minDip float64) []Check {
	base, baseLow, ok := baselineUSM(ws, faultStart)
	if !ok {
		return []Check{checkf("baseline", false, "no settled pre-fault window before t=%g:%s", faultStart, dumpWindows(ws))}
	}
	checks := []Check{checkf("baseline", true, "pre-fault windowed USM mean %.3f, low %.3f", base, baseLow)}

	dipLo, dipHi := int(faultStart/windowWidth), int(faultEnd/windowWidth)+1
	worst, worstOK := 0.0, false
	for i := dipLo; i <= dipHi && i < len(ws); i++ {
		if ws[i].Total() < minWindowSamples {
			continue
		}
		if u := ws[i].USM(scenarioWeights); !worstOK || u < worst {
			worst, worstOK = u, true
		}
	}
	if minDip > 0 {
		switch {
		case !worstOK:
			checks = append(checks, checkf("dip", false, "no populated window during fault [%g,%g)", faultStart, faultEnd))
		default:
			checks = append(checks, checkf("dip", worst <= base-minDip,
				"worst in-fault window USM %.3f vs baseline %.3f (want dip >= %.3f)", worst, base, minDip))
		}
	}

	tol := recoveryTol * scenarioWeights.Range()
	bar := baseLow - tol
	for k := 0; k < recoveryWindows; k++ {
		i := dipHi + k
		if i >= len(ws) {
			break
		}
		if ws[i].Total() < minWindowSamples {
			continue
		}
		if u := ws[i].USM(scenarioWeights); u >= bar {
			return append(checks, checkf("recovery", true,
				"windowed USM back to %.3f (baseline low %.3f - tol %.3f) %d windows after fault end", u, baseLow, tol, k))
		}
	}
	return append(checks, checkf("recovery", false,
		"windowed USM still below %.3f-%.3f %d windows after fault end %g:%s",
		baseLow, tol, recoveryWindows, faultEnd, dumpWindows(ws)))
}

// floorCheck asserts no settled window ever fell below floor — the
// story's damage stays bounded even at its worst.
func floorCheck(ws []usm.Counts, floor float64) Check {
	worst, at, any := 0.0, -1, false
	for i := warmupWindows; i < len(ws); i++ {
		if ws[i].Total() < minWindowSamples {
			continue
		}
		if u := ws[i].USM(scenarioWeights); !any || u < worst {
			worst, at, any = u, i, true
		}
	}
	if !any {
		return checkf("floor", false, "no settled windows")
	}
	return checkf("floor", worst >= floor, "worst settled window w%d USM %.3f, floor %.3f", at, worst, floor)
}

// conservationCheck asserts every presented query is accounted for
// exactly once: finalized outcomes plus abandoned clients must equal
// the workload's query count. presented is the N=1 trace's count; weak
// scaling multiplies it by the shard count.
func conservationCheck(r *engineRun, presented int) Check {
	if r.shards > 1 {
		presented *= r.shards
	}
	got := r.res.Counts.Total() + r.res.QueriesAbandoned
	return checkf("conservation", got == presented,
		"outcomes %d + abandoned %d = %d, presented %d",
		r.res.Counts.Total(), r.res.QueriesAbandoned, got, presented)
}

// queueBoundCheck asserts the ready queue (sampled at every control
// tick) never exceeded bound — backpressure held instead of the backlog
// growing without limit.
func queueBoundCheck(r *engineRun, bound int) Check {
	return checkf("queue-bound", r.maxQueue <= bound,
		"max sampled queue depth %d, bound %d", r.maxQueue, bound)
}
