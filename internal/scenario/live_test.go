package scenario

import (
	"bytes"
	"testing"

	"unitdb/internal/obs/trace"
)

// TestThunderingHerd drives the live retry-storm scenario end to end:
// a real HTTP server, retrying clients, and the asserted storm and
// recovery property. The run is wall-clock scheduled and therefore not
// bitwise-reproducible; the property holds with margins.
func TestThunderingHerd(t *testing.T) {
	if testing.Short() {
		t.Skip("live scenario: skipped under -short")
	}
	s, ok := Get("thundering-herd")
	if !ok {
		t.Fatal("thundering-herd not registered")
	}
	if s.Deterministic {
		t.Fatal("thundering-herd must not claim determinism")
	}
	rec := trace.New(1<<16, 1<<12)
	rep, err := s.Run(RunConfig{Seed: scenarioSeed, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Property.Checks {
		if c.Pass {
			t.Logf("ok   %-22s %s", c.Name, c.Detail)
		} else {
			t.Errorf("FAIL %-22s %s", c.Name, c.Detail)
		}
	}
	if !rep.Property.Pass {
		t.Errorf("property violated (summary %+v)", rep.Summary)
	}
	if rep.Summary.Attempts <= int64(herdClients*herdQueriesEach) {
		t.Errorf("storm produced no retries: attempts %d", rep.Summary.Attempts)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("live run recorded no trace events")
	}
}
