package scenario

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"unitdb/internal/core/usm"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/server"
)

// The thundering-herd scenario runs against a real unitd: a live HTTP
// server with a tiny worker pool and queue, hammered by retrying
// clients whose backoff interacts with the server's 429/Retry-After
// pushback. Wall-clock scheduling makes it non-deterministic, so its
// property holds with margins rather than bit-exact replay.
const (
	herdClients     = 10                     // concurrent retrying clients
	herdQueriesEach = 6                      // logical queries per client
	herdRetries     = 4                      // retry budget per query
	herdBackoffBase = 2 * time.Millisecond   // first backoff ceiling
	herdBackoffCap  = 40 * time.Millisecond  // WithRetryCap ceiling (overrides server hints)
	herdWork        = 25 * time.Millisecond  // declared work per storm query
	herdDeadline    = 60 * time.Millisecond  // storm query deadline
	calmQueries     = 40                     // post-storm probe queries
	calmWork        = 2 * time.Millisecond   // probe work
	calmDeadline    = 500 * time.Millisecond // probe deadline (generous slack)
	calmSuccessMin  = 0.75                   // post-storm success-ratio floor
)

func init() {
	Register(Scenario{
		Name:     "thundering-herd",
		Synopsis: "a retry storm against a live unitd with a 2-worker pool and a 4-deep queue",
		Story: fmt.Sprintf("%d clients, each retrying up to %d times with seeded "+
			"jittered backoff capped at %v, simultaneously push %d queries each "+
			"(%v of work against a %v deadline) at a live server with 2 workers "+
			"and a 4-deep queue. The server sheds and rejects with 429/Retry-After; "+
			"the clients' backoff turns the pushback into a thundering herd. Once "+
			"the storm passes, a patient client probes the server with %d light "+
			"queries.",
			herdClients, herdRetries, herdBackoffCap, herdQueriesEach, herdWork,
			herdDeadline, calmQueries),
		Property: fmt.Sprintf("The server pushes back during the storm (rejections "+
			"or sheds observed) and the clients' retry amplification stays within "+
			"its configured budget — attempts = logical + retries, retries <= "+
			"%d per logical query, every giveup accounted. After the storm the "+
			"server recovers: at least %.0f%% of the calm probes succeed.",
			herdRetries, calmSuccessMin*100),
		Deterministic: false,
		Run:           runThunderingHerd,
	})
}

func runThunderingHerd(cfg RunConfig) (*Report, error) {
	srv, err := server.New(server.Config{
		NumItems:           64,
		Weights:            scenarioWeights,
		Workers:            2,
		ControlPeriod:      20 * time.Millisecond,
		GracePeriod:        100 * time.Millisecond,
		MinDecisionSamples: 10,
		MaxQueue:           4,
		DefaultFreshness:   0.9,
		Seed:               runner.DeriveSeed(cfg.Seed, "scenario", "thundering-herd", "server"),
		Trace:              cfg.Trace,
	})
	if err != nil {
		return nil, fmt.Errorf("thundering-herd: boot server: %w", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()

	before := srv.Stats()

	// Storm: every client fires its logical queries back to back; the
	// retry policy inside the client supplies the herd behaviour.
	clients := make([]*server.Client, herdClients)
	var wg sync.WaitGroup
	for i := range clients {
		clients[i] = server.NewClient(ts.URL, nil,
			server.WithRetry(herdRetries, herdBackoffBase,
				runner.DeriveSeed(cfg.Seed, "scenario", "thundering-herd", "client", fmt.Sprint(i))),
			server.WithRetryCap(herdBackoffCap))
		wg.Add(1)
		go func(i int, c *server.Client) {
			defer wg.Done()
			for q := 0; q < herdQueriesEach; q++ {
				_, _ = c.Query(server.QueryRequest{
					Items:    []int{(i*herdQueriesEach + q) % 64},
					Work:     herdWork,
					Deadline: herdDeadline,
				})
			}
		}(i, clients[i])
	}
	wg.Wait()
	afterStorm := srv.Stats()

	var retry server.RetryCounts
	for _, c := range clients {
		rc := c.RetryCounts()
		retry.Attempts += rc.Attempts
		retry.Retries += rc.Retries
		retry.Giveups += rc.Giveups
	}

	// Calm: a patient, non-retrying client probes the recovered server.
	probe := server.NewClient(ts.URL, nil)
	succeeded := 0
	for q := 0; q < calmQueries; q++ {
		resp, err := probe.Query(server.QueryRequest{
			Items:    []int{q % 64},
			Work:     calmWork,
			Deadline: calmDeadline,
		})
		if err == nil && resp.Outcome == server.OutcomeSuccess {
			succeeded++
		}
	}
	afterCalm := srv.Stats()

	const logical = herdClients * herdQueriesEach
	amp := float64(retry.Attempts) / float64(logical)
	stormCounts := subCounts(afterStorm.Counts, before.Counts)
	totalCounts := subCounts(afterCalm.Counts, before.Counts)
	pushback := stormCounts.Rejected + (afterStorm.QueriesShed - before.QueriesShed)
	calmRatio := float64(succeeded) / float64(calmQueries)

	checks := []Check{
		checkf("storm-pushback", pushback > 0,
			"storm rejections %d + sheds %d", stormCounts.Rejected, afterStorm.QueriesShed-before.QueriesShed),
		checkf("retries-exercised", retry.Retries > 0,
			"retries across %d clients: %d", herdClients, retry.Retries),
		checkf("attempt-accounting", retry.Attempts == int64(logical)+retry.Retries,
			"attempts %d = logical %d + retries %d", retry.Attempts, logical, retry.Retries),
		checkf("bounded-amplification", retry.Retries <= int64(logical*herdRetries) && retry.Giveups <= int64(logical),
			"amplification %.2fx (budget %dx), giveups %d of %d logical", amp, 1+herdRetries, retry.Giveups, logical),
		checkf("post-storm-recovery", calmRatio >= calmSuccessMin,
			"calm probes succeeded %d/%d (%.0f%%, floor %.0f%%)", succeeded, calmQueries, calmRatio*100, calmSuccessMin*100),
	}

	return &Report{
		Scenario:      "thundering-herd",
		Seed:          cfg.Seed,
		Deterministic: false,
		Summary: Summary{
			USM:           totalCounts.USM(scenarioWeights),
			Counts:        totalCounts,
			QueriesShed:   afterCalm.QueriesShed - before.QueriesShed,
			Attempts:      retry.Attempts,
			Retries:       retry.Retries,
			Giveups:       retry.Giveups,
			Amplification: amp,
		},
		Property: evaluate(checks),
	}, nil
}

// subCounts returns b - a, field by field.
func subCounts(b, a usm.Counts) usm.Counts {
	return usm.Counts{
		Success:  b.Success - a.Success,
		Rejected: b.Rejected - a.Rejected,
		DMF:      b.DMF - a.DMF,
		DSF:      b.DSF - a.DSF,
	}
}
