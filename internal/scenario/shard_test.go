package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"unitdb/internal/obs/trace"
)

// scenarioShardCounts are the shard counts the scenario invariance
// suite replays at (the ROADMAP's sharded-engine coverage points).
var scenarioShardCounts = []int{2, 8}

// TestScenarioPropertiesSharded replays every deterministic scenario
// across the shard matrix and asserts the same recovery properties
// hold: weak scaling keeps every shard near the single-engine operating
// point, so the stories keep their meaning behind the front door.
func TestScenarioPropertiesSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded scenario properties skipped in -short mode")
	}
	for _, shards := range scenarioShardCounts {
		for _, name := range deterministicNames() {
			name, shards := name, shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				t.Parallel()
				s, _ := Get(name)
				rep, err := s.Run(RunConfig{Seed: scenarioSeed, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Shards != shards {
					t.Errorf("Report.Shards = %d, want %d", rep.Shards, shards)
				}
				for _, c := range rep.Property.Checks {
					if c.Pass {
						t.Logf("ok   %-20s %s", c.Name, c.Detail)
					} else {
						t.Errorf("FAIL %-20s %s", c.Name, c.Detail)
					}
				}
				if !rep.Property.Pass {
					t.Errorf("property violated at shards=%d (summary %+v)", shards, rep.Summary)
				}
			})
		}
	}
}

// TestScenarioShardOneMatchesUnsharded pins the no-op contract at the
// scenario layer: Shards=1 (and 0) replays the exact unsharded Report.
func TestScenarioShardOneMatchesUnsharded(t *testing.T) {
	for _, name := range deterministicNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Get(name)
			base, err := s.Run(RunConfig{Seed: scenarioSeed})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{0, 1} {
				got, err := s.Run(RunConfig{Seed: scenarioSeed, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("Shards=%d report diverges from the unsharded run:\n%+v\n%+v",
						shards, base.Summary, got.Summary)
				}
			}
		})
	}
}

// TestScenarioReplayIdenticalSharded extends the determinism contract
// behind the front door: per (seed, shard count) the Report replays
// DeepEqual-identically and the merged shard-stamped trace JSONL is
// byte-identical; a different seed diverges.
func TestScenarioReplayIdenticalSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded scenario replay skipped in -short mode")
	}
	for _, shards := range scenarioShardCounts {
		for _, name := range deterministicNames() {
			name, shards := name, shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				t.Parallel()
				s, _ := Get(name)
				run := func(seed uint64) (*Report, []byte) {
					rec := trace.New(1<<18, 1<<14)
					rep, err := s.Run(RunConfig{Seed: seed, Shards: shards, Trace: rec})
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := rec.WriteJSONL(&buf); err != nil {
						t.Fatal(err)
					}
					return rep, buf.Bytes()
				}
				r1, t1 := run(scenarioSeed)
				r2, t2 := run(scenarioSeed)
				if !reflect.DeepEqual(r1, r2) {
					t.Errorf("same-seed sharded reports diverge:\n%+v\n%+v", r1.Summary, r2.Summary)
				}
				if !bytes.Equal(t1, t2) {
					t.Errorf("same-seed merged traces diverge (%d vs %d bytes)", len(t1), len(t2))
				}
				if len(t1) == 0 {
					t.Error("merged trace recorder captured nothing")
				}
				if !bytes.Contains(t1, []byte(`"shard":`)) {
					t.Error("merged trace carries no shard stamps")
				}
				r3, _ := run(scenarioSeed + 1)
				if reflect.DeepEqual(r1.Summary, r3.Summary) {
					t.Error("different seeds replayed identical sharded summaries; the seed is not flowing")
				}
			})
		}
	}
}
