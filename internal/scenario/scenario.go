// Package scenario is a library of named, seeded, end-to-end failure
// stories. Each scenario composes a workload shape (internal/workload),
// a fault schedule (internal/faults) and a client-behaviour model into
// one run, and asserts a recovery property on the result: the windowed
// USM may dip while the disturbance is active but must come back, the
// outcome accounting must conserve every presented query, and queues
// must stay bounded.
//
// Scenarios marked Deterministic are pure functions of their seed: the
// same seed replays the identical Report (reflect.DeepEqual) and, with a
// trace recorder attached, the identical event stream byte for byte.
// The live thundering-herd scenario drives a real HTTP server with
// retrying clients and is deliberately not bitwise-reproducible — its
// property holds with margins instead.
//
// cmd/unitscenario lists, describes and replays scenarios from the
// command line; scenario_test.go asserts every property in CI.
package scenario

import (
	"fmt"
	"sort"

	"unitdb/internal/core/usm"
	"unitdb/internal/faults"
	"unitdb/internal/obs/trace"
)

// RunConfig parameterizes one scenario run.
type RunConfig struct {
	// Seed is the master seed; every stream of the run (workload,
	// policy lottery, engine tie-breaking, client backoff) derives its
	// own sub-seed from it, so one integer replays the whole story.
	Seed uint64
	// Trace, when non-nil, captures the run's query lifecycle and
	// controller decisions (virtual-time stamped for deterministic
	// scenarios, wall-time for live ones).
	Trace *trace.Recorder
	// Shards replays the story across N engine shards behind the
	// front-door router (engine.RunShardedDetail), weak-scaled: N shards
	// are N CPUs, so the trace carries N times the query and update
	// volume while per-item update periods stay fixed. Values <= 1 run
	// the plain single engine, bitwise-identical to earlier releases.
	Shards int
}

// Scenario is one named failure story.
type Scenario struct {
	// Name identifies the scenario (kebab-case, stable across releases).
	Name string
	// Synopsis is a one-line summary for listings.
	Synopsis string
	// Story narrates what happens to whom: the workload shape, the fault
	// schedule and the client behaviour, in prose.
	Story string
	// Property states the asserted recovery property, in prose.
	Property string
	// Deterministic reports whether same-seed runs replay identically.
	Deterministic bool
	// Run executes the story and evaluates its property. It returns an
	// error only for harness failures (bad workload config, server boot
	// failure); a violated property is reported in Report.Property, not
	// as an error.
	Run func(RunConfig) (*Report, error)
}

// Check is one verified clause of a scenario property.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Property is the evaluated recovery property of one run.
type Property struct {
	Pass   bool    `json:"pass"`
	Checks []Check `json:"checks"`
}

// Window is one fixed-width virtual-time USM measurement window.
type Window struct {
	Index  int        `json:"index"`
	Start  float64    `json:"start"`
	End    float64    `json:"end"`
	Counts usm.Counts `json:"counts"`
	USM    float64    `json:"usm"`
}

// Summary condenses one run into the numbers the property reasons
// about. For a deterministic scenario the whole struct replays
// DeepEqual-identically per seed.
type Summary struct {
	Policy           string     `json:"policy,omitempty"`
	USM              float64    `json:"usm"`
	Counts           usm.Counts `json:"counts"`
	QueriesPresented int        `json:"queries_presented,omitempty"`
	UpdatesApplied   int        `json:"updates_applied,omitempty"`
	UpdatesDropped   int        `json:"updates_dropped,omitempty"`
	UpdatesLost      int        `json:"updates_lost,omitempty"`
	QueriesStalled   int        `json:"queries_stalled,omitempty"`
	QueriesAbandoned int        `json:"queries_abandoned,omitempty"`
	MaxQueueDepth    int        `json:"max_queue_depth,omitempty"`
	Events           int64      `json:"events,omitempty"`
	// Injection is the fault injector's tally (zero value for live
	// scenarios, which disturb themselves through client load).
	Injection faults.Counts `json:"injection"`

	// Live-scenario client accounting (zero for simulator scenarios).
	Attempts      int64   `json:"attempts,omitempty"`
	Retries       int64   `json:"retries,omitempty"`
	Giveups       int64   `json:"giveups,omitempty"`
	Amplification float64 `json:"amplification,omitempty"`
	QueriesShed   int     `json:"queries_shed,omitempty"`
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario      string   `json:"scenario"`
	Seed          uint64   `json:"seed"`
	Deterministic bool     `json:"deterministic"`
	Shards        int      `json:"shards,omitempty"`
	Summary       Summary  `json:"summary"`
	Windows       []Window `json:"windows,omitempty"`
	Property      Property `json:"property"`
}

// registry holds every Register'ed scenario by name. It is populated by
// package init functions and read-only afterwards, so lookups need no
// lock.
var registry = map[string]Scenario{}

// Register adds a scenario to the library. It panics on a duplicate or
// empty name — scenario names are part of the tool's CLI surface and
// must be unique.
func Register(s Scenario) {
	if s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate name %q", s.Name))
	}
	if s.Run == nil {
		panic(fmt.Sprintf("scenario: %q has no Run", s.Name))
	}
	registry[s.Name] = s
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// evaluate folds a list of checks into a Property.
func evaluate(checks []Check) Property {
	p := Property{Pass: true, Checks: checks}
	for _, c := range checks {
		if !c.Pass {
			p.Pass = false
		}
	}
	return p
}

// checkf builds one named check with a formatted detail line.
func checkf(name string, pass bool, format string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}
