package baseline

import (
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/workload"
)

func smallTrace(t *testing.T, v workload.Volume, d workload.Distribution) *workload.Workload {
	t.Helper()
	qc := workload.SmallQueryConfig()
	qc.NumQueries = 2500
	qc.Duration = 10000
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(v, d), 43)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func run(t *testing.T, w *workload.Workload, p engine.Policy) *engine.Results {
	t.Helper()
	e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIMUNeverRejectsNeverStale(t *testing.T) {
	w := smallTrace(t, workload.Med, workload.Uniform)
	r := run(t, w, NewIMU())
	if r.Counts.Rejected != 0 {
		t.Fatalf("IMU rejected %d queries", r.Counts.Rejected)
	}
	if r.Counts.DSF != 0 {
		t.Fatalf("IMU produced %d DSFs; it must be 100%% fresh (§4.1)", r.Counts.DSF)
	}
	if r.Counts.Total() != len(w.Queries) {
		t.Fatalf("outcome conservation: %d != %d", r.Counts.Total(), len(w.Queries))
	}
	// IMU executes every update that is not superseded in queue.
	if r.UpdatesDropped != r.UpdatesSuperseded {
		t.Fatalf("IMU dropped %d beyond the %d supersedes", r.UpdatesDropped, r.UpdatesSuperseded)
	}
}

func TestODUNeverRejectsNeverStale(t *testing.T) {
	w := smallTrace(t, workload.Med, workload.Uniform)
	r := run(t, w, NewODU())
	if r.Counts.Rejected != 0 {
		t.Fatalf("ODU rejected %d queries", r.Counts.Rejected)
	}
	if r.Counts.DSF != 0 {
		t.Fatalf("ODU produced %d DSFs; on-demand refresh must read fresh (§4.1)", r.Counts.DSF)
	}
	if r.RefreshesIssued == 0 {
		t.Fatal("ODU issued no on-demand refreshes")
	}
	if r.Counts.Total() != len(w.Queries) {
		t.Fatalf("outcome conservation: %d != %d", r.Counts.Total(), len(w.Queries))
	}
}

func TestODUExecutesFewerUpdatesThanIMU(t *testing.T) {
	// ODU's whole point: skip updates nobody reads. Under a skewed query
	// distribution with uniform updates, it must apply far fewer.
	w := smallTrace(t, workload.Med, workload.Uniform)
	imu := run(t, w, NewIMU())
	odu := run(t, w, NewODU())
	if odu.UpdatesApplied >= imu.UpdatesApplied {
		t.Fatalf("ODU applied %d >= IMU's %d", odu.UpdatesApplied, imu.UpdatesApplied)
	}
	if odu.UpdateCPU >= imu.UpdateCPU {
		t.Fatalf("ODU update CPU %.3f >= IMU's %.3f", odu.UpdateCPU, imu.UpdateCPU)
	}
}

func TestIMUCollapsesAtHighVolume(t *testing.T) {
	// Paper Fig. 4: at 150% update utilization IMU's success ratio goes to
	// ~zero (updates starve every query).
	w := smallTrace(t, workload.High, workload.Uniform)
	r := run(t, w, NewIMU())
	if r.SuccessRatio > 0.05 {
		t.Fatalf("IMU success ratio %.3f at high volume; expected collapse", r.SuccessRatio)
	}
	odu := run(t, w, NewODU())
	if odu.SuccessRatio < 0.2 {
		t.Fatalf("ODU also collapsed (%.3f); the on-demand advantage is gone", odu.SuccessRatio)
	}
}

func TestODUCloseToIMUUnderPositiveCorrelation(t *testing.T) {
	// Paper §4.3 on Fig. 4(b): with updates concentrated on the queried
	// items, on-demand refresh ends up applying most updates, closing the
	// efficiency gap. Compare applied counts at low volume (where both
	// survive).
	w := smallTrace(t, workload.Low, workload.PositiveCorrelation)
	imu := run(t, w, NewIMU())
	odu := run(t, w, NewODU())
	gapPos := float64(imu.UpdatesApplied-odu.UpdatesApplied) / float64(imu.UpdatesApplied)

	wNeg := smallTrace(t, workload.Low, workload.NegativeCorrelation)
	imuN := run(t, wNeg, NewIMU())
	oduN := run(t, wNeg, NewODU())
	gapNeg := float64(imuN.UpdatesApplied-oduN.UpdatesApplied) / float64(imuN.UpdatesApplied)

	if gapPos >= gapNeg {
		t.Fatalf("applied-updates gap pos=%.3f should be below neg=%.3f", gapPos, gapNeg)
	}
}

func TestNames(t *testing.T) {
	if NewIMU().Name() != "IMU" || NewODU().Name() != "ODU" {
		t.Fatal("policy names")
	}
}
