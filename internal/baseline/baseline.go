// Package baseline implements the two baseline algorithms of paper §4.1:
//
//   - IMU (Immediate Update): every source update executes; no admission
//     control. 100% freshness, but the update load starves queries when it
//     is high.
//   - ODU (On-demand Update): background updates are deferred; when an
//     admitted query is about to read a stale item, a refresh update is
//     issued first. Also 100% fresh, but the refresh delays the query.
//
// The state-of-the-art comparator QMF lives in the qmf subpackage.
package baseline

import (
	"unitdb/internal/engine"
	"unitdb/internal/txn"
)

// IMU is the immediate-update baseline.
type IMU struct {
	engine.Base
}

// NewIMU creates the IMU policy.
func NewIMU() *IMU { return &IMU{} }

// Name implements engine.Policy.
func (*IMU) Name() string { return "IMU" }

var _ engine.Policy = (*IMU)(nil)

// ODU is the on-demand-update baseline.
type ODU struct {
	engine.Base
	e *engine.Engine
}

// NewODU creates the ODU policy.
func NewODU() *ODU { return &ODU{} }

// Name implements engine.Policy.
func (*ODU) Name() string { return "ODU" }

// Attach implements engine.Policy.
func (o *ODU) Attach(e *engine.Engine) { o.e = e }

// AdmitUpdate implements engine.Policy: background updates are always
// deferred (counted as drops) and applied on demand.
func (*ODU) AdmitUpdate(int) bool { return false }

// BeforeQueryDispatch implements engine.Policy: when the query is about to
// read a stale item, issue a refresh update at update-class priority with
// the query's deadline and postpone the query until the data are fresh.
func (o *ODU) BeforeQueryDispatch(q *txn.Txn) bool {
	store := o.e.Store()
	stale := false
	for _, item := range q.Items {
		if store.Drops(item) == 0 {
			continue
		}
		stale = true
		if o.e.PendingUpdateFor(item) == nil {
			if exec, ok := o.e.FeedExec(item); ok {
				o.e.EnqueueRefresh(item, exec, q.Deadline)
			}
		}
	}
	return !stale
}

var _ engine.Policy = (*ODU)(nil)
