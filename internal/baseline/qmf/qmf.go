// Package qmf reimplements QMF — Kang, Son & Stankovic, "Managing deadline
// miss ratio and sensor data freshness in real-time databases" (TKDE 2004)
// — the state-of-the-art comparator of the paper's evaluation, from the
// behavioural description in paper §4.1 (the original code is not
// available):
//
//   - A feedback loop monitors CPU utilization, perceived freshness (the
//     fraction of query accesses that read fresh data) and the deadline
//     miss ratio among admitted queries.
//   - With the CPU underutilized, QMF updates more often when the target
//     freshness is not met, otherwise admits more transactions.
//   - With the CPU overloaded, QMF updates less often when the current
//     freshness exceeds the target, otherwise drops incoming transactions
//     until the system recovers.
//   - The adaptive update policy decides whose updates to drop by the
//     ratio of accesses to updates per data item: the least-accessed-per-
//     update items are dropped first.
//
// QMF targets miss ratio and freshness, not the user satisfaction metric —
// the asymmetry UNIT exploits in §4.3–4.5.
package qmf

import (
	"sort"

	"unitdb/internal/engine"
	"unitdb/internal/stats"
	"unitdb/internal/txn"
)

// Config parameterizes QMF's feedback loop.
type Config struct {
	// ControlPeriod is the sampling period of the loop (seconds).
	ControlPeriod float64
	// TargetFreshness is QMF's perceived-freshness set point.
	TargetFreshness float64
	// TargetMissRatio is the deadline-miss set point among admitted
	// queries.
	TargetMissRatio float64
	// OverloadUtilization is the CPU utilization above which the system
	// counts as overloaded.
	OverloadUtilization float64
	// Step is the per-decision adjustment of the admit and drop fractions.
	Step float64
	// RecomputeEvery throttles the O(n log n) drop-set resort to once per
	// this many control ticks.
	RecomputeEvery int
	// Seed drives the probabilistic admission gate.
	Seed uint64
}

// DefaultConfig returns the configuration used in the reproduction.
func DefaultConfig() Config {
	return Config{
		ControlPeriod:       5,
		TargetFreshness:     0.98,
		TargetMissRatio:     0.10,
		OverloadUtilization: 0.95,
		Step:                0.10,
		RecomputeEvery:      5,
		Seed:                1,
	}
}

// QMF is the policy.
type QMF struct {
	cfg Config
	e   *engine.Engine
	rng *stats.RNG

	admitFrac float64 // probability an incoming query is admitted
	dropFrac  float64 // fraction of items whose updates are dropped

	dropSet   []bool
	acc       []int // per-item committed accesses
	upd       []int // per-item source updates
	feedItems int   // items with an update feed

	// window measurements
	winAdmitted    int
	winMissed      int
	winAccesses    int
	winFreshAccess int
	lastBusy       float64
	ticks          int
	lastDropFrac   float64
}

// New creates a QMF policy.
func New(cfg Config) *QMF {
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = 5
	}
	if cfg.Step <= 0 {
		cfg.Step = 0.10
	}
	if cfg.RecomputeEvery <= 0 {
		cfg.RecomputeEvery = 1
	}
	return &QMF{cfg: cfg, admitFrac: 1}
}

// Name implements engine.Policy.
func (*QMF) Name() string { return "QMF" }

// Attach implements engine.Policy.
func (q *QMF) Attach(e *engine.Engine) {
	q.e = e
	n := e.Workload().NumItems
	q.rng = stats.NewRNG(q.cfg.Seed)
	q.dropSet = make([]bool, n)
	q.acc = make([]int, n)
	q.upd = make([]int, n)
	q.feedItems = len(e.Workload().Updates)
}

// AdmitFraction returns the current admission probability (introspection).
func (q *QMF) AdmitFraction() float64 { return q.admitFrac }

// DropFraction returns the current update-drop fraction (introspection).
func (q *QMF) DropFraction() float64 { return q.dropFrac }

// AdmitQuery implements engine.Policy: a Bernoulli gate with the loop's
// admit fraction ("drops incoming transactions until the system recovers").
func (q *QMF) AdmitQuery(*txn.Txn) bool {
	if q.admitFrac >= 1 {
		return true
	}
	return q.rng.Float64() < q.admitFrac
}

// AdmitUpdate implements engine.Policy: updates of drop-set items are
// skipped.
func (q *QMF) AdmitUpdate(item int) bool { return !q.dropSet[item] }

// OnSourceUpdate implements engine.Policy.
func (q *QMF) OnSourceUpdate(item int, _ float64) { q.upd[item]++ }

// BeforeQueryDispatch implements engine.Policy.
func (*QMF) BeforeQueryDispatch(*txn.Txn) bool { return true }

// OnQueryDone implements engine.Policy: accumulate the window's perceived
// freshness and miss-ratio measurements.
func (q *QMF) OnQueryDone(t *txn.Txn) {
	switch t.Outcome {
	case txn.OutcomeRejected:
		return
	case txn.OutcomeDMF:
		q.winAdmitted++
		q.winMissed++
	case txn.OutcomeSuccess, txn.OutcomeDSF:
		q.winAdmitted++
		for _, item := range t.Items {
			q.acc[item]++
			q.winAccesses++
		}
		if t.ReadFreshness >= t.FreshReq {
			q.winFreshAccess += len(t.Items)
		}
	}
}

// OnUpdateApplied implements engine.Policy.
func (*QMF) OnUpdateApplied(*txn.Txn) {}

// ControlPeriod implements engine.Policy.
func (q *QMF) ControlPeriod() float64 { return q.cfg.ControlPeriod }

// OnControlTick implements engine.Policy: the QMF feedback decision.
func (q *QMF) OnControlTick() {
	busyQ, busyU := q.e.BusyTime()
	busy := busyQ + busyU
	util := (busy - q.lastBusy) / q.cfg.ControlPeriod
	q.lastBusy = busy

	// Perceived freshness: the fraction of the window's query accesses
	// that read fresh data (Kang's access-weighted QoD metric), blended
	// with database freshness (fraction of update-receiving items that are
	// fresh) which QMF also monitors. The database term is what keeps QMF
	// from shedding cold items' updates as deeply as UNIT does.
	accessFresh := 1.0
	if q.winAccesses > 0 {
		accessFresh = float64(q.winFreshAccess) / float64(q.winAccesses)
	}
	dbFresh := 1.0
	if q.feedItems > 0 {
		dbFresh = 1 - float64(q.e.Store().StaleItems())/float64(q.feedItems)
	}
	fresh := 0.3*dbFresh + 0.7*accessFresh
	miss := 0.0
	if q.winAdmitted > 0 {
		miss = float64(q.winMissed) / float64(q.winAdmitted)
	}
	q.winAdmitted, q.winMissed, q.winAccesses, q.winFreshAccess = 0, 0, 0, 0

	if util < q.cfg.OverloadUtilization {
		// Underutilized: chase freshness first, then admit more.
		if fresh < q.cfg.TargetFreshness {
			q.dropFrac -= q.cfg.Step
		} else {
			q.admitFrac += q.cfg.Step
		}
	} else {
		// Overloaded: shed update load while freshness allows, otherwise
		// shed incoming queries.
		if fresh > q.cfg.TargetFreshness {
			q.dropFrac += q.cfg.Step
		} else {
			q.admitFrac -= q.cfg.Step
		}
	}
	// QMF's defining reflex is its miss-ratio protection: when admitted
	// transactions miss deadlines it sheds incoming queries hard "until
	// the system recovers", and only re-admits once the miss ratio is back
	// under its target. Securing admitted transactions this way is what
	// gives QMF its characteristically high rejection ratio under bursts
	// (paper §4.5) — the success ratio pays for the low miss ratio.
	if miss > q.cfg.TargetMissRatio {
		q.admitFrac *= 0.7
	} else {
		q.admitFrac += q.cfg.Step
	}
	q.clamp()
	q.ticks++
	if q.dropFrac != q.lastDropFrac || q.ticks%q.cfg.RecomputeEvery == 0 {
		q.recomputeDropSet()
		q.lastDropFrac = q.dropFrac
	}
}

func (q *QMF) clamp() {
	if q.admitFrac < 0.05 {
		q.admitFrac = 0.05
	}
	if q.admitFrac > 1 {
		q.admitFrac = 1
	}
	if q.dropFrac < 0 {
		q.dropFrac = 0
	}
	if q.dropFrac > 0.95 {
		q.dropFrac = 0.95
	}
}

// recomputeDropSet marks the dropFrac fraction of update-receiving items
// with the lowest access-per-update ratio for dropping.
func (q *QMF) recomputeDropSet() {
	type aur struct {
		item  int
		ratio float64
	}
	var items []aur
	for item, u := range q.upd {
		if u == 0 {
			continue // never updated: nothing to drop
		}
		items = append(items, aur{item: item, ratio: float64(q.acc[item]) / float64(u)})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].ratio != items[j].ratio {
			return items[i].ratio < items[j].ratio
		}
		return items[i].item < items[j].item
	})
	k := int(q.dropFrac * float64(len(items)))
	for i := range q.dropSet {
		q.dropSet[i] = false
	}
	for i := 0; i < k; i++ {
		q.dropSet[items[i].item] = true
	}
}

var _ engine.Policy = (*QMF)(nil)
