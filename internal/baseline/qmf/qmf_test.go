package qmf

import (
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/txn"
	"unitdb/internal/workload"
)

func smallTrace(t *testing.T, v workload.Volume) *workload.Workload {
	t.Helper()
	qc := workload.SmallQueryConfig()
	qc.NumQueries = 2500
	qc.Duration = 10000
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(v, workload.Uniform), 43)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestQMFEndToEnd(t *testing.T) {
	w := smallTrace(t, workload.Med)
	p := New(DefaultConfig())
	e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.Total() != len(w.Queries) {
		t.Fatalf("outcome conservation: %d != %d", r.Counts.Total(), len(w.Queries))
	}
	// QMF's defining profile (paper §4.5): a distinctly high rejection
	// ratio under overload while some queries still succeed.
	if r.RejectionRatio < 0.2 {
		t.Fatalf("QMF rejection ratio %.3f; expected its conservative shedding", r.RejectionRatio)
	}
	if r.Counts.Success == 0 {
		t.Fatal("QMF succeeded on nothing at med volume")
	}
}

func TestQMFKnobsMove(t *testing.T) {
	w := smallTrace(t, workload.Med)
	p := New(DefaultConfig())
	e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The admit fraction recovers to 1 during the trace's drain, so assert
	// on the visible effect instead: the probabilistic gate rejected a
	// substantial share of queries mid-run.
	if r.Counts.Rejected == 0 {
		t.Fatal("QMF's admission gate never engaged")
	}
}

func TestQMFAdmissionGateIsProbabilistic(t *testing.T) {
	p := New(DefaultConfig())
	w := smallTrace(t, workload.Low)
	if _, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p); err != nil {
		t.Fatal(err)
	}
	p.admitFrac = 0.5
	admits := 0
	q := txn.NewQuery(1, 0, []int{0}, 1, 10, 0.9)
	for i := 0; i < 2000; i++ {
		if p.AdmitQuery(q) {
			admits++
		}
	}
	if admits < 800 || admits > 1200 {
		t.Fatalf("admit fraction 0.5 admitted %d/2000", admits)
	}
	p.admitFrac = 1
	for i := 0; i < 100; i++ {
		if !p.AdmitQuery(q) {
			t.Fatal("full admit fraction rejected")
		}
	}
}

func TestQMFDropSetPrefersLowAUR(t *testing.T) {
	p := New(DefaultConfig())
	w := smallTrace(t, workload.Low)
	if _, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p); err != nil {
		t.Fatal(err)
	}
	// Item 0: heavily accessed per update. Item 1: never accessed.
	p.upd[0], p.acc[0] = 10, 100
	p.upd[1], p.acc[1] = 10, 0
	p.dropFrac = 0.5 // drop half of the two updated items: exactly one
	p.recomputeDropSet()
	if p.AdmitUpdate(1) {
		t.Fatal("lowest-AUR item not dropped")
	}
	if !p.AdmitUpdate(0) {
		t.Fatal("high-AUR item dropped")
	}
}

func TestQMFClamps(t *testing.T) {
	p := New(DefaultConfig())
	p.admitFrac, p.dropFrac = -5, 7
	p.clamp()
	if p.admitFrac != 0.05 || p.dropFrac != 0.95 {
		t.Fatalf("clamp: %v %v", p.admitFrac, p.dropFrac)
	}
	p.admitFrac, p.dropFrac = 7, -1
	p.clamp()
	if p.admitFrac != 1 || p.dropFrac != 0 {
		t.Fatalf("clamp: %v %v", p.admitFrac, p.dropFrac)
	}
}

func TestQMFConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.ControlPeriod != 5 || p.cfg.Step != 0.1 || p.cfg.RecomputeEvery != 1 {
		t.Fatalf("defaults: %+v", p.cfg)
	}
	if p.Name() != "QMF" {
		t.Fatal("name")
	}
	if p.AdmitFraction() != 1 || p.DropFraction() != 0 {
		t.Fatal("initial knobs")
	}
}
