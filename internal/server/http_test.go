package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestHTTPInputContract drives every request-validation error path through
// the handler and checks the status code and, where it matters, that the
// message names the offending field.
func TestHTTPInputContract(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tooMany := make([]string, MaxQueryItems+1)
	for i := range tooMany {
		tooMany[i] = strconv.Itoa(i % 16)
	}

	cases := []struct {
		name, method, path string
		wantStatus         int
		wantMsg            string
	}{
		{"missing items", "GET", "/query", http.StatusBadRequest, "items"},
		{"non-integer item", "GET", "/query?items=abc", http.StatusBadRequest, "integer"},
		{"empty element", "GET", "/query?items=1,,2", http.StatusBadRequest, "integer"},
		{"negative item", "GET", "/query?items=-3", http.StatusBadRequest, "negative"},
		{"duplicate item", "GET", "/query?items=4,1,4", http.StatusBadRequest, "duplicate"},
		{"too many items", "GET", "/query?items=" + strings.Join(tooMany, ","), http.StatusBadRequest, "too many"},
		{"bad deadline", "GET", "/query?items=1&deadline=bogus", http.StatusBadRequest, "deadline"},
		{"negative deadline", "GET", "/query?items=1&deadline=-5s", http.StatusBadRequest, "deadline"},
		{"bad work", "GET", "/query?items=1&work=bogus", http.StatusBadRequest, "work"},
		{"negative work", "GET", "/query?items=1&work=-1ms", http.StatusBadRequest, "work"},
		{"freshness above 1", "GET", "/query?items=1&freshness=2", http.StatusBadRequest, "freshness"},
		{"freshness zero", "GET", "/query?items=1&freshness=0", http.StatusBadRequest, "freshness"},
		{"freshness NaN", "GET", "/query?items=1&freshness=NaN", http.StatusBadRequest, "freshness"},
		{"POST to query", "POST", "/query?items=1", http.StatusMethodNotAllowed, "GET"},
		{"GET to update", "GET", "/update?item=1&value=1", http.StatusMethodNotAllowed, "POST"},
		{"POST to stats", "POST", "/stats", http.StatusMethodNotAllowed, "GET"},
		{"non-integer update item", "POST", "/update?item=x&value=1", http.StatusBadRequest, "item"},
		{"negative update item", "POST", "/update?item=-1&value=1", http.StatusBadRequest, "negative"},
		{"update item out of range", "POST", "/update?item=999&value=1", http.StatusBadRequest, "range"},
		{"bad update value", "POST", "/update?item=1&value=x", http.StatusBadRequest, "value"},
		{"bad update work", "POST", "/update?item=1&value=1&work=zzz", http.StatusBadRequest, "work"},
		{"negative update work", "POST", "/update?item=1&value=1&work=-2ms", http.StatusBadRequest, "work"},
		{"query ok", "GET", "/query?items=1", http.StatusOK, ""},
		{"update ok", "POST", "/update?item=1&value=1", http.StatusOK, ""},
		{"stats ok", "GET", "/stats", http.StatusOK, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
			}
			if c.wantMsg != "" {
				var body [512]byte
				n, _ := resp.Body.Read(body[:])
				if !strings.Contains(strings.ToLower(string(body[:n])), strings.ToLower(c.wantMsg)) {
					t.Fatalf("body %q does not mention %q", body[:n], c.wantMsg)
				}
			}
		})
	}
}

// TestHTTPRejectionCarriesRetryAfter: a 429 tells the client when to come
// back.
func TestHTTPRejectionCarriesRetryAfter(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close() // a closed server rejects every query

	resp, err := http.Get(ts.URL + "/query?items=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After %q, want integer seconds in [1, 30]", resp.Header.Get("Retry-After"))
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Outcome != OutcomeRejected {
		t.Fatalf("outcome %s, want rejected", out.Outcome)
	}
}

// TestHTTPCanceledStatusCode: a request whose context is already dead maps
// to the 499 client-closed-request convention.
func TestHTTPCanceledStatusCode(t *testing.T) {
	s := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/query?items=1&deadline=5s", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, statusClientClosedRequest)
	}
}

// TestStatsExposesResilienceCounters: the JSON snapshot carries the PR 2
// counters so operators can see shed/panicked/canceled/drained rates.
func TestStatsExposesResilienceCounters(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queries_shed", "queries_panicked", "queries_canceled", "queries_drained"} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
}

// TestHTTPOutcomeMappingComplete exercises the full outcome→status table
// in one place: success 200, DSF 206, rejected 429, DMF 504.
func TestHTTPOutcomeMappingComplete(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.QueryWork = func(req QueryRequest) {
			// Item 7 sentinels a slow query that blows its deadline.
			if len(req.Items) > 0 && req.Items[0] == 7 {
				time.Sleep(80 * time.Millisecond)
			}
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/query?items=1&deadline=2s"); code != http.StatusOK {
		t.Fatalf("success mapped to %d, want 200", code)
	}
	s.mu.Lock()
	s.store.DropUpdate(2)
	s.mu.Unlock()
	if code := get("/query?items=2&deadline=2s&freshness=0.9"); code != http.StatusPartialContent {
		t.Fatalf("DSF mapped to %d, want 206", code)
	}
	if code := get("/query?items=7&deadline=20ms"); code != http.StatusGatewayTimeout {
		t.Fatalf("DMF mapped to %d, want 504", code)
	}
	s.Close()
	if code := get("/query?items=1"); code != http.StatusTooManyRequests {
		t.Fatalf("rejection mapped to %d, want 429", code)
	}
}
