package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"unitdb/internal/engine"
	"unitdb/internal/obs/promtext"
)

func newTestSharded(t *testing.T, shards int, mutate ...func(*Config)) *Sharded {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumItems = 64
	cfg.Workers = shards * 2
	cfg.ControlPeriod = 20 * time.Millisecond
	cfg.GracePeriod = 50 * time.Millisecond
	cfg.MinDecisionSamples = 5
	for _, m := range mutate {
		m(&cfg)
	}
	g, err := NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// crossShardItems returns item ids guaranteed to live on at least two
// different shards.
func crossShardItems(t *testing.T, numItems, shards int) []int {
	t.Helper()
	first := engine.ShardOf(0, shards)
	for i := 1; i < numItems; i++ {
		if engine.ShardOf(i, shards) != first {
			return []int{0, i}
		}
	}
	t.Fatalf("all %d items hash to shard %d of %d", numItems, first, shards)
	return nil
}

func TestShardedQuerySucceeds(t *testing.T) {
	g := newTestSharded(t, 4)
	items := crossShardItems(t, 64, 4)
	resp := g.Query(QueryRequest{Items: items, Deadline: time.Second, Work: time.Millisecond})
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("outcome = %s", resp.Outcome)
	}
	if resp.Freshness != 1 {
		t.Fatalf("freshness = %v", resp.Freshness)
	}
	for _, it := range items {
		if _, ok := resp.Values[strconv.Itoa(it)]; !ok {
			t.Fatalf("values missing item %d: %v", it, resp.Values)
		}
	}
	if resp.Latency <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestShardedUpdateRoutesToOwner(t *testing.T) {
	g := newTestSharded(t, 4)
	for item := 0; item < 16; item++ {
		applied, err := g.Update(UpdateRequest{Item: item, Value: float64(item) + 0.5})
		if err != nil || !applied {
			t.Fatalf("update item %d: %v applied=%v", item, err, applied)
		}
		resp := g.Query(QueryRequest{Items: []int{item}, Deadline: time.Second})
		if resp.Values[strconv.Itoa(item)] != float64(item)+0.5 {
			t.Fatalf("read item %d: %v", item, resp.Values)
		}
	}
	if _, err := g.Update(UpdateRequest{Item: 64, Value: 1}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if _, err := g.Update(UpdateRequest{Item: -1, Value: 1}); err == nil {
		t.Fatal("negative update accepted")
	}
}

// TestShardedQueryIDsDisjoint: each shard assigns ids from its own band,
// so a query id identifies its shard globally.
func TestShardedQueryIDsDisjoint(t *testing.T) {
	g := newTestSharded(t, 4)
	for item := 0; item < 32; item++ {
		resp := g.Query(QueryRequest{Items: []int{item}, Deadline: time.Second})
		if resp.Query == 0 {
			t.Fatalf("item %d: no query id", item)
		}
		owner := engine.ShardOf(item, 4)
		if got := int(resp.Query >> 40); got != owner {
			t.Fatalf("item %d: query id %d encodes shard %d, owner is %d", item, resp.Query, got, owner)
		}
	}
}

// TestShardedCrossShardRejectionCountedOnce: when one touched shard
// rejects a scattered query, the front door's logical accounting tallies
// exactly one rejection, regardless of what other slices did.
func TestShardedCrossShardRejectionCountedOnce(t *testing.T) {
	g := newTestSharded(t, 2, func(c *Config) {
		c.NumItems = 64
	})
	items := crossShardItems(t, 64, 2)

	// Close the shard owning items[1]: its slice resolves as a rejection
	// while items[0]'s shard stays healthy.
	victim := engine.ShardOf(items[1], 2)
	g.shards[victim].Close()

	before := g.gate.counts()
	resp := g.Query(QueryRequest{Items: items, Deadline: time.Second})
	if resp.Outcome != OutcomeRejected {
		t.Fatalf("outcome = %s, want rejected (one slice rejected)", resp.Outcome)
	}
	after := g.gate.counts()
	if d := after.Rejected - before.Rejected; d != 1 {
		t.Fatalf("logical rejections grew by %d, want exactly 1", d)
	}
	if after.Success != before.Success {
		t.Fatal("a rejected logical query also tallied a success")
	}
	st := g.Stats()
	if st.Counts != after {
		t.Fatalf("Stats counts %+v diverge from gate tally %+v", st.Counts, after)
	}
}

// TestShardedSingleShardFastPath: a query whose items all live on one
// shard is answered by that shard alone.
func TestShardedSingleShardFastPath(t *testing.T) {
	g := newTestSharded(t, 4)
	item := 3
	owner := engine.ShardOf(item, 4)
	before := g.shards[owner].Stats().Counts.Total()
	resp := g.Query(QueryRequest{Items: []int{item}, Deadline: time.Second})
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("outcome = %s", resp.Outcome)
	}
	if got := g.shards[owner].Stats().Counts.Total(); got != before+1 {
		t.Fatalf("owner shard tallied %d outcomes, want %d", got, before+1)
	}
	for i, s := range g.shards {
		if i == owner {
			continue
		}
		if n := s.Stats().Counts.Total(); n != 0 {
			t.Fatalf("shard %d tallied %d outcomes for a foreign item", i, n)
		}
	}
}

// TestShardedStatsMerge: the merged snapshot sums the additive fields
// and carries each shard's snapshot under Shards.
func TestShardedStatsMerge(t *testing.T) {
	g := newTestSharded(t, 3)
	for item := 0; item < 12; item++ {
		if _, err := g.Update(UpdateRequest{Item: item, Value: 1}); err != nil {
			t.Fatal(err)
		}
		g.Query(QueryRequest{Items: []int{item}, Deadline: time.Second})
	}
	st := g.StatsWindow(time.Minute)
	if len(st.Shards) != 3 {
		t.Fatalf("Shards carries %d snapshots, want 3", len(st.Shards))
	}
	applied := 0
	for _, c := range st.Shards {
		applied += c.UpdatesApplied
		if len(c.Shards) != 0 {
			t.Fatal("a shard snapshot recursively carries shards")
		}
	}
	if st.UpdatesApplied != applied || applied != 12 {
		t.Fatalf("UpdatesApplied merged %d, shards sum %d, want 12", st.UpdatesApplied, applied)
	}
	if st.Counts.Total() != 12 {
		t.Fatalf("logical outcomes %d, want 12", st.Counts.Total())
	}
	if st.Window == nil || st.Window.Counts.Total() != 12 {
		t.Fatalf("window = %+v, want 12 outcomes", st.Window)
	}
}

// TestShardedMetricsShared: one registry serves every shard's series
// (shard-labeled) plus the front door's global unit_usm, and the
// exposition parses as valid Prometheus text.
func TestShardedMetricsShared(t *testing.T) {
	g := newTestSharded(t, 2)
	items := crossShardItems(t, 64, 2)
	g.Query(QueryRequest{Items: items, Deadline: time.Second})

	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if err := promtext.Write(&sb, g.Metrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`unit_queries_total{outcome="success",shard="0"}`,
		`unit_queries_total{outcome="success",shard="1"}`,
		"\nunit_usm ", // the front door's unlabeled global series
		`unit_usm{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

// TestShardedHTTPContract: the front door serves the same HTTP surface
// as a single server.
func TestShardedHTTPContract(t *testing.T) {
	g := newTestSharded(t, 2)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	items := crossShardItems(t, 64, 2)
	q := srv.URL + "/query?items=" + strconv.Itoa(items[0]) + "," + strconv.Itoa(items[1]) + "&deadline=1s"
	resp, err := http.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.Outcome != OutcomeSuccess {
		t.Fatalf("query: status %d outcome %s", resp.StatusCode, qr.Outcome)
	}
	for _, path := range []string{"/stats?window=30s", "/debug/trace?n=10", "/debug/controller?n=10", "/debug/slow?n=5", "/healthz"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, r.StatusCode)
		}
	}
}

// TestShardedCanceledPropagates: a canceled client yields a canceled
// logical outcome that never enters the gate's USM counts.
func TestShardedCanceledPropagates(t *testing.T) {
	g := newTestSharded(t, 2, func(c *Config) {
		c.Workers = 2 // one per shard; easy to occupy
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client gone before the query is presented
	items := crossShardItems(t, 64, 2)
	resp := g.QueryCtx(ctx, QueryRequest{Items: items, Deadline: time.Second, Work: 50 * time.Millisecond})
	if resp.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %s, want canceled", resp.Outcome)
	}
	c := g.gate.counts()
	if c.Total() != 0 {
		t.Fatalf("canceled query entered the USM counts: %+v", c)
	}
	if got := g.gate.canceled.Load(); got != 1 {
		t.Fatalf("canceled tally = %d, want 1", got)
	}
}
