package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// recordSleeps replaces the retry policy's sleeper with a recorder so
// tests assert backoff behavior without waiting it out.
func recordSleeps(c *Client) *[]time.Duration {
	var (
		mu    sync.Mutex
		slept []time.Duration
		orig  = c.retry
	)
	orig.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	return &slept
}

// TestClientRetries429ThenSucceeds: two rejections then a success costs
// exactly three attempts, pausing per the server's Retry-After hint.
func TestClientRetries429ThenSucceeds(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "7")
			writeJSON(w, http.StatusTooManyRequests, QueryResponse{Outcome: OutcomeRejected})
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Outcome: OutcomeSuccess, Freshness: 1})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, WithRetry(3, time.Millisecond, 42))
	slept := recordSleeps(c)
	resp, err := c.Query(QueryRequest{Items: []int{1}})
	if err != nil || resp.Outcome != OutcomeSuccess {
		t.Fatalf("query: %v outcome=%s", err, resp.Outcome)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if len(*slept) != 2 {
		t.Fatalf("backoff pauses = %d, want 2", len(*slept))
	}
	for i, d := range *slept {
		if d != 7*time.Second { // server hint overrides the jittered draw
			t.Fatalf("pause %d = %v, want 7s from Retry-After", i, d)
		}
	}
}

// TestClientRetriesExhausted: a server that always rejects burns every
// attempt and hands back the final rejection (no error — the outcome is
// the answer).
func TestClientRetriesExhausted(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		writeJSON(w, http.StatusTooManyRequests, QueryResponse{Outcome: OutcomeRejected})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, WithRetry(2, time.Millisecond, 1))
	recordSleeps(c)
	resp, err := c.Query(QueryRequest{Items: []int{1}})
	if err != nil || resp.Outcome != OutcomeRejected {
		t.Fatalf("query: %v outcome=%s", err, resp.Outcome)
	}
	if attempts != 3 { // 1 try + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

// TestClientRetriesNetworkError: a connection killed mid-request is
// retried; the second attempt lands.
func TestClientRetriesNetworkError(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // slam the door: client sees a network error
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Outcome: OutcomeSuccess, Freshness: 1})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, WithRetry(2, time.Millisecond, 9))
	recordSleeps(c)
	resp, err := c.Query(QueryRequest{Items: []int{1}})
	if err != nil || resp.Outcome != OutcomeSuccess {
		t.Fatalf("query: %v outcome=%s", err, resp.Outcome)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

// TestClientNeverRetriesUpdate: updates are non-idempotent writes; even
// with retries configured a failing update is attempted exactly once.
func TestClientNeverRetriesUpdate(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, WithRetry(5, time.Millisecond, 3))
	recordSleeps(c)
	if _, err := c.Update(UpdateRequest{Item: 1, Value: 2}); err == nil {
		t.Fatal("update against failing server returned no error")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want exactly 1 (updates must not retry)", attempts)
	}
}

// TestClientRetryBackoffDeterministic: the jittered backoff sequence is a
// pure function of the seed.
func TestClientRetryBackoffDeterministic(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		c := NewClient("http://unused", nil, WithRetry(4, 50*time.Millisecond, seed))
		var out []time.Duration
		for i := 0; i < 4; i++ {
			out = append(out, c.retry.delay(i, 0))
		}
		return out
	}
	a, b := draw(11), draw(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 50*time.Millisecond<<i {
			t.Fatalf("delay %d = %v outside [0, %v)", i, a[i], 50*time.Millisecond<<i)
		}
	}
	if c := draw(12); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced the same backoff sequence")
	}
}

// TestClientRetryHintCapped: an absurd Retry-After is clamped to the cap.
func TestClientRetryHintCapped(t *testing.T) {
	c := NewClient("http://unused", nil, WithRetry(1, time.Millisecond, 1))
	if d := c.retry.delay(0, time.Hour); d != 30*time.Second {
		t.Fatalf("delay with 1h hint = %v, want the 30s cap", d)
	}
}

// TestClientRetryCapOption: WithRetryCap lowers both the honored hint and
// the drawn backoff ceiling, regardless of option order.
func TestClientRetryCapOption(t *testing.T) {
	for _, opts := range [][]ClientOption{
		{WithRetry(3, 40*time.Millisecond, 1), WithRetryCap(50 * time.Millisecond)},
		{WithRetryCap(50 * time.Millisecond), WithRetry(3, 40*time.Millisecond, 1)},
	} {
		c := NewClient("http://unused", nil, opts...)
		if d := c.retry.delay(0, time.Hour); d != 50*time.Millisecond {
			t.Fatalf("delay with 1h hint = %v, want the 50ms cap", d)
		}
		// Attempt 3's nominal ceiling 40ms<<3 = 320ms must clamp to the cap.
		for i := 0; i < 20; i++ {
			if d := c.retry.delay(3, 0); d >= 50*time.Millisecond {
				t.Fatalf("drawn backoff %v at or above the 50ms cap", d)
			}
		}
	}
	// Without WithRetry the cap option is inert.
	c := NewClient("http://unused", nil, WithRetryCap(time.Millisecond))
	if c.retry != nil {
		t.Fatal("cap option alone created a retry policy")
	}
}

// TestClientRetryCounts: the per-client tallies expose attempts, retries
// and giveups so a retry storm's amplification factor is assertable.
func TestClientRetryCounts(t *testing.T) {
	var mu sync.Mutex
	rejections := 2
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reject := rejections > 0
		if reject {
			rejections--
		}
		mu.Unlock()
		if reject {
			writeJSON(w, http.StatusTooManyRequests, QueryResponse{Outcome: OutcomeRejected})
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Outcome: OutcomeSuccess, Freshness: 1})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, WithRetry(5, time.Millisecond, 4))
	recordSleeps(c)
	if _, err := c.Query(QueryRequest{Items: []int{1}}); err != nil {
		t.Fatal(err)
	}
	got := c.RetryCounts()
	want := RetryCounts{Attempts: 3, Retries: 2, Giveups: 0}
	if got != want {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}

	// Exhaust every retry: one more logical query, max+1 attempts, 1 giveup.
	mu.Lock()
	rejections = 1 << 30
	mu.Unlock()
	if _, err := c.Query(QueryRequest{Items: []int{1}}); err != nil {
		t.Fatal(err)
	}
	got = c.RetryCounts()
	want = RetryCounts{Attempts: 3 + 6, Retries: 2 + 5, Giveups: 1}
	if got != want {
		t.Fatalf("counts after exhaustion = %+v, want %+v", got, want)
	}
}

// TestClientDecodesRetryAfterHeader: queryOnce surfaces the server hint.
func TestClientDecodesRetryAfterHeader(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(QueryResponse{Outcome: OutcomeRejected})
	}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	_, hint, err := c.queryOnce(QueryRequest{Items: []int{1}})
	if err != nil || hint != 3*time.Second {
		t.Fatalf("hint = %v err = %v, want 3s", hint, err)
	}
}
