package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler returns the HTTP interface of the live server:
//
//	GET  /query?items=3,5&deadline=200ms&work=20ms&freshness=0.9
//	POST /update?item=3&value=1.23&work=5ms
//	GET  /stats
//	GET  /healthz
//
// Outcomes map to status codes: success 200, data-stale 206 (the result is
// returned with a staleness notice, paper §3.1), rejected 429,
// deadline-missed 504.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	items, err := parseItems(r.URL.Query().Get("items"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	deadline, err := parseDurationDefault(r.URL.Query().Get("deadline"), time.Second)
	if err != nil {
		http.Error(w, "bad deadline: "+err.Error(), http.StatusBadRequest)
		return
	}
	work, err := parseDurationDefault(r.URL.Query().Get("work"), 0)
	if err != nil {
		http.Error(w, "bad work: "+err.Error(), http.StatusBadRequest)
		return
	}
	fresh := 0.0
	if f := r.URL.Query().Get("freshness"); f != "" {
		fresh, err = strconv.ParseFloat(f, 64)
		if err != nil || fresh <= 0 || fresh > 1 {
			http.Error(w, "bad freshness", http.StatusBadRequest)
			return
		}
	}
	resp := s.Query(QueryRequest{Items: items, Deadline: deadline, Work: work, Freshness: fresh})
	code := http.StatusOK
	switch resp.Outcome {
	case OutcomeRejected:
		code = http.StatusTooManyRequests
	case OutcomeDMF:
		code = http.StatusGatewayTimeout
	case OutcomeDSF:
		code = http.StatusPartialContent
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	item, err := strconv.Atoi(r.URL.Query().Get("item"))
	if err != nil {
		http.Error(w, "bad item", http.StatusBadRequest)
		return
	}
	value, err := strconv.ParseFloat(r.URL.Query().Get("value"), 64)
	if err != nil {
		http.Error(w, "bad value", http.StatusBadRequest)
		return
	}
	work, err := parseDurationDefault(r.URL.Query().Get("work"), 0)
	if err != nil {
		http.Error(w, "bad work: "+err.Error(), http.StatusBadRequest)
		return
	}
	applied, err := s.Update(UpdateRequest{Item: item, Value: value, Work: work})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"applied": applied})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func parseItems(raw string) ([]int, error) {
	if raw == "" {
		return nil, errBadItems
	}
	parts := strings.Split(raw, ",")
	items := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, errBadItems
		}
		items = append(items, v)
	}
	return items, nil
}

var errBadItems = &badRequestError{"items must be a comma-separated list of item ids"}

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func parseDurationDefault(raw string, def time.Duration) (time.Duration, error) {
	if raw == "" {
		return def, nil
	}
	return time.ParseDuration(raw)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
