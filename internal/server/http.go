package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"unitdb/internal/obs/metrics"
	"unitdb/internal/obs/promtext"
	"unitdb/internal/obs/trace"
)

// MaxQueryItems bounds the items list a single query may name. Larger
// lists are rejected before any parsing work is spent on them.
const MaxQueryItems = 64

// statusClientClosedRequest reports a query abandoned because its client
// disconnected (nginx's 499 convention; no standard code exists). The
// response is written for symmetry only — the client is gone.
const statusClientClosedRequest = 499

// backend is the server surface the HTTP layer drives: a single live
// Server, or the sharded front door routing over several of them. Both
// share one handler, so the HTTP contract (endpoints, status codes,
// response shapes) is identical at every shard count.
type backend interface {
	QueryCtx(ctx context.Context, req QueryRequest) QueryResponse
	Update(req UpdateRequest) (bool, error)
	StatsWindow(window time.Duration) Stats
	RetryAfter() time.Duration
	Metrics() *metrics.Registry
	TraceRecorder() *trace.Recorder
	slowTop(n int) []slowEntry
}

// Handler returns the HTTP interface of the live server:
//
//	GET  /query?items=3,5&deadline=200ms&work=20ms&freshness=0.9
//	POST /update?item=3&value=1.23&work=5ms
//	GET  /stats[?window=30s]
//	GET  /metrics
//	GET  /debug/trace?n=100[&query=17]
//	GET  /debug/controller?n=50
//	GET  /debug/slow?n=10
//	GET  /healthz
//
// Outcomes map to status codes: success 200, data-stale 206 (the result is
// returned with a staleness notice, paper §3.1), rejected 429 with a
// Retry-After estimate, deadline-missed 504, canceled 499.
func (s *Server) Handler() http.Handler { return newHandler(s) }

// newHandler wires the shared HTTP surface onto one backend.
func newHandler(b backend) http.Handler {
	a := &httpAPI{b: b}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", a.handleQuery)
	mux.HandleFunc("/update", a.handleUpdate)
	mux.HandleFunc("/stats", a.handleStats)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/debug/trace", a.handleTrace)
	mux.HandleFunc("/debug/controller", a.handleController)
	mux.HandleFunc("/debug/slow", a.handleSlow)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// httpAPI carries the backend through the handler methods.
type httpAPI struct{ b backend }

func (a *httpAPI) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	items, err := parseItems(r.URL.Query().Get("items"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	deadline, err := parseDurationDefault(r.URL.Query().Get("deadline"), time.Second)
	if err != nil {
		http.Error(w, "bad deadline: "+err.Error(), http.StatusBadRequest)
		return
	}
	if deadline < 0 {
		http.Error(w, "bad deadline: must not be negative", http.StatusBadRequest)
		return
	}
	work, err := parseDurationDefault(r.URL.Query().Get("work"), 0)
	if err != nil {
		http.Error(w, "bad work: "+err.Error(), http.StatusBadRequest)
		return
	}
	if work < 0 {
		http.Error(w, "bad work: must not be negative", http.StatusBadRequest)
		return
	}
	fresh := 0.0
	if f := r.URL.Query().Get("freshness"); f != "" {
		fresh, err = strconv.ParseFloat(f, 64)
		if err != nil || math.IsNaN(fresh) || fresh <= 0 || fresh > 1 {
			http.Error(w, "bad freshness: must be in (0, 1]", http.StatusBadRequest)
			return
		}
	}
	resp := a.b.QueryCtx(r.Context(), QueryRequest{Items: items, Deadline: deadline, Work: work, Freshness: fresh})
	code := http.StatusOK
	switch resp.Outcome {
	case OutcomeRejected:
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(a.b.RetryAfter().Seconds())))
	case OutcomeDMF:
		code = http.StatusGatewayTimeout
	case OutcomeDSF:
		code = http.StatusPartialContent
	case OutcomeCanceled:
		code = statusClientClosedRequest
	}
	writeJSON(w, code, resp)
}

func (a *httpAPI) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	item, err := strconv.Atoi(r.URL.Query().Get("item"))
	if err != nil {
		http.Error(w, "bad item: must be an integer id", http.StatusBadRequest)
		return
	}
	if item < 0 {
		http.Error(w, "bad item: must not be negative", http.StatusBadRequest)
		return
	}
	value, err := strconv.ParseFloat(r.URL.Query().Get("value"), 64)
	if err != nil {
		http.Error(w, "bad value: must be a number", http.StatusBadRequest)
		return
	}
	work, err := parseDurationDefault(r.URL.Query().Get("work"), 0)
	if err != nil {
		http.Error(w, "bad work: "+err.Error(), http.StatusBadRequest)
		return
	}
	if work < 0 {
		http.Error(w, "bad work: must not be negative", http.StatusBadRequest)
		return
	}
	applied, err := a.b.Update(UpdateRequest{Item: item, Value: value, Work: work})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"applied": applied})
}

func (a *httpAPI) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	window := time.Duration(0)
	if raw := r.URL.Query().Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad window: must be a positive duration like 30s", http.StatusBadRequest)
			return
		}
		window = d
	}
	writeJSON(w, http.StatusOK, a.b.StatsWindow(window))
}

// handleMetrics serves the registry in Prometheus text exposition format
// (version 0.0.4). The scrape reads atomic snapshots only — it never takes
// the server's lock, so it stays responsive under query load.
func (a *httpAPI) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", promtext.ContentType)
	_ = promtext.Write(w, a.b.Metrics().Snapshot())
}

// parseN parses the n=K tail-length parameter of the debug endpoints;
// 0 (absent) means everything retained.
func parseN(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("n")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad n: must be a non-negative integer")
	}
	return n, nil
}

// handleTrace serves the last n query-lifecycle span events as JSON.
// n absent (or 0) returns everything buffered; n is capped at the ring
// capacity, beyond which no more events can exist. query=<id> filters to
// one query's spans — the hop a histogram-bucket exemplar links through.
func (a *httpAPI) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	n, err := parseN(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec := a.b.TraceRecorder()
	if n > rec.EventCap() {
		n = rec.EventCap()
	}
	evDropped, _ := rec.Dropped()
	if raw := r.URL.Query().Get("query"); raw != "" {
		id, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad query: must be an integer query id", http.StatusBadRequest)
			return
		}
		events := rec.EventsFor(id)
		if n > 0 && n < len(events) {
			events = events[len(events)-n:]
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"query":   id,
			"events":  events,
			"dropped": evDropped,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events":  rec.Events(n),
		"dropped": evDropped,
	})
}

// handleController serves the last n Load Balancing Controller decisions
// as JSON. n absent (or 0) returns everything buffered; n is capped at
// the decision-ring capacity.
func (a *httpAPI) handleController(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	n, err := parseN(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec := a.b.TraceRecorder()
	if n > rec.DecisionCap() {
		n = rec.DecisionCap()
	}
	_, decDropped := rec.Dropped()
	writeJSON(w, http.StatusOK, map[string]any{
		"decisions": rec.Decisions(n),
		"dropped":   decDropped,
	})
}

// handleSlow serves the n slowest resolved queries retained so far,
// slowest first, each with its latency and stage breakdown. n absent
// (or 0) returns everything retained (at most the tracker's capacity).
func (a *httpAPI) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	n, err := parseN(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	entries := a.b.slowTop(n)
	writeJSON(w, http.StatusOK, map[string]any{
		"slowest": entries,
		"count":   len(entries),
	})
}

// parseItems parses a comma-separated item-id list, enforcing the input
// contract: non-empty, at most MaxQueryItems entries, every id a
// non-negative integer, no duplicates. Range against the server's data-set
// size is checked later by Query, which knows NumItems.
func parseItems(raw string) ([]int, error) {
	if raw == "" {
		return nil, fmt.Errorf("items must be a comma-separated list of item ids")
	}
	parts := strings.Split(raw, ",")
	if len(parts) > MaxQueryItems {
		return nil, fmt.Errorf("too many items: %d exceeds the limit of %d", len(parts), MaxQueryItems)
	}
	items := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad item %q: must be an integer id", p)
		}
		if v < 0 {
			return nil, fmt.Errorf("bad item %d: must not be negative", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate item %d", v)
		}
		seen[v] = true
		items = append(items, v)
	}
	return items, nil
}

func parseDurationDefault(raw string, def time.Duration) (time.Duration, error) {
	if raw == "" {
		return def, nil
	}
	return time.ParseDuration(raw)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
