package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a typed HTTP client for the live server's API, used by the
// load-generator tool and by applications that talk to a remote unitd.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for the server at base (e.g.
// "http://localhost:8080"). httpClient may be nil for a default with a
// 30 s timeout.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Query submits a user query; the returned response carries the outcome
// regardless of the HTTP status code (206/429/504 encode DSF, rejection
// and DMF respectively).
func (c *Client) Query(req QueryRequest) (QueryResponse, error) {
	items := make([]string, len(req.Items))
	for i, it := range req.Items {
		items[i] = strconv.Itoa(it)
	}
	v := url.Values{}
	v.Set("items", strings.Join(items, ","))
	if req.Deadline > 0 {
		v.Set("deadline", req.Deadline.String())
	}
	if req.Work > 0 {
		v.Set("work", req.Work.String())
	}
	if req.Freshness > 0 {
		v.Set("freshness", strconv.FormatFloat(req.Freshness, 'g', -1, 64))
	}
	resp, err := c.http.Get(c.base + "/query?" + v.Encode())
	if err != nil {
		return QueryResponse{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusPartialContent,
		http.StatusTooManyRequests, http.StatusGatewayTimeout:
		var out QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return QueryResponse{}, fmt.Errorf("server: decode query response: %w", err)
		}
		return out, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return QueryResponse{}, fmt.Errorf("server: query failed: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
}

// Update submits an update-feed write; it reports whether the server
// applied it (false = dropped by modulation).
func (c *Client) Update(req UpdateRequest) (bool, error) {
	v := url.Values{}
	v.Set("item", strconv.Itoa(req.Item))
	v.Set("value", strconv.FormatFloat(req.Value, 'g', -1, 64))
	if req.Work > 0 {
		v.Set("work", req.Work.String())
	}
	resp, err := c.http.Post(c.base+"/update?"+v.Encode(), "", nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("server: update failed: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Applied bool `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, fmt.Errorf("server: decode update response: %w", err)
	}
	return out.Applied, nil
}

// Stats fetches the server's accounting snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.http.Get(c.base + "/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("server: stats failed: %s", resp.Status)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Stats{}, fmt.Errorf("server: decode stats: %w", err)
	}
	return out, nil
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
