package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unitdb/internal/stats"
)

// Client is a typed HTTP client for the live server's API, used by the
// load-generator tool and by applications that talk to a remote unitd.
//
// With WithRetry, Query transparently retries transient failures —
// network errors and 429 rejections (honoring the server's Retry-After
// hint). Update is a non-idempotent write and is NEVER retried: a retry
// after an ambiguous network failure could apply the same feed delivery
// twice.
type Client struct {
	base     string
	http     *http.Client
	retry    *retryPolicy  // nil = no retries
	retryCap time.Duration // WithRetryCap ceiling; 0 = the 30 s default

	// Retry accounting for Query calls (lock-free; Update is excluded).
	attempts atomic.Int64 // HTTP attempts, first tries included
	retries  atomic.Int64 // attempts beyond the first per Query call
	giveups  atomic.Int64 // Query calls that exhausted every retry still failing
}

// RetryCounts is a snapshot of a client's Query retry accounting: the
// amplification a retry policy inflicted on the server is
// Attempts / (Attempts - Retries), and Giveups counts the users who
// walked away unanswered.
type RetryCounts struct {
	Attempts int64
	Retries  int64
	Giveups  int64
}

// RetryCounts returns a snapshot of the client's retry accounting.
func (c *Client) RetryCounts() RetryCounts {
	return RetryCounts{
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
		Giveups:  c.giveups.Load(),
	}
}

// retryPolicy is seeded exponential backoff with full jitter.
type retryPolicy struct {
	max   int           // retry attempts after the first try
	base  time.Duration // first backoff ceiling; doubles per attempt
	cap   time.Duration // backoff ceiling
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *stats.RNG // guarded by mu
}

// delay draws the pause before retry attempt n (0-based). A positive
// server hint (Retry-After) overrides the jittered draw.
func (p *retryPolicy) delay(n int, hint time.Duration) time.Duration {
	if hint > 0 {
		if hint > p.cap {
			hint = p.cap
		}
		return hint
	}
	ceil := p.base << n
	if ceil > p.cap || ceil <= 0 {
		ceil = p.cap
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.rng.Float64() * float64(ceil))
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetry makes Query retry up to maxRetries times on network errors
// and 429 rejections, sleeping a seeded exponentially-growing jittered
// backoff (starting at baseDelay, capped at 30 s unless WithRetryCap
// lowers it) between attempts; a Retry-After hint from the server takes
// precedence over the drawn delay but never exceeds the same cap. The
// seed makes a client's backoff sequence reproducible. Update is never
// retried regardless of this option.
func WithRetry(maxRetries int, baseDelay time.Duration, seed uint64) ClientOption {
	return func(c *Client) {
		if maxRetries <= 0 {
			c.retry = nil
			return
		}
		if baseDelay <= 0 {
			baseDelay = 100 * time.Millisecond
		}
		c.retry = &retryPolicy{
			max:   maxRetries,
			base:  baseDelay,
			cap:   30 * time.Second,
			sleep: time.Sleep,
			rng:   stats.NewRNG(seed),
		}
	}
}

// WithRetryCap caps both the honored Retry-After hint and the drawn
// backoff at ceiling, overriding the 30 s default — a misbehaving (or
// merely conservative) server hint can then never stall a retry loop for
// longer than the client is willing to wait. Order-independent with
// WithRetry.
func WithRetryCap(ceiling time.Duration) ClientOption {
	return func(c *Client) {
		c.retryCap = ceiling
	}
}

// NewClient creates a client for the server at base (e.g.
// "http://localhost:8080"). httpClient may be nil for a default with a
// 30 s timeout.
func NewClient(base string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Client{base: strings.TrimRight(base, "/"), http: httpClient}
	for _, opt := range opts {
		opt(c)
	}
	if c.retry != nil && c.retryCap > 0 {
		c.retry.cap = c.retryCap
	}
	return c
}

// Query submits a user query; the returned response carries the outcome
// regardless of the HTTP status code (206/429/504 encode DSF, rejection
// and DMF respectively). Queries are idempotent reads, so with WithRetry
// a network error or a 429 rejection is retried after a backoff pause.
func (c *Client) Query(req QueryRequest) (QueryResponse, error) {
	attempts := 1
	if c.retry != nil {
		attempts += c.retry.max
	}
	var (
		out     QueryResponse
		lastErr error
	)
	for attempt := 0; attempt < attempts; attempt++ {
		var hint time.Duration
		c.attempts.Add(1)
		if attempt > 0 {
			c.retries.Add(1)
		}
		out, hint, lastErr = c.queryOnce(req)
		retryable := lastErr != nil || out.Outcome == OutcomeRejected
		if !retryable {
			break
		}
		if attempt == attempts-1 {
			if c.retry != nil {
				c.giveups.Add(1)
			}
			break
		}
		c.retry.sleep(c.retry.delay(attempt, hint))
	}
	return out, lastErr
}

// queryOnce performs a single query attempt. hint carries the server's
// Retry-After on a 429, 0 otherwise; a non-nil error means the attempt
// never produced an outcome (network failure, malformed response).
func (c *Client) queryOnce(req QueryRequest) (QueryResponse, time.Duration, error) {
	items := make([]string, len(req.Items))
	for i, it := range req.Items {
		items[i] = strconv.Itoa(it)
	}
	v := url.Values{}
	v.Set("items", strings.Join(items, ","))
	if req.Deadline > 0 {
		v.Set("deadline", req.Deadline.String())
	}
	if req.Work > 0 {
		v.Set("work", req.Work.String())
	}
	if req.Freshness > 0 {
		v.Set("freshness", strconv.FormatFloat(req.Freshness, 'g', -1, 64))
	}
	resp, err := c.http.Get(c.base + "/query?" + v.Encode())
	if err != nil {
		return QueryResponse{}, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusPartialContent,
		http.StatusTooManyRequests, http.StatusGatewayTimeout:
		var out QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return QueryResponse{}, 0, fmt.Errorf("server: decode query response: %w", err)
		}
		var hint time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			hint = time.Duration(secs) * time.Second
		}
		return out, hint, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return QueryResponse{}, 0, fmt.Errorf("server: query failed: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
}

// Update submits an update-feed write; it reports whether the server
// applied it (false = dropped by modulation). Updates are not idempotent
// and are never retried, even under WithRetry: after an ambiguous failure
// a retry could deliver the same write twice.
func (c *Client) Update(req UpdateRequest) (bool, error) {
	v := url.Values{}
	v.Set("item", strconv.Itoa(req.Item))
	v.Set("value", strconv.FormatFloat(req.Value, 'g', -1, 64))
	if req.Work > 0 {
		v.Set("work", req.Work.String())
	}
	resp, err := c.http.Post(c.base+"/update?"+v.Encode(), "", nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("server: update failed: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Applied bool `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, fmt.Errorf("server: decode update response: %w", err)
	}
	return out.Applied, nil
}

// Stats fetches the server's accounting snapshot.
func (c *Client) Stats() (Stats, error) {
	return c.stats("")
}

// StatsWindow fetches the snapshot with the windowed USM over the given
// trailing horizon (GET /stats?window=...).
func (c *Client) StatsWindow(window time.Duration) (Stats, error) {
	if window <= 0 {
		return c.stats("")
	}
	return c.stats("?window=" + url.QueryEscape(window.String()))
}

func (c *Client) stats(query string) (Stats, error) {
	resp, err := c.http.Get(c.base + "/stats" + query)
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Stats{}, fmt.Errorf("server: stats failed: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Stats{}, fmt.Errorf("server: decode stats: %w", err)
	}
	return out, nil
}

// Metrics fetches the raw Prometheus text exposition from GET /metrics.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server: metrics failed: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("server: read metrics: %w", err)
	}
	return string(body), nil
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
