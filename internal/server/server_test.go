package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unitdb/internal/core/usm"
)

func newTestServer(t *testing.T, mutate ...func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumItems = 16
	cfg.Workers = 2
	cfg.ControlPeriod = 20 * time.Millisecond
	cfg.GracePeriod = 50 * time.Millisecond
	cfg.MinDecisionSamples = 5
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestQuerySucceeds(t *testing.T) {
	s := newTestServer(t)
	resp := s.Query(QueryRequest{Items: []int{3}, Deadline: time.Second, Work: time.Millisecond})
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("outcome = %s", resp.Outcome)
	}
	if resp.Freshness != 1 {
		t.Fatalf("freshness = %v", resp.Freshness)
	}
	if _, ok := resp.Values["3"]; !ok {
		t.Fatalf("values = %v", resp.Values)
	}
	if resp.Latency <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestUpdateThenQueryReadsValue(t *testing.T) {
	s := newTestServer(t)
	applied, err := s.Update(UpdateRequest{Item: 5, Value: 42.5})
	if err != nil || !applied {
		t.Fatalf("update: %v applied=%v", err, applied)
	}
	resp := s.Query(QueryRequest{Items: []int{5}, Deadline: time.Second})
	if resp.Values["5"] != 42.5 {
		t.Fatalf("read %v, want 42.5", resp.Values["5"])
	}
}

func TestQueryDeadlineMiss(t *testing.T) {
	s := newTestServer(t)
	// Saturate both workers with slow queries, then submit one whose
	// deadline cannot survive the queueing.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Query(QueryRequest{Items: []int{0}, Deadline: 2 * time.Second, Work: 300 * time.Millisecond})
		}()
	}
	time.Sleep(30 * time.Millisecond) // let them start executing
	resp := s.Query(QueryRequest{Items: []int{1}, Deadline: 60 * time.Millisecond, Work: 10 * time.Millisecond})
	wg.Wait()
	if resp.Outcome == OutcomeSuccess {
		t.Fatalf("query with impossible deadline succeeded")
	}
}

func TestBadItemRejected(t *testing.T) {
	s := newTestServer(t)
	resp := s.Query(QueryRequest{Items: []int{999}, Deadline: time.Second})
	if resp.Outcome != OutcomeRejected {
		t.Fatalf("out-of-range item gave %s", resp.Outcome)
	}
	if _, err := s.Update(UpdateRequest{Item: -1}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 5; i++ {
		s.Query(QueryRequest{Items: []int{i}, Deadline: time.Second, Work: time.Millisecond})
	}
	st := s.Stats()
	if st.Counts.Total() != 5 {
		t.Fatalf("stats counted %d queries", st.Counts.Total())
	}
	if st.USM <= 0 {
		t.Fatalf("USM = %v", st.USM)
	}
	if st.CFlex <= 0 {
		t.Fatal("cflex not exposed")
	}
}

func TestCloseIsIdempotentAndFailsQueries(t *testing.T) {
	s := newTestServer(t)
	s.Close()
	s.Close()
	resp := s.Query(QueryRequest{Items: []int{0}, Deadline: time.Second})
	if resp.Outcome != OutcomeRejected {
		t.Fatalf("query after close gave %s", resp.Outcome)
	}
	if _, err := s.Update(UpdateRequest{Item: 0}); err == nil {
		t.Fatal("update after close accepted")
	}
}

func TestConcurrentTraffic(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 4 })
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if c%2 == 0 {
					s.Query(QueryRequest{Items: []int{i % 16}, Deadline: 200 * time.Millisecond, Work: time.Millisecond})
				} else {
					s.Update(UpdateRequest{Item: i % 16, Value: float64(i)})
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.Counts.Total() != 100 {
		t.Fatalf("query outcomes = %d, want 100", st.Counts.Total())
	}
	if st.UpdatesApplied+st.UpdatesDropped != 100 {
		t.Fatalf("update outcomes = %d, want 100", st.UpdatesApplied+st.UpdatesDropped)
	}
}

func TestDefaultFreshnessApplied(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.DefaultFreshness = 0.5 })
	// Make item 0 stale by one dropped update: freshness 0.5 passes a 0.5
	// requirement but fails the usual 0.9.
	s.mu.Lock()
	s.store.DropUpdate(0)
	s.mu.Unlock()
	resp := s.Query(QueryRequest{Items: []int{0}, Deadline: time.Second})
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("0.5 freshness against 0.5 default gave %s", resp.Outcome)
	}
	resp = s.Query(QueryRequest{Items: []int{0}, Deadline: time.Second, Freshness: 0.9})
	if resp.Outcome != OutcomeDSF {
		t.Fatalf("0.5 freshness against 0.9 requirement gave %s", resp.Outcome)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NumItems: 0}); err == nil {
		t.Fatal("zero items accepted")
	}
	if _, err := New(Config{NumItems: 4, Weights: usm.Weights{Cr: -1}}); err == nil {
		t.Fatal("bad weights accepted")
	}
}

// --- HTTP layer ---

func TestHTTPQueryAndUpdate(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/update?item=2&value=7.5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}

	qr, err := http.Get(ts.URL + "/query?items=2&deadline=500ms&freshness=0.9")
	if err != nil {
		t.Fatal(err)
	}
	defer qr.Body.Close()
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", qr.StatusCode)
	}
	var out QueryResponse
	if err := json.NewDecoder(qr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Outcome != OutcomeSuccess || out.Values["2"] != 7.5 {
		t.Fatalf("response %+v", out)
	}
}

func TestHTTPValidation(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/query", http.StatusBadRequest},
		{"GET", "/query?items=abc", http.StatusBadRequest},
		{"GET", "/query?items=1&deadline=bogus", http.StatusBadRequest},
		{"GET", "/query?items=1&work=bogus", http.StatusBadRequest},
		{"GET", "/query?items=1&freshness=2", http.StatusBadRequest},
		{"GET", "/update?item=1&value=1", http.StatusMethodNotAllowed},
		{"POST", "/update?item=x&value=1", http.StatusBadRequest},
		{"POST", "/update?item=1&value=x", http.StatusBadRequest},
		{"POST", "/update?item=999&value=1", http.StatusBadRequest},
		{"GET", "/healthz", http.StatusOK},
		{"GET", "/stats", http.StatusOK},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
}

func TestHTTPOutcomeStatusCodes(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Make item 0 stale: DSF maps to 206.
	s.mu.Lock()
	s.store.DropUpdate(0)
	s.mu.Unlock()
	resp, err := http.Get(ts.URL + "/query?items=0&deadline=500ms&freshness=0.9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("DSF mapped to %d", resp.StatusCode)
	}
}

func TestStatsJSONShape(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"usm", "cflex", "queue_length", "updates_applied"} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
}

func TestOverloadProducesRejections(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.MaxQueue = 8
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[Outcome]int{}
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := s.Query(QueryRequest{
				Items:    []int{i % 16},
				Deadline: 150 * time.Millisecond,
				Work:     30 * time.Millisecond,
			})
			mu.Lock()
			got[r.Outcome]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if got[OutcomeRejected] == 0 && got[OutcomeDMF] == 0 {
		t.Fatalf("no overload response at all: %v", got)
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 60 {
		t.Fatalf("outcomes = %d, want 60 (%v)", total, got)
	}
}

func TestParseItems(t *testing.T) {
	items, err := parseItems("1, 2,3")
	if err != nil || len(items) != 3 || items[2] != 3 {
		t.Fatalf("parseItems: %v %v", items, err)
	}
	for _, bad := range []string{"", "a", "1,,2"} {
		if _, err := parseItems(bad); err == nil {
			t.Errorf("parseItems(%q) accepted", bad)
		}
	}
	if _, err := parseItems(""); err == nil || !strings.Contains(err.Error(), "items") {
		t.Fatalf("error message: %v", err)
	}
}
