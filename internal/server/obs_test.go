// Observability-surface tests: the /metrics exposition stays valid and
// lock-free under concurrent query load, the debug endpoints serve the
// trace and decision logs, and the stats snapshot honors its deep-copy
// and windowed-USM contracts.
package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"unitdb/internal/obs/promtext"
)

// TestMetricsEndpointWellFormed: a freshly booted server already serves a
// lintable exposition carrying every mandatory family.
func TestMetricsEndpointWellFormed(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != promtext.ContentType {
		t.Errorf("Content-Type = %q, want %q", got, promtext.ContentType)
	}
	families, err := promtext.Lint(resp.Body)
	if err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	for _, want := range []string{
		"unit_queries_total", "unit_query_latency_seconds", "unit_usm_window",
		"unit_usm", "unit_admission_cflex", "unit_queue_length",
		"unit_lbc_decisions_total", "unit_lbc_actions_total",
	} {
		if families[want] == 0 {
			t.Errorf("exposition is missing family %s", want)
		}
	}
}

// TestMetricsCountQueries: resolved queries show up in the outcome
// counters and the latency histogram.
func TestMetricsCountQueries(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 5; i++ {
		s.Query(QueryRequest{Items: []int{i % 4}, Deadline: time.Second})
	}
	body := scrape(t, s)
	if !strings.Contains(body, `unit_queries_total{outcome="success"} 5`) {
		t.Errorf("success counter missing or wrong:\n%s", grepFamily(body, "unit_queries_total"))
	}
	if !strings.Contains(body, "unit_query_latency_seconds_count 5") {
		t.Errorf("latency histogram count missing or wrong:\n%s", grepFamily(body, "unit_query_latency_seconds_count"))
	}
}

// TestMetricsUnderConcurrentLoad hammers /query, /update and /metrics
// together; under -race this proves the scrape path shares no unguarded
// state with the hot path, and every intermediate exposition must lint.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 4 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients   = 4
		perClient = 25
		scrapes   = 20
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(ts.URL + "/query?items=" + string(rune('0'+(c+i)%4)) + "&deadline=500ms")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if i%3 == 0 {
					resp, err := http.Post(ts.URL+"/update?item=1&value=2.5", "", nil)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
			if _, err := promtext.Lint(resp.Body); err != nil {
				t.Errorf("scrape %d failed lint: %v", i, err)
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()

	// The final exposition accounts for every query exactly once.
	body := scrape(t, s)
	var total int
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "unit_queries_total{") {
			fields := strings.Fields(line)
			n, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			total += n
		}
	}
	if want := clients * perClient; total != want {
		t.Errorf("outcome counters sum to %d, want %d queries", total, want)
	}
}

// TestDebugEndpoints: the trace and controller logs are served as JSON and
// reflect the traffic.
func TestDebugEndpoints(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Query(QueryRequest{Items: []int{1}, Deadline: time.Second})

	var tr struct {
		Events []struct {
			Kind  string `json:"kind"`
			Query int64  `json:"query"`
		} `json:"events"`
	}
	getJSON(t, ts.URL+"/debug/trace?n=100", &tr)
	kinds := map[string]bool{}
	for _, ev := range tr.Events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"arrive", "admit", "queue", "execute", "outcome"} {
		if !kinds[want] {
			t.Errorf("trace is missing a %q span for the resolved query; got %v", want, kinds)
		}
	}

	var ctl struct {
		Decisions []json.RawMessage `json:"decisions"`
	}
	getJSON(t, ts.URL+"/debug/controller?n=10", &ctl)
	// No decision need have fired yet; the endpoint must still answer.

	for _, path := range []string{"/debug/trace?n=-1", "/debug/trace?n=x", "/debug/controller?n=-1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "bad n") {
			t.Errorf("GET %s error %q does not name the field", path, string(body))
		}
	}
}

// TestStatsWindow: the windowed USM covers recent outcomes, ignores old
// ones, and bad window values fail with a named-field 400.
func TestStatsWindow(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.Query(QueryRequest{Items: []int{1}, Deadline: time.Second})
	s.Query(QueryRequest{Items: []int{2}, Deadline: time.Second})

	var st Stats
	getJSON(t, ts.URL+"/stats?window=10s", &st)
	if st.Window == nil {
		t.Fatal("windowed stats carry no window block")
	}
	if st.Window.Seconds != 10 {
		t.Errorf("window.seconds = %v, want 10", st.Window.Seconds)
	}
	if st.Window.Covered > 10 || st.Window.Covered <= 0 {
		t.Errorf("window.covered_seconds = %v, want in (0, 10] (uptime-truncated)", st.Window.Covered)
	}
	if got := st.Window.Counts.Total(); got != 2 {
		t.Errorf("window counts %d outcomes, want 2", got)
	}

	// A microscopic window excludes the past outcomes.
	time.Sleep(5 * time.Millisecond)
	getJSON(t, ts.URL+"/stats?window=1ms", &st)
	if got := st.Window.Counts.Total(); got != 0 {
		t.Errorf("1ms window counts %d outcomes, want 0", got)
	}

	// Plain /stats has no window block but does carry the retry hint.
	var plain Stats
	getJSON(t, ts.URL+"/stats", &plain)
	if plain.Window != nil {
		t.Error("plain /stats grew a window block")
	}
	if plain.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %v, want >= 1 (the clamp floor)", plain.RetryAfterSeconds)
	}

	for _, raw := range []string{"nope", "-5s", "0s"} {
		resp, err := http.Get(ts.URL + "/stats?window=" + raw)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("window=%q = %d, want 400", raw, resp.StatusCode)
		}
		if !strings.Contains(string(body), "bad window") {
			t.Errorf("window=%q error %q does not name the field", raw, string(body))
		}
	}
}

// TestStatsContentTypeAndDeepCopy: /stats declares JSON, and mutating a
// snapshot's signal map never reaches the server.
func TestStatsContentTypeAndDeepCopy(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("/stats Content-Type = %q, want application/json", got)
	}

	st := s.Stats()
	if st.LBCSignals == nil {
		t.Fatal("snapshot's signal map is nil; want an (empty) copy")
	}
	st.LBCSignals["tighten_ac"] = 99
	if got := s.Stats().LBCSignals["tighten_ac"]; got != 0 {
		t.Errorf("mutating a snapshot leaked into the server: tighten_ac = %d", got)
	}
}

// TestControllerDecisionLog: sustained rejections force LBC decisions;
// the decision log, the signal counters and the action metrics agree.
func TestControllerDecisionLog(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Weights.Cfm = 0.5
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var st Stats
		// Work longer than the deadline: every query misses, so every
		// decision window carries failures and must fire a signal.
		for i := 0; i < 30; i++ {
			s.Query(QueryRequest{Items: []int{i % 8}, Work: 20 * time.Millisecond, Deadline: 5 * time.Millisecond})
		}
		st = s.Stats()
		if st.LBCDecisions > 0 {
			decs := s.TraceRecorder().Decisions(0)
			// The control loop keeps ticking, so the log may have grown
			// past the snapshot — never shrunk below it.
			if len(decs) < st.LBCDecisions {
				t.Fatalf("decision log has %d entries, stats count %d", len(decs), st.LBCDecisions)
			}
			d := decs[len(decs)-1]
			if d.Samples <= 0 {
				t.Errorf("decision logged %d samples, want > 0", d.Samples)
			}
			if d.Action == "" {
				t.Error("decision logged an empty action")
			}
			var signals int
			for _, n := range st.LBCSignals {
				signals += n
			}
			if signals == 0 {
				t.Error("decisions fired but no control signal was tallied")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Skip("no LBC decision fired within the time budget on this machine")
}

// scrape renders the server's registry exactly as /metrics would.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	var b strings.Builder
	if err := promtext.Write(&b, s.Metrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// grepFamily filters an exposition down to the lines of one family, for
// error messages.
func grepFamily(body, family string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, family) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
