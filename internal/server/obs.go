package server

import (
	"time"

	"unitdb/internal/obs/metrics"
	"unitdb/internal/obs/trace"
	"unitdb/internal/txn"
)

// latency histogram layout: 50 equal buckets over [0, 2.5s) — queries
// default to 1 s deadlines, so the range covers the deadline plus the
// retry-relevant tail; slower outliers land in the overflow (+Inf)
// bucket.
const (
	latencyLo      = 0
	latencyHi      = 2.5
	latencyBuckets = 50
)

// serverObs bundles the server's observability surface: the metrics
// registry with pre-registered handles (so the hot path is a single
// atomic per event, never a map lookup) and the wall-time trace
// recorder behind /debug/trace and /debug/controller. All fields are
// set in newServerObs before the Server escapes and are immutable
// afterwards; the handles themselves are internally synchronized.
type serverObs struct {
	reg *metrics.Registry
	rec *trace.Recorder

	outcomes  map[Outcome]*metrics.Counter
	shed      *metrics.Counter
	panicked  *metrics.Counter
	drained   *metrics.Counter
	updates   map[bool]*metrics.Counter // keyed by applied
	latency   *metrics.Histogram
	usmWindow *metrics.Gauge
	usmTotal  *metrics.Gauge
	cflex     *metrics.Gauge
	queueLen  *metrics.Gauge
	backlog   *metrics.Gauge
	degraded  *metrics.Gauge
	staleness *metrics.Gauge
	decisions *metrics.Counter
	actions   map[string]*metrics.Counter
}

// lbcActionLabels are the exposition labels of the four Fig. 2 control
// signals.
var lbcActionLabels = []string{"loosen_ac", "tighten_ac", "degrade_update", "upgrade_update"}

// newServerObs builds the observability surface. rec is the span-event
// recorder to use — Config.Trace when a harness injects its own, nil for
// a fresh internal ring of traceCap events.
func newServerObs(traceCap int, rec *trace.Recorder) *serverObs {
	reg := metrics.NewRegistry()
	if rec == nil {
		rec = trace.New(traceCap, 0)
	}
	o := &serverObs{
		reg:      reg,
		rec:      rec,
		outcomes: make(map[Outcome]*metrics.Counter),
		updates:  make(map[bool]*metrics.Counter),
		actions:  make(map[string]*metrics.Counter),
	}
	for _, out := range []Outcome{OutcomeSuccess, OutcomeRejected, OutcomeDMF, OutcomeDSF, OutcomeCanceled} {
		o.outcomes[out] = reg.Counter("unit_queries_total",
			"Resolved user queries by terminal outcome.",
			metrics.Label{Key: "outcome", Value: string(out)})
	}
	o.shed = reg.Counter("unit_queries_shed_total",
		"Queries rejected by the MaxQueue overload backstop.")
	o.panicked = reg.Counter("unit_work_panics_total",
		"Query or refresh computations that panicked (contained; the pool never shrinks).")
	o.drained = reg.Counter("unit_queries_drained_total",
		"Queued queries resolved as rejections during graceful shutdown.")
	o.updates[true] = reg.Counter("unit_updates_total",
		"Update-feed writes by fate.", metrics.Label{Key: "result", Value: "applied"})
	o.updates[false] = reg.Counter("unit_updates_total",
		"Update-feed writes by fate.", metrics.Label{Key: "result", Value: "dropped"})
	o.latency = reg.Histogram("unit_query_latency_seconds",
		"Wall-clock latency of resolved queries, all outcomes.",
		latencyLo, latencyHi, latencyBuckets)
	o.usmWindow = reg.Gauge("unit_usm_window",
		"User Satisfaction Metric over the current control window (Eq. 5).")
	o.usmTotal = reg.Gauge("unit_usm",
		"Cumulative User Satisfaction Metric since start (Eq. 5).")
	o.cflex = reg.Gauge("unit_admission_cflex",
		"Admission control's flexibility coefficient C_flex (paper §3.3).")
	o.queueLen = reg.Gauge("unit_queue_length",
		"Queries waiting in the EDF ready queue.")
	o.backlog = reg.Gauge("unit_backlog_seconds",
		"Declared work queued ahead of a new arrival, seconds.")
	o.degraded = reg.Gauge("unit_degraded_items",
		"Items whose update period the modulator has degraded (paper §3.4).")
	o.staleness = reg.Gauge("unit_stale_items",
		"Items whose stored copy lags its source feed.")
	o.decisions = reg.Counter("unit_lbc_decisions_total",
		"Load Balancing Controller allocation decisions (paper Fig. 2).")
	for _, a := range lbcActionLabels {
		o.actions[a] = reg.Counter("unit_lbc_actions_total",
			"Control signals fired by LBC decisions.",
			metrics.Label{Key: "action", Value: a})
	}
	return o
}

// observeQuery tallies one resolved query into the registry. It runs
// lock-free (pure atomics) after s.mu is released, so the metrics hot
// path never blocks a worker or another client.
func (o *serverObs) observeQuery(resp QueryResponse) {
	if c := o.outcomes[resp.Outcome]; c != nil {
		c.Inc()
	}
	o.latency.Observe(resp.Latency.Seconds())
}

// recordActions tallies one decision's control signals.
func (o *serverObs) recordActions(loosen, tighten, degrade, upgrade bool) {
	o.decisions.Inc()
	if loosen {
		o.actions["loosen_ac"].Inc()
	}
	if tighten {
		o.actions["tighten_ac"].Inc()
	}
	if degrade {
		o.actions["degrade_update"].Inc()
	}
	if upgrade {
		o.actions["upgrade_update"].Inc()
	}
}

// outcomeStamp is one finalized outcome with its wall time, feeding the
// windowed USM of GET /stats?window=.
type outcomeStamp struct {
	at time.Time
	o  txn.Outcome
}

// winLogCap bounds the windowed-USM history: at 32k outcomes a sustained
// 1k queries/s load still covers a ~30 s window exactly; beyond that the
// window silently truncates to the retained history (the JSON response
// reports the effective horizon).
const winLogCap = 1 << 15
