package server

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"unitdb/internal/obs/metrics"
	"unitdb/internal/obs/trace"
	"unitdb/internal/txn"
	"unitdb/internal/version"
)

// latency histogram layout: 50 equal buckets over [0, 2.5s) — queries
// default to 1 s deadlines, so the range covers the deadline plus the
// retry-relevant tail; slower outliers land in the overflow (+Inf)
// bucket.
const (
	latencyLo      = 0
	latencyHi      = 2.5
	latencyBuckets = 50
)

// serverObs bundles the server's observability surface: the metrics
// registry with pre-registered handles (so the hot path is a single
// atomic per event, never a map lookup) and the wall-time trace
// recorder behind /debug/trace and /debug/controller. All fields are
// set in newServerObs before the Server escapes and are immutable
// afterwards; the handles themselves are internally synchronized.
type serverObs struct {
	reg *metrics.Registry
	rec *trace.Recorder

	outcomes  map[Outcome]*metrics.Counter
	shed      *metrics.Counter
	panicked  *metrics.Counter
	drained   *metrics.Counter
	updates   map[bool]*metrics.Counter // keyed by applied
	latency   *metrics.Histogram
	stages    map[string]*metrics.Histogram // keyed by stage label
	slow      *slowTracker
	usmWindow *metrics.Gauge
	usmTotal  *metrics.Gauge
	cflex     *metrics.Gauge
	queueLen  *metrics.Gauge
	backlog   *metrics.Gauge
	degraded  *metrics.Gauge
	staleness *metrics.Gauge
	decisions *metrics.Counter
	actions   map[string]*metrics.Counter
}

// lbcActionLabels are the exposition labels of the four Fig. 2 control
// signals.
var lbcActionLabels = []string{"loosen_ac", "tighten_ac", "degrade_update", "upgrade_update"}

// stageLabels are the exposition labels of the latency-attribution
// stages, matching the trace.StageBreakdown fields. The live server has
// no lock manager and never restarts an attempt, so lock_wait and
// overhead stay at zero — the series exist anyway so dashboards keep one
// shape across the simulator and the live server, and so per-stage
// counts reconcile with the outcome counters (every resolved query
// observes every stage, zeros included).
var stageLabels = []string{"queue_wait", "lock_wait", "exec", "overhead"}

// slowCap bounds the /debug/slow top-N tracker.
const slowCap = 64

// newServerObs builds the observability surface. reg is the registry to
// register into — a shared registry when the server is one shard behind
// the front door, nil for a fresh private one. rec is the span-event
// recorder to use — Config.Trace when a harness injects its own (or the
// front door's shared ring), nil for a fresh internal ring of traceCap
// events. extra labels (e.g. shard="3") are appended to every series the
// surface registers, so shards share one registry without colliding
// while the family names stay identical to the single-server layout.
func newServerObs(reg *metrics.Registry, traceCap int, rec *trace.Recorder, extra ...metrics.Label) *serverObs {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if rec == nil {
		rec = trace.New(traceCap, 0)
	}
	lab := func(ls ...metrics.Label) []metrics.Label {
		out := make([]metrics.Label, 0, len(ls)+len(extra))
		out = append(out, ls...)
		return append(out, extra...)
	}
	o := &serverObs{
		reg:      reg,
		rec:      rec,
		outcomes: make(map[Outcome]*metrics.Counter),
		updates:  make(map[bool]*metrics.Counter),
		stages:   make(map[string]*metrics.Histogram),
		slow:     newSlowTracker(slowCap),
		actions:  make(map[string]*metrics.Counter),
	}
	for _, out := range []Outcome{OutcomeSuccess, OutcomeRejected, OutcomeDMF, OutcomeDSF, OutcomeCanceled} {
		o.outcomes[out] = reg.Counter("unit_queries_total",
			"Resolved user queries by terminal outcome.",
			lab(metrics.Label{Key: "outcome", Value: string(out)})...)
	}
	o.shed = reg.Counter("unit_queries_shed_total",
		"Queries rejected by the MaxQueue overload backstop.", lab()...)
	o.panicked = reg.Counter("unit_work_panics_total",
		"Query or refresh computations that panicked (contained; the pool never shrinks).", lab()...)
	o.drained = reg.Counter("unit_queries_drained_total",
		"Queued queries resolved as rejections during graceful shutdown.", lab()...)
	o.updates[true] = reg.Counter("unit_updates_total",
		"Update-feed writes by fate.", lab(metrics.Label{Key: "result", Value: "applied"})...)
	o.updates[false] = reg.Counter("unit_updates_total",
		"Update-feed writes by fate.", lab(metrics.Label{Key: "result", Value: "dropped"})...)
	o.latency = reg.Histogram("unit_query_latency_seconds",
		"Wall-clock latency of resolved queries, all outcomes.",
		latencyLo, latencyHi, latencyBuckets, lab()...)
	for _, st := range stageLabels {
		o.stages[st] = reg.Histogram("unit_query_stage_seconds",
			"Wall-clock time resolved queries spent per pipeline stage; bucket exemplars carry the last query id observed.",
			latencyLo, latencyHi, latencyBuckets,
			lab(metrics.Label{Key: "stage", Value: st})...)
	}
	reg.Gauge("unit_build_info",
		"Build metadata; the value is always 1.",
		lab(metrics.Label{Key: "goversion", Value: runtime.Version()},
			metrics.Label{Key: "version", Value: version.Version})...).Set(1)
	o.usmWindow = reg.Gauge("unit_usm_window",
		"User Satisfaction Metric over the current control window (Eq. 5).", lab()...)
	o.usmTotal = reg.Gauge("unit_usm",
		"Cumulative User Satisfaction Metric since start (Eq. 5).", lab()...)
	o.cflex = reg.Gauge("unit_admission_cflex",
		"Admission control's flexibility coefficient C_flex (paper §3.3).", lab()...)
	o.queueLen = reg.Gauge("unit_queue_length",
		"Queries waiting in the EDF ready queue.", lab()...)
	o.backlog = reg.Gauge("unit_backlog_seconds",
		"Declared work queued ahead of a new arrival, seconds.", lab()...)
	o.degraded = reg.Gauge("unit_degraded_items",
		"Items whose update period the modulator has degraded (paper §3.4).", lab()...)
	o.staleness = reg.Gauge("unit_stale_items",
		"Items whose stored copy lags its source feed.", lab()...)
	o.decisions = reg.Counter("unit_lbc_decisions_total",
		"Load Balancing Controller allocation decisions (paper Fig. 2).", lab()...)
	for _, a := range lbcActionLabels {
		o.actions[a] = reg.Counter("unit_lbc_actions_total",
			"Control signals fired by LBC decisions.",
			lab(metrics.Label{Key: "action", Value: a})...)
	}
	return o
}

// observeQuery tallies one resolved query into the registry. The counter
// and histogram updates run lock-free (pure atomics) after s.mu is
// released, so the metrics hot path never blocks a worker or another
// client; only the bounded slow tracker takes its own small lock, off
// every worker's critical path. Every resolved query observes every
// stage series — zeros included, and all-zero when Stages is nil (a
// request that never entered the queue) — so per-stage counts reconcile
// exactly with the outcome counters. The query id rides along as the
// bucket exemplar, linking a fat bucket to /debug/trace?query=<id>.
func (o *serverObs) observeQuery(resp QueryResponse) {
	if c := o.outcomes[resp.Outcome]; c != nil {
		c.Inc()
	}
	o.latency.ObserveEx(resp.Latency.Seconds(), resp.Query)
	var b trace.StageBreakdown
	if resp.Stages != nil {
		b = *resp.Stages
	}
	o.stages["queue_wait"].ObserveEx(b.QueueWait, resp.Query)
	o.stages["lock_wait"].ObserveEx(b.LockWait, resp.Query)
	o.stages["exec"].ObserveEx(b.Exec, resp.Query)
	o.stages["overhead"].ObserveEx(b.Overhead, resp.Query)
	o.slow.observe(slowEntry{
		Query:   resp.Query,
		Outcome: resp.Outcome,
		Latency: resp.Latency.Seconds(),
		Stages:  resp.Stages,
	})
}

// slowEntry is one resolved query retained by the top-N-slowest tracker,
// the JSON shape of /debug/slow.
type slowEntry struct {
	Query   int64                 `json:"query"`
	Outcome Outcome               `json:"outcome"`
	Latency float64               `json:"latency_seconds"`
	Stages  *trace.StageBreakdown `json:"stages,omitempty"`
}

// slowTracker retains the cap slowest resolved queries seen so far, for
// GET /debug/slow?n=. It is a small min-heap ordered by latency: the
// root is the fastest retained entry, evicted whenever a slower query
// arrives, so membership is exact (the true top-cap), not a sample.
type slowTracker struct {
	mu      sync.Mutex
	cap     int
	entries []slowEntry // guarded by mu; min-heap by Latency
}

func newSlowTracker(cap int) *slowTracker {
	return &slowTracker{cap: cap}
}

// observe offers one resolved query to the tracker.
func (t *slowTracker) observe(e slowEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) < t.cap {
		t.entries = append(t.entries, e)
		t.siftUpLocked(len(t.entries) - 1)
		return
	}
	if e.Latency <= t.entries[0].Latency {
		return
	}
	t.entries[0] = e
	t.siftDownLocked(0)
}

func (t *slowTracker) siftUpLocked(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.entries[p].Latency <= t.entries[i].Latency {
			return
		}
		t.entries[p], t.entries[i] = t.entries[i], t.entries[p]
		i = p
	}
}

func (t *slowTracker) siftDownLocked(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.entries) && t.entries[l].Latency < t.entries[min].Latency {
			min = l
		}
		if r < len(t.entries) && t.entries[r].Latency < t.entries[min].Latency {
			min = r
		}
		if min == i {
			return
		}
		t.entries[i], t.entries[min] = t.entries[min], t.entries[i]
		i = min
	}
}

// topN returns the n slowest retained queries, slowest first (ties broken
// by query id for a stable order). n <= 0 or beyond the retained set
// returns everything retained.
func (t *slowTracker) topN(n int) []slowEntry {
	t.mu.Lock()
	out := append([]slowEntry(nil), t.entries...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency > out[j].Latency
		}
		return out[i].Query < out[j].Query
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// recordActions tallies one decision's control signals.
func (o *serverObs) recordActions(loosen, tighten, degrade, upgrade bool) {
	o.decisions.Inc()
	if loosen {
		o.actions["loosen_ac"].Inc()
	}
	if tighten {
		o.actions["tighten_ac"].Inc()
	}
	if degrade {
		o.actions["degrade_update"].Inc()
	}
	if upgrade {
		o.actions["upgrade_update"].Inc()
	}
}

// outcomeStamp is one finalized outcome with its wall time, feeding the
// windowed USM of GET /stats?window=.
type outcomeStamp struct {
	at time.Time
	o  txn.Outcome
}

// winLogCap bounds the windowed-USM history: at 32k outcomes a sustained
// 1k queries/s load still covers a ~30 s window exactly; beyond that the
// window silently truncates to the retained history (the JSON response
// reports the effective horizon).
const winLogCap = 1 << 15
