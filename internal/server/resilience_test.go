package server

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPanicContainment: a query whose work panics records as DMF, the
// response comes back, and the worker keeps serving — the pool never
// shrinks.
func TestPanicContainment(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1 // one worker: if the panic killed it, nothing serves
		cfg.QueryWork = func(req QueryRequest) {
			if len(req.Items) > 0 && req.Items[0] == 1 {
				panic("query work exploded")
			}
		}
	})
	resp := s.Query(QueryRequest{Items: []int{1}, Deadline: 5 * time.Second, Work: time.Millisecond})
	if resp.Outcome != OutcomeDMF {
		t.Fatalf("panicked query outcome = %s, want %s", resp.Outcome, OutcomeDMF)
	}
	// The sole worker must have survived to serve this.
	resp = s.Query(QueryRequest{Items: []int{2}, Deadline: 5 * time.Second, Work: time.Millisecond})
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("post-panic query outcome = %s, want success", resp.Outcome)
	}
	st := s.Stats()
	if st.QueriesPanicked != 1 {
		t.Fatalf("QueriesPanicked = %d, want 1", st.QueriesPanicked)
	}
	if st.Counts.DMF != 1 {
		t.Fatalf("DMF count = %d, want 1 (the panicked query)", st.Counts.DMF)
	}
}

// TestUpdatePanicContainment: a panicking refresh returns an error, is not
// applied, and ages the stored copy like a lost delivery.
func TestUpdatePanicContainment(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.UpdateWork = func(UpdateRequest) { panic("refresh exploded") }
	})
	applied, err := s.Update(UpdateRequest{Item: 3, Value: 1})
	if err == nil || applied {
		t.Fatalf("panicked update: applied=%v err=%v", applied, err)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %q does not mention the panic", err)
	}
	if got := s.Stats().QueriesPanicked; got != 1 {
		t.Fatalf("QueriesPanicked = %d, want 1", got)
	}
}

// TestCancellationSkipsWorker: a query whose client disconnects while
// queued resolves as canceled, never occupies a worker, and never enters
// the USM accounting.
func TestCancellationSkipsWorker(t *testing.T) {
	executed := make(chan struct{}, 16)
	release := make(chan struct{})
	s := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.QueryWork = func(req QueryRequest) {
			// Item 0 is the blocker sentinel; its nominal Work stays tiny
			// so admission control keeps admitting behind it.
			if len(req.Items) > 0 && req.Items[0] == 0 {
				<-release // occupy the worker until told otherwise
				return
			}
			executed <- struct{}{}
		}
	})
	// Occupy the sole worker.
	var blocker sync.WaitGroup
	blocker.Add(1)
	go func() {
		defer blocker.Done()
		s.Query(QueryRequest{Items: []int{0}, Deadline: time.Minute, Work: time.Millisecond})
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.running > 0
	})

	// Queue a query, then disconnect its client.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan QueryResponse, 1)
	go func() {
		done <- s.QueryCtx(ctx, QueryRequest{Items: []int{1}, Deadline: time.Minute, Work: time.Millisecond})
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.queue) == 1
	})
	before := s.Stats().Counts
	cancel()
	resp := <-done
	if resp.Outcome != OutcomeCanceled {
		t.Fatalf("canceled query outcome = %s, want %s", resp.Outcome, OutcomeCanceled)
	}
	close(release)
	blocker.Wait()
	if len(executed) != 0 {
		t.Fatal("canceled query's work executed anyway")
	}
	st := s.Stats()
	if st.QueriesCanceled != 1 {
		t.Fatalf("QueriesCanceled = %d, want 1", st.QueriesCanceled)
	}
	after := st.Counts
	if after.Total() != before.Total()+1 { // only the blocker's success lands
		t.Fatalf("USM counts moved %+v -> %+v; cancellation must not be recorded", before, after)
	}
}

// TestWorkerPopSkipsCanceled: cancellation observed at pop time (the
// waiter hasn't reacted yet) still resolves as canceled without the work
// running.
func TestWorkerPopSkipsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead on arrival
	s := newTestServer(t, func(cfg *Config) {
		cfg.QueryWork = func(QueryRequest) { t.Error("work ran for a canceled query") }
	})
	resp := s.QueryCtx(ctx, QueryRequest{Items: []int{1}, Deadline: time.Minute, Work: time.Millisecond})
	if resp.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %s, want %s", resp.Outcome, OutcomeCanceled)
	}
	if got := s.Stats().QueriesCanceled; got != 1 {
		t.Fatalf("QueriesCanceled = %d, want 1", got)
	}
}

// TestGracefulDrain: Close resolves queued-but-unstarted queries as
// rejections (counted as drained), lets in-flight queries finish, and
// leaks no goroutines.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	release := make(chan struct{})
	cfg := DefaultConfig()
	cfg.NumItems = 16
	cfg.Workers = 1
	cfg.QueryWork = func(req QueryRequest) {
		// Item 0 is the blocker sentinel (small nominal Work keeps
		// admission control admitting the queries queued behind it).
		if len(req.Items) > 0 && req.Items[0] == 0 {
			<-release
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// One in-flight query holding the worker, two stuck behind it.
	results := make(chan QueryResponse, 3)
	go func() {
		results <- s.Query(QueryRequest{Items: []int{0}, Deadline: time.Minute, Work: time.Millisecond})
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.running > 0
	})
	for i := 1; i <= 2; i++ {
		go func(item int) {
			results <- s.Query(QueryRequest{Items: []int{item}, Deadline: time.Minute, Work: time.Millisecond})
		}(i)
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.queue) == 2
	})

	drained := s.Stats() // snapshot before Close wipes the queue length
	if drained.QueueLength != 2 {
		t.Fatalf("queue length = %d, want 2", drained.QueueLength)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release) // let the in-flight query finish while Close waits
	}()
	s.Close()

	got := map[Outcome]int{}
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			got[r.Outcome]++
		case <-time.After(5 * time.Second):
			t.Fatalf("query %d never resolved: drain dropped it silently", i)
		}
	}
	if got[OutcomeSuccess] != 1 || got[OutcomeRejected] != 2 {
		t.Fatalf("outcomes = %v, want 1 success + 2 rejected", got)
	}
	st := s.Stats()
	if st.QueriesDrained != 2 {
		t.Fatalf("QueriesDrained = %d, want 2", st.QueriesDrained)
	}
	s.Close() // idempotent

	// All worker and control goroutines must be gone.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

// TestShedCounter: arrivals beyond MaxQueue are rejected and tallied.
func TestShedCounter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.MaxQueue = 1
		cfg.QueryWork = func(req QueryRequest) {
			// Item 0 is the blocker sentinel; its nominal Work stays tiny
			// so admission control keeps admitting behind it.
			if len(req.Items) > 0 && req.Items[0] == 0 {
				<-release
			}
		}
	})
	go s.Query(QueryRequest{Items: []int{0}, Deadline: time.Minute, Work: time.Millisecond})
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.running > 0
	})
	go s.Query(QueryRequest{Items: []int{1}, Deadline: time.Minute, Work: time.Millisecond}) // fills MaxQueue
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.queue) == 1
	})
	resp := s.Query(QueryRequest{Items: []int{2}, Deadline: time.Minute, Work: time.Millisecond})
	if resp.Outcome != OutcomeRejected {
		t.Fatalf("overflow outcome = %s, want rejected", resp.Outcome)
	}
	if got := s.Stats().QueriesShed; got != 1 {
		t.Fatalf("QueriesShed = %d, want 1", got)
	}
}

// TestRetryAfterBounds: the hint is clamped to [1s, 30s].
func TestRetryAfterBounds(t *testing.T) {
	s := newTestServer(t)
	if d := s.RetryAfter(); d != time.Second {
		t.Fatalf("idle RetryAfter = %v, want 1s", d)
	}
	s.mu.Lock()
	s.backlog = 1e6
	s.mu.Unlock()
	if d := s.RetryAfter(); d != 30*time.Second {
		t.Fatalf("saturated RetryAfter = %v, want 30s", d)
	}
	s.mu.Lock()
	s.backlog = 0
	s.mu.Unlock()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
