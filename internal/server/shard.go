package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/obs/metrics"
	"unitdb/internal/obs/trace"
)

// Sharded is the front door over N independent live Servers. Items hash
// to shards with the same splitmix64 routing the simulator's engine
// router uses (engine.ShardOf), so a data item lives on exactly one
// shard: its update feed, its freshness state and its query load never
// serialize on another shard's lock. Multi-item queries scatter to every
// touched shard concurrently and gather with the router's precedence —
// canceled beats rejected beats deadline-missed beats data-stale beats
// success, freshness is the minimum over the committed slices — so the
// logical answer a client sees follows the same laws at every shard
// count, and a cross-shard rejection is counted exactly once in the
// front door's accounting.
//
// Observability: the shards share one metrics registry (every series
// carries a shard="i" label; family names are identical to the
// single-server layout) and one trace recorder (events carry globally
// unique query ids — each shard stamps ids from its own band). The
// front door adds the unlabeled unit_usm series: the logical, global
// USM over gathered outcomes, aggregated lock-free.
type Sharded struct {
	cfg    Config
	shards []*Server
	reg    *metrics.Registry
	rec    *trace.Recorder
	gate   gateObs
}

// NewSharded creates and starts n live shards behind one front door.
// Each shard runs the full UNIT stack (admission, EDF pool, modulation,
// LBC) over the whole item space but only ever sees the items that hash
// to it. cfg is the template: Workers is divided across the shards
// (minimum one per shard), per-shard seeds derive from cfg.Seed by
// shard index, and each shard gets a disjoint query-id band. n <= 1
// still builds a front door over a single shard; callers wanting the
// plain unsharded server should use New instead.
func NewSharded(cfg Config, n int) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	rec := cfg.Trace
	if rec == nil {
		rec = trace.New(cfg.TraceCap, 0)
	}
	if err := cfg.Weights.Validate(); err != nil {
		return nil, err
	}
	g := &Sharded{
		cfg: cfg,
		reg: metrics.NewRegistry(),
		rec: rec,
	}
	g.gate.usm = g.reg.Gauge("unit_usm",
		"Cumulative User Satisfaction Metric since start (Eq. 5).")
	g.gate.weights = cfg.Weights
	perWorkers := 0
	if cfg.Workers > 0 {
		perWorkers = cfg.Workers / n
		if perWorkers < 1 {
			perWorkers = 1
		}
	}
	for i := 0; i < n; i++ {
		ccfg := cfg
		ccfg.Workers = perWorkers
		ccfg.Seed = engine.ShardSeed(cfg.Seed, i, n)
		ccfg.FirstID = int64(i) << 40
		ccfg.Trace = rec
		ccfg.obsRegistry = g.reg
		ccfg.obsLabels = []metrics.Label{{Key: "shard", Value: strconv.Itoa(i)}}
		s, err := New(ccfg)
		if err != nil {
			for _, prev := range g.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		g.shards = append(g.shards, s)
	}
	return g, nil
}

// Shards reports the shard count.
func (g *Sharded) Shards() int { return len(g.shards) }

// Close stops every shard (each drains gracefully); idempotent.
func (g *Sharded) Close() {
	var wg sync.WaitGroup
	for _, s := range g.shards {
		wg.Add(1)
		go func(s *Server) {
			defer wg.Done()
			s.Close()
		}(s)
	}
	wg.Wait()
}

// Handler returns the HTTP interface of the front door — identical to a
// single Server's (same endpoints, status codes and response shapes).
func (g *Sharded) Handler() http.Handler { return newHandler(g) }

// Metrics exposes the shared registry: per-shard series plus the front
// door's global USM.
func (g *Sharded) Metrics() *metrics.Registry { return g.reg }

// TraceRecorder exposes the shared wall-time trace recorder.
func (g *Sharded) TraceRecorder() *trace.Recorder { return g.rec }

// Query submits a user query through the front door and blocks until it
// resolves.
func (g *Sharded) Query(req QueryRequest) QueryResponse {
	return g.QueryCtx(context.Background(), req)
}

// QueryCtx routes a query to its shards. A query whose items live on
// one shard delegates whole — the common fast path pays one hash per
// item and no extra goroutine. A cross-shard query scatters one
// sub-query per touched shard, each carrying the slice's share of the
// declared work, and gathers the logical answer (see the Sharded doc
// for the merge laws). The front door serializes on no lock of its own:
// admission, execution and finalization all happen inside the
// independently-locked shards.
func (g *Sharded) QueryCtx(ctx context.Context, req QueryRequest) QueryResponse {
	started := time.Now()
	groups := engine.PartitionItems(req.Items, len(g.shards))
	touched := make([]int, 0, len(groups))
	for i, grp := range groups {
		if len(grp) > 0 {
			touched = append(touched, i)
		}
	}
	var resp QueryResponse
	switch len(touched) {
	case 0:
		// No valid routing key (empty or out-of-range items): shard 0
		// owns the rejection so the error surface matches a plain server.
		resp = g.shards[0].QueryCtx(ctx, req)
	case 1:
		resp = g.shards[touched[0]].QueryCtx(ctx, req)
	default:
		resp = g.scatter(ctx, req, groups, touched)
	}
	resp.Latency = time.Since(started)
	g.gate.observe(resp.Outcome)
	return resp
}

// scatter fans a cross-shard query out and gathers the logical answer:
// each touched shard resolves its slice; the merge picks the logical
// outcome by precedence, so the one logical query resolves exactly once
// here no matter how many slices it scattered into.
//
//unitlint:outcome merged
func (g *Sharded) scatter(ctx context.Context, req QueryRequest, groups [][]int, touched []int) QueryResponse {
	subs := make([]QueryResponse, len(touched))
	var wg sync.WaitGroup
	for k, shard := range touched {
		wg.Add(1)
		go func(k, shard int) {
			defer wg.Done()
			sreq := req
			sreq.Items = groups[shard]
			// Each slice carries its share of the declared work, so the
			// scattered total equals the query's declared cost.
			sreq.Work = time.Duration(float64(req.Work) * float64(len(sreq.Items)) / float64(len(req.Items)))
			subs[k] = g.shards[shard].QueryCtx(ctx, sreq)
		}(k, shard)
	}
	wg.Wait()

	outcome := OutcomeSuccess
	fresh := math.Inf(1)
	values := make(map[string]float64, len(req.Items))
	slowest := 0
	for k, sub := range subs {
		if outcomeRank[sub.Outcome] > outcomeRank[outcome] {
			outcome = sub.Outcome
		}
		if sub.Outcome == OutcomeSuccess || sub.Outcome == OutcomeDSF {
			if sub.Freshness < fresh {
				fresh = sub.Freshness
			}
			for key, v := range sub.Values {
				values[key] = v
			}
		}
		if sub.Latency > subs[slowest].Latency {
			slowest = k
		}
	}
	if math.IsInf(fresh, 1) {
		fresh = 0 // no slice committed
	}
	merged := QueryResponse{Freshness: fresh}
	merged.Outcome = outcome
	if outcome == OutcomeSuccess || outcome == OutcomeDSF {
		merged.Values = values
	}
	// The slowest slice is the query's critical path: its id and stage
	// breakdown are the handles for chasing the latency through
	// /debug/trace and /debug/slow.
	merged.Query = subs[slowest].Query
	merged.Stages = subs[slowest].Stages
	return merged
}

// outcomeRank orders the gather precedence: canceled > rejected >
// deadline-missed > data-stale > success. Any rejected slice makes the
// logical query rejected (admit-iff-every-touched-shard-admits); a
// canceled slice means the client is gone, which trumps everything.
var outcomeRank = map[Outcome]int{
	OutcomeSuccess:  0,
	OutcomeDSF:      1,
	OutcomeDMF:      2,
	OutcomeRejected: 3,
	OutcomeCanceled: 4,
}

// Update routes an update-feed write to the shard owning its item.
func (g *Sharded) Update(req UpdateRequest) (bool, error) {
	if req.Item < 0 || req.Item >= g.cfg.NumItems {
		return false, fmt.Errorf("server: item %d out of range", req.Item)
	}
	return g.shards[engine.ShardOf(req.Item, len(g.shards))].Update(req)
}

// RetryAfter is the most pessimistic shard's estimate: a retried
// multi-item query may touch any shard, so the client waits for the
// deepest backlog.
func (g *Sharded) RetryAfter() time.Duration {
	worst := time.Duration(0)
	for _, s := range g.shards {
		if d := s.RetryAfter(); d > worst {
			worst = d
		}
	}
	return worst
}

// Stats returns the merged snapshot plus each shard's own under Shards.
func (g *Sharded) Stats() Stats { return g.StatsWindow(0) }

// StatsWindow merges the shards' snapshots. Counts and USM are the
// front door's logical view (one outcome per gathered query, a
// cross-shard rejection counted once); every additive field — updates,
// queue lengths, resilience counters, LBC tallies, the optional window
// — sums the shards' slice-level accounting; CFlex averages and
// RetryAfterSeconds takes the worst shard. The per-shard snapshots ride
// along under Shards for operators drilling into imbalance.
func (g *Sharded) StatsWindow(window time.Duration) Stats {
	children := make([]Stats, len(g.shards))
	for i, s := range g.shards {
		children[i] = s.StatsWindow(window)
	}
	counts := g.gate.counts()
	out := Stats{
		Counts:     counts,
		USM:        counts.USM(g.cfg.Weights),
		LBCSignals: map[string]int{},
	}
	for _, c := range children {
		out.CFlex += c.CFlex
		out.DegradedItems += c.DegradedItems
		out.UpdatesApplied += c.UpdatesApplied
		out.UpdatesDropped += c.UpdatesDropped
		out.QueueLength += c.QueueLength
		out.StaleItems += c.StaleItems
		out.QueriesShed += c.QueriesShed
		out.QueriesPanicked += c.QueriesPanicked
		out.QueriesCanceled += c.QueriesCanceled
		out.QueriesDrained += c.QueriesDrained
		out.LBCDecisions += c.LBCDecisions
		for k, v := range c.LBCSignals {
			out.LBCSignals[k] += v
		}
		if c.RetryAfterSeconds > out.RetryAfterSeconds {
			out.RetryAfterSeconds = c.RetryAfterSeconds
		}
		if c.Window != nil {
			if out.Window == nil {
				out.Window = &WindowStats{Seconds: c.Window.Seconds, Covered: c.Window.Covered}
			}
			out.Window.Counts.Add(c.Window.Counts)
			if c.Window.Covered < out.Window.Covered {
				out.Window.Covered = c.Window.Covered
			}
		}
	}
	out.CFlex /= float64(len(g.shards))
	if out.Window != nil {
		out.Window.USM = out.Window.Counts.USM(g.cfg.Weights)
	}
	out.Shards = children
	return out
}

// slowTop merges the shards' top-N-slowest trackers into one global
// top-N, slowest first (ties by query id, matching a single server).
func (g *Sharded) slowTop(n int) []slowEntry {
	var all []slowEntry
	for _, s := range g.shards {
		all = append(all, s.slowTop(0)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Latency != all[j].Latency {
			return all[i].Latency > all[j].Latency
		}
		return all[i].Query < all[j].Query
	})
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// gateObs is the front door's lock-free logical accounting: one tally
// per gathered outcome, aggregated into the global USM gauge on every
// observation. Canceled queries tally separately and never enter the
// USM, mirroring the single server.
type gateObs struct {
	success  atomic.Int64
	rejected atomic.Int64
	dmf      atomic.Int64
	dsf      atomic.Int64
	canceled atomic.Int64
	usm      *metrics.Gauge
	weights  usm.Weights
}

func (o *gateObs) observe(out Outcome) {
	switch out {
	case OutcomeSuccess:
		o.success.Add(1)
	case OutcomeRejected:
		o.rejected.Add(1)
	case OutcomeDMF:
		o.dmf.Add(1)
	case OutcomeDSF:
		o.dsf.Add(1)
	case OutcomeCanceled:
		o.canceled.Add(1)
		return
	}
	o.usm.Set(o.counts().USM(o.weights))
}

func (o *gateObs) counts() usm.Counts {
	return usm.Counts{
		Success:  int(o.success.Load()),
		Rejected: int(o.rejected.Load()),
		DMF:      int(o.dmf.Load()),
		DSF:      int(o.dsf.Load()),
	}
}
