// Package server runs the UNIT framework on a wall clock instead of the
// simulator: a concurrent in-memory web-database fronted by HTTP. Queries
// arrive with firm deadlines and freshness requirements and pass UNIT's
// admission control before an EDF worker pool executes them; update-feed
// writes pass through update frequency modulation, which may drop them to
// protect query timeliness; the Load Balancing Controller re-balances both
// knobs from the windowed User Satisfaction Metric.
//
// The server exists to demonstrate the algorithm core (the same admission,
// ufm, control and usm packages the simulator uses) against real
// concurrency. Query and update "work" is carried as an explicit duration
// parameter, standing in for the computation a production deployment would
// run.
package server

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"unitdb/internal/core/admission"
	"unitdb/internal/core/control"
	"unitdb/internal/core/ufm"
	"unitdb/internal/core/usm"
	"unitdb/internal/datastore"
	"unitdb/internal/obs/metrics"
	"unitdb/internal/obs/trace"
	"unitdb/internal/stats"
	"unitdb/internal/txn"
)

// Config parameterizes a live server.
type Config struct {
	// NumItems is the size of the data set.
	NumItems int
	// Weights are the USM penalties driving admission and control.
	Weights usm.Weights
	// Workers is the size of the query-execution pool.
	Workers int
	// ControlPeriod is the LBC tick (wall clock).
	ControlPeriod time.Duration
	// GracePeriod bounds the time between allocation decisions.
	GracePeriod time.Duration
	// MinDecisionSamples gates decisions on window size, as in the
	// simulator policy.
	MinDecisionSamples int
	// DegradeBatch is the lottery-draw batch per Degrade signal
	// (default NumItems).
	DegradeBatch int
	// MaxQueue bounds the ready queue; arrivals beyond it are rejected
	// outright (an overload backstop, not part of the paper's algorithm).
	MaxQueue int
	// DefaultFreshness applies when a query does not state a requirement.
	DefaultFreshness float64
	// Seed drives the lottery.
	Seed uint64
	// QueryWork performs a query's computation; nil sleeps for the
	// request's Work duration. Embedders substitute real computation, and
	// chaos tests substitute panics and stalls.
	QueryWork func(QueryRequest)
	// UpdateWork performs an update refresh's computation; nil sleeps for
	// the request's Work duration.
	UpdateWork func(UpdateRequest)
	// TraceCap bounds the /debug/trace span-event ring buffer (default
	// 4096; the controller decision log keeps its own default).
	TraceCap int
	// Trace, when non-nil, replaces the internal span-event recorder so a
	// harness can capture the query lifecycle into its own ring (and dump
	// it as an artifact); TraceCap is then ignored. The recorder is
	// write-only from the server's point of view.
	Trace *trace.Recorder
	// FirstID offsets the server-assigned query ids (the first query gets
	// FirstID+1). The sharded front door gives each shard a disjoint id
	// band so a query id names its shard globally; standalone servers
	// leave it zero.
	FirstID int64

	// Sharding internals, set by NewSharded (never by users): the shared
	// metrics registry and the per-shard labels appended to every series
	// this server registers.
	obsRegistry *metrics.Registry
	obsLabels   []metrics.Label
}

// DefaultConfig returns a small live-server configuration.
func DefaultConfig() Config {
	return Config{
		NumItems:           1024,
		Workers:            4,
		ControlPeriod:      250 * time.Millisecond,
		GracePeriod:        time.Second,
		MinDecisionSamples: 20,
		MaxQueue:           4096,
		DefaultFreshness:   0.9,
		Seed:               1,
	}
}

// Outcome is the fate of a live query, mirroring txn.Outcome.
type Outcome string

// Live query outcomes.
const (
	OutcomeSuccess  Outcome = "success"
	OutcomeRejected Outcome = "rejected"
	OutcomeDMF      Outcome = "deadline-missed"
	OutcomeDSF      Outcome = "data-stale"
	// OutcomeCanceled marks a query abandoned because its client went away
	// (request context canceled). The user is no longer there to be
	// satisfied or disappointed, so cancellations are tallied separately
	// and never enter the USM.
	OutcomeCanceled Outcome = "canceled"
)

// QueryRequest is a user query presented to the live server.
type QueryRequest struct {
	Items     []int
	Deadline  time.Duration // firm relative deadline (qt)
	Work      time.Duration // execution cost the query carries (qe)
	Freshness float64       // required freshness (qf); 0 = server default
}

// QueryResponse is the outcome of a live query.
type QueryResponse struct {
	Outcome   Outcome            `json:"outcome"`
	Values    map[string]float64 `json:"values,omitempty"`
	Freshness float64            `json:"freshness"`
	Latency   time.Duration      `json:"latency_ns"`
	// Query is the server-assigned query id — the handle for following
	// the query through /debug/trace?query=<id> and the exemplar ids on
	// the stage histograms. Zero when the request never reached admission
	// (malformed items, server closed).
	Query int64 `json:"query,omitempty"`
	// Stages attributes the latency to pipeline stages (wall seconds).
	// Nil when the query never entered the queue.
	Stages *trace.StageBreakdown `json:"stages,omitempty"`
}

// UpdateRequest is an update-feed write.
type UpdateRequest struct {
	Item  int
	Value float64
	Work  time.Duration // cost of applying the refresh (ue)
}

// Stats is a snapshot of the server's accounting. It is a defensive deep
// copy: every nested value (counts, the signal map, the optional window)
// is copied or freshly built under the lock, so callers can hold or
// mutate a snapshot without racing the server — the contract the load
// tests and the JSON encoder both rely on.
type Stats struct {
	Counts         usm.Counts `json:"counts"`
	USM            float64    `json:"usm"`
	CFlex          float64    `json:"cflex"`
	DegradedItems  int        `json:"degraded_items"`
	UpdatesApplied int        `json:"updates_applied"`
	UpdatesDropped int        `json:"updates_dropped"`
	QueueLength    int        `json:"queue_length"`
	StaleItems     int        `json:"stale_items"`
	// RetryAfterSeconds is the backoff hint a rejected client would be
	// given right now (the 429 Retry-After estimate), surfaced in the
	// snapshot so load tests can assert on it without forcing a rejection.
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
	// Resilience counters (PR 2): outcomes of the failure paths the
	// graceful-degradation machinery handles.
	QueriesShed     int `json:"queries_shed"`     // rejected by the MaxQueue backstop
	QueriesPanicked int `json:"queries_panicked"` // work panicked; recorded as DMF, worker survived
	QueriesCanceled int `json:"queries_canceled"` // client gone; abandoned before burning a worker
	QueriesDrained  int `json:"queries_drained"`  // queued at shutdown; resolved as rejections
	// LBCDecisions counts allocation decisions; LBCSignals breaks the
	// fired control signals down by name (deep-copied per snapshot).
	LBCDecisions int            `json:"lbc_decisions"`
	LBCSignals   map[string]int `json:"lbc_signals,omitempty"`
	// Window carries the windowed USM when the snapshot was taken with
	// StatsWindow (GET /stats?window=...); nil otherwise.
	Window *WindowStats `json:"window,omitempty"`
	// Shards carries each shard's own snapshot when the stats come from
	// the sharded front door (index = shard); nil on a plain server.
	Shards []Stats `json:"shards,omitempty"`
}

// WindowStats is the outcome tally and USM over a trailing wall-clock
// window. Seconds is the requested horizon; Covered is the horizon the
// retained history actually spans (smaller when the ring truncated).
type WindowStats struct {
	Seconds float64    `json:"seconds"`
	Covered float64    `json:"covered_seconds"`
	Counts  usm.Counts `json:"counts"`
	USM     float64    `json:"usm"`
}

type liveQuery struct {
	req   QueryRequest
	ctx   context.Context
	tx    *txn.Txn
	done  chan QueryResponse
	index int

	// Wall-time stage stamps (seconds since server start), for the
	// StageBreakdown finalized with the outcome. Both are written and read
	// under Server.mu. execStart zero means no worker ever ran the query.
	enqueuedAt float64 // guarded by mu
	execStart  float64 // guarded by mu
}

// stagesLocked computes the query's wall-time stage attribution at
// finalize instant now; the caller holds Server.mu. The live server has
// no lock manager and never restarts an attempt, so only QueueWait and
// Exec can be nonzero: queue wait runs from enqueue to the worker pickup
// (or to finalization, for queries resolved while still queued), exec
// from pickup to finalization.
func (q *liveQuery) stagesLocked(now float64) *trace.StageBreakdown {
	b := &trace.StageBreakdown{}
	if q.execStart > 0 {
		b.QueueWait = q.execStart - q.enqueuedAt
		b.Exec = now - q.execStart
	} else {
		b.QueueWait = now - q.enqueuedAt
	}
	b.Total = b.Sum()
	return b
}

type queryHeap []*liveQuery

func (h queryHeap) Len() int { return len(h) }
func (h queryHeap) Less(i, j int) bool {
	return h[i].tx.HigherPriority(h[j].tx)
}
func (h queryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *queryHeap) Push(x any) {
	q := x.(*liveQuery)
	q.index = len(*h)
	*h = append(*h, q)
}
func (h *queryHeap) Pop() any {
	old := *h
	n := len(old)
	q := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return q
}

// Server is the live web-database. Create with New, stop with Close.
//
// Locking: mu is the single coarse lock; every field annotated
// "guarded by mu" may only be touched while holding it (the guardedby
// analyzer in internal/lint enforces the convention, `go test -race`
// checks the dynamics). cfg, start, cond, wg and stopCh are set in New
// before the Server escapes and are immutable or internally synchronized
// afterwards.
//
// Ownership: unlike Engine, no field here carries an "owned by"
// annotation — every piece of mutable state is deliberately shared
// between the worker pool, the control loop, and the HTTP handlers, so
// mutual exclusion (not single-goroutine ownership) is the discipline,
// and the owned analyzer has nothing to enforce. That split is the
// point: the simulator proves the algorithms single-threaded, the live
// server reuses them under one lock.
type Server struct {
	cfg   Config    // immutable after New
	start time.Time // immutable after New

	mu   sync.Mutex
	cond *sync.Cond // signals queue growth; always waited on under mu

	// The algorithm cores are single-threaded objects; mu serializes
	// every call into them.
	store *datastore.Store      // guarded by mu
	ac    *admission.Controller // guarded by mu
	mod   *ufm.Modulator        // guarded by mu
	lbc   *control.LBC          // guarded by mu
	acct  *usm.Accountant       // guarded by mu
	rng   *stats.RNG            // guarded by mu

	queue   queryHeap // guarded by mu
	backlog float64   // guarded by mu; queued work, seconds
	running float64   // guarded by mu; in-flight work, seconds

	lastApplied   []time.Time  // guarded by mu
	lastArrival   []time.Time  // guarded by mu
	interArrival  []stats.EWMA // guarded by mu
	sinceDecision usm.Counts   // guarded by mu
	lastDecision  time.Time    // guarded by mu

	updatesApplied int   // guarded by mu
	updatesDropped int   // guarded by mu
	nextID         int64 // guarded by mu

	shed     int // guarded by mu; rejected by the MaxQueue backstop
	panicked int // guarded by mu; query/update work that panicked
	canceled int // guarded by mu; abandoned after client disconnect
	drained  int // guarded by mu; queued queries rejected at shutdown

	// obs is the observability surface (metrics registry + trace
	// recorder); set in New, immutable afterwards, internally
	// synchronized — hot-path updates are atomics outside mu.
	obs *serverObs

	lbcDecisions int            // guarded by mu
	signals      map[string]int // guarded by mu; fired control signals by name

	winLog  []outcomeStamp // guarded by mu; ring of recent finalized outcomes
	winNext int            // guarded by mu; next ring slot once full

	closed bool           // guarded by mu
	wg     sync.WaitGroup // internally synchronized; Add in New, Wait in Close
	stopCh chan struct{}  // created in New; owned by Close (the only closer)
}

// New creates and starts a live server (worker pool plus control loop).
func New(cfg Config) (*Server, error) {
	if cfg.NumItems <= 0 {
		return nil, fmt.Errorf("server: NumItems %d", cfg.NumItems)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = 250 * time.Millisecond
	}
	if cfg.GracePeriod < cfg.ControlPeriod {
		cfg.GracePeriod = cfg.ControlPeriod
	}
	if cfg.MinDecisionSamples <= 0 {
		cfg.MinDecisionSamples = 20
	}
	if cfg.DegradeBatch <= 0 {
		cfg.DegradeBatch = cfg.NumItems
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4096
	}
	if cfg.DefaultFreshness <= 0 || cfg.DefaultFreshness > 1 {
		cfg.DefaultFreshness = 0.9
	}
	if cfg.QueryWork == nil {
		cfg.QueryWork = func(req QueryRequest) {
			if req.Work > 0 {
				time.Sleep(req.Work)
			}
		}
	}
	if cfg.UpdateWork == nil {
		cfg.UpdateWork = func(req UpdateRequest) {
			if req.Work > 0 {
				time.Sleep(req.Work)
			}
		}
	}
	if err := cfg.Weights.Validate(); err != nil {
		return nil, err
	}
	ideal := make([]float64, cfg.NumItems)
	for i := range ideal {
		ideal[i] = math.Inf(1) // learned online from feed inter-arrivals
	}
	rng := stats.NewRNG(cfg.Seed)
	s := &Server{
		cfg:          cfg,
		start:        time.Now(),
		store:        datastore.New(cfg.NumItems),
		ac:           admission.New(cfg.Weights),
		mod:          ufm.New(ideal, rng.Split()),
		lbc:          control.New(cfg.Weights, rng.Split()),
		acct:         usm.NewAccountant(cfg.Weights),
		rng:          rng,
		lastApplied:  make([]time.Time, cfg.NumItems),
		lastArrival:  make([]time.Time, cfg.NumItems),
		interArrival: make([]stats.EWMA, cfg.NumItems),
		obs:          newServerObs(cfg.obsRegistry, cfg.TraceCap, cfg.Trace, cfg.obsLabels...),
		signals:      make(map[string]int),
		nextID:       cfg.FirstID,
		stopCh:       make(chan struct{}),
	}
	s.obs.cflex.Set(s.ac.CFlex())
	for i := range s.interArrival {
		s.interArrival[i] = *stats.NewEWMA(0.3)
	}
	s.cond = sync.NewCond(&s.mu)
	s.lastDecision = s.start
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.controlLoop()
	return s, nil
}

// Close gracefully stops the server: in-flight queries run to completion
// (workers drain), queued-but-unstarted queries resolve as rejections (the
// drained counter tallies them — never a silent drop), and the control
// loop halts. Close blocks until every worker goroutine has exited; it is
// idempotent.
//
//unitlint:outcome q.tx
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopCh)
	for _, q := range s.queue {
		s.drained++
		s.obs.drained.Inc()
		s.backlog -= q.req.Work.Seconds()
		st := q.stagesLocked(s.now())
		s.finalizeLocked(q.tx, txn.OutcomeRejected, st)
		q.done <- QueryResponse{Outcome: OutcomeRejected, Query: q.tx.ID, Stages: st}
	}
	s.queue = nil
	s.queueGaugesLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// now returns seconds since server start (the algorithm core runs on
// float64 seconds).
func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

// Metrics exposes the server's metrics registry (the source behind
// GET /metrics). Read-only for callers; snapshots are consistent per
// series.
func (s *Server) Metrics() *metrics.Registry { return s.obs.reg }

// TraceRecorder exposes the wall-time trace recorder behind
// GET /debug/trace and GET /debug/controller.
func (s *Server) TraceRecorder() *trace.Recorder { return s.obs.rec }

// slowTop returns the n slowest resolved queries retained so far
// (GET /debug/slow), slowest first.
func (s *Server) slowTop(n int) []slowEntry { return s.obs.slow.topN(n) }

// queueGaugesLocked refreshes the queue-shape gauges. Called at every
// mutation of the ready queue so a /metrics scrape never needs s.mu.
func (s *Server) queueGaugesLocked() {
	s.obs.queueLen.Set(float64(len(s.queue)))
	s.obs.backlog.Set(s.backlog)
}

// queueView adapts the live queue to admission.QueueView.
type queueView struct {
	running float64
	queued  []*txn.Txn
}

func (v queueView) RunningRemaining() float64 { return v.running }
func (v queueView) UpdateBacklog() float64    { return 0 } // updates apply inline
func (v queueView) QueuedQueries() []*txn.Txn { return v.queued }

// AppendQueuedQueries implements admission.BulkView: the controller
// reuses its own scratch buffer instead of copying v.queued again.
func (v queueView) AppendQueuedQueries(buf []*txn.Txn) []*txn.Txn {
	return append(buf, v.queued...)
}

// Query submits a user query and blocks until it resolves (success, any
// failure, or its own deadline).
func (s *Server) Query(req QueryRequest) QueryResponse {
	return s.QueryCtx(context.Background(), req)
}

// QueryCtx is Query bound to a client context: when ctx is canceled
// (client disconnect) a still-queued query is removed before it ever
// occupies a worker and resolves as OutcomeCanceled; a query already
// executing runs to its verdict (the worker's CPU is already spent).
func (s *Server) QueryCtx(ctx context.Context, req QueryRequest) QueryResponse {
	resp := s.queryCtx(ctx, req)
	// Every query path funnels through here, so one lock-free tally
	// covers the outcome counters and the latency histogram.
	s.obs.observeQuery(resp)
	return resp
}

// queryCtx runs the query lifecycle; QueryCtx wraps it with metrics.
//
//unitlint:outcome tx
func (s *Server) queryCtx(ctx context.Context, req QueryRequest) QueryResponse {
	started := time.Now()
	if req.Freshness <= 0 {
		req.Freshness = s.cfg.DefaultFreshness
	}
	if req.Deadline <= 0 {
		req.Deadline = time.Second
	}
	for _, it := range req.Items {
		if it < 0 || it >= s.cfg.NumItems {
			return QueryResponse{Outcome: OutcomeRejected, Latency: time.Since(started)}
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return QueryResponse{Outcome: OutcomeRejected, Latency: time.Since(started)}
	}
	now := s.now()
	s.nextID++
	tx := txn.NewQuery(s.nextID, now, req.Items, req.Work.Seconds(), req.Deadline.Seconds(), req.Freshness)
	s.obs.rec.Record(trace.Event{T: now, Kind: trace.KindArrive, Query: tx.ID, Items: len(tx.Items), Deadline: tx.Deadline})
	view := queueView{running: s.running, queued: make([]*txn.Txn, 0, len(s.queue))}
	for _, q := range s.queue {
		view.queued = append(view.queued, q.tx)
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		// Overload backstop, distinct from the algorithm's admission gate.
		s.shed++
		s.obs.shed.Inc()
		s.obs.rec.Record(trace.Event{T: s.now(), Kind: trace.KindReject, Query: tx.ID})
		s.finalizeLocked(tx, txn.OutcomeRejected, nil)
		s.mu.Unlock()
		return QueryResponse{Outcome: OutcomeRejected, Latency: time.Since(started), Query: tx.ID}
	}
	if s.ac.Admit(now, tx, view) != admission.Admitted {
		s.obs.rec.Record(trace.Event{T: s.now(), Kind: trace.KindReject, Query: tx.ID})
		s.finalizeLocked(tx, txn.OutcomeRejected, nil)
		s.mu.Unlock()
		return QueryResponse{Outcome: OutcomeRejected, Latency: time.Since(started), Query: tx.ID}
	}
	s.obs.rec.Record(trace.Event{T: s.now(), Kind: trace.KindAdmit, Query: tx.ID})
	q := &liveQuery{req: req, ctx: ctx, tx: tx, done: make(chan QueryResponse, 1), enqueuedAt: s.now()}
	heap.Push(&s.queue, q)
	s.backlog += req.Work.Seconds()
	s.obs.rec.Record(trace.Event{T: s.now(), Kind: trace.KindQueue, Query: tx.ID})
	s.queueGaugesLocked()
	s.cond.Signal()
	s.mu.Unlock()

	// dequeue removes q when it is still queued; ok=false means a worker
	// got to it first (or shutdown drained it) and its verdict is coming.
	dequeue := func() bool {
		if q.index >= 0 && q.index < len(s.queue) && s.queue[q.index] == q {
			heap.Remove(&s.queue, q.index)
			s.backlog -= q.req.Work.Seconds()
			s.queueGaugesLocked()
			return true
		}
		return false
	}

	select {
	case resp := <-q.done:
		resp.Latency = time.Since(started)
		return resp
	case <-ctx.Done():
		// Client disconnected: abandon a queued query before it burns CPU.
		s.mu.Lock()
		if dequeue() {
			// The user is gone: nothing enters the USM accountant, the
			// cancellation is only tallied.
			s.canceled++
			st := q.stagesLocked(s.now())
			s.obs.rec.Record(trace.Event{T: s.now(), Kind: trace.KindOutcome, Query: tx.ID, Outcome: string(OutcomeCanceled), Stages: st})
			s.mu.Unlock()
			return QueryResponse{Outcome: OutcomeCanceled, Latency: time.Since(started), Query: tx.ID, Stages: st}
		}
		s.mu.Unlock()
		resp := <-q.done
		resp.Latency = time.Since(started)
		return resp
	case <-time.After(req.Deadline):
		// Firm deadline: abort wherever the query is. A worker may resolve
		// it concurrently; whoever finalizes first wins.
		s.mu.Lock()
		if dequeue() {
			st := q.stagesLocked(s.now())
			s.finalizeLocked(tx, txn.OutcomeDMF, st)
			s.mu.Unlock()
			return QueryResponse{Outcome: OutcomeDMF, Latency: time.Since(started), Query: tx.ID, Stages: st}
		}
		s.mu.Unlock()
		// Already executing: wait for the worker's verdict.
		resp := <-q.done
		resp.Latency = time.Since(started)
		return resp
	}
}

// Update ingests one update-feed write. It returns true when the update
// was applied, false when modulation dropped it.
func (s *Server) Update(req UpdateRequest) (bool, error) {
	if req.Item < 0 || req.Item >= s.cfg.NumItems {
		return false, fmt.Errorf("server: item %d out of range", req.Item)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, fmt.Errorf("server: closed")
	}
	now := time.Now()
	// Learn the feed's ideal period from observed inter-arrival times.
	if !s.lastArrival[req.Item].IsZero() {
		s.interArrival[req.Item].Observe(now.Sub(s.lastArrival[req.Item]).Seconds())
	}
	s.lastArrival[req.Item] = now
	if p := s.interArrival[req.Item].Value(); p > 0 {
		s.mod.SetIdealPeriod(req.Item, p)
	}
	s.mod.OnUpdate(req.Item, req.Work.Seconds())

	// Throttle only items the controller actually degraded. Live feeds
	// jitter, so comparing each inter-arrival against the learned mean
	// period would drop roughly half of a healthy feed's writes; an
	// undegraded item therefore always applies.
	period := s.mod.Period(req.Item)
	ideal := s.mod.IdealPeriod(req.Item)
	degradedItem := !math.IsInf(ideal, 1) && period > ideal*(1+1e-9)
	if degradedItem && !s.lastApplied[req.Item].IsZero() {
		if now.Sub(s.lastApplied[req.Item]).Seconds() < period*(1-1e-9) {
			s.store.DropUpdate(req.Item)
			s.updatesDropped++
			s.obs.staleness.Set(float64(s.store.StaleItems()))
			s.mu.Unlock()
			s.obs.updates[false].Inc()
			return false, nil
		}
	}
	s.lastApplied[req.Item] = now
	s.mu.Unlock()

	if !s.runUpdateWork(req) {
		// The refresh computation panicked: the delivery is lost, so the
		// stored copy ages exactly as if the feed had dropped it.
		s.mu.Lock()
		s.store.DropUpdate(req.Item)
		s.panicked++
		s.obs.staleness.Set(float64(s.store.StaleItems()))
		s.mu.Unlock()
		s.obs.panicked.Inc()
		s.obs.updates[false].Inc()
		return false, fmt.Errorf("server: refresh for item %d panicked", req.Item)
	}

	s.mu.Lock()
	s.store.ApplyUpdate(req.Item, req.Value, s.now())
	s.updatesApplied++
	s.obs.staleness.Set(float64(s.store.StaleItems()))
	s.mu.Unlock()
	s.obs.updates[true].Inc()
	return true, nil
}

// runUpdateWork executes a refresh's computation with panic containment;
// it reports whether the work completed.
func (s *Server) runUpdateWork(req UpdateRequest) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	s.cfg.UpdateWork(req)
	return true
}

// Stats returns a snapshot of the server's accounting (a defensive deep
// copy; see the Stats type).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// StatsWindow is Stats plus the outcome tally and USM over the trailing
// wall-clock window (GET /stats?window=...). Non-positive windows return
// the plain snapshot.
func (s *Server) StatsWindow(window time.Duration) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.statsLocked()
	if window <= 0 {
		return st
	}
	counts, covered := s.windowCountsLocked(window)
	st.Window = &WindowStats{
		Seconds: window.Seconds(),
		Covered: covered,
		Counts:  counts,
		USM:     counts.USM(s.cfg.Weights),
	}
	return st
}

func (s *Server) statsLocked() Stats {
	counts := s.acct.Total()
	// Deep-copy the signal map: the live map keeps mutating under mu
	// after the snapshot escapes.
	signals := make(map[string]int, len(s.signals))
	for k, v := range s.signals {
		signals[k] = v
	}
	return Stats{
		Counts:            counts,
		USM:               counts.USM(s.cfg.Weights),
		CFlex:             s.ac.CFlex(),
		DegradedItems:     s.mod.DegradedCount(),
		UpdatesApplied:    s.updatesApplied,
		UpdatesDropped:    s.updatesDropped,
		QueueLength:       len(s.queue),
		StaleItems:        s.store.StaleItems(),
		RetryAfterSeconds: s.retryAfterLocked().Seconds(),

		QueriesShed:     s.shed,
		QueriesPanicked: s.panicked,
		QueriesCanceled: s.canceled,
		QueriesDrained:  s.drained,

		LBCDecisions: s.lbcDecisions,
		LBCSignals:   signals,
	}
}

// windowCountsLocked tallies the retained outcomes inside the trailing
// window. covered is the horizon the history actually spans: the window
// itself, truncated to the server's uptime and — when the ring wrapped —
// to the oldest retained stamp.
func (s *Server) windowCountsLocked(window time.Duration) (usm.Counts, float64) {
	now := time.Now()
	cutoff := now.Add(-window)
	var c usm.Counts
	for _, st := range s.winLog {
		if st.at.After(cutoff) {
			c.Record(st.o)
		}
	}
	covered := window.Seconds()
	if up := now.Sub(s.start).Seconds(); up < covered {
		covered = up
	}
	if len(s.winLog) == winLogCap {
		if span := now.Sub(s.winLog[s.winNext].at).Seconds(); span < covered {
			covered = span
		}
	}
	return c, covered
}

// RetryAfter estimates how long a rejected client should wait before
// retrying: the queued work spread across the pool, clamped to [1s, 30s].
// The HTTP layer advertises it on 429 responses.
func (s *Server) RetryAfter() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked()
}

func (s *Server) retryAfterLocked() time.Duration {
	per := s.backlog / float64(s.cfg.Workers)
	d := time.Duration(math.Ceil(per)) * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// finalizeLocked records a query's terminal outcome into the USM
// accountant and feeds the modulation layer; callers hold s.mu.
//
//unitlint:outcome tx
func (s *Server) finalizeLocked(tx *txn.Txn, o txn.Outcome, stages *trace.StageBreakdown) {
	tx.Outcome = o
	s.acct.Record(o)
	for _, item := range tx.Items {
		s.mod.OnQueryAccess(item, tx.EstExec, tx.RelDeadline)
	}
	if stages == nil {
		// Rejected at admission: nothing accrued, mirroring the engine's
		// all-zero breakdown for rejects.
		stages = &trace.StageBreakdown{}
	}
	s.obs.rec.Record(trace.Event{T: s.now(), Kind: trace.KindOutcome, Query: tx.ID, Outcome: o.String(), Stages: stages})
	// Ring-append into the windowed-USM history (GET /stats?window=).
	st := outcomeStamp{at: time.Now(), o: o}
	if len(s.winLog) < winLogCap {
		s.winLog = append(s.winLog, st)
	} else {
		s.winLog[s.winNext] = st
		s.winNext = (s.winNext + 1) % winLogCap
	}
	total := s.acct.Total()
	s.obs.usmTotal.Set(total.USM(s.cfg.Weights))
}

// worker pops EDF queries and executes them.
//
//unitlint:outcome q.tx
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		q := heap.Pop(&s.queue).(*liveQuery)
		s.backlog -= q.req.Work.Seconds()
		s.queueGaugesLocked()
		if q.ctx != nil && q.ctx.Err() != nil {
			// Client already gone: a canceled query never occupies the
			// worker and never enters the USM.
			s.canceled++
			st := q.stagesLocked(s.now())
			s.obs.rec.Record(trace.Event{T: s.now(), Kind: trace.KindOutcome, Query: q.tx.ID, Outcome: string(OutcomeCanceled), Stages: st})
			s.mu.Unlock()
			q.done <- QueryResponse{Outcome: OutcomeCanceled, Query: q.tx.ID, Stages: st}
			//unitlint:ignore outcomeonce -- canceled queries bypass the USM by design: the user is gone, so q.tx stays unresolved and only s.canceled tallies it
			continue
		}
		now := s.now()
		if now >= q.tx.Deadline {
			st := q.stagesLocked(now)
			s.finalizeLocked(q.tx, txn.OutcomeDMF, st)
			s.mu.Unlock()
			q.done <- QueryResponse{Outcome: OutcomeDMF, Query: q.tx.ID, Stages: st}
			continue
		}
		q.execStart = now
		s.obs.rec.Record(trace.Event{T: now, Kind: trace.KindExecute, Query: q.tx.ID, Wait: now - q.tx.Arrival})
		// Read phase: sample freshness and values.
		fresh := s.store.QueryFreshness(q.req.Items)
		values := make(map[string]float64, len(q.req.Items))
		for _, item := range q.req.Items {
			v, _ := s.store.Get(item)
			values[fmt.Sprintf("%d", item)] = v
			s.store.RecordAccess(item)
		}
		s.running += q.req.Work.Seconds()
		s.mu.Unlock()

		completed := s.runQueryWork(q.req)

		s.mu.Lock()
		s.running -= q.req.Work.Seconds()
		if !completed {
			// The query's computation panicked. The user's deadline is as
			// missed as if the work had timed out, so it records as DMF —
			// and the recover above means this worker keeps serving; the
			// pool never shrinks.
			s.panicked++
			s.obs.panicked.Inc()
			st := q.stagesLocked(s.now())
			s.finalizeLocked(q.tx, txn.OutcomeDMF, st)
			s.mu.Unlock()
			q.done <- QueryResponse{Outcome: OutcomeDMF, Query: q.tx.ID, Stages: st}
			continue
		}
		outcome := txn.OutcomeSuccess
		resp := QueryResponse{Outcome: OutcomeSuccess, Values: values, Freshness: fresh, Query: q.tx.ID}
		switch {
		case s.now() >= q.tx.Deadline:
			outcome = txn.OutcomeDMF
			resp = QueryResponse{Outcome: OutcomeDMF, Query: q.tx.ID}
		case fresh < q.req.Freshness:
			outcome = txn.OutcomeDSF
			resp.Outcome = OutcomeDSF
		}
		st := q.stagesLocked(s.now())
		resp.Stages = st
		s.finalizeLocked(q.tx, outcome, st)
		s.mu.Unlock()
		q.done <- resp
	}
}

// runQueryWork executes a query's computation with panic containment; it
// reports whether the work completed (false = panicked).
func (s *Server) runQueryWork(req QueryRequest) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	s.cfg.QueryWork(req)
	return true
}

// controlLoop runs the LBC on the wall clock.
func (s *Server) controlLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ControlPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.controlTick()
		}
	}
}

func (s *Server) controlTick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sinceDecision.Add(s.acct.Rollover())
	windowUSM := s.sinceDecision.USM(s.cfg.Weights)
	s.obs.usmWindow.Set(windowUSM)
	if s.sinceDecision.Total() < s.cfg.MinDecisionSamples {
		return
	}
	samples := s.sinceDecision.Total()
	trigger := time.Since(s.lastDecision) >= s.cfg.GracePeriod
	dropped := s.lbc.DropTriggered(windowUSM)
	if dropped {
		trigger = true
	}
	if !trigger {
		return
	}
	action, costs := s.lbc.DecideExplained(s.sinceDecision)
	s.sinceDecision = usm.Counts{}
	s.lastDecision = time.Now()
	if action.LoosenAC {
		s.ac.Loosen()
		s.signals["loosen_ac"]++
	}
	if action.TightenAC {
		s.ac.Tighten()
		s.signals["tighten_ac"]++
	}
	if action.DegradeUpdate {
		s.mod.DegradeN(s.cfg.DegradeBatch)
		s.signals["degrade_update"]++
	}
	if action.UpgradeUpdate {
		s.mod.Upgrade()
		s.signals["upgrade_update"]++
	}
	s.lbcDecisions++
	// Log the decision after applying it, so CFlex and DegradedItems show
	// the resulting actuator settings (the decision log mirrors Fig. 2:
	// weighted-cost inputs on the left, chosen allocation on the right).
	s.obs.rec.RecordDecision(trace.Decision{
		T:             s.now(),
		Samples:       samples,
		WindowUSM:     windowUSM,
		RCost:         costs.R,
		FmCost:        costs.Fm,
		FsCost:        costs.Fs,
		DropTriggered: dropped,
		Action:        action.String(),
		CFlex:         s.ac.CFlex(),
		DegradedItems: s.mod.DegradedCount(),
	})
	s.obs.cflex.Set(s.ac.CFlex())
	s.obs.degraded.Set(float64(s.mod.DegradedCount()))
	s.obs.staleness.Set(float64(s.store.StaleItems()))
	s.obs.recordActions(action.LoosenAC, action.TightenAC, action.DegradeUpdate, action.UpgradeUpdate)
}
