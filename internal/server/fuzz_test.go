package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzParseItems hammers the items-list parser with arbitrary input. The
// parser must never panic, and every accepted list must satisfy the input
// contract: 1..MaxQueryItems non-negative ids with no duplicates.
func FuzzParseItems(f *testing.F) {
	for _, seed := range []string{
		"", "1", "1,2,3", "1, 2,3", "a", "1,,2", "-1", "4,1,4",
		"9999999999999999999999", "0," + strings.Repeat("1,", 100) + "2",
		",", "1,2,", " 7 ", "+3", "0x10",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		items, err := parseItems(raw)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("error with empty message")
			}
			return
		}
		if len(items) == 0 || len(items) > MaxQueryItems {
			t.Fatalf("accepted %d items from %q", len(items), raw)
		}
		seen := make(map[int]bool, len(items))
		for _, it := range items {
			if it < 0 {
				t.Fatalf("accepted negative item %d from %q", it, raw)
			}
			if seen[it] {
				t.Fatalf("accepted duplicate item %d from %q", it, raw)
			}
			seen[it] = true
		}
	})
}

// FuzzQueryHandler drives the full HTTP query path with arbitrary query
// strings. Whatever the input, the handler must not panic and must answer
// with a status from the documented set. Query/update work is a no-op so
// fuzz-chosen work/deadline values cannot stall the run.
func FuzzQueryHandler(f *testing.F) {
	cfg := DefaultConfig()
	cfg.NumItems = 16
	cfg.Workers = 2
	cfg.QueryWork = func(QueryRequest) {}
	cfg.UpdateWork = func(UpdateRequest) {}
	s, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)
	handler := s.Handler()

	for _, seed := range []string{
		"items=1",
		"items=1,2&deadline=100ms&work=1ms&freshness=0.9",
		"items=",
		"items=abc",
		"items=-1",
		"items=1&deadline=-1s",
		"items=1&freshness=NaN",
		"items=1&freshness=1e309",
		"items=1&deadline=999999h&work=999999h",
		"items=1&deadline=100ms&extra=junk&freshness=0.5",
	} {
		f.Add(seed)
	}
	allowed := map[int]bool{
		http.StatusOK:              true,
		http.StatusPartialContent:  true,
		http.StatusBadRequest:      true,
		http.StatusTooManyRequests: true,
		http.StatusGatewayTimeout:  true,
		statusClientClosedRequest:  true,
	}
	f.Fuzz(func(t *testing.T, rawQuery string) {
		req := httptest.NewRequest("GET", "/query", nil)
		req.URL.RawQuery = rawQuery
		// Cap each request: fuzz inputs must not pick deadlines that make
		// the handler block the worker pool for the whole run.
		rec := httptest.NewRecorder()
		done := make(chan struct{})
		go func() {
			defer close(done)
			handler.ServeHTTP(rec, req)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("handler stalled on query %q", rawQuery)
		}
		if !allowed[rec.Code] {
			t.Fatalf("query %q answered status %d, outside the documented set", rawQuery, rec.Code)
		}
	})
}
