package server

import (
	"net/http/httptest"
	"testing"
	"time"
)

func newClientPair(t *testing.T) (*Client, *Server) {
	t.Helper()
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, nil), s
}

func TestClientRoundTrip(t *testing.T) {
	c, _ := newClientPair(t)
	if !c.Healthy() {
		t.Fatal("health check failed")
	}
	applied, err := c.Update(UpdateRequest{Item: 4, Value: 9.25})
	if err != nil || !applied {
		t.Fatalf("update: %v applied=%v", err, applied)
	}
	resp, err := c.Query(QueryRequest{Items: []int{4}, Deadline: time.Second, Freshness: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != OutcomeSuccess || resp.Values["4"] != 9.25 {
		t.Fatalf("response %+v", resp)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts.Total() != 1 || st.UpdatesApplied != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClientDecodesFailureOutcomes(t *testing.T) {
	c, s := newClientPair(t)
	// Stale item -> DSF arrives via HTTP 206 but must decode cleanly.
	s.mu.Lock()
	s.store.DropUpdate(2)
	s.mu.Unlock()
	resp, err := c.Query(QueryRequest{Items: []int{2}, Deadline: time.Second, Freshness: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != OutcomeDSF {
		t.Fatalf("outcome %s", resp.Outcome)
	}
}

func TestClientErrorsOnBadRequest(t *testing.T) {
	c, _ := newClientPair(t)
	if _, err := c.Update(UpdateRequest{Item: 9999, Value: 1}); err == nil {
		t.Fatal("out-of-range update did not error")
	}
	if _, err := c.Query(QueryRequest{Items: nil, Deadline: time.Second}); err == nil {
		t.Fatal("empty item list did not error")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil)
	if c.Healthy() {
		t.Fatal("dead server reported healthy")
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("stats against dead server did not error")
	}
	if _, err := c.Query(QueryRequest{Items: []int{0}}); err == nil {
		t.Fatal("query against dead server did not error")
	}
	if _, err := c.Update(UpdateRequest{Item: 0}); err == nil {
		t.Fatal("update against dead server did not error")
	}
}
