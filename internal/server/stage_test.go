// Latency-attribution tests for the live server: stage breakdowns on
// responses conserve against the measured latency, the stage histograms
// reconcile with the outcome counters and carry exemplars, and the
// /debug/slow and /debug/trace?query= endpoints link histograms back to
// trace spans.
package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"unitdb/internal/obs/trace"
)

// TestResponseStagesConserve: a resolved query's stage durations sum to
// its Total, and the total tracks the measured latency (the latency also
// spans request validation outside the stage model, so it may exceed the
// breakdown slightly — never the other way around beyond scheduling
// noise).
func TestResponseStagesConserve(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 4; i++ {
		resp := s.Query(QueryRequest{Items: []int{i % 4}, Work: 5 * time.Millisecond, Deadline: time.Second})
		if resp.Outcome != OutcomeSuccess {
			t.Fatalf("query %d resolved %s, want success", i, resp.Outcome)
		}
		if resp.Query == 0 {
			t.Fatal("response carries no query id")
		}
		b := resp.Stages
		if b == nil {
			t.Fatal("response carries no stage breakdown")
		}
		if math.Abs(b.Sum()-b.Total) > 1e-9 {
			t.Fatalf("stage sum %v != total %v", b.Sum(), b.Total)
		}
		if b.Exec <= 0 {
			t.Fatalf("executed query shows no exec time: %+v", *b)
		}
		if b.LockWait != 0 || b.Overhead != 0 {
			t.Fatalf("live server accrued lock wait/overhead: %+v", *b)
		}
		lat := resp.Latency.Seconds()
		if b.Total > lat+0.05 {
			t.Fatalf("breakdown total %v exceeds measured latency %v", b.Total, lat)
		}
		if lat-b.Total > 0.25 {
			t.Fatalf("breakdown total %v unaccountably below latency %v", b.Total, lat)
		}
	}
	// A rejected-at-admission query reports an all-zero breakdown.
	rej := s.Query(QueryRequest{Items: []int{999999}, Deadline: time.Second})
	if rej.Outcome != OutcomeRejected {
		t.Fatalf("out-of-range query resolved %s", rej.Outcome)
	}
}

// TestStageHistogramsReconcile: every resolved query observes every
// stage series exactly once, so per-stage counts equal the outcome-
// counter sum and the latency-histogram count.
func TestStageHistogramsReconcile(t *testing.T) {
	s := newTestServer(t)
	const n = 6
	for i := 0; i < n; i++ {
		s.Query(QueryRequest{Items: []int{i % 4}, Deadline: time.Second})
	}
	body := scrape(t, s)
	for _, st := range stageLabels {
		want := `unit_query_stage_seconds_count{stage="` + st + `"} ` + strconv.Itoa(n)
		if !strings.Contains(body, want) {
			t.Errorf("missing %q:\n%s", want, grepFamily(body, "unit_query_stage_seconds_count"))
		}
	}
	if !strings.Contains(body, "unit_query_latency_seconds_count "+strconv.Itoa(n)) {
		t.Errorf("latency count out of step:\n%s", grepFamily(body, "unit_query_latency_seconds_count"))
	}
}

// TestStageHistogramExemplars: the stage histograms remember the query
// id of each bucket's most recent observation, and the id resolves
// through /debug/trace?query= to that query's spans.
func TestStageHistogramExemplars(t *testing.T) {
	s := newTestServer(t)
	resp := s.Query(QueryRequest{Items: []int{1}, Work: 2 * time.Millisecond, Deadline: time.Second})
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("query resolved %s", resp.Outcome)
	}
	var found bool
	for _, fam := range s.Metrics().Snapshot() {
		if fam.Name != "unit_query_stage_seconds" && fam.Name != "unit_query_latency_seconds" {
			continue
		}
		for _, ser := range fam.Series {
			if ser.Hist == nil {
				continue
			}
			for _, ex := range ser.Hist.Exemplars {
				if ex == resp.Query {
					found = true
				}
			}
			if ser.Hist.UnderEx == resp.Query || ser.Hist.OverEx == resp.Query {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("query id %d appears in no histogram exemplar", resp.Query)
	}
	spans := s.TraceRecorder().EventsFor(resp.Query)
	if len(spans) == 0 {
		t.Fatalf("exemplar id %d resolves to no trace spans", resp.Query)
	}
	last := spans[len(spans)-1]
	if last.Kind != trace.KindOutcome || last.Stages == nil {
		t.Fatalf("query %d's final span is %+v, want an outcome with stages", resp.Query, last)
	}
}

// TestDebugSlowEndpoint: /debug/slow returns the slowest queries in
// descending latency order with their breakdowns, honors n, and caps at
// the retained set.
func TestDebugSlowEndpoint(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	works := []time.Duration{2, 20, 8, 4} // milliseconds
	for _, w := range works {
		s.Query(QueryRequest{Items: []int{1}, Work: w * time.Millisecond, Deadline: time.Second})
	}

	var out struct {
		Slowest []slowEntry `json:"slowest"`
		Count   int         `json:"count"`
	}
	getJSON(t, ts.URL+"/debug/slow?n=2", &out)
	if out.Count != 2 || len(out.Slowest) != 2 {
		t.Fatalf("n=2 returned %d entries", len(out.Slowest))
	}
	if out.Slowest[0].Latency < out.Slowest[1].Latency {
		t.Fatalf("slowest not in descending order: %+v", out.Slowest)
	}
	for _, e := range out.Slowest {
		if e.Query == 0 || e.Stages == nil {
			t.Fatalf("slow entry lacks id or stages: %+v", e)
		}
	}

	// Absent n returns everything retained.
	getJSON(t, ts.URL+"/debug/slow", &out)
	if out.Count != len(works) {
		t.Fatalf("default n returned %d entries, want %d", out.Count, len(works))
	}

	resp, err := http.Get(ts.URL + "/debug/slow?n=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("n=-1 returned %d, want 400", resp.StatusCode)
	}
}

// TestTraceQueryFilter: /debug/trace?query=<id> returns only that
// query's spans; a bad id is a named-field 400; n beyond the ring cap is
// accepted (capped, not rejected).
func TestTraceQueryFilter(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	a := s.Query(QueryRequest{Items: []int{1}, Deadline: time.Second})
	s.Query(QueryRequest{Items: []int{2}, Deadline: time.Second})

	var tr struct {
		Query  int64         `json:"query"`
		Events []trace.Event `json:"events"`
	}
	getJSON(t, ts.URL+"/debug/trace?query="+strconv.FormatInt(a.Query, 10), &tr)
	if tr.Query != a.Query || len(tr.Events) == 0 {
		t.Fatalf("filter returned %d events for query %d", len(tr.Events), tr.Query)
	}
	for _, ev := range tr.Events {
		if ev.Query != a.Query {
			t.Fatalf("filtered stream leaked query %d's event: %+v", ev.Query, ev)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/trace?query=zz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query=zz returned %d, want 400", resp.StatusCode)
	}

	huge := strconv.Itoa(s.TraceRecorder().EventCap() * 10)
	var all struct {
		Events []trace.Event `json:"events"`
	}
	getJSON(t, ts.URL+"/debug/trace?n="+huge, &all)
	if len(all.Events) > s.TraceRecorder().EventCap() {
		t.Fatalf("n beyond the ring cap returned %d events", len(all.Events))
	}
}

// TestBuildInfoMetric: the exposition carries unit_build_info with the
// version labels, value 1.
func TestBuildInfoMetric(t *testing.T) {
	s := newTestServer(t)
	body := scrape(t, s)
	lines := grepFamily(body, "unit_build_info")
	if !strings.Contains(lines, `version="`) || !strings.Contains(lines, `goversion="go`) {
		t.Fatalf("unit_build_info lacks version labels:\n%s", lines)
	}
	if !strings.Contains(lines, "} 1") {
		t.Fatalf("unit_build_info value is not 1:\n%s", lines)
	}
}
