package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"text/tabwriter"

	"unitdb/internal/core/usm"
	"unitdb/internal/workload"
)

// Fig3Item is one data item's row in paper Figure 3: its per-item query
// count (panel a), its original update volume (grey area of panels b/c)
// and the updates UNIT actually executed (black line/dots).
type Fig3Item struct {
	Item     int
	Queries  int // trace query accesses (panel a)
	Original int // source updates emitted
	Applied  int // updates UNIT executed
	Dropped  int // updates UNIT skipped or superseded
}

// Fig3Result holds the distributions for one trace cell.
type Fig3Result struct {
	Trace string
	Items []Fig3Item

	TotalOriginal int
	TotalApplied  int
	TotalDropped  int
	// AppliedQueryCorrelation is the Pearson correlation between UNIT's
	// surviving per-item update counts and the query distribution — the
	// paper's case study 1 observes that UNIT "adaptively follows the
	// query distribution".
	AppliedQueryCorrelation float64
}

// Fig3 runs UNIT (naive weights) on one trace cell and extracts the
// distributions of paper Figure 3. The paper shows med-unif (case study 1)
// and med-neg (case study 2).
func Fig3(cfg Config, v workload.Volume, d workload.Distribution) (*Fig3Result, error) {
	q, err := cfg.BuildQueryTrace()
	if err != nil {
		return nil, err
	}
	w, err := cfg.BuildCellTrace(q, v, d)
	if err != nil {
		return nil, err
	}
	r, err := cfg.RunCellNamed("fig3", w.Name, w, UNIT, usm.Weights{})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Trace: w.Name}
	applied := make([]float64, w.NumItems)
	queries := make([]float64, w.NumItems)
	for i := 0; i < w.NumItems; i++ {
		item := Fig3Item{
			Item:     i,
			Queries:  w.QueryCounts[i],
			Original: w.UpdateCounts[i],
			Applied:  r.AppliedCounts[i],
			Dropped:  r.DroppedCounts[i],
		}
		res.Items = append(res.Items, item)
		res.TotalOriginal += item.Original
		res.TotalApplied += item.Applied
		res.TotalDropped += item.Dropped
		applied[i] = float64(item.Applied)
		queries[i] = float64(item.Queries)
	}
	res.AppliedQueryCorrelation = pearson(applied, queries)
	return res, nil
}

func pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// DropRatioByAccessRank summarizes how drops concentrate on cold-accessed
// items: it sorts items by query count (descending) and reports the drop
// ratio per rank bucket — the quantitative form of the paper's Figure 3
// observations.
func (f *Fig3Result) DropRatioByAccessRank(buckets []int) []RankBucket {
	items := make([]Fig3Item, len(f.Items))
	copy(items, f.Items)
	sort.Slice(items, func(i, j int) bool {
		if items[i].Queries != items[j].Queries {
			return items[i].Queries > items[j].Queries
		}
		return items[i].Item < items[j].Item
	})
	var out []RankBucket
	start := 0
	for _, end := range buckets {
		if end > len(items) {
			end = len(items)
		}
		if start >= end {
			break
		}
		b := RankBucket{From: start, To: end}
		for _, it := range items[start:end] {
			b.Queries += it.Queries
			b.Original += it.Original
			b.Applied += it.Applied
			b.Dropped += it.Dropped
		}
		if tot := b.Applied + b.Dropped; tot > 0 {
			b.DropRatio = float64(b.Dropped) / float64(tot)
		}
		out = append(out, b)
		start = end
	}
	return out
}

// RankBucket aggregates items by access rank.
type RankBucket struct {
	From, To  int // rank range [From, To)
	Queries   int
	Original  int
	Applied   int
	Dropped   int
	DropRatio float64
}

// WriteFig3 renders the bucketed summary.
func WriteFig3(w io.Writer, f *Fig3Result) error {
	fmt.Fprintf(w, "Figure 3 (%s): UNIT executed %d of %d source updates (%.1f%% dropped)\n",
		f.Trace, f.TotalApplied, f.TotalOriginal,
		100*float64(f.TotalDropped)/float64(maxInt(1, f.TotalApplied+f.TotalDropped)))
	fmt.Fprintf(w, "corr(applied updates, query distribution) = %+.3f\n", f.AppliedQueryCorrelation)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "access rank\tqueries\torig updates\tapplied\tdropped\tdrop ratio")
	for _, b := range f.DropRatioByAccessRank([]int{10, 50, 100, 300, 1024}) {
		fmt.Fprintf(tw, "%d-%d\t%d\t%d\t%d\t%d\t%.3f\n",
			b.From, b.To, b.Queries, b.Original, b.Applied, b.Dropped, b.DropRatio)
	}
	return tw.Flush()
}

// WriteCSV dumps the full per-item distributions (the paper's raw plot
// data) as item,queries,original,applied,dropped.
func (f *Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"item", "queries", "original_updates", "applied_updates", "dropped_updates"}); err != nil {
		return err
	}
	for _, it := range f.Items {
		rec := []string{
			strconv.Itoa(it.Item), strconv.Itoa(it.Queries),
			strconv.Itoa(it.Original), strconv.Itoa(it.Applied), strconv.Itoa(it.Dropped),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
