package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/workload"
)

// WeightSetting is one column of paper Table 2: a named USM weight vector.
// The published table's numeric entries did not survive in the available
// text, so the reproduction uses the canonical reconstruction below —
// penalties below one (dominant 0.8, others 0.2) and penalties above one
// (dominant 4, others 1), normalized to the success gain of 1 as §2.3.1
// prescribes. The structure (two regimes × three dominant-cost columns) is
// exactly the paper's.
type WeightSetting struct {
	Name     string
	Regime   string // "penalties<1" or "penalties>1"
	Dominant string // "Cr", "Cfm" or "Cfs"
	Weights  usm.Weights
}

// Table2Settings returns the six weight settings of paper Table 2 /
// Figure 5: {penalties<1, penalties>1} × {high C_r, high C_fm, high C_fs}.
func Table2Settings() []WeightSetting {
	return []WeightSetting{
		{Name: "lo-highCr", Regime: "penalties<1", Dominant: "Cr", Weights: usm.Weights{Cr: 0.8, Cfm: 0.2, Cfs: 0.2}},
		{Name: "lo-highCfm", Regime: "penalties<1", Dominant: "Cfm", Weights: usm.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}},
		{Name: "lo-highCfs", Regime: "penalties<1", Dominant: "Cfs", Weights: usm.Weights{Cr: 0.2, Cfm: 0.2, Cfs: 0.8}},
		{Name: "hi-highCr", Regime: "penalties>1", Dominant: "Cr", Weights: usm.Weights{Cr: 4, Cfm: 1, Cfs: 1}},
		{Name: "hi-highCfm", Regime: "penalties>1", Dominant: "Cfm", Weights: usm.Weights{Cr: 1, Cfm: 4, Cfs: 1}},
		{Name: "hi-highCfs", Regime: "penalties>1", Dominant: "Cfs", Weights: usm.Weights{Cr: 1, Cfm: 1, Cfs: 4}},
	}
}

// Fig5Cell is one bar of paper Figure 5: a (weight setting, policy) pair on
// the med-unif trace.
type Fig5Cell struct {
	Setting WeightSetting
	Policy  PolicyName
	USM     float64
	Results *engine.Results
}

// Fig5Result holds all 24 cells.
type Fig5Result struct {
	Cells []Fig5Cell
}

// Fig5 runs the sensitivity evaluation of paper §4.4: the four algorithms
// on the med-unif trace under the six Table 2 weight settings. The 24
// cells fan out on the config's worker pool.
func Fig5(cfg Config) (*Fig5Result, error) {
	q, err := cfg.BuildQueryTrace()
	if err != nil {
		return nil, err
	}
	w, err := cfg.BuildCellTrace(q, workload.Med, workload.Uniform)
	if err != nil {
		return nil, err
	}
	type cellSpec struct {
		s WeightSetting
		p PolicyName
	}
	var specs []cellSpec
	for _, s := range Table2Settings() {
		for _, p := range AllPolicies() {
			specs = append(specs, cellSpec{s: s, p: p})
		}
	}
	cells, err := runner.Map(cfg.pool(), specs, func(_ int, c cellSpec) (Fig5Cell, error) {
		r, err := cfg.RunCellNamed("fig5", c.s.Name+"/"+string(c.p), w, c.p, c.s.Weights)
		if err != nil {
			return Fig5Cell{}, err
		}
		return Fig5Cell{Setting: c.s, Policy: c.p, USM: r.USM, Results: r}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Cells: cells}, nil
}

// Cell returns the cell for a setting name and policy, or nil.
func (f *Fig5Result) Cell(setting string, p PolicyName) *Fig5Cell {
	for i := range f.Cells {
		c := &f.Cells[i]
		if c.Setting.Name == setting && c.Policy == p {
			return c
		}
	}
	return nil
}

// UNITBestEverywhere reports whether UNIT has the highest USM under every
// weight setting (the paper's Figure 5 claim).
func (f *Fig5Result) UNITBestEverywhere() bool {
	for _, s := range Table2Settings() {
		unit := f.Cell(s.Name, UNIT)
		if unit == nil {
			return false
		}
		for _, p := range []PolicyName{IMU, ODU, QMF} {
			if c := f.Cell(s.Name, p); c == nil || c.USM > unit.USM {
				return false
			}
		}
	}
	return true
}

// UNITSpread returns max−min of UNIT's USM across the settings of one
// regime — the paper's stability claim is that this stays small while the
// weights change dramatically.
func (f *Fig5Result) UNITSpread(regime string) float64 {
	min, max := 0.0, 0.0
	first := true
	for _, s := range Table2Settings() {
		if s.Regime != regime {
			continue
		}
		c := f.Cell(s.Name, UNIT)
		if c == nil {
			continue
		}
		if first {
			min, max = c.USM, c.USM
			first = false
			continue
		}
		if c.USM < min {
			min = c.USM
		}
		if c.USM > max {
			max = c.USM
		}
	}
	return max - min
}

// WriteFig5 renders the two panels of paper Figure 5.
func WriteFig5(w io.Writer, f *Fig5Result) error {
	for _, regime := range []string{"penalties<1", "penalties>1"} {
		fmt.Fprintf(w, "Figure 5 panel (%s), trace med-unif\n", regime)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "setting\tCr\tCfm\tCfs\tIMU\tODU\tQMF\tUNIT")
		for _, s := range Table2Settings() {
			if s.Regime != regime {
				continue
			}
			line := fmt.Sprintf("high %s\t%.1f\t%.1f\t%.1f", s.Dominant, s.Weights.Cr, s.Weights.Cfm, s.Weights.Cfs)
			for _, p := range AllPolicies() {
				if c := f.Cell(s.Name, p); c != nil {
					line += fmt.Sprintf("\t%+.4f", c.USM)
				} else {
					line += "\t-"
				}
			}
			fmt.Fprintln(tw, line)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "UNIT USM spread across settings: %.4f\n\n", f.UNITSpread(regime))
	}
	return nil
}
