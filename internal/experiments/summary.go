package experiments

import (
	"unitdb/internal/engine"
	"unitdb/internal/workload"
)

// ArtifactCell is one compact digest row of a sweep artifact: the cell's
// stable name, its USM and the raw outcome counts. The counts let the
// digest double as an accounting fixture — Success+Reject+DMF+DSF must
// equal the submitted query total, and recomputing Eq. 5 from them must
// reproduce USM exactly.
type ArtifactCell struct {
	Cell    string  `json:"cell"`
	USM     float64 `json:"usm"`
	Success int     `json:"success"`
	Reject  int     `json:"reject"`
	DMF     int     `json:"dmf"`
	DSF     int     `json:"dsf"`
}

// Fig3Digest is the compact form of one Figure 3 case study.
type Fig3Digest struct {
	Trace       string  `json:"trace"`
	Original    int     `json:"original_updates"`
	Applied     int     `json:"applied_updates"`
	Dropped     int     `json:"dropped_updates"`
	Correlation float64 `json:"applied_query_correlation"`
}

// Summary digests every artifact of one experiment run into a stable,
// JSON-friendly form. It exists for two consumers: the golden replication
// test pins the QuickConfig summary byte-for-byte (sequential and
// parallel), and the benchmark harness records headline USM values next
// to its timing numbers so a perf regression that changes results is
// visible as such.
type Summary struct {
	Table1      []Table1Row      `json:"table1"`
	Fig3        []Fig3Digest     `json:"fig3"`
	Fig4        []ArtifactCell   `json:"fig4"`
	Fig5        []ArtifactCell   `json:"fig5"`
	Fig6        []Fig6Row        `json:"fig6"`
	Sensitivity []SensitivityRow `json:"sensitivity"`
}

func digestCell(name string, usmValue float64, r *engine.Results) ArtifactCell {
	return ArtifactCell{
		Cell:    name,
		USM:     usmValue,
		Success: r.Counts.Success,
		Reject:  r.Counts.Rejected,
		DMF:     r.Counts.DMF,
		DSF:     r.Counts.DSF,
	}
}

// BuildSummary runs every artifact driver at cfg and digests the results.
// The digest is a pure function of the config (including its seeds), so
// two runs with equal configs — at any Workers setting — produce
// DeepEqual-identical summaries.
func BuildSummary(cfg Config) (*Summary, error) {
	s := &Summary{}

	t1, err := Table1(cfg)
	if err != nil {
		return nil, err
	}
	s.Table1 = t1

	for _, d := range []workload.Distribution{workload.Uniform, workload.NegativeCorrelation} {
		f, err := Fig3(cfg, workload.Med, d)
		if err != nil {
			return nil, err
		}
		s.Fig3 = append(s.Fig3, Fig3Digest{
			Trace:       f.Trace,
			Original:    f.TotalOriginal,
			Applied:     f.TotalApplied,
			Dropped:     f.TotalDropped,
			Correlation: f.AppliedQueryCorrelation,
		})
	}

	f4, err := Fig4(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range f4.Cells {
		s.Fig4 = append(s.Fig4, digestCell(c.Trace+"/"+string(c.Policy), c.USM, c.Results))
	}

	f5, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range f5.Cells {
		s.Fig5 = append(s.Fig5, digestCell(c.Setting.Name+"/"+string(c.Policy), c.USM, c.Results))
	}
	s.Fig6 = Fig6(f5)

	rows, err := SensitivityCDu(cfg, nil)
	if err != nil {
		return nil, err
	}
	s.Sensitivity = rows

	return s, nil
}

// HeadlineUSM extracts, per artifact, the USM of the paper's headline
// UNIT cell — the number a perf-regression report prints next to the
// timing deltas so behavioural drift is visible alongside speed drift.
func (s *Summary) HeadlineUSM() map[string]float64 {
	out := map[string]float64{}
	for _, c := range s.Fig4 {
		if c.Cell == "med-unif/UNIT" {
			out["fig4/med-unif/UNIT"] = c.USM
		}
	}
	for _, c := range s.Fig5 {
		if c.Cell == "lo-highCr/UNIT" {
			out["fig5/lo-highCr/UNIT"] = c.USM
		}
	}
	return out
}
