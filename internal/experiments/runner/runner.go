// Package runner is the deterministic worker pool behind the experiment
// drivers. Every paper artifact is a sweep over independent cells
// (trace × algorithm × penalty setting); the pool fans the cells across
// goroutines while guaranteeing that the assembled result is bit-for-bit
// identical to a sequential run:
//
//   - results land in the output slice by cell index, never by completion
//     order;
//   - a cell's randomness comes only from seeds derived by DeriveSeed
//     from the stable (suite, cell) name — never from a shared generator
//     drawn in scheduling order;
//   - when cells fail, the error of the lowest-index failing cell is
//     returned, regardless of which worker hit an error first;
//   - every cell runs even after a failure, so the parallel and
//     sequential paths have identical side effects.
//
// The pool deliberately has no other features — no cancellation, no
// rate limiting, no wall-clock anything — because determinism is the
// contract the regression tests pin (results must satisfy
// reflect.DeepEqual across any GOMAXPROCS).
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures one fan-out.
type Options struct {
	// Workers bounds how many cells run concurrently. Zero or negative
	// means runtime.GOMAXPROCS(0); one runs every cell on the calling
	// goroutine (the reference sequential path).
	Workers int
}

// Resolve returns the effective worker count for n cells.
func (o Options) Resolve(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn over every cell and returns the results in cell order. fn
// receives the cell's index and value; it must be safe to call
// concurrently with itself and must derive any randomness from the cell
// alone (see DeriveSeed). On failure Map returns the error of the
// lowest-index failing cell.
func Map[C, R any](opt Options, cells []C, fn func(i int, c C) (R, error)) ([]R, error) {
	out := make([]R, len(cells))
	if len(cells) == 0 {
		return out, nil
	}
	errs := make([]error, len(cells))
	workers := opt.Resolve(len(cells))
	if workers == 1 {
		for i := range cells {
			out[i], errs[i] = fn(i, cells[i])
		}
		return gather(out, errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				out[i], errs[i] = fn(i, cells[i])
			}
		}()
	}
	wg.Wait()
	return gather(out, errs)
}

// gather returns the results unless some cell failed, in which case the
// lowest-index error wins (a deterministic choice under any scheduling).
func gather[R any](out []R, errs []error) ([]R, error) {
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fnv1aOffset and fnv1aPrime are the FNV-1a 64-bit parameters.
const (
	fnv1aOffset uint64 = 14695981039346656037
	fnv1aPrime  uint64 = 1099511628211
)

// DeriveSeed derives a stable per-cell seed:
//
//	seed = splitmix64(base ^ FNV1a64(part₁ ‖ 0x00 ‖ part₂ ‖ 0x00 ‖ …))
//
// The derivation depends only on the base seed and the cell's name parts
// (conventionally a domain tag, the suite, and the cell key), so a cell
// draws the same randomness no matter which worker runs it, in which
// order, or whether the sweep is parallel at all. The trailing 0x00 per
// part keeps ("ab","c") and ("a","bc") distinct; the splitmix64
// finalizer decorrelates nearby bases and names.
func DeriveSeed(base uint64, parts ...string) uint64 {
	h := fnv1aOffset
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnv1aPrime
		}
		h *= fnv1aPrime // fold in the 0x00 separator (XOR with 0 is a no-op)
	}
	z := base ^ h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
