package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndIdentity(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i * 3
	}
	fn := func(i int, c int) (string, error) {
		return fmt.Sprintf("%d:%d", i, c), nil
	}
	want, err := Map(Options{Workers: 1}, cells, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, runtime.NumCPU(), 200} {
		got, err := Map(Options{Workers: workers}, cells, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results diverge from sequential", workers)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Options{}, nil, func(i int, c int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	cells := make([]int, 64)
	errAt := map[int]bool{7: true, 11: true, 50: true}
	for _, workers := range []int{1, 4, 64} {
		var ran atomic.Int64
		_, err := Map(Options{Workers: workers}, cells, func(i int, c int) (int, error) {
			ran.Add(1)
			if errAt[i] {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 7", workers, err)
		}
		// Every cell still runs: parallel and sequential paths have
		// identical side effects.
		if ran.Load() != int64(len(cells)) {
			t.Fatalf("workers=%d: ran %d of %d cells", workers, ran.Load(), len(cells))
		}
	}
}

func TestMapErrorIsTheCellError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(Options{Workers: 3}, []int{0, 1, 2}, func(i int, c int) (int, error) {
		if i == 1 {
			return 0, sentinel
		}
		return 0, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestResolve(t *testing.T) {
	if got := (Options{Workers: 0}).Resolve(1000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d", got)
	}
	if got := (Options{Workers: 5}).Resolve(3); got != 3 {
		t.Fatalf("capped = %d, want 3", got)
	}
	if got := (Options{Workers: -2}).Resolve(0); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	// The derivation is part of the BENCH/golden contract: changing it
	// invalidates every checked-in artifact, so pin exact values.
	a := DeriveSeed(1, "policy", "fig4", "med-unif/UNIT")
	b := DeriveSeed(1, "policy", "fig4", "med-unif/UNIT")
	if a != b {
		t.Fatal("DeriveSeed is not deterministic")
	}
	distinct := map[uint64]string{}
	for _, tc := range [][]string{
		{"policy", "fig4", "med-unif/UNIT"},
		{"engine", "fig4", "med-unif/UNIT"},
		{"policy", "fig5", "med-unif/UNIT"},
		{"policy", "fig4", "med-unif/IMU"},
		{"policy", "fig4", "med-unif", "UNIT"}, // separator keeps parts distinct
	} {
		s := DeriveSeed(1, tc...)
		if prev, dup := distinct[s]; dup {
			t.Fatalf("seed collision between %v and %s", tc, prev)
		}
		distinct[s] = fmt.Sprint(tc)
	}
	if DeriveSeed(1, "a", "b") == DeriveSeed(2, "a", "b") {
		t.Fatal("base seed does not feed the derivation")
	}
	if DeriveSeed(7, "ab", "c") == DeriveSeed(7, "a", "bc") {
		t.Fatal("part boundaries do not feed the derivation")
	}
}
