package experiments

import (
	"bytes"
	"strings"
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/workload"
)

// tinyConfig shrinks the traces far enough that the full drivers run in
// test time; the shapes are noisy at this scale, so the tests assert
// structure and bookkeeping rather than orderings.
func tinyConfig() Config {
	c := QuickConfig()
	c.Query.NumQueries = 2000
	c.Query.Duration = 8000
	return c
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.RealizedUtil < r.TargetUtil*0.9 || r.RealizedUtil > r.TargetUtil*1.1 {
			t.Errorf("%s: realized util %.3f vs target %.2f", r.Trace, r.RealizedUtil, r.TargetUtil)
		}
		// At this tiny scale the low-volume traces have ~1 update per item
		// and cannot realize the full |0.8|; require the right sign always
		// and the full magnitude from the medium volume up.
		threshold := 0.6
		if r.Volume == workload.Low {
			threshold = 0.2
		}
		switch r.Distribution {
		case workload.PositiveCorrelation:
			if r.RealizedCorrelation < threshold {
				t.Errorf("%s: correlation %.3f", r.Trace, r.RealizedCorrelation)
			}
		case workload.NegativeCorrelation:
			if r.RealizedCorrelation > -threshold {
				t.Errorf("%s: correlation %.3f", r.Trace, r.RealizedCorrelation)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "med-neg") {
		t.Fatal("report missing trace names")
	}
}

func TestFig4Structure(t *testing.T) {
	f, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != 36 {
		t.Fatalf("cells = %d, want 36", len(f.Cells))
	}
	if len(f.Panel(workload.Uniform)) != 12 {
		t.Fatalf("panel size = %d", len(f.Panel(workload.Uniform)))
	}
	c := f.Cell(workload.Med, workload.Uniform, UNIT)
	if c == nil || c.Results == nil {
		t.Fatal("missing med-unif UNIT cell")
	}
	if c.Results.Counts.Total() != 2000 {
		t.Fatalf("cell ran %d queries", c.Results.Counts.Total())
	}
	var buf bytes.Buffer
	if err := WriteFig4(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4 panel") {
		t.Fatal("report format")
	}
}

func TestFig5AndFig6(t *testing.T) {
	f, err := Fig5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != 24 {
		t.Fatalf("cells = %d, want 24 (6 settings x 4 policies)", len(f.Cells))
	}
	for _, s := range Table2Settings() {
		if f.Cell(s.Name, UNIT) == nil {
			t.Fatalf("missing UNIT cell for %s", s.Name)
		}
	}
	var buf bytes.Buffer
	if err := WriteFig5(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "penalties<1") {
		t.Fatal("fig5 report format")
	}

	rows := Fig6(f)
	// 3 weight-insensitive policies + 3 UNIT settings.
	if len(rows) != 6 {
		t.Fatalf("fig6 rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.Success + r.Reject + r.DMF + r.DSF
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s ratios sum to %v", r.Policy, sum)
		}
	}
	buf.Reset()
	if err := WriteFig6(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UNIT") {
		t.Fatal("fig6 report format")
	}
}

func TestTable2Settings(t *testing.T) {
	s := Table2Settings()
	if len(s) != 6 {
		t.Fatalf("settings = %d", len(s))
	}
	for _, x := range s {
		if err := x.Weights.Validate(); err != nil {
			t.Fatal(err)
		}
		var dominant float64
		switch x.Dominant {
		case "Cr":
			dominant = x.Weights.Cr
		case "Cfm":
			dominant = x.Weights.Cfm
		case "Cfs":
			dominant = x.Weights.Cfs
		default:
			t.Fatalf("unknown dominant %q", x.Dominant)
		}
		if dominant <= x.Weights.Cr+x.Weights.Cfm+x.Weights.Cfs-2*dominant {
			t.Fatalf("%s: dominant weight is not dominant", x.Name)
		}
	}
}

func TestFig3(t *testing.T) {
	f, err := Fig3(tinyConfig(), workload.Med, workload.NegativeCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace != "med-neg" {
		t.Fatalf("trace = %s", f.Trace)
	}
	if f.TotalApplied+f.TotalDropped == 0 {
		t.Fatal("no update activity recorded")
	}
	if f.TotalDropped == 0 {
		t.Fatal("UNIT dropped nothing on med-neg")
	}
	buckets := f.DropRatioByAccessRank([]int{8, 32, 128})
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	// Drops concentrate away from the hottest items (paper Fig. 3).
	if buckets[0].DropRatio > buckets[len(buckets)-1].DropRatio {
		t.Fatalf("hot bucket drop ratio %.3f exceeds cold bucket's %.3f",
			buckets[0].DropRatio, buckets[len(buckets)-1].DropRatio)
	}
	var buf bytes.Buffer
	if err := WriteFig3(&buf, f); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(f.Items)+1 {
		t.Fatalf("csv lines = %d", lines)
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range AllPolicies() {
		p, err := NewPolicy(name, usm.Weights{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != string(name) {
			t.Fatalf("policy %s has name %s", name, p.Name())
		}
	}
	if _, err := NewPolicy("nope", usm.Weights{}, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSensitivityCDu(t *testing.T) {
	rows, err := SensitivityCDu(tinyConfig(), []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.USM <= 0 || r.SuccessRatio <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if Spread(rows) < 0 {
		t.Fatal("spread")
	}
	var buf bytes.Buffer
	if err := WriteSensitivity(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C_du") {
		t.Fatal("report format")
	}
}
