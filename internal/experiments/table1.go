package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"unitdb/internal/experiments/runner"
	"unitdb/internal/workload"
)

// Table1Row describes one update trace of paper Table 1, with the realized
// (measured) properties of the synthesized trace next to the targets.
type Table1Row struct {
	Trace               string
	Volume              workload.Volume
	Distribution        workload.Distribution
	TotalUpdates        int     // source updates emitted over the trace
	Feeds               int     // items with an update feed
	TargetUtil          float64 // the volume class's utilization target
	RealizedUtil        float64 // measured update-only CPU utilization
	TargetCorrelation   float64
	RealizedCorrelation float64
}

// Table1 synthesizes all nine update traces and reports their realized
// volumes, utilizations and correlations against the paper's targets.
// The trace syntheses fan out on the config's worker pool; each cell is a
// pure function of (query trace, cell config, UpdateSeed), so the rows
// are identical at any worker count.
func Table1(cfg Config) ([]Table1Row, error) {
	q, err := cfg.BuildQueryTrace()
	if err != nil {
		return nil, err
	}
	return runner.Map(cfg.pool(), workload.Table1Cells(), func(_ int, cell workload.UpdateConfig) (Table1Row, error) {
		w, err := workload.GenerateUpdates(q, cell, cfg.UpdateSeed)
		if err != nil {
			return Table1Row{}, err
		}
		target := 0.0
		switch cell.Distribution {
		case workload.PositiveCorrelation:
			target = cell.CorrCoef
		case workload.NegativeCorrelation:
			target = -cell.CorrCoef
		}
		return Table1Row{
			Trace:               w.Name,
			Volume:              cell.Volume,
			Distribution:        cell.Distribution,
			TotalUpdates:        w.TotalSourceUpdates(),
			Feeds:               len(w.Updates),
			TargetUtil:          cell.Volume.Utilization(),
			RealizedUtil:        w.UpdateUtilization(),
			TargetCorrelation:   target,
			RealizedCorrelation: w.Correlation(),
		}, nil
	})
}

// WriteTable1 renders the rows in the layout of paper Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trace\tvolume\tdistribution\ttotal updates\tfeeds\tutil target\tutil realized\tcorr target\tcorr realized")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.2f\t%.3f\t%+.2f\t%+.3f\n",
			r.Trace, r.Volume, r.Distribution, r.TotalUpdates, r.Feeds,
			r.TargetUtil, r.RealizedUtil, r.TargetCorrelation, r.RealizedCorrelation)
	}
	return tw.Flush()
}
