package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// shardMatrix returns the shard counts the invariance suite runs at:
// the UNIT_SHARDS env (comma-separated), or {1, 2, 8} by default — the
// counts the ROADMAP pins for the sharded engine's golden coverage.
func shardMatrix(t *testing.T) []int {
	raw := os.Getenv("UNIT_SHARDS")
	if raw == "" {
		return []int{1, 2, 8}
	}
	var out []int
	for _, part := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			t.Fatalf("bad UNIT_SHARDS entry %q", part)
		}
		out = append(out, n)
	}
	return out
}

// goldenShardPath returns the fixture for one shard count. Shards <= 1
// deliberately reuses the pre-sharding fixture: the front door at N=1
// must reproduce the single-engine artifact byte-for-byte.
func goldenShardPath(shards int) string {
	if shards <= 1 {
		return goldenPath
	}
	return fmt.Sprintf("testdata/golden_quick_shards%d.json", shards)
}

// TestGoldenQuickReplicationSharded is the shard-count-invariance pin:
// the QuickConfig suite replays byte-identically at every shard count in
// the matrix, against per-count fixtures — and the shards=1 fixture is
// the pre-sharding golden itself, so N=1 staying green proves sharding
// is a bitwise no-op when disabled. Regenerate the N>1 fixtures with
// -update-golden after any intentional behaviour change.
func TestGoldenQuickReplicationSharded(t *testing.T) {
	for _, shards := range shardMatrix(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			if testing.Short() && shards > 1 {
				t.Skip("sharded golden replication skipped in -short mode")
			}
			cfg := QuickConfig()
			cfg.Shards = shards
			got := marshalSummary(t, mustSummary(t, cfg))

			path := goldenShardPath(shards)
			if *updateGolden && shards > 1 {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("QuickConfig summary at shards=%d diverges from %s (%d vs %d bytes)",
					shards, path, len(got), len(want))
			}

			// The sweep must stay worker-invariant with sharding on: the
			// sequential reference path reproduces the same bytes.
			cfg.Workers = 1
			if seq := marshalSummary(t, mustSummary(t, cfg)); !bytes.Equal(seq, want) {
				t.Errorf("sequential sweep at shards=%d diverges from %s", shards, path)
			}
		})
	}
}

func mustSummary(t *testing.T, cfg Config) *Summary {
	t.Helper()
	s, err := BuildSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
