package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Fig6Row is one stacked bar of paper Figure 6: the decomposition of query
// outcomes into success / rejection / DMF / DSF ratios for one policy under
// one weight setting (the setup of Figure 5(a), i.e. penalties < 1).
type Fig6Row struct {
	Policy  PolicyName
	Setting string
	Success float64
	Reject  float64
	DMF     float64
	DSF     float64
}

// Fig6 derives the ratio decomposition from a Figure 5 result, as the paper
// does (§4.5): the three weight-insensitive algorithms appear once (their
// decomposition under the first penalties<1 setting stands for all), and
// UNIT appears once per penalties<1 setting, showing how it shifts its
// failure mix with the weights.
func Fig6(f5 *Fig5Result) []Fig6Row {
	var rows []Fig6Row
	settings := Table2Settings()
	// Panel (a): IMU, ODU, QMF under the first penalties<1 setting.
	for _, p := range []PolicyName{IMU, ODU, QMF} {
		if c := f5.Cell(settings[0].Name, p); c != nil {
			rs, rr, rfm, rfs := c.Results.Counts.Ratios()
			rows = append(rows, Fig6Row{Policy: p, Setting: "any", Success: rs, Reject: rr, DMF: rfm, DSF: rfs})
		}
	}
	// Panel (b): UNIT under each penalties<1 setting.
	for _, s := range settings {
		if s.Regime != "penalties<1" {
			continue
		}
		if c := f5.Cell(s.Name, UNIT); c != nil {
			rs, rr, rfm, rfs := c.Results.Counts.Ratios()
			rows = append(rows, Fig6Row{Policy: UNIT, Setting: "high " + s.Dominant, Success: rs, Reject: rr, DMF: rfm, DSF: rfs})
		}
	}
	return rows
}

// WriteFig6 renders the decomposition table.
func WriteFig6(w io.Writer, rows []Fig6Row) error {
	fmt.Fprintln(w, "Figure 6: outcome-ratio decomposition (setup of Figure 5(a))")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tsetting\tsuccess\treject\tdmf\tdsf")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.Policy, r.Setting, r.Success, r.Reject, r.DMF, r.DSF)
	}
	return tw.Flush()
}
