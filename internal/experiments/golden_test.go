package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_quick.json from the current QuickConfig run")

// goldenPath is the checked-in replication fixture: the full QuickConfig
// artifact summary at the default seeds.
const goldenPath = "testdata/golden_quick.json"

func marshalSummary(t *testing.T, s *Summary) []byte {
	t.Helper()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestGoldenQuickReplication is the replication pin: the QuickConfig
// experiment suite at the default seeds must reproduce the checked-in
// golden JSON byte-for-byte — first on the sequential reference path,
// then on the parallel pool. Any intentional behaviour change must
// regenerate the fixture (go test ./internal/experiments -update-golden)
// and justify the diff in review.
func TestGoldenQuickReplication(t *testing.T) {
	cfg := QuickConfig()

	cfg.Workers = 1
	seq, err := BuildSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := marshalSummary(t, seq)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sequential QuickConfig summary diverges from %s (%d vs %d bytes); regenerate with -update-golden if intentional",
			goldenPath, len(got), len(want))
	}

	cfg.Workers = 0 // GOMAXPROCS pool
	par, err := BuildSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotPar := marshalSummary(t, par); !bytes.Equal(gotPar, want) {
		t.Errorf("parallel QuickConfig summary diverges from %s", goldenPath)
	}
}
