// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 1 (the update traces), Table 2 (the USM weight
// settings), Figure 3 (access and update distributions, original versus
// UNIT-degraded), Figure 4 (naive USM = success ratio across nine
// trace cells), Figure 5 (USM under non-zero penalties) and Figure 6
// (outcome-ratio decomposition). Each driver returns structured rows and
// can render the same series the paper plots.
package experiments

import (
	"fmt"

	"unitdb/internal/baseline"
	"unitdb/internal/baseline/qmf"
	"unitdb/internal/core"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/workload"
)

// PolicyName identifies one of the four compared algorithms.
type PolicyName string

// The four algorithms of the evaluation.
const (
	IMU  PolicyName = "IMU"
	ODU  PolicyName = "ODU"
	QMF  PolicyName = "QMF"
	UNIT PolicyName = "UNIT"
)

// AllPolicies lists the algorithms in the paper's presentation order.
func AllPolicies() []PolicyName { return []PolicyName{IMU, ODU, QMF, UNIT} }

// Config parameterizes an experiment run.
type Config struct {
	// Query is the query-trace configuration shared by every cell.
	Query workload.QueryConfig
	// QuerySeed and UpdateSeed drive trace synthesis; PolicySeed drives
	// policy randomness (lottery, tie breaks, QMF's admission gate).
	QuerySeed  uint64
	UpdateSeed uint64
	PolicySeed uint64
	// EngineSeed drives the engine's update-feed phasing.
	EngineSeed uint64
	// Workers bounds how many experiment cells run concurrently: 0 (the
	// default) uses one worker per GOMAXPROCS, 1 forces the reference
	// sequential path, larger values cap the pool. Every setting
	// produces reflect.DeepEqual-identical results — cell seeds are
	// derived from the stable (suite, cell) name, never from execution
	// order (see CellSeeds and package runner).
	Workers int
	// Shards partitions every cell's run across N engine shards behind
	// the front-door router (engine.RunSharded). Values <= 1 run the
	// plain single engine, bitwise-identical to the pre-sharding path;
	// each shard's seeds derive from the cell seeds by shard index, so
	// results replay identically at any worker count for a fixed shard
	// count.
	Shards int
}

// DefaultConfig returns the full-scale experiment configuration.
func DefaultConfig() Config {
	return Config{
		Query:      workload.DefaultQueryConfig(),
		QuerySeed:  42,
		UpdateSeed: 43,
		PolicySeed: 1,
		EngineSeed: 7,
	}
}

// QuickConfig returns a reduced-scale configuration for tests and
// benchmarks (one tenth of the queries; shapes are noisier).
func QuickConfig() Config {
	c := DefaultConfig()
	c.Query = workload.SmallQueryConfig()
	return c
}

// NewPolicy builds a fresh policy instance by name for the given weights.
func NewPolicy(name PolicyName, weights usm.Weights, seed uint64) (engine.Policy, error) {
	switch name {
	case IMU:
		return baseline.NewIMU(), nil
	case ODU:
		return baseline.NewODU(), nil
	case QMF:
		cfg := qmf.DefaultConfig()
		cfg.Seed = seed
		return qmf.New(cfg), nil
	case UNIT:
		cfg := core.DefaultConfig(weights)
		cfg.Seed = seed
		return core.New(cfg), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// RunCell executes one (trace, policy, weights) cell with the config's
// raw PolicySeed/EngineSeed. The artifact drivers use RunCellNamed
// instead, which decorrelates cells via per-(suite, cell) derived seeds;
// RunCell remains for one-off cells outside a named sweep.
func (c Config) RunCell(w *workload.Workload, name PolicyName, weights usm.Weights) (*engine.Results, error) {
	return c.runSeeded(w, name, weights, c.PolicySeed, c.EngineSeed)
}

// CellSeeds derives the policy and engine seeds of one named experiment
// cell from the stable (suite, cell) name:
//
//	policySeed = DeriveSeed(PolicySeed, "policy", suite, cell)
//	engineSeed = DeriveSeed(EngineSeed, "engine", suite, cell)
//
// Deriving from the name rather than a shared generator decorrelates the
// cells of a sweep and makes each cell's randomness independent of
// execution order — the invariant that lets the parallel runner promise
// DeepEqual-identical results at any worker count. Trace synthesis
// deliberately keeps the undecorated QuerySeed/UpdateSeed: every cell of
// every suite must evaluate the same shared traces (paper §4.1).
func (c Config) CellSeeds(suite, cell string) (policySeed, engineSeed uint64) {
	return runner.DeriveSeed(c.PolicySeed, "policy", suite, cell),
		runner.DeriveSeed(c.EngineSeed, "engine", suite, cell)
}

// RunCellNamed executes one named (trace, policy, weights) cell with
// seeds derived by CellSeeds.
func (c Config) RunCellNamed(suite, cell string, w *workload.Workload, name PolicyName, weights usm.Weights) (*engine.Results, error) {
	ps, es := c.CellSeeds(suite, cell)
	return c.runSeeded(w, name, weights, ps, es)
}

func (c Config) runSeeded(w *workload.Workload, name PolicyName, weights usm.Weights, policySeed, engineSeed uint64) (*engine.Results, error) {
	if c.Shards > 1 {
		return engine.RunSharded(engine.ShardedConfig{
			Shards:       c.Shards,
			Workload:     w,
			Weights:      weights,
			Seed:         engineSeed,
			PolicySeed:   policySeed,
			PhaseUpdates: true,
			Policy: func(_ int, seed uint64) (engine.Policy, error) {
				return NewPolicy(name, weights, seed)
			},
			// The sweep already fans cells across the pool; shards within a
			// cell run sequentially to keep the concurrency bounded by
			// Workers alone.
			Workers: 1,
		})
	}
	p, err := NewPolicy(name, weights, policySeed)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(engine.NewConfig(w, weights, engineSeed), p)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// pool returns the runner options for this config's sweeps.
func (c Config) pool() runner.Options { return runner.Options{Workers: c.Workers} }

// BuildQueryTrace synthesizes the shared query trace.
func (c Config) BuildQueryTrace() (*workload.Workload, error) {
	return workload.GenerateQueries(c.Query, c.QuerySeed)
}

// BuildCellTrace attaches one Table 1 update trace to the query trace.
func (c Config) BuildCellTrace(q *workload.Workload, v workload.Volume, d workload.Distribution) (*workload.Workload, error) {
	return workload.GenerateUpdates(q, workload.DefaultUpdateConfig(v, d), c.UpdateSeed)
}
