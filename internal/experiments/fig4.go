package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/workload"
)

// Fig4Cell is one bar of paper Figure 4: a (volume, distribution, policy)
// combination evaluated with the naive USM (all weights zero, so USM equals
// the success ratio).
type Fig4Cell struct {
	Volume       workload.Volume
	Distribution workload.Distribution
	Trace        string
	Policy       PolicyName
	USM          float64
	Results      *engine.Results
}

// Fig4Result groups the 36 cells by distribution, matching the paper's
// three panels (a) uniform, (b) positive, (c) negative correlation.
type Fig4Result struct {
	Cells []Fig4Cell
}

// Fig4 runs the naive-USM comparison over all nine update traces and the
// four algorithms (paper §4.3). The sweep fans out on the config's worker
// pool in two stages — synthesize the nine update traces, then run the
// 36 (trace, policy) cells — and assembles the cells in the paper's
// presentation order regardless of scheduling.
func Fig4(cfg Config) (*Fig4Result, error) {
	q, err := cfg.BuildQueryTrace()
	if err != nil {
		return nil, err
	}
	type traceSpec struct {
		v workload.Volume
		d workload.Distribution
	}
	var tspecs []traceSpec
	for _, d := range []workload.Distribution{workload.Uniform, workload.PositiveCorrelation, workload.NegativeCorrelation} {
		for _, v := range []workload.Volume{workload.Low, workload.Med, workload.High} {
			tspecs = append(tspecs, traceSpec{v: v, d: d})
		}
	}
	traces, err := runner.Map(cfg.pool(), tspecs, func(_ int, s traceSpec) (*workload.Workload, error) {
		return cfg.BuildCellTrace(q, s.v, s.d)
	})
	if err != nil {
		return nil, err
	}
	type cellSpec struct {
		traceSpec
		w *workload.Workload
		p PolicyName
	}
	var specs []cellSpec
	for i, t := range tspecs {
		for _, p := range AllPolicies() {
			specs = append(specs, cellSpec{traceSpec: t, w: traces[i], p: p})
		}
	}
	weights := usm.Weights{} // naive setting: USM == success ratio
	cells, err := runner.Map(cfg.pool(), specs, func(_ int, s cellSpec) (Fig4Cell, error) {
		r, err := cfg.RunCellNamed("fig4", s.w.Name+"/"+string(s.p), s.w, s.p, weights)
		if err != nil {
			return Fig4Cell{}, err
		}
		return Fig4Cell{
			Volume: s.v, Distribution: s.d, Trace: s.w.Name, Policy: s.p,
			USM: r.USM, Results: r,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Cells: cells}, nil
}

// Panel returns the cells of one distribution panel.
func (f *Fig4Result) Panel(d workload.Distribution) []Fig4Cell {
	var out []Fig4Cell
	for _, c := range f.Cells {
		if c.Distribution == d {
			out = append(out, c)
		}
	}
	return out
}

// Cell returns one cell, or nil when absent.
func (f *Fig4Result) Cell(v workload.Volume, d workload.Distribution, p PolicyName) *Fig4Cell {
	for i := range f.Cells {
		c := &f.Cells[i]
		if c.Volume == v && c.Distribution == d && c.Policy == p {
			return c
		}
	}
	return nil
}

// UNITWinsEverywhere reports whether UNIT has the strictly highest USM in
// every (volume, distribution) cell — the paper's headline Figure 4 claim.
func (f *Fig4Result) UNITWinsEverywhere() bool {
	for _, d := range []workload.Distribution{workload.Uniform, workload.PositiveCorrelation, workload.NegativeCorrelation} {
		for _, v := range []workload.Volume{workload.Low, workload.Med, workload.High} {
			unit := f.Cell(v, d, UNIT)
			if unit == nil {
				return false
			}
			for _, p := range []PolicyName{IMU, ODU, QMF} {
				if c := f.Cell(v, d, p); c == nil || c.USM >= unit.USM {
					return false
				}
			}
		}
	}
	return true
}

// MinRelativeImprovement returns, per distribution, UNIT's minimum relative
// improvement over the best competitor across the three volumes — the
// statistic the paper reports as "30%, 50% and 10% minimum relative
// improvement".
func (f *Fig4Result) MinRelativeImprovement(d workload.Distribution) float64 {
	min := 0.0
	first := true
	for _, v := range []workload.Volume{workload.Low, workload.Med, workload.High} {
		unit := f.Cell(v, d, UNIT)
		if unit == nil {
			continue
		}
		best := 0.0
		for _, p := range []PolicyName{IMU, ODU, QMF} {
			if c := f.Cell(v, d, p); c != nil && c.USM > best {
				best = c.USM
			}
		}
		if best <= 0 {
			continue // competitors at ~zero: improvement unbounded
		}
		imp := unit.USM/best - 1
		if first || imp < min {
			min = imp
			first = false
		}
	}
	return min
}

// WriteFig4 renders the three panels as the paper's bar groups.
func WriteFig4(w io.Writer, f *Fig4Result) error {
	for _, d := range []workload.Distribution{workload.Uniform, workload.PositiveCorrelation, workload.NegativeCorrelation} {
		fmt.Fprintf(w, "Figure 4 panel (%s): naive USM = success ratio\n", d)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "volume\tIMU\tODU\tQMF\tUNIT\twinner")
		for _, v := range []workload.Volume{workload.Low, workload.Med, workload.High} {
			line := fmt.Sprintf("%s", v)
			bestP, bestUSM := PolicyName(""), -1.0
			for _, p := range AllPolicies() {
				c := f.Cell(v, d, p)
				if c == nil {
					line += "\t-"
					continue
				}
				line += fmt.Sprintf("\t%.4f", c.USM)
				if c.USM > bestUSM {
					bestUSM, bestP = c.USM, p
				}
			}
			fmt.Fprintf(tw, "%s\t%s\n", line, bestP)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "UNIT minimum relative improvement over best competitor: %+.1f%%\n\n",
			100*f.MinRelativeImprovement(d))
	}
	return nil
}
