package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"unitdb/internal/core"
	"unitdb/internal/core/ufm"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/workload"
)

// SensitivityRow is one parameter value of the C_du sweep.
type SensitivityRow struct {
	CDu            float64
	USM            float64
	SuccessRatio   float64
	UpdatesApplied int
}

// SensitivityCDu reproduces the sensitivity analysis the paper cites from
// its technical report (§3.4.1: "sensitivity analysis in [17] has shown
// that the exact value of C_du does not have a significant effect to the
// average USM"): UNIT with naive weights on med-unif, sweeping the degrade
// step C_du.
func SensitivityCDu(cfg Config, values []float64) ([]SensitivityRow, error) {
	if len(values) == 0 {
		values = []float64{0.05, 0.1, 0.2, 0.4}
	}
	q, err := cfg.BuildQueryTrace()
	if err != nil {
		return nil, err
	}
	w, err := cfg.BuildCellTrace(q, workload.Med, workload.Uniform)
	if err != nil {
		return nil, err
	}
	return runner.Map(cfg.pool(), values, func(_ int, cdu float64) (SensitivityRow, error) {
		cell := fmt.Sprintf("cdu=%g", cdu)
		policySeed, engineSeed := cfg.CellSeeds("sens", cell)
		pcfg := core.DefaultConfig(usm.Weights{})
		pcfg.Seed = policySeed
		pcfg.ModulatorOptions = []ufm.Option{
			ufm.WithConstants(ufm.DefaultCForget, cdu, ufm.DefaultCUu),
		}
		e, err := engine.New(engine.NewConfig(w, usm.Weights{}, engineSeed), core.New(pcfg))
		if err != nil {
			return SensitivityRow{}, err
		}
		r, err := e.Run()
		if err != nil {
			return SensitivityRow{}, err
		}
		return SensitivityRow{
			CDu:            cdu,
			USM:            r.USM,
			SuccessRatio:   r.SuccessRatio,
			UpdatesApplied: r.UpdatesApplied,
		}, nil
	})
}

// Spread returns max−min USM across the rows — the sensitivity statistic.
func Spread(rows []SensitivityRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	min, max := rows[0].USM, rows[0].USM
	for _, r := range rows[1:] {
		if r.USM < min {
			min = r.USM
		}
		if r.USM > max {
			max = r.USM
		}
	}
	return max - min
}

// WriteSensitivity renders the sweep.
func WriteSensitivity(w io.Writer, rows []SensitivityRow) error {
	fmt.Fprintln(w, "C_du sensitivity (UNIT, naive weights, med-unif)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "C_du\tUSM\tsuccess\tupdates applied")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.3f\t%d\n", r.CDu, r.USM, r.SuccessRatio, r.UpdatesApplied)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "USM spread across C_du values: %.4f\n", Spread(rows))
	return nil
}
