package experiments

import (
	"math"
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/workload"
)

// accountingCells runs a small grid of (trace, policy, weights) cells and
// returns the full engine results, giving the property tests a varied set
// of real runs to check the USM bookkeeping on.
func accountingCells(t *testing.T) []*engine.Results {
	t.Helper()
	cfg := tinyConfig()
	q, err := cfg.BuildQueryTrace()
	if err != nil {
		t.Fatal(err)
	}
	var out []*engine.Results
	for _, d := range []workload.Distribution{workload.Uniform, workload.NegativeCorrelation} {
		w, err := cfg.BuildCellTrace(q, workload.Med, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range AllPolicies() {
			for _, weights := range []usm.Weights{
				{},
				{Cr: 0.8, Cfm: 0.2, Cfs: 0.2},
				{Cr: 1, Cfm: 4, Cfs: 1},
			} {
				r, err := cfg.RunCellNamed("accounting", w.Name+"/"+string(p), w, p, weights)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, r)
			}
		}
	}
	return out
}

// TestOutcomeConservation checks Eq. 4's precondition on every cell: the
// four outcome classes partition the submitted queries exactly —
// S + R + F_m + F_s == total submitted, with no query lost or double
// counted.
func TestOutcomeConservation(t *testing.T) {
	cfg := tinyConfig()
	for _, r := range accountingCells(t) {
		c := r.Counts
		if got := c.Success + c.Rejected + c.DMF + c.DSF; got != c.Total() {
			t.Fatalf("%s/%s: outcome sum %d != total %d", r.Policy, r.Trace, got, c.Total())
		}
		if c.Total() != cfg.Query.NumQueries {
			t.Errorf("%s/%s: accounted %d of %d submitted queries",
				r.Policy, r.Trace, c.Total(), cfg.Query.NumQueries)
		}
		if c.Success < 0 || c.Rejected < 0 || c.DMF < 0 || c.DSF < 0 {
			t.Fatalf("%s/%s: negative outcome count %+v", r.Policy, r.Trace, c)
		}
		// The reported ratios must be the counts over the total.
		rs, rr, rfm, rfs := c.Ratios()
		if sum := rs + rr + rfm + rfs; math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s/%s: outcome ratios sum to %v", r.Policy, r.Trace, sum)
		}
		if rs != r.SuccessRatio || rr != r.RejectionRatio || rfm != r.DMFRatio || rfs != r.DSFRatio {
			t.Errorf("%s/%s: results ratios disagree with counts", r.Policy, r.Trace)
		}
	}
}

// TestUSMRecomputation checks Eq. 5 on every cell: the engine's reported
// USM must equal the metric recomputed from the raw outcome counters and
// weights, USM = (S − C_r·R − C_fm·F_m − C_fs·F_s) / N.
func TestUSMRecomputation(t *testing.T) {
	for _, r := range accountingCells(t) {
		c := r.Counts
		n := float64(c.Total())
		want := (float64(c.Success) - r.Weights.Cr*float64(c.Rejected) -
			r.Weights.Cfm*float64(c.DMF) - r.Weights.Cfs*float64(c.DSF)) / n
		if math.Abs(r.USM-want) > 1e-12 {
			t.Errorf("%s/%s weights %+v: USM %v, recomputed %v",
				r.Policy, r.Trace, r.Weights, r.USM, want)
		}
		// The engine reports the incrementally-accumulated tally (one add
		// per query), so it may differ from the closed form by float
		// rounding — but never by more than accumulation noise.
		if math.Abs(r.USM-c.USM(r.Weights)) > 1e-9 {
			t.Errorf("%s/%s: Results.USM %v disagrees with Counts.USM %v",
				r.Policy, r.Trace, r.USM, c.USM(r.Weights))
		}
		// Eq. 5's attainable range: [−max penalty, 1].
		if r.USM > 1 || r.USM < -r.Weights.MaxPenalty() {
			t.Errorf("%s/%s: USM %v outside [−%v, 1]", r.Policy, r.Trace, r.USM, r.Weights.MaxPenalty())
		}
		// Naive weights degenerate to the success ratio (paper §4.3).
		if r.Weights.Zero() && math.Abs(r.USM-r.SuccessRatio) > 1e-12 {
			t.Errorf("%s/%s: naive USM %v != success ratio %v", r.Policy, r.Trace, r.USM, r.SuccessRatio)
		}
	}
}

// TestFreshnessInUnitInterval checks Eq. 1's range on every cell: data
// freshness is a fraction of intervals, so the average over committed
// queries must stay within (0, 1] whenever anything committed.
func TestFreshnessInUnitInterval(t *testing.T) {
	for _, r := range accountingCells(t) {
		if r.Counts.Success == 0 {
			continue
		}
		if r.AvgFreshness <= 0 || r.AvgFreshness > 1 {
			t.Errorf("%s/%s: avg freshness %v outside (0, 1]", r.Policy, r.Trace, r.AvgFreshness)
		}
	}
}
