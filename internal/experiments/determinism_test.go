package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// workerCounts are the pool sizes the determinism regression pins:
// the sequential reference path, a small fixed pool, and whatever the
// host offers. GOMAXPROCS(0) may coincide with 1 or 2 on small runners —
// the duplication is harmless.
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// runAllSuites executes every artifact driver at the given worker count
// and returns the digested results. Digests carry the raw outcome counts
// and exact float USMs, so DeepEqual on them is as strict as DeepEqual on
// the full Results graphs for the determinism claim.
func runAllSuites(t *testing.T, cfg Config, workers int) *Summary {
	t.Helper()
	cfg.Workers = workers
	s, err := BuildSummary(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return s
}

// TestParallelMatchesSequential is the tentpole regression: every suite,
// run on the parallel pool, must be reflect.DeepEqual-identical to the
// sequential reference path at any worker count.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := tinyConfig()
	ref := runAllSuites(t, cfg, 1)
	for _, w := range workerCounts()[1:] {
		got := runAllSuites(t, cfg, w)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: summary differs from sequential run", w)
		}
	}
	// Workers=0 (the default) resolves to GOMAXPROCS and must also match.
	if got := runAllSuites(t, cfg, 0); !reflect.DeepEqual(got, ref) {
		t.Error("workers=0 (GOMAXPROCS default): summary differs from sequential run")
	}
}

// TestParallelMatchesSequentialFullResults re-runs one suite comparing
// the complete Results graphs (per-item counters included), not just the
// digests, to rule out divergence the summary would hide.
func TestParallelMatchesSequentialFullResults(t *testing.T) {
	cfg := tinyConfig()
	run := func(workers int) *Fig4Result {
		c := cfg
		c.Workers = workers
		f, err := Fig4(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return f
	}
	ref := run(1)
	for _, w := range workerCounts()[1:] {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: Fig4 full results differ from sequential run", w)
		}
	}
}

// TestRepeatedRunsIdentical pins that the same config yields the same
// summary twice in a row at the same worker count — scheduling noise in
// one parallel run must not leak into results.
func TestRepeatedRunsIdentical(t *testing.T) {
	cfg := tinyConfig()
	a := runAllSuites(t, cfg, 2)
	b := runAllSuites(t, cfg, 2)
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical parallel runs disagree")
	}
}

// TestCellSeedsDecorrelated pins that different cells of a suite draw
// different derived seeds, and that the same cell name draws the same
// seeds no matter when it is asked.
func TestCellSeedsDecorrelated(t *testing.T) {
	cfg := tinyConfig()
	p1, e1 := cfg.CellSeeds("fig4", "med-unif/UNIT")
	p2, e2 := cfg.CellSeeds("fig4", "med-unif/UNIT")
	if p1 != p2 || e1 != e2 {
		t.Fatal("CellSeeds is not stable for a fixed name")
	}
	p3, e3 := cfg.CellSeeds("fig4", "med-unif/QMF")
	if p1 == p3 || e1 == e3 {
		t.Fatal("distinct cells share derived seeds")
	}
	p4, _ := cfg.CellSeeds("fig5", "med-unif/UNIT")
	if p1 == p4 {
		t.Fatal("same cell name in different suites shares a policy seed")
	}
	if p1 == e1 {
		t.Fatal("policy and engine domains collide")
	}
}
