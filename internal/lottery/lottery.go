// Package lottery implements Waldspurger-style proportional-share
// scheduling primitives: a lottery sampler backed by an augmented segment
// tree, and stride scheduling for deterministic proportional selection.
//
// UNIT's Update Frequency Modulation (paper §3.4.1) holds one ticket value
// per data item and repeatedly draws a "victim" item with probability
// proportional to T_j − T_min (ticket values can be negative, so the paper
// shifts them by the minimum before drawing). The segment tree keeps the
// sum and minimum of tickets per subtree, so both the shift and the draw
// are O(log N) — matching the complexity the paper cites for lottery
// scheduling — without ever materializing the shifted ticket vector.
package lottery

import (
	"fmt"
	"math"
)

// Sampler draws indices in [0, n) with probability proportional to
// tickets[i] − min(tickets). When every ticket is equal the shifted weights
// are all zero and the draw falls back to uniform.
type Sampler struct {
	n    int
	size int // number of leaves in the complete tree (power of two >= n)
	sum  []float64
	min  []float64
	cnt  []int
}

// NewSampler creates a sampler for n items with all tickets zero.
// It panics when n <= 0.
func NewSampler(n int) *Sampler {
	if n <= 0 {
		panic("lottery: sampler needs at least one item")
	}
	size := 1
	for size < n {
		size *= 2
	}
	s := &Sampler{
		n:    n,
		size: size,
		sum:  make([]float64, 2*size),
		min:  make([]float64, 2*size),
		cnt:  make([]int, 2*size),
	}
	for i := 0; i < size; i++ {
		leaf := size + i
		if i < n {
			s.cnt[leaf] = 1
			s.min[leaf] = 0
		} else {
			s.min[leaf] = math.Inf(1) // padding leaves never count
		}
	}
	for i := size - 1; i >= 1; i-- {
		s.pull(i)
	}
	return s
}

func (s *Sampler) pull(i int) {
	l, r := 2*i, 2*i+1
	s.sum[i] = s.sum[l] + s.sum[r]
	s.min[i] = math.Min(s.min[l], s.min[r])
	s.cnt[i] = s.cnt[l] + s.cnt[r]
}

// Len returns the number of items.
func (s *Sampler) Len() int { return s.n }

// Ticket returns the ticket value of item i.
func (s *Sampler) Ticket(i int) float64 {
	s.check(i)
	return s.sum[s.size+i]
}

// Set assigns the ticket value of item i.
func (s *Sampler) Set(i int, ticket float64) {
	s.check(i)
	leaf := s.size + i
	s.sum[leaf] = ticket
	s.min[leaf] = ticket
	for leaf /= 2; leaf >= 1; leaf /= 2 {
		s.pull(leaf)
	}
}

// Add adds delta to the ticket value of item i.
func (s *Sampler) Add(i int, delta float64) { s.Set(i, s.Ticket(i)+delta) }

// Scale multiplies every ticket by factor. This is O(n) and implements the
// exponential forgetting sweep (paper Eq. 8 applies the forgetting factor
// on every event touching an item; ScaleAll supports batch decay variants).
func (s *Sampler) Scale(factor float64) {
	for i := 0; i < s.n; i++ {
		leaf := s.size + i
		s.sum[leaf] *= factor
		s.min[leaf] = s.sum[leaf]
	}
	for i := s.size - 1; i >= 1; i-- {
		s.pull(i)
	}
}

// Sum returns the sum of all tickets.
func (s *Sampler) Sum() float64 { return s.sum[1] }

// Min returns the minimum ticket value.
func (s *Sampler) Min() float64 { return s.min[1] }

// EffectiveTotal returns the total shifted weight, Σ(T_i − T_min).
func (s *Sampler) EffectiveTotal() float64 {
	return s.sum[1] - float64(s.cnt[1])*s.min[1]
}

// Sample draws one index using the uniform variate u in [0, 1). Items are
// weighted by T_i − T_min; if that is zero for every item the draw is
// uniform. It panics when u is outside [0, 1).
func (s *Sampler) Sample(u float64) int {
	if u < 0 || u >= 1 {
		panic(fmt.Sprintf("lottery: uniform variate %v out of [0,1)", u))
	}
	gmin := s.min[1]
	total := s.sum[1] - float64(s.cnt[1])*gmin
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return int(u * float64(s.n)) // uniform fallback
	}
	r := u * total
	node := 1
	for node < s.size {
		l := 2 * node
		effL := s.sum[l] - float64(s.cnt[l])*gmin
		if effL < 0 {
			effL = 0 // guard against floating point drift
		}
		if r < effL {
			node = l
		} else {
			r -= effL
			node = l + 1
		}
	}
	i := node - s.size
	if i >= s.n { // drift into a padding leaf; clamp to last real item
		i = s.n - 1
	}
	return i
}

// Weight returns the shifted weight of item i, T_i − T_min, the quantity
// the draw is proportional to.
func (s *Sampler) Weight(i int) float64 { return s.Ticket(i) - s.min[1] }

func (s *Sampler) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("lottery: index %d out of range [0,%d)", i, s.n))
	}
}
