// Package lottery implements Waldspurger-style proportional-share
// scheduling primitives: a lottery sampler backed by an augmented segment
// tree, and stride scheduling for deterministic proportional selection.
//
// UNIT's Update Frequency Modulation (paper §3.4.1) holds one ticket value
// per data item and repeatedly draws a "victim" item with probability
// proportional to T_j − T_min (ticket values can be negative, so the paper
// shifts them by the minimum before drawing). The segment tree keeps the
// sum and minimum of tickets per subtree, so both the shift and the draw
// are O(log N) — matching the complexity the paper cites for lottery
// scheduling — without ever materializing the shifted ticket vector.
package lottery

import (
	"fmt"
	"math"
)

// node is one segment-tree node. The three augmentations live side by
// side so a root-to-leaf walk touches one cache line per level instead of
// three (they used to be parallel []float64/[]int arrays); cnt is stored
// as float64 because it only ever appears in cnt*min products.
type node struct {
	sum float64 // Σ tickets in the subtree
	min float64 // min ticket in the subtree (+Inf for padding leaves)
	cnt float64 // number of real leaves in the subtree
}

// Sampler draws indices in [0, n) with probability proportional to
// tickets[i] − min(tickets). When every ticket is equal the shifted weights
// are all zero and the draw falls back to uniform.
type Sampler struct {
	n     int
	size  int // number of leaves in the complete tree (power of two >= n)
	nodes []node
}

// NewSampler creates a sampler for n items with all tickets zero.
// It panics when n <= 0.
func NewSampler(n int) *Sampler {
	if n <= 0 {
		panic("lottery: sampler needs at least one item")
	}
	size := 1
	for size < n {
		size *= 2
	}
	s := &Sampler{
		n:     n,
		size:  size,
		nodes: make([]node, 2*size),
	}
	for i := 0; i < size; i++ {
		leaf := size + i
		if i < n {
			s.nodes[leaf].cnt = 1
			s.nodes[leaf].min = 0
		} else {
			s.nodes[leaf].min = math.Inf(1) // padding leaves never count
		}
	}
	for i := size - 1; i >= 1; i-- {
		s.pull(i)
	}
	return s
}

func (s *Sampler) pull(i int) {
	s.pullDyn(i)
	s.nodes[i].cnt = s.nodes[2*i].cnt + s.nodes[2*i+1].cnt
}

// pullDyn recomputes the dynamic augmentations (sum, min) of node i. The
// leaf count of a subtree is fixed at construction, so the per-Set and
// per-Scale walks skip it.
func (s *Sampler) pullDyn(i int) {
	l, r := &s.nodes[2*i], &s.nodes[2*i+1]
	n := &s.nodes[i]
	n.sum = l.sum + r.sum
	if l.min <= r.min {
		n.min = l.min
	} else {
		n.min = r.min
	}
}

// Len returns the number of items.
func (s *Sampler) Len() int { return s.n }

// Ticket returns the ticket value of item i.
func (s *Sampler) Ticket(i int) float64 {
	s.check(i)
	return s.nodes[s.size+i].sum
}

// Set assigns the ticket value of item i.
func (s *Sampler) Set(i int, ticket float64) {
	s.check(i)
	leaf := s.size + i
	s.nodes[leaf].sum = ticket
	s.nodes[leaf].min = ticket
	for leaf /= 2; leaf >= 1; leaf /= 2 {
		s.pullDyn(leaf)
	}
}

// Add adds delta to the ticket value of item i.
func (s *Sampler) Add(i int, delta float64) { s.Set(i, s.Ticket(i)+delta) }

// Scale multiplies every ticket by factor. This is O(n) and implements the
// exponential forgetting sweep (paper Eq. 8 applies the forgetting factor
// on every event touching an item; ScaleAll supports batch decay variants).
func (s *Sampler) Scale(factor float64) {
	for i := 0; i < s.n; i++ {
		leaf := &s.nodes[s.size+i]
		leaf.sum *= factor
		leaf.min = leaf.sum
	}
	for i := s.size - 1; i >= 1; i-- {
		s.pullDyn(i)
	}
}

// Sum returns the sum of all tickets.
func (s *Sampler) Sum() float64 { return s.nodes[1].sum }

// Min returns the minimum ticket value.
func (s *Sampler) Min() float64 { return s.nodes[1].min }

// EffectiveTotal returns the total shifted weight, Σ(T_i − T_min).
func (s *Sampler) EffectiveTotal() float64 {
	return s.nodes[1].sum - s.nodes[1].cnt*s.nodes[1].min
}

// Sample draws one index using the uniform variate u in [0, 1). Items are
// weighted by T_i − T_min; if that is zero for every item the draw is
// uniform. It panics when u is outside [0, 1).
func (s *Sampler) Sample(u float64) int {
	if u < 0 || u >= 1 {
		panic(fmt.Sprintf("lottery: uniform variate %v out of [0,1)", u))
	}
	gmin := s.nodes[1].min
	total := s.nodes[1].sum - s.nodes[1].cnt*gmin
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return int(u * float64(s.n)) // uniform fallback
	}
	r := u * total
	node := 1
	for node < s.size {
		l := 2 * node
		ln := &s.nodes[l]
		effL := ln.sum - ln.cnt*gmin
		if effL < 0 {
			effL = 0 // guard against floating point drift
		}
		if r < effL {
			node = l
		} else {
			r -= effL
			node = l + 1
		}
	}
	i := node - s.size
	if i >= s.n { // drift into a padding leaf; clamp to last real item
		i = s.n - 1
	}
	return i
}

// Weight returns the shifted weight of item i, T_i − T_min, the quantity
// the draw is proportional to.
func (s *Sampler) Weight(i int) float64 { return s.Ticket(i) - s.nodes[1].min }

func (s *Sampler) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("lottery: index %d out of range [0,%d)", i, s.n))
	}
}
