package lottery

import (
	"container/heap"
	"fmt"
)

// Stride implements stride scheduling, the deterministic counterpart of
// lottery scheduling from the same Waldspurger report the paper cites.
// Clients with larger ticket allocations are selected proportionally more
// often, with bounded (O(1)) allocation error instead of the lottery's
// statistical error. It is provided for ablations against the randomized
// victim selection in UNIT's update modulation.
type Stride struct {
	h strideHeap
}

const strideScale = 1 << 20

type strideClient struct {
	id     int
	pass   float64
	stride float64
	index  int // heap index
}

type strideHeap []*strideClient

func (h strideHeap) Len() int { return len(h) }
func (h strideHeap) Less(i, j int) bool {
	if h[i].pass != h[j].pass {
		return h[i].pass < h[j].pass
	}
	return h[i].id < h[j].id
}
func (h strideHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *strideHeap) Push(x any) {
	c := x.(*strideClient)
	c.index = len(*h)
	*h = append(*h, c)
}
func (h *strideHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// NewStride creates an empty stride scheduler.
func NewStride() *Stride { return &Stride{} }

// Join adds a client with the given id and ticket allocation.
// It panics when tickets <= 0.
func (s *Stride) Join(id int, tickets float64) {
	if tickets <= 0 {
		panic(fmt.Sprintf("lottery: stride client %d with non-positive tickets %v", id, tickets))
	}
	c := &strideClient{id: id, stride: strideScale / tickets}
	// New arrivals start at the current minimum pass so they cannot
	// monopolize nor starve.
	if s.h.Len() > 0 {
		c.pass = s.h[0].pass
	}
	heap.Push(&s.h, c)
}

// Len returns the number of clients.
func (s *Stride) Len() int { return s.h.Len() }

// Next returns the id of the next scheduled client and advances its pass.
// It panics when the scheduler is empty.
func (s *Stride) Next() int {
	if s.h.Len() == 0 {
		panic("lottery: Next on empty stride scheduler")
	}
	c := s.h[0]
	c.pass += c.stride
	heap.Fix(&s.h, 0)
	return c.id
}

// Leave removes the client with the given id; it reports whether the client
// was present.
func (s *Stride) Leave(id int) bool {
	for _, c := range s.h {
		if c.id == id {
			heap.Remove(&s.h, c.index)
			return true
		}
	}
	return false
}
