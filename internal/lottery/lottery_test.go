package lottery

import (
	"math"
	"testing"
	"testing/quick"

	"unitdb/internal/stats"
)

func TestNewSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(0) did not panic")
		}
	}()
	NewSampler(0)
}

func TestSetTicketRoundTrip(t *testing.T) {
	s := NewSampler(5)
	for i := 0; i < 5; i++ {
		s.Set(i, float64(i)*1.5-2)
	}
	for i := 0; i < 5; i++ {
		if got := s.Ticket(i); got != float64(i)*1.5-2 {
			t.Fatalf("Ticket(%d) = %v", i, got)
		}
	}
}

func TestSumMinInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(40)
		s := NewSampler(n)
		ref := make([]float64, n)
		for op := 0; op < 100; op++ {
			i := rng.Intn(n)
			v := rng.Normal(0, 10)
			switch rng.Intn(3) {
			case 0:
				s.Set(i, v)
				ref[i] = v
			case 1:
				s.Add(i, v)
				ref[i] += v
			case 2:
				s.Scale(0.9)
				for j := range ref {
					ref[j] *= 0.9
				}
			}
			sum, min := 0.0, math.Inf(1)
			for _, x := range ref {
				sum += x
				if x < min {
					min = x
				}
			}
			if math.Abs(s.Sum()-sum) > 1e-6 || math.Abs(s.Min()-min) > 1e-9 {
				return false
			}
			if math.Abs(s.EffectiveTotal()-(sum-float64(n)*min)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleProportions(t *testing.T) {
	// Tickets 0, 10, 30: shifted weights 0, 10, 30 -> item 0 never drawn,
	// items 1 and 2 drawn 1:3.
	s := NewSampler(3)
	s.Set(1, 10)
	s.Set(2, 30)
	rng := stats.NewRNG(5)
	counts := make([]int, 3)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng.Float64())]++
	}
	if counts[0] != 0 {
		t.Fatalf("minimum-ticket item drawn %d times", counts[0])
	}
	got := float64(counts[2]) / float64(counts[1])
	if math.Abs(got-3) > 0.1 {
		t.Fatalf("draw ratio %v, want ~3", got)
	}
}

func TestSampleNegativeTickets(t *testing.T) {
	// Shift-by-min must handle all-negative tickets: -30, -20, -10 gives
	// shifted weights 0, 10, 20.
	s := NewSampler(3)
	s.Set(0, -30)
	s.Set(1, -20)
	s.Set(2, -10)
	rng := stats.NewRNG(6)
	counts := make([]int, 3)
	for i := 0; i < 150000; i++ {
		counts[s.Sample(rng.Float64())]++
	}
	if counts[0] != 0 {
		t.Fatalf("min item drawn %d times", counts[0])
	}
	got := float64(counts[2]) / float64(counts[1])
	if math.Abs(got-2) > 0.1 {
		t.Fatalf("ratio %v, want ~2", got)
	}
}

func TestSampleUniformFallback(t *testing.T) {
	s := NewSampler(4)
	for i := 0; i < 4; i++ {
		s.Set(i, 7) // all equal -> zero shifted weight everywhere
	}
	rng := stats.NewRNG(7)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.Sample(rng.Float64())]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("uniform fallback skewed: item %d drawn %d/40000", i, c)
		}
	}
}

func TestSampleAlwaysInRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(33) // exercise non-power-of-two padding
		s := NewSampler(n)
		for i := 0; i < n; i++ {
			s.Set(i, rng.Normal(0, 5))
		}
		for d := 0; d < 200; d++ {
			i := s.Sample(rng.Float64())
			if i < 0 || i >= n {
				return false
			}
			// The global minimum item must never be drawn unless all are equal.
			if s.EffectiveTotal() > 1e-9 && s.Weight(i) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsOnBadVariate(t *testing.T) {
	s := NewSampler(2)
	for _, u := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sample(%v) did not panic", u)
				}
			}()
			s.Sample(u)
		}()
	}
}

func TestIndexPanics(t *testing.T) {
	s := NewSampler(3)
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ticket(%d) did not panic", i)
				}
			}()
			s.Ticket(i)
		}()
	}
}

func TestStrideProportional(t *testing.T) {
	s := NewStride()
	s.Join(0, 100)
	s.Join(1, 300)
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		counts[s.Next()]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.05 {
		t.Fatalf("stride ratio %v, want 3", ratio)
	}
}

func TestStrideLeave(t *testing.T) {
	s := NewStride()
	s.Join(0, 10)
	s.Join(1, 10)
	if !s.Leave(0) {
		t.Fatal("Leave(0) = false")
	}
	if s.Leave(0) {
		t.Fatal("double Leave(0) = true")
	}
	for i := 0; i < 10; i++ {
		if got := s.Next(); got != 1 {
			t.Fatalf("Next = %d after removing 0", got)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStridePanics(t *testing.T) {
	s := NewStride()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Next on empty did not panic")
			}
		}()
		s.Next()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Join with zero tickets did not panic")
			}
		}()
		s.Join(1, 0)
	}()
}

func TestStrideLateJoinerNotStarved(t *testing.T) {
	s := NewStride()
	s.Join(0, 10)
	for i := 0; i < 100; i++ {
		s.Next()
	}
	s.Join(1, 10)
	seen := map[int]int{}
	for i := 0; i < 100; i++ {
		seen[s.Next()]++
	}
	if seen[1] < 40 {
		t.Fatalf("late joiner got %d/100 slots", seen[1])
	}
	if seen[0] < 40 {
		t.Fatalf("late joiner monopolized: incumbent got %d/100", seen[0])
	}
}
