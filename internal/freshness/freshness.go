// Package freshness implements the three classes of data-freshness metrics
// surveyed in paper §2.2: lag-based (the one UNIT uses, Eq. 1), time-based,
// and divergence-based. Each tracker scores a single data item in (0, 1];
// query freshness aggregates item scores with a strict minimum.
package freshness

import "fmt"

// Tracker scores the freshness of one data item in (0, 1].
type Tracker interface {
	// Value returns the current freshness score at the given time.
	Value(now float64) float64
}

// Lag is the lag-based tracker of paper Eq. 1: with k updates dropped since
// the last applied one, freshness is 1/(1+k). This is the metric UNIT
// optimizes, suitable for periodic full-value refresh feeds.
type Lag struct {
	drops int
}

// NewLag returns a fully fresh lag tracker.
func NewLag() *Lag { return &Lag{} }

// Drop records one dropped (skipped) update.
func (l *Lag) Drop() { l.drops++ }

// Apply records a successfully applied update, which supersedes everything
// dropped before it.
func (l *Lag) Apply() { l.drops = 0 }

// Drops returns the number of updates dropped since the last applied one
// (Udrop in the paper).
func (l *Lag) Drops() int { return l.drops }

// Value implements Tracker; now is ignored for lag-based freshness.
func (l *Lag) Value(now float64) float64 { return 1 / (1 + float64(l.drops)) }

// TimeBased scores freshness by age: 1 at an update and decaying linearly
// to 0 at maxAge. Useful when update feeds are aperiodic.
type TimeBased struct {
	lastUpdate float64
	maxAge     float64
}

// NewTimeBased builds a time-based tracker; maxAge must be positive.
func NewTimeBased(maxAge float64) *TimeBased {
	if maxAge <= 0 {
		panic(fmt.Sprintf("freshness: non-positive maxAge %v", maxAge))
	}
	return &TimeBased{maxAge: maxAge}
}

// Apply records an update applied at time now.
func (t *TimeBased) Apply(now float64) { t.lastUpdate = now }

// Value implements Tracker.
func (t *TimeBased) Value(now float64) float64 {
	age := now - t.lastUpdate
	if age <= 0 {
		return 1
	}
	if age >= t.maxAge {
		return 0
	}
	return 1 - age/t.maxAge
}

// Divergence scores freshness by value distance between the stored copy and
// the live source: 1 when identical, decaying linearly to 0 at tolerance.
type Divergence struct {
	stored    float64
	live      float64
	tolerance float64
}

// NewDivergence builds a divergence-based tracker; tolerance must be
// positive.
func NewDivergence(tolerance float64) *Divergence {
	if tolerance <= 0 {
		panic(fmt.Sprintf("freshness: non-positive tolerance %v", tolerance))
	}
	return &Divergence{tolerance: tolerance}
}

// Apply stores a refreshed copy of the live value.
func (d *Divergence) Apply(value float64) {
	d.stored = value
	d.live = value
}

// SourceChanged records a change at the source that has not been applied.
func (d *Divergence) SourceChanged(value float64) { d.live = value }

// Value implements Tracker.
func (d *Divergence) Value(now float64) float64 {
	diff := d.live - d.stored
	if diff < 0 {
		diff = -diff
	}
	if diff >= d.tolerance {
		return 0
	}
	return 1 - diff/d.tolerance
}

// MinAggregate returns the strict-minimum aggregate of the given item
// scores, the paper's Qu(q_i) = min_j Qu(d_j). An empty slice aggregates to
// 1 (a query touching no data is vacuously fresh).
func MinAggregate(scores []float64) float64 {
	min := 1.0
	for _, s := range scores {
		if s < min {
			min = s
		}
	}
	return min
}

// LagQueryFreshness computes Eq. 1 directly from per-item drop counts.
func LagQueryFreshness(drops []int) float64 {
	min := 1.0
	for _, k := range drops {
		v := 1 / (1 + float64(k))
		if v < min {
			min = v
		}
	}
	return min
}
