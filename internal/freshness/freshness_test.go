package freshness

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLagFreshSequence(t *testing.T) {
	l := NewLag()
	if l.Value(0) != 1 {
		t.Fatal("new item must be fully fresh")
	}
	l.Drop()
	if l.Value(0) != 0.5 {
		t.Fatalf("1 drop -> %v, want 0.5", l.Value(0))
	}
	l.Drop()
	if math.Abs(l.Value(0)-1.0/3) > 1e-12 {
		t.Fatalf("2 drops -> %v", l.Value(0))
	}
	if l.Drops() != 2 {
		t.Fatalf("Drops = %d", l.Drops())
	}
	l.Apply()
	if l.Value(0) != 1 || l.Drops() != 0 {
		t.Fatal("apply must reset staleness")
	}
}

func TestLagMonotoneProperty(t *testing.T) {
	// Freshness is strictly decreasing in drops and always in (0, 1].
	f := func(nRaw uint8) bool {
		l := NewLag()
		prev := l.Value(0)
		for i := 0; i < int(nRaw%100); i++ {
			l.Drop()
			v := l.Value(0)
			if v <= 0 || v > 1 || v >= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeBased(t *testing.T) {
	tb := NewTimeBased(10)
	tb.Apply(100)
	if tb.Value(100) != 1 {
		t.Fatal("fresh right after apply")
	}
	if got := tb.Value(105); got != 0.5 {
		t.Fatalf("half-life freshness = %v", got)
	}
	if tb.Value(110) != 0 || tb.Value(200) != 0 {
		t.Fatal("stale beyond maxAge")
	}
	if tb.Value(99) != 1 {
		t.Fatal("clock before apply should read fresh")
	}
}

func TestTimeBasedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero maxAge did not panic")
		}
	}()
	NewTimeBased(0)
}

func TestDivergence(t *testing.T) {
	d := NewDivergence(4)
	d.Apply(10)
	if d.Value(0) != 1 {
		t.Fatal("fresh after apply")
	}
	d.SourceChanged(12)
	if got := d.Value(0); got != 0.5 {
		t.Fatalf("divergence 2/4 -> %v", got)
	}
	d.SourceChanged(6) // |6-10| = 4 >= tolerance
	if d.Value(0) != 0 {
		t.Fatal("beyond tolerance must be 0")
	}
	d.Apply(6)
	if d.Value(0) != 1 {
		t.Fatal("re-apply restores freshness")
	}
}

func TestDivergencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive tolerance did not panic")
		}
	}()
	NewDivergence(-1)
}

func TestMinAggregate(t *testing.T) {
	if MinAggregate(nil) != 1 {
		t.Fatal("empty read set is vacuously fresh")
	}
	if got := MinAggregate([]float64{1, 0.5, 0.9}); got != 0.5 {
		t.Fatalf("min aggregate = %v", got)
	}
}

func TestLagQueryFreshness(t *testing.T) {
	// Eq. 1: min over items of 1/(1+drops).
	if got := LagQueryFreshness([]int{0, 0}); got != 1 {
		t.Fatalf("no drops -> %v", got)
	}
	if got := LagQueryFreshness([]int{0, 1, 3}); got != 0.25 {
		t.Fatalf("worst item dominates: %v", got)
	}
	if got := LagQueryFreshness(nil); got != 1 {
		t.Fatalf("empty -> %v", got)
	}
}

func TestTrackerInterfaces(t *testing.T) {
	var _ Tracker = NewLag()
	var _ Tracker = NewTimeBased(1)
	var _ Tracker = NewDivergence(1)
}
