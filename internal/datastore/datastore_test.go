package datastore

import (
	"testing"
	"testing/quick"

	"unitdb/internal/stats"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestApplyUpdateAdvancesVersion(t *testing.T) {
	s := New(4)
	s.ApplyUpdate(2, 3.14, 1.0)
	v, ver := s.Get(2)
	if v != 3.14 || ver != 1 {
		t.Fatalf("Get = (%v,%d)", v, ver)
	}
	s.ApplyUpdate(2, 2.71, 2.0)
	_, ver = s.Get(2)
	if ver != 2 {
		t.Fatalf("version = %d", ver)
	}
}

func TestFreshnessLifecycle(t *testing.T) {
	s := New(3)
	if s.ItemFreshness(0) != 1 {
		t.Fatal("new item fresh")
	}
	s.DropUpdate(0)
	if s.ItemFreshness(0) != 0.5 || s.Drops(0) != 1 {
		t.Fatalf("after drop: fresh=%v drops=%d", s.ItemFreshness(0), s.Drops(0))
	}
	s.ApplyUpdate(0, 1, 1)
	if s.ItemFreshness(0) != 1 || s.Drops(0) != 0 {
		t.Fatal("apply must supersede drops")
	}
}

func TestQueryFreshnessIsMin(t *testing.T) {
	s := New(3)
	s.DropUpdate(1)
	s.DropUpdate(1)
	s.DropUpdate(2)
	if got := s.QueryFreshness([]int{0}); got != 1 {
		t.Fatalf("fresh item -> %v", got)
	}
	if got := s.QueryFreshness([]int{0, 2}); got != 0.5 {
		t.Fatalf("min -> %v", got)
	}
	if got := s.QueryFreshness([]int{0, 1, 2}); got != 1.0/3 {
		t.Fatalf("min -> %v", got)
	}
	if got := s.QueryFreshness(nil); got != 1 {
		t.Fatalf("empty read set -> %v", got)
	}
}

func TestCounters(t *testing.T) {
	s := New(4)
	s.RecordAccess(1)
	s.RecordAccess(1)
	s.RecordAccess(3)
	s.ApplyUpdate(0, 1, 0)
	s.DropUpdate(0)
	s.DropUpdate(2)
	acc, app, drop := s.Totals()
	if acc != 3 || app != 1 || drop != 2 {
		t.Fatalf("totals = %d,%d,%d", acc, app, drop)
	}
	if a := s.AccessCounts(); a[1] != 2 || a[3] != 1 || a[0] != 0 {
		t.Fatalf("access counts = %v", a)
	}
	if a := s.AppliedCounts(); a[0] != 1 {
		t.Fatalf("applied counts = %v", a)
	}
	if a := s.DroppedCounts(); a[0] != 1 || a[2] != 1 {
		t.Fatalf("dropped counts = %v", a)
	}
}

func TestCountersAreCopies(t *testing.T) {
	s := New(2)
	s.RecordAccess(0)
	a := s.AccessCounts()
	a[0] = 999
	if s.AccessCounts()[0] != 1 {
		t.Fatal("AccessCounts leaked internal slice")
	}
}

func TestStaleItems(t *testing.T) {
	s := New(5)
	if s.StaleItems() != 0 {
		t.Fatal("fresh store")
	}
	s.DropUpdate(1)
	s.DropUpdate(1)
	s.DropUpdate(4)
	if s.StaleItems() != 2 {
		t.Fatalf("StaleItems = %d", s.StaleItems())
	}
	s.ApplyUpdate(1, 0, 0)
	if s.StaleItems() != 1 {
		t.Fatalf("StaleItems = %d", s.StaleItems())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(2)
	for _, fn := range []func(){
		func() { s.Get(2) },
		func() { s.Get(-1) },
		func() { s.ApplyUpdate(5, 0, 0) },
		func() { s.DropUpdate(5) },
		func() { s.RecordAccess(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDropApplyProperty(t *testing.T) {
	// Invariant: freshness is 1/(1+drops since last apply), regardless of
	// the interleaving of operations.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := New(8)
		drops := make([]int, 8)
		for op := 0; op < 200; op++ {
			i := rng.Intn(8)
			if rng.Float64() < 0.5 {
				s.DropUpdate(i)
				drops[i]++
			} else {
				s.ApplyUpdate(i, rng.Float64(), float64(op))
				drops[i] = 0
			}
			want := 1 / (1 + float64(drops[i]))
			if s.ItemFreshness(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
