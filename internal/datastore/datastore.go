// Package datastore is the in-memory versioned store underneath the
// web-database server. It holds S data items (the paper folds the cello99a
// disk into S = 1024 regions), tracks per-item lag-based freshness (Udrop
// counters, paper Eq. 1), and keeps the per-item access and update counters
// from which the distributions of paper Fig. 3 are drawn.
package datastore

import (
	"fmt"

	"unitdb/internal/freshness"
)

// Item is one data item: its current value, version, and freshness state.
type Item struct {
	Value       float64
	Version     int64
	LastApplied float64 // time the last update committed
	lag         freshness.Lag
}

// Store is the in-memory database. It is not safe for concurrent use; the
// simulation engine is single-threaded and the live server wraps it in its
// own lock.
type Store struct {
	items []Item

	accesses      []int // queries that read each item (committed reads)
	applied       []int // updates committed per item
	dropped       []int // updates dropped per item
	totalAccesses int
	totalApplied  int
	totalDropped  int
}

// New creates a store with n data items, all fully fresh at version 0.
// It panics when n <= 0.
func New(n int) *Store {
	if n <= 0 {
		panic(fmt.Sprintf("datastore: need at least one item, got %d", n))
	}
	return &Store{
		items:    make([]Item, n),
		accesses: make([]int, n),
		applied:  make([]int, n),
		dropped:  make([]int, n),
	}
}

// Len returns the number of data items.
func (s *Store) Len() int { return len(s.items) }

// Get returns the current value and version of item i.
func (s *Store) Get(i int) (float64, int64) {
	s.check(i)
	return s.items[i].Value, s.items[i].Version
}

// ApplyUpdate commits an update: the item takes the new value, its version
// advances, and — because updates are full-value refreshes (paper footnote
// 2) — everything dropped before it is superseded, resetting Udrop.
func (s *Store) ApplyUpdate(i int, value, now float64) {
	s.check(i)
	it := &s.items[i]
	it.Value = value
	it.Version++
	it.LastApplied = now
	it.lag.Apply()
	s.applied[i]++
	s.totalApplied++
}

// DropUpdate records an update that the system chose to skip (or that was
// superseded in queue by a newer one); the item grows one lag unit staler.
func (s *Store) DropUpdate(i int) {
	s.check(i)
	s.items[i].lag.Drop()
	s.dropped[i]++
	s.totalDropped++
}

// RecordAccess counts one committed query read of item i.
func (s *Store) RecordAccess(i int) {
	s.check(i)
	s.accesses[i]++
	s.totalAccesses++
}

// Drops returns the Udrop counter of item i: updates dropped since the last
// applied one.
func (s *Store) Drops(i int) int {
	s.check(i)
	return s.items[i].lag.Drops()
}

// ItemFreshness returns the lag-based freshness of item i (Eq. 1 numerator
// for a single item).
func (s *Store) ItemFreshness(i int) float64 {
	s.check(i)
	return s.items[i].lag.Value(0)
}

// QueryFreshness returns Qu over the given read set: the minimum of the
// item freshness values (paper Eq. 1). An empty read set is fully fresh.
func (s *Store) QueryFreshness(items []int) float64 {
	min := 1.0
	for _, i := range items {
		v := s.ItemFreshness(i)
		if v < min {
			min = v
		}
	}
	return min
}

// AccessCounts returns a copy of the per-item committed-read counters.
func (s *Store) AccessCounts() []int { return copyInts(s.accesses) }

// AppliedCounts returns a copy of the per-item applied-update counters.
func (s *Store) AppliedCounts() []int { return copyInts(s.applied) }

// DroppedCounts returns a copy of the per-item dropped-update counters.
func (s *Store) DroppedCounts() []int { return copyInts(s.dropped) }

// Totals returns the store-wide access/applied/dropped counters.
func (s *Store) Totals() (accesses, applied, dropped int) {
	return s.totalAccesses, s.totalApplied, s.totalDropped
}

// StaleItems returns how many items currently have at least one pending
// dropped update.
func (s *Store) StaleItems() int {
	n := 0
	for i := range s.items {
		if s.items[i].lag.Drops() > 0 {
			n++
		}
	}
	return n
}

func (s *Store) check(i int) {
	if i < 0 || i >= len(s.items) {
		panic(fmt.Sprintf("datastore: item %d out of range [0,%d)", i, len(s.items)))
	}
}

func copyInts(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}
