package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"unitdb/internal/lint/cfg"
)

func parse(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc _() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// names is a set-of-identifiers fact.
type names map[string]bool

func (s names) Equal(o Fact) bool {
	t := o.(names)
	if len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

func (s names) with(k string) names {
	out := names{}
	for x := range s {
		out[x] = true
	}
	out[k] = true
	return out
}

func (s names) sorted() string {
	var keys []string
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// assigned returns the lhs identifier of `x := ...` / `x = ...` nodes.
func assigned(n ast.Node) string {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return ""
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

func union(a, b Fact) Fact {
	out := names{}
	for k := range a.(names) {
		out[k] = true
	}
	for k := range b.(names) {
		out[k] = true
	}
	return out
}

func intersect(a, b Fact) Fact {
	out := names{}
	for k := range a.(names) {
		if b.(names)[k] {
			out[k] = true
		}
	}
	return out
}

func collect(n ast.Node, f Fact) Fact {
	if name := assigned(n); name != "" {
		return f.(names).with(name)
	}
	return f
}

// exitFact joins the out-facts of all normal-exit blocks.
func exitFact(t *testing.T, g *cfg.CFG, res *Result, join func(a, b Fact) Fact) names {
	t.Helper()
	var out Fact
	for _, b := range g.Blocks {
		if !b.Exits || res.Out[b.Index] == nil {
			continue
		}
		if out == nil {
			out = res.Out[b.Index]
		} else {
			out = join(out, res.Out[b.Index])
		}
	}
	if out == nil {
		t.Fatal("no reachable exit block")
	}
	return out.(names)
}

// TestMayAnalysis: union join accumulates assignments from all paths.
func TestMayAnalysis(t *testing.T) {
	g := cfg.New(parse(t, `if c { a = 1 } else { b = 2 }; d = 3`))
	res := Solve(g, &Analysis{Entry: names{}, Join: union, Transfer: collect})
	if got := exitFact(t, g, res, union).sorted(); got != "a,b,d" {
		t.Errorf("may-assigned at exit = %q, want %q", got, "a,b,d")
	}
}

// TestMustAnalysis: intersection join keeps only assignments on every path.
func TestMustAnalysis(t *testing.T) {
	g := cfg.New(parse(t, `if c { a = 1; b = 2 } else { b = 3 }; d = 4`))
	res := Solve(g, &Analysis{Entry: names{}, Join: intersect, Transfer: collect})
	if got := exitFact(t, g, res, intersect).sorted(); got != "b,d" {
		t.Errorf("must-assigned at exit = %q, want %q", got, "b,d")
	}
}

// TestLoopFixpoint: facts flowing around a back edge converge, and the
// loop body's assignment reaches the loop exit.
func TestLoopFixpoint(t *testing.T) {
	g := cfg.New(parse(t, `a = 1; for i := 0; i < n; i++ { b = 2 }; c = 3`))
	res := Solve(g, &Analysis{Entry: names{}, Join: union, Transfer: collect})
	if got := exitFact(t, g, res, union).sorted(); got != "a,b,c,i" {
		t.Errorf("may-assigned at exit = %q, want %q", got, "a,b,c,i")
	}
	// Under must-analysis the loop may run zero times, so b is not
	// definitely assigned at exit.
	res = Solve(g, &Analysis{Entry: names{}, Join: intersect, Transfer: collect})
	if got := exitFact(t, g, res, intersect).sorted(); got != "a,c,i" {
		t.Errorf("must-assigned at exit = %q, want %q", got, "a,c,i")
	}
}

// TestUnreachable: blocks with no path from entry keep a nil fact.
func TestUnreachable(t *testing.T) {
	g := cfg.New(parse(t, `return; a = 1`))
	res := Solve(g, &Analysis{Entry: names{}, Join: union, Transfer: collect})
	if res.In[0] == nil || res.Out[0] == nil {
		t.Error("entry block should be reachable")
	}
	var dead *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" {
			dead = b
		}
	}
	if dead == nil {
		t.Fatal("no unreachable block in graph")
	}
	if res.In[dead.Index] != nil || res.Out[dead.Index] != nil {
		t.Error("unreachable block should have nil facts")
	}
}

// TestEdgeTransfer: a branch on the condition refines the fact per edge —
// the true edge learns "tested", the false edge is killed outright, so
// the else arm must stay unreachable.
func TestEdgeTransfer(t *testing.T) {
	g := cfg.New(parse(t, `if c { a = 1 } else { b = 2 }; d = 3`))
	res := Solve(g, &Analysis{
		Entry:    names{},
		Join:     union,
		Transfer: collect,
		EdgeTransfer: func(from *cfg.Block, succIdx int, f Fact) Fact {
			if from.Cond == nil {
				return f
			}
			if succIdx == 0 {
				return f.(names).with("tested")
			}
			return nil // kill the false edge
		},
	})
	var elseB *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "if.else" {
			elseB = b
		}
	}
	if elseB == nil {
		t.Fatal("no if.else block")
	}
	if res.In[elseB.Index] != nil {
		t.Error("killed edge should leave else arm unreachable")
	}
	if got := exitFact(t, g, res, union).sorted(); got != "a,d,tested" {
		t.Errorf("exit fact = %q, want %q", got, "a,d,tested")
	}
}

// TestIrreducibleLoopFixpoint: gotos between two labels form a loop with
// two entries — l1 from the if arm, l2 from the fallthrough — so no
// single header dominates it and structured-loop solvers would not apply.
// The round-robin solver must still converge, carrying facts around the
// retreating edge into both entries.
func TestIrreducibleLoopFixpoint(t *testing.T) {
	body := `a = 1; if c { goto l1 }; goto l2; l1: b = 2; goto l2; l2: d = 3; if e { goto l1 }; return`
	g := cfg.New(parse(t, body))

	res := Solve(g, &Analysis{Entry: names{}, Join: union, Transfer: collect})
	if got := exitFact(t, g, res, union).sorted(); got != "a,b,d" {
		t.Errorf("may-assigned at exit = %q, want %q", got, "a,b,d")
	}
	// The secondary entry l1 sees d — assigned only in l2 — via the cycle
	// l1 -> l2 -> l1, proving facts propagated around the loop rather
	// than just along the two acyclic entry paths.
	var l1 *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "label.l1" {
			l1 = b
		}
	}
	if l1 == nil {
		t.Fatal("no label.l1 block in graph")
	}
	if in := res.In[l1.Index]; in == nil || !in.(names)["d"] {
		t.Errorf("In[l1] = %v, want d carried around the l1<->l2 cycle", in)
	}

	// Must-analysis: b is assigned only on the l1 paths, never on the
	// direct entry -> l2 path, so it cannot survive the intersection.
	res = Solve(g, &Analysis{Entry: names{}, Join: intersect, Transfer: collect})
	if got := exitFact(t, g, res, intersect).sorted(); got != "a,d" {
		t.Errorf("must-assigned at exit = %q, want %q", got, "a,d")
	}
}

// TestDeterministic: two runs over the same graph produce identical facts
// (round-robin order is fixed by block index).
func TestDeterministic(t *testing.T) {
	body := `for i := 0; i < n; i++ { if c { a = 1 } else { b = 2 } }; d = 3`
	g := cfg.New(parse(t, body))
	a := &Analysis{Entry: names{}, Join: union, Transfer: collect}
	r1, r2 := Solve(g, a), Solve(g, a)
	for i := range r1.Out {
		if !factEq(r1.Out[i], r2.Out[i]) || !factEq(r1.In[i], r2.In[i]) {
			t.Errorf("facts differ between runs at block %d", i)
		}
	}
}
