// Package dataflow is a forward dataflow fixpoint solver over
// internal/lint/cfg graphs. An analysis supplies a lattice (Bottom, Join,
// Equal via the Fact interface) and a Transfer function; the solver
// iterates to a fixpoint and returns the fact at the entry and exit of
// every block, which analyzers then interpret in a separate reporting
// pass (transfer functions must be pure — diagnosis happens after the
// facts stabilize, never during iteration, so that a fact visited twice
// is not reported twice).
//
// The bottom element — "this program point is unreachable, no fact yet" —
// is represented by a nil Fact, so analyses need not manufacture a
// distinguished value: Join(nil, x) = x and Transfer(n, nil) = nil hold by
// construction and the callbacks never see nil.
//
// Iteration is round-robin in block-index order, which terminates for the
// finite lattices the unitlint analyzers use and — as important for a
// determinism-obsessed repo — visits blocks in the same order every run,
// so any diagnostics derived from the results are stably ordered.
package dataflow

import (
	"go/ast"

	"unitdb/internal/lint/cfg"
)

// Fact is one lattice element. Implementations are immutable: Join and
// Transfer return new values rather than mutating their arguments (the
// solver stores facts at many program points and aliasing a mutated map
// across points corrupts the fixpoint).
type Fact interface {
	// Equal reports whether two facts are the same lattice element. The
	// argument is always non-nil and produced by the same Analysis.
	Equal(Fact) bool
}

// Analysis defines one forward dataflow problem.
type Analysis struct {
	// Entry is the fact at the start of the entry block.
	Entry Fact

	// Join combines facts arriving on two edges. Both arguments are
	// non-nil; the result must be their least upper bound (or any sound
	// over-approximation that keeps the lattice finite).
	Join func(a, b Fact) Fact

	// Transfer computes the effect of one CFG node on a fact. The input is
	// non-nil; the function must not mutate it.
	Transfer func(n ast.Node, f Fact) Fact

	// EdgeTransfer, if non-nil, refines the fact flowing along one edge
	// after the source block's transfers: from's out-fact is passed with
	// the index of the successor edge (for two-way tests, cfg.Block.Cond
	// with Succs[0]=true and Succs[1]=false lets analyses branch on the
	// condition). Returning nil kills the edge — no fact flows along it.
	EdgeTransfer func(from *cfg.Block, succIdx int, f Fact) Fact
}

// Result holds the stabilized facts. In[i] is the fact at the start of
// g.Blocks[i], Out[i] the fact after its last node. A nil entry means the
// block is unreachable.
type Result struct {
	In  []Fact
	Out []Fact
}

// Solve runs the analysis to a fixpoint over g.
func Solve(g *cfg.CFG, a *Analysis) *Result {
	n := len(g.Blocks)
	res := &Result{In: make([]Fact, n), Out: make([]Fact, n)}
	if n == 0 {
		return res
	}

	// flowOut computes the fact b contributes to its succIdx-th edge.
	flowOut := func(b *cfg.Block, succIdx int) Fact {
		f := res.Out[b.Index]
		if f == nil || a.EdgeTransfer == nil {
			return f
		}
		return a.EdgeTransfer(b, succIdx, f)
	}

	transferBlock := func(b *cfg.Block, in Fact) Fact {
		if in == nil {
			return nil
		}
		f := in
		for _, node := range b.Nodes {
			f = a.Transfer(node, f)
			if f == nil {
				break
			}
		}
		return f
	}

	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			var in Fact
			if b.Index == 0 {
				in = a.Entry
			}
			seen := map[int]bool{}
			for _, p := range b.Preds {
				// A block with several edges into b appears once per edge in
				// Preds; visit it once and walk all its edges, each with its
				// own index in p.Succs (EdgeTransfer tells them apart).
				if seen[p.Index] {
					continue
				}
				seen[p.Index] = true
				for si, s := range p.Succs {
					if s != b {
						continue
					}
					f := flowOut(p, si)
					if f == nil {
						continue
					}
					if in == nil {
						in = f
					} else {
						in = a.Join(in, f)
					}
				}
			}
			if !factEq(res.In[b.Index], in) {
				res.In[b.Index] = in
				changed = true
			}
			out := transferBlock(b, in)
			if !factEq(res.Out[b.Index], out) {
				res.Out[b.Index] = out
				changed = true
			}
		}
	}
	return res
}

func factEq(a, b Fact) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}
