package unitlint_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysistest"
	"unitdb/internal/lint/unitlint"
)

// repoRoot walks up from the test's directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := wd; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", wd)
		}
	}
}

// TestRepoIsClean is the invariant this whole tree exists for: the repo
// itself must pass its own suite. A regression anywhere (a stray
// time.Now in the engine, an unguarded server field) fails here before
// CI even reaches the unitlint step.
func TestRepoIsClean(t *testing.T) {
	root := repoRoot(t)
	diags, err := unitlint.Run(root, []string{"./..."}, unitlint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("unitlint found %d issue(s) in the repo:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
}

func TestSelect(t *testing.T) {
	all, err := unitlint.Select("")
	if err != nil || len(all) != 13 {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite of 13", len(all), err)
	}
	two, err := unitlint.Select("locksafe, outcomeonce")
	if err != nil || len(two) != 2 || two[0].Name != "locksafe" || two[1].Name != "outcomeonce" {
		t.Fatalf("Select subset = %v, err %v", two, err)
	}
	if _, err := unitlint.Select("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("Select(nosuch) err = %v, want unknown analyzer", err)
	}
}

// writeModule lays out a throwaway single-file module for driver tests.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const dirtySrc = `package scratch

import "math/rand"

func roll() int { return rand.Int() }
`

// TestMainJSONAndBaseline drives the command entry point end to end:
// text mode fails with a finding, a baseline generated from the JSON
// stream makes the same run pass, and deleting the violation turns the
// baseline entry into a stale warning (still exit 0).
func TestMainJSONAndBaseline(t *testing.T) {
	dir := writeModule(t, dirtySrc)

	var text strings.Builder
	if code := unitlint.Main(&text, dir, "seededrand", unitlint.Options{}, nil); code != 1 {
		t.Fatalf("dirty run exit = %d, want 1; output:\n%s", code, text.String())
	}
	if !strings.Contains(text.String(), "scratch.go") || !strings.Contains(text.String(), "seededrand") {
		t.Fatalf("text output missing finding: %s", text.String())
	}

	var jsonOut strings.Builder
	if code := unitlint.Main(&jsonOut, dir, "seededrand", unitlint.Options{JSON: true}, nil); code != 1 {
		t.Fatalf("json run exit = %d, want 1", code)
	}
	var f unitlint.Finding
	if err := json.Unmarshal([]byte(strings.SplitN(jsonOut.String(), "\n", 2)[0]), &f); err != nil {
		t.Fatalf("json output is not JSON lines: %v\n%s", err, jsonOut.String())
	}
	if f.File != "scratch.go" || f.Analyzer != "seededrand" || f.Line == 0 {
		t.Fatalf("finding = %+v", f)
	}

	// The JSON stream IS the baseline format: write it back and the same
	// findings are tolerated.
	baseline := filepath.Join(dir, "lint.baseline")
	if err := os.WriteFile(baseline, []byte(jsonOut.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var quiet strings.Builder
	if code := unitlint.Main(&quiet, dir, "seededrand", unitlint.Options{}, nil); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; output:\n%s", code, quiet.String())
	}

	// -baseline - ignores the file.
	var loud strings.Builder
	if code := unitlint.Main(&loud, dir, "seededrand", unitlint.Options{Baseline: "-"}, nil); code != 1 {
		t.Fatalf("baseline-disabled run exit = %d, want 1", code)
	}

	// Fix the violation: the baseline entry goes stale — warned, exit 0.
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"),
		[]byte("package scratch\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stale strings.Builder
	if code := unitlint.Main(&stale, dir, "seededrand", unitlint.Options{}, nil); code != 0 {
		t.Fatalf("stale-baseline run exit = %d, want 0; output:\n%s", code, stale.String())
	}
	if !strings.Contains(stale.String(), "stale baseline entry") {
		t.Fatalf("no stale warning: %s", stale.String())
	}
}

// TestStrictBaseline pins the CI gate: a stale baseline entry is a
// warning by default but exit 1 under StrictBaseline, and a
// strict-baseline run with nothing stale stays 0.
func TestStrictBaseline(t *testing.T) {
	dir := writeModule(t, dirtySrc)

	var jsonOut strings.Builder
	if code := unitlint.Main(&jsonOut, dir, "seededrand", unitlint.Options{JSON: true}, nil); code != 1 {
		t.Fatalf("dirty run exit = %d, want 1", code)
	}
	baseline := filepath.Join(dir, "lint.baseline")
	if err := os.WriteFile(baseline, []byte(jsonOut.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Entry live and matched: strict mode is as quiet as lax mode.
	var quiet strings.Builder
	if code := unitlint.Main(&quiet, dir, "seededrand", unitlint.Options{StrictBaseline: true}, nil); code != 0 {
		t.Fatalf("strict run with live baseline exit = %d, want 0; output:\n%s", code, quiet.String())
	}

	// Fix the violation: the now-stale entry fails only the strict run.
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"),
		[]byte("package scratch\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var lax strings.Builder
	if code := unitlint.Main(&lax, dir, "seededrand", unitlint.Options{}, nil); code != 0 {
		t.Fatalf("lax stale run exit = %d, want 0; output:\n%s", code, lax.String())
	}
	var strict strings.Builder
	if code := unitlint.Main(&strict, dir, "seededrand", unitlint.Options{StrictBaseline: true}, nil); code != 1 {
		t.Fatalf("strict stale run exit = %d, want 1; output:\n%s", code, strict.String())
	}
	if !strings.Contains(strict.String(), "stale baseline entry") {
		t.Fatalf("strict run did not name the stale entry: %s", strict.String())
	}
}

// TestTimings checks both renderings of per-analyzer wall time: a
// {"timings_ms":{...}} JSON line covering every selected analyzer, and
// the human-readable table.
func TestTimings(t *testing.T) {
	dir := writeModule(t, "package scratch\n")

	var jsonOut strings.Builder
	if code := unitlint.Main(&jsonOut, dir, "seededrand,detclock",
		unitlint.Options{JSON: true, Timings: true}, nil); code != 0 {
		t.Fatalf("clean run exit = %d; output:\n%s", code, jsonOut.String())
	}
	var line struct {
		Timings map[string]float64 `json:"timings_ms"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(jsonOut.String())), &line); err != nil {
		t.Fatalf("timings line is not JSON: %v\n%s", err, jsonOut.String())
	}
	for _, name := range []string{"seededrand", "detclock"} {
		if _, ok := line.Timings[name]; !ok {
			t.Errorf("timings_ms missing %q: %v", name, line.Timings)
		}
	}
	if len(line.Timings) != 2 {
		t.Errorf("timings_ms = %v, want exactly the 2 selected analyzers", line.Timings)
	}

	var text strings.Builder
	if code := unitlint.Main(&text, dir, "seededrand",
		unitlint.Options{Timings: true}, nil); code != 0 {
		t.Fatalf("text run exit = %d; output:\n%s", code, text.String())
	}
	if !strings.Contains(text.String(), "unitlint: timing: seededrand") {
		t.Fatalf("no timing table line: %s", text.String())
	}
}

// TestIgnoreAudit pins the hardening: a scoped, reasoned ignore
// suppresses its finding; bare, unreasoned, or misspelled ignores
// suppress nothing and are findings themselves.
func TestIgnoreAudit(t *testing.T) {
	dir := writeModule(t, `package scratch

import "math/rand"

func a() int { return rand.Int() } //unitlint:ignore seededrand -- scratch module rolls dice deliberately

func b() int { return rand.Int() } //unitlint:ignore

func c() int { return rand.Int() } //unitlint:ignore seededrand

func d() { _ = 0 } //unitlint:ignore seededrnad -- typo in the analyzer name
`)
	diags, err := unitlint.Run(dir, []string{"./..."}, unitlint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Analyzer))
	}
	// Line 5 is suppressed. Lines 7 and 9 keep their seededrand findings
	// AND gain an ignore-audit finding each; line 11 is a bad name.
	want := []string{"7:ignore", "7:seededrand", "9:ignore", "9:seededrand", "11:ignore"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("audit findings = %v, want %v\nfull: %s", got, want, analysistest.Fprint(diags))
	}
}
