package unitlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysistest"
	"unitdb/internal/lint/unitlint"
)

// repoRoot walks up from the test's directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := wd; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", wd)
		}
	}
}

// TestRepoIsClean is the invariant this whole tree exists for: the repo
// itself must pass its own suite. A regression anywhere (a stray
// time.Now in the engine, an unguarded server field) fails here before
// CI even reaches the unitlint step.
func TestRepoIsClean(t *testing.T) {
	root := repoRoot(t)
	diags, err := unitlint.Run(root, []string{"./..."}, unitlint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("unitlint found %d issue(s) in the repo:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
}

func TestSelect(t *testing.T) {
	all, err := unitlint.Select("")
	if err != nil || len(all) != 4 {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite of 4", len(all), err)
	}
	two, err := unitlint.Select("detclock, usmrange")
	if err != nil || len(two) != 2 || two[0].Name != "detclock" || two[1].Name != "usmrange" {
		t.Fatalf("Select subset = %v, err %v", two, err)
	}
	if _, err := unitlint.Select("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("Select(nosuch) err = %v, want unknown analyzer", err)
	}
}
