// Package unitlint is the multichecker driving UNIT's thirteen
// invariant analyzers. Four are syntactic: detclock (no wall clock in
// the simulator core), seededrand (no global math/rand anywhere),
// guardedby (lock annotations on concurrent structs exist), and
// usmrange (literal freshness and penalty weights stay in the paper's
// domains). Three are flow-sensitive, built on internal/lint/cfg and
// internal/lint/dataflow: locksafe (every mutex acquired is released on
// all paths, no double lock/unlock), guardedflow (guarded-field
// accesses happen where the mutex is provably held), and outcomeonce
// (every path records exactly one terminal transaction outcome). Three
// are interprocedural, built on the internal/lint/callgraph +
// internal/lint/summary layer (whose per-package summaries are computed
// once and cached, shared by all consumers), with the call graph
// devirtualized CHA-style — interface calls and stored function values
// resolve to every package-local candidate: deadlock (no lock-order
// cycles, no call into a function that re-acquires a held mutex), owned
// ('// owned by <method>' fields are never touched from spawned
// goroutines or HTTP handlers), and maporder (map iteration order never
// escapes into deterministic output unsorted). Three guard the
// concurrency primitives themselves: atomicsafe (fields accessed via
// sync/atomic are never read or written plainly), chandisc (channel
// close discipline: only the annotated owner closes, no double close,
// no send after close), and wgsafe (WaitGroup discipline: Add before
// the go statement, never after Wait, Done balanced). The driver also
// audits //unitlint:ignore comments (analyzer name "ignore"): scoped,
// reasoned ignores suppress; malformed ones are findings.
//
// cmd/unitlint is a thin main around Main; tests drive Run directly.
// Findings can stream as JSON lines (one object per finding) and be
// gated against a checked-in baseline: baselined findings are tolerated,
// new ones fail, stale baseline entries warn.
package unitlint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/atomicsafe"
	"unitdb/internal/lint/chandisc"
	"unitdb/internal/lint/deadlock"
	"unitdb/internal/lint/detclock"
	"unitdb/internal/lint/guardedby"
	"unitdb/internal/lint/guardedflow"
	"unitdb/internal/lint/loader"
	"unitdb/internal/lint/locksafe"
	"unitdb/internal/lint/maporder"
	"unitdb/internal/lint/outcomeonce"
	"unitdb/internal/lint/owned"
	"unitdb/internal/lint/seededrand"
	"unitdb/internal/lint/usmrange"
	"unitdb/internal/lint/wgsafe"
)

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	detclock.Analyzer,
	seededrand.Analyzer,
	guardedby.Analyzer,
	usmrange.Analyzer,
	locksafe.Analyzer,
	guardedflow.Analyzer,
	outcomeonce.Analyzer,
	deadlock.Analyzer,
	owned.Analyzer,
	maporder.Analyzer,
	atomicsafe.Analyzer,
	chandisc.Analyzer,
	wgsafe.Analyzer,
}

// Select returns the analyzers named in the comma-separated list, or the
// whole suite when the list is empty.
func Select(only string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return Analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unitlint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run loads the packages matched by patterns under dir and applies the
// analyzers, returning the surviving (non-suppressed) diagnostics plus
// the ignore-comment audit, sorted by (file, line, analyzer, message)
// so output diffs cleanly run-to-run. Filenames are reported relative
// to dir so output and baselines are machine-independent.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	diags, _, err := RunTimed(dir, patterns, analyzers)
	return diags, err
}

// RunTimed is Run plus per-analyzer wall time, summed across packages.
func RunTimed(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, map[string]time.Duration, error) {
	pkgs, err := loader.Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	known := map[string]bool{}
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	timings := map[string]time.Duration{}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			var out []analysis.Diagnostic
			pass := analysis.NewPass(a, pkg, &out)
			start := time.Now()
			runErr := a.Run(pass)
			timings[a.Name] += time.Since(start)
			if runErr != nil {
				return nil, nil, fmt.Errorf("unitlint: %s on %s: %w", a.Name, pkg.Path, runErr)
			}
			for _, d := range out {
				if !analysis.Suppressed(pkg, d) {
					diags = append(diags, d)
				}
			}
		}
		diags = append(diags, analysis.BadIgnores(pkg, known)...)
	}
	// Relativize after suppression: Suppressed matches the absolute
	// filenames the loader put in the file set.
	for i := range diags {
		if rel, err := filepath.Rel(dir, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Pos.Column < b.Pos.Column
	})
	return diags, timings, nil
}

// Finding is the JSON-line form of one diagnostic — both the -json
// output format and the baseline file format (`unitlint -json >
// lint.baseline` regenerates a baseline).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func toFinding(d analysis.Diagnostic) Finding {
	return Finding{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// baselineKey identifies a finding across unrelated edits: the file, the
// analyzer, and the message — but not the line, which shifts every time
// code above it moves.
func baselineKey(f Finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// LoadBaseline reads a JSON-lines baseline into a multiset of finding
// keys. Blank lines and #-comments are skipped.
func LoadBaseline(path string) (map[string]int, error) {
	set := map[string]int{}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var fd Finding
		if err := json.Unmarshal([]byte(text), &fd); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		set[baselineKey(fd)]++
	}
	return set, sc.Err()
}

// Options configures a Main run beyond analyzer selection.
type Options struct {
	// JSON emits findings as JSON lines instead of position: text.
	JSON bool
	// Baseline names the baseline file: "" auto-loads dir/lint.baseline
	// when present, "-" disables baselining, anything else must exist.
	Baseline string
	// StrictBaseline fails the run (exit 1) when the baseline holds
	// stale entries, instead of only warning — CI uses it so a fixed
	// finding forces the baseline to be regenerated.
	StrictBaseline bool
	// Timings appends per-analyzer wall time to the output: a JSON line
	// {"timings_ms":{...}} in JSON mode, a readable table otherwise.
	Timings bool
}

// Main runs the suite for a command line: it prints diagnostics to w and
// returns the process exit code — 0 clean (baselined findings tolerated,
// stale baseline entries warn, or fail under StrictBaseline), 1 on new
// findings, 2 on usage/load errors.
func Main(w io.Writer, dir, only string, opts Options, patterns []string) int {
	analyzers, err := Select(only)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, timings, err := RunTimed(dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}

	baseline := map[string]int{}
	switch opts.Baseline {
	case "-":
	case "":
		auto := filepath.Join(dir, "lint.baseline")
		if _, statErr := os.Stat(auto); statErr == nil {
			if baseline, err = LoadBaseline(auto); err != nil {
				fmt.Fprintln(w, err)
				return 2
			}
		}
	default:
		if baseline, err = LoadBaseline(opts.Baseline); err != nil {
			fmt.Fprintln(w, err)
			return 2
		}
	}

	var fresh []analysis.Diagnostic
	for _, d := range diags {
		key := baselineKey(toFinding(d))
		if baseline[key] > 0 {
			baseline[key]--
			continue
		}
		fresh = append(fresh, d)
	}

	enc := json.NewEncoder(w)
	for _, d := range fresh {
		if opts.JSON {
			if err := enc.Encode(toFinding(d)); err != nil {
				fmt.Fprintln(w, err)
				return 2
			}
			continue
		}
		fmt.Fprintln(w, d)
	}
	var stale int
	for _, key := range sortedKeys(baseline) {
		n := baseline[key]
		if n <= 0 {
			continue
		}
		stale += n
		parts := strings.SplitN(key, "\x00", 3)
		fmt.Fprintf(w, "unitlint: stale baseline entry (%d): %s: %s: %s\n", n, parts[0], parts[1], parts[2])
	}
	if stale > 0 {
		fmt.Fprintf(w, "unitlint: %d stale baseline entr(ies); regenerate with `make lint-baseline`\n", stale)
	}
	if opts.Timings {
		if err := writeTimings(w, opts.JSON, analyzers, timings); err != nil {
			fmt.Fprintln(w, err)
			return 2
		}
	}
	if len(fresh) > 0 {
		if !opts.JSON {
			fmt.Fprintf(w, "unitlint: %d finding(s)\n", len(fresh))
		}
		return 1
	}
	if stale > 0 && opts.StrictBaseline {
		return 1
	}
	return 0
}

// writeTimings emits per-analyzer wall time: one {"timings_ms":{...}}
// JSON line (milliseconds, 3 decimals) or a readable table.
func writeTimings(w io.Writer, jsonOut bool, analyzers []*analysis.Analyzer, timings map[string]time.Duration) error {
	if jsonOut {
		ms := make(map[string]float64, len(timings))
		for name, d := range timings {
			ms[name] = math.Round(float64(d.Microseconds())/1000*1000) / 1000
		}
		return json.NewEncoder(w).Encode(map[string]map[string]float64{"timings_ms": ms})
	}
	for _, a := range analyzers {
		fmt.Fprintf(w, "unitlint: timing: %-12s %s\n", a.Name, timings[a.Name].Round(time.Microsecond))
	}
	return nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
