// Package unitlint is the multichecker driving UNIT's four invariant
// analyzers: detclock (no wall clock in the simulator core), seededrand
// (no global math/rand anywhere), guardedby (lock annotations on
// concurrent structs hold), and usmrange (literal freshness and penalty
// weights stay in the paper's domains). cmd/unitlint is a thin main
// around Main; tests drive Run directly.
package unitlint

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/detclock"
	"unitdb/internal/lint/guardedby"
	"unitdb/internal/lint/loader"
	"unitdb/internal/lint/seededrand"
	"unitdb/internal/lint/usmrange"
)

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	detclock.Analyzer,
	seededrand.Analyzer,
	guardedby.Analyzer,
	usmrange.Analyzer,
}

// Select returns the analyzers named in the comma-separated list, or the
// whole suite when the list is empty.
func Select(only string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return Analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unitlint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run loads the packages matched by patterns under dir and applies the
// analyzers, returning the surviving (non-suppressed) diagnostics sorted
// by position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := loader.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			var out []analysis.Diagnostic
			pass := analysis.NewPass(a, pkg, &out)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("unitlint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range out {
				if !analysis.Suppressed(pkg, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Main runs the suite for a command line: it prints diagnostics to w and
// returns the process exit code (0 clean, 1 findings, 2 usage/load
// error).
func Main(w io.Writer, dir, only string, patterns []string) int {
	analyzers, err := Select(only)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Run(dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(w, "unitlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
