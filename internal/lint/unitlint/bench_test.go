package unitlint

import (
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/loader"
)

// BenchmarkUnitlintAnalyzers times each analyzer in the suite over the
// two busiest runtime packages (internal/engine and internal/server),
// loaded once outside the timed region. The per-analyzer ns/op feed
// BENCH_baseline.json, so a lint pass that suddenly goes quadratic —
// e.g. a devirtualization change that explodes the call graph — trips
// the bench-check gate rather than quietly doubling CI time.
// Interprocedural analyzers share the per-package summary cache exactly
// as they do in a real run, so the first iteration pays the build and
// the amortized cost is what CI experiences.
func BenchmarkUnitlintAnalyzers(b *testing.B) {
	pkgs, err := loader.Load("../../..", []string{"./internal/engine", "./internal/server"})
	if err != nil {
		b.Fatal(err)
	}
	if len(pkgs) == 0 {
		b.Fatal("loader matched no packages")
	}
	for _, a := range Analyzers {
		b.Run(a.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, pkg := range pkgs {
					var diags []analysis.Diagnostic
					if err := a.Run(analysis.NewPass(a, pkg, &diags)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
