// Package owned checks the single-goroutine ownership convention the
// engine's event loop relies on, interprocedurally. A struct field
// whose comment contains "owned by <method>" names the method whose
// goroutine owns the field:
//
//	nextID int64 // owned by Run
//
// The rule: an owned field must never be touched from a context that
// provably runs on a different goroutine than the owner's loop. Three
// contexts are provable from the call graph:
//
//   - code inside a `go func(){...}` literal (a spawned goroutine,
//     wherever it is written — even inside the owner itself);
//   - functions reachable (over plain and closure call edges) from a
//     function the package spawns with a go statement, unless the
//     spawned function is the owner itself (`go e.Run()` starts the
//     owning goroutine, it does not violate it);
//   - HTTP handlers (any function with an http.ResponseWriter
//     parameter) and functions reachable from them — handlers run on
//     net/http's server goroutines.
//
// Everything else is unknown and allowed: an accessor method that the
// package never calls from a spawned context may well be invoked
// cross-package on the owner's goroutine (the engine's Policy
// callbacks are exactly that), and a syntactic analysis cannot see
// those callers. Like the rest of the interprocedural layer, owned
// under-approximates: it reports only accesses whose wrong-goroutine
// context is visible in this package's syntax.
package owned

import (
	"go/ast"
	"regexp"
	"sort"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
	"unitdb/internal/lint/summary"
)

// Analyzer is the owned pass.
var Analyzer = &analysis.Analyzer{
	Name: "owned",
	Doc:  "'// owned by <method>' fields are never touched from spawned goroutines or HTTP handlers",
	Run:  run,
}

var ownedRE = regexp.MustCompile(`(?i)owned by ([A-Za-z_][A-Za-z0-9_]*)`)

// Owned maps struct type → field name → owning method name.
type Owned map[string]map[string]string

// CollectOwned finds "owned by" annotated fields across the package.
// Channel-typed fields are excluded: for a channel, "owned by" names
// who may close it (the chandisc analyzer's discipline), not who may
// communicate over it — receives from a quit channel inside the very
// goroutines it stops are the normal pattern, not a violation.
func CollectOwned(files []*ast.File) Owned {
	o := Owned{}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, isChan := field.Type.(*ast.ChanType); isChan {
					continue
				}
				owner := OwnerAnnotation(field)
				if owner == "" {
					continue
				}
				m := o[ts.Name.Name]
				if m == nil {
					m = map[string]string{}
					o[ts.Name.Name] = m
				}
				for _, name := range field.Names {
					m[name.Name] = owner
				}
			}
			return true
		})
	}
	return o
}

// OwnerAnnotation extracts the "owned by <name>" owner from a struct
// field's doc or trailing comment ("" when unannotated). Shared with
// chandisc, which applies the same grammar to channel fields.
func OwnerAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := ownedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func run(pass *analysis.Pass) error {
	owned := CollectOwned(pass.Pkg.Files)
	if len(owned) == 0 {
		return nil
	}
	sum := summary.Of(pass.Pkg)
	g := sum.Graph

	// Reachability from each provably-foreign root, over edges that stay
	// on the root's goroutine (plain calls and closures).
	sameGoroutine := func(k callgraph.EdgeKind) bool {
		return k == callgraph.Call || k == callgraph.Closure
	}
	var handlerRoots []callgraph.FuncID
	for fn := range g.Handlers {
		handlerRoots = append(handlerRoots, fn)
	}
	fromHandlers := g.Reachable(handlerRoots, sameGoroutine)

	spawnReach := map[callgraph.FuncID]map[callgraph.FuncID]bool{}
	var spawnRoots []callgraph.FuncID // deterministic report order
	for _, e := range g.Edges {
		if e.Kind != callgraph.Spawn {
			continue
		}
		if _, ok := spawnReach[e.Callee]; !ok {
			spawnReach[e.Callee] = g.Reachable([]callgraph.FuncID{e.Callee}, sameGoroutine)
			spawnRoots = append(spawnRoots, e.Callee)
		}
	}
	sort.Slice(spawnRoots, func(i, j int) bool { return spawnRoots[i] < spawnRoots[j] })

	c := &checker{pass: pass, g: g, owned: owned, fromHandlers: fromHandlers,
		spawnReach: spawnReach, spawnRoots: spawnRoots}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass         *analysis.Pass
	g            *callgraph.Graph
	owned        Owned
	fromHandlers map[callgraph.FuncID]bool
	spawnReach   map[callgraph.FuncID]map[callgraph.FuncID]bool
	spawnRoots   []callgraph.FuncID
}

// checkFunc walks fd's body; accesses inside go-statement literals are
// always foreign, accesses elsewhere are judged by fd's reachability
// from foreign roots.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	fn := callgraph.DeclID(fd)
	var walk func(n ast.Node, inSpawnedLit bool)
	walk = func(n ast.Node, inSpawnedLit bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.GoStmt:
				if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
					return false
				}
				return true
			case *ast.FuncLit:
				walk(node.Body, inSpawnedLit)
				return false
			case *ast.SelectorExpr:
				c.checkAccess(fn, node, inSpawnedLit)
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// checkAccess judges one x.field selector.
func (c *checker) checkAccess(fn callgraph.FuncID, sel *ast.SelectorExpr, inSpawnedLit bool) {
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	typ, ok := c.g.Bindings(fn)[base.Name]
	if !ok {
		return
	}
	owner, ok := c.owned[typ][sel.Sel.Name]
	if !ok {
		return
	}
	ownerID := callgraph.MethodID(typ, owner)
	if inSpawnedLit {
		c.pass.Reportf(sel.Pos(),
			"%s.%s is owned by the %s.%s goroutine but is touched inside a go statement's function literal",
			base.Name, sel.Sel.Name, typ, owner)
		return
	}
	if c.fromHandlers[fn] {
		c.pass.Reportf(sel.Pos(),
			"%s.%s is owned by the %s.%s goroutine but %s runs on an HTTP handler goroutine",
			base.Name, sel.Sel.Name, typ, owner, fn)
		return
	}
	for _, root := range c.spawnRoots {
		if root == ownerID || !c.spawnReach[root][fn] {
			continue
		}
		c.pass.Reportf(sel.Pos(),
			"%s.%s is owned by the %s.%s goroutine but %s is reachable from spawned goroutine %s",
			base.Name, sel.Sel.Name, typ, owner, fn, root)
		return
	}
}
