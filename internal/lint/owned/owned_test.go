package owned

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unitdb/internal/ownfix")
}

// TestMutationHandlerTouch is the seeded mutation check from the issue:
// appending an HTTP handler that increments the engine's Run-owned
// transaction counter must produce exactly one owned finding on the real
// engine source.
func TestMutationHandlerTouch(t *testing.T) {
	src := readEngineGo(t)
	mutated := src + "\nfunc (e *Engine) handleDebug(w http.ResponseWriter) {\n\te.nextID++\n}\n"

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "runs on an HTTP handler goroutine") {
		t.Errorf("finding is not a handler-goroutine report: %s", diags[0])
	}
}

// TestMutationSpawnedTouch wraps one of Run's owned-field increments in
// a spawned literal — the single-goroutine discipline broken from inside
// the owner itself — and must produce exactly one owned finding.
func TestMutationSpawnedTouch(t *testing.T) {
	src := readEngineGo(t)
	mutated := strings.Replace(src,
		"e.nextID++",
		"go func() { e.nextID++ }()", 1)
	if mutated == src {
		t.Fatal("mutation had no effect; did internal/engine/engine.go change shape?")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "touched inside a go statement's function literal") {
		t.Errorf("finding is not a spawned-literal report: %s", diags[0])
	}
}

// ifaceSrc is clean: poll calls through the ticker interface, whose only
// implementer is Engine, but poll itself runs on an unknown goroutine.
const ifaceSrc = `package engine

type ticker interface{ Tick() }

type Engine struct {
	seq int64 // owned by Run
}

func (e *Engine) Run()  {}
func (e *Engine) Tick() { e.seq++ }

func boot(e *Engine, t ticker) {
	go e.Run()
	poll(t)
}

func poll(t ticker) { t.Tick() }
`

// TestMutationInterfaceSpawn spawns poll on its own goroutine. The
// violating access sits in Engine.Tick, reachable from the spawn root
// only through the devirtualized t.Tick() edge — before devirtualization
// this mutation was invisible.
func TestMutationInterfaceSpawn(t *testing.T) {
	mutated := strings.Replace(ifaceSrc, "\tpoll(t)", "\tgo poll(t)", 1)
	if mutated == ifaceSrc {
		t.Fatal("mutation had no effect")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "Engine.Tick is reachable from spawned goroutine poll") {
		t.Errorf("finding does not trace through the devirtualized edge: %s", diags[0])
	}
}

// TestUnmutatedInterfaceSourceIsClean pins the baseline the interface
// mutation test depends on.
func TestUnmutatedInterfaceSourceIsClean(t *testing.T) {
	if diags := runOnSource(t, ifaceSrc); len(diags) != 0 {
		t.Fatalf("unexpected findings on clean interface source:\n%s",
			analysistest.Fprint(diags))
	}
}

// TestUnmutatedEngineIsClean pins the baseline the mutation tests depend
// on: the real file, annotations and all, must produce no owned findings.
func TestUnmutatedEngineIsClean(t *testing.T) {
	if diags := runOnSource(t, readEngineGo(t)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine engine.go:\n%s",
			analysistest.Fprint(diags))
	}
}

// TestEngineHasOwnedAnnotations guards the annotation sweep itself: the
// mutation tests above are vacuous if the Engine struct loses its
// "owned by Run" comments.
func TestEngineHasOwnedAnnotations(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "engine.go", readEngineGo(t), parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	owned := CollectOwned([]*ast.File{file})
	fields := owned["Engine"]
	if len(fields) == 0 {
		t.Fatal("Engine struct carries no 'owned by' annotations")
	}
	for _, name := range []string{"nextID", "running", "committed", "finished"} {
		if fields[name] != "Run" {
			t.Errorf("Engine.%s: owner = %q, want %q", name, fields[name], "Run")
		}
	}
}

func readEngineGo(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "engine", "engine.go")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	return string(b)
}

// runOnSource applies the analyzer to one in-memory file.
func runOnSource(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "engine.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &analysis.Package{
		Path:  "unitdb/internal/engine",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
	var diags []analysis.Diagnostic
	if err := Analyzer.Run(analysis.NewPass(Analyzer, pkg, &diags)); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !analysis.Suppressed(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
