// Package ownfix exercises the owned analyzer: struct fields annotated
// "owned by <method>" must never be touched from a context that provably
// runs on a different goroutine than the owner's loop — go-statement
// literals, functions spawned with go, and HTTP handlers.
package ownfix

import "net/http"

type Loop struct {
	next int   // owned by Run
	done bool  // owned by Run
	out  []int // unannotated: deliberately shared
}

// Run is the owning event loop; its own accesses are fine, as are
// accesses in anything it calls on its goroutine.
func (l *Loop) Run() {
	for !l.done {
		l.step()
	}
}

func (l *Loop) step() { l.next++ }

// Start spawns the owner itself — that is how the loop begins, not a
// violation of it.
func Start(l *Loop) {
	go l.Run()
}

// leak touches an owned field inside a go literal: always foreign, even
// when written inside a method the owner calls.
func (l *Loop) leak() {
	go func() {
		l.next++ // want `l\.next is owned by the Loop\.Run goroutine but is touched inside a go statement's function literal`
	}()
}

// onTick's closure is not spawned: it may well run on the owner's
// goroutine (an event-loop callback), so the access is allowed.
func (l *Loop) onTick() {
	tick := func() { l.next++ }
	tick()
}

// ServeStatus runs on an HTTP server goroutine; reaching the owned
// field from it — here through a callee — races with the loop.
func (l *Loop) ServeStatus(w http.ResponseWriter, r *http.Request) {
	l.out = append(l.out, l.peek())
}

func (l *Loop) peek() int {
	return l.next // want `l\.next is owned by the Loop\.Run goroutine but Loop\.peek runs on an HTTP handler goroutine`
}

// drain is spawned onto its own goroutine and is not the owner, so its
// write to an owned field is provably cross-goroutine.
func (l *Loop) watch() {
	go l.drain()
}

func (l *Loop) drain() {
	l.done = true // want `l\.done is owned by the Loop\.Run goroutine but Loop\.drain is reachable from spawned goroutine Loop\.drain`
}
