// Positive fixture: a core package reaching for the wall clock.
package engine

import (
	"time"
	systime "time"
)

func now() float64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return float64(t.Unix())
}

func wait(d time.Duration) {
	time.Sleep(d)   // want `time\.Sleep blocks on the wall clock`
	<-time.After(d) // want `time\.After blocks on the wall clock`
}

func aliased() time.Duration {
	return systime.Since(systime.Now()) // want `systime\.Since reads the wall clock` `systime\.Now reads the wall clock`
}

func tickers() {
	_ = time.NewTicker(time.Second) // want `time\.NewTicker creates a wall-clock ticker`
	_ = time.NewTimer(time.Second)  // want `time\.NewTimer creates a wall-clock timer`
}

// Legal uses: durations, constants, conversions, and arithmetic carry no
// hidden clock state.
func legal(sec float64) time.Duration {
	d := time.Duration(sec * float64(time.Second))
	return d.Round(time.Millisecond)
}

// A local variable named like the package does not confuse the check
// into flagging method calls on it... but shadowing the import is not
// modelled; keep fixtures honest about the syntactic scope.
type clock struct{}

func (clock) Unix() int64 { return 0 }

func suppressed() {
	_ = time.Now() //unitlint:ignore detclock -- fixture: pins that a scoped, reasoned ignore suppresses
}
