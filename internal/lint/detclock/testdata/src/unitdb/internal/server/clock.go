// Negative fixture: internal/server deliberately runs on the wall clock
// and is outside detclock's core set — nothing here may be flagged.
package server

import "time"

func now() time.Time { return time.Now() }

func tick(d time.Duration) {
	time.Sleep(d)
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
}
