package detclock_test

import (
	"testing"

	"unitdb/internal/lint/analysistest"
	"unitdb/internal/lint/detclock"
)

func TestCorePackageFlagged(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detclock.Analyzer,
		"unitdb/internal/engine")
}

func TestWallClockPackageExempt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detclock.Analyzer,
		"unitdb/internal/server")
}
