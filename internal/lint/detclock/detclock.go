// Package detclock forbids wall-clock access in the simulator core.
//
// The paper's figures only reproduce when a run is a pure function of
// (workload, weights, seed): virtual time comes from the event queue
// (eventsim.Sim.Now), never from the host clock. A single time.Now() in
// an engine hot path silently re-times every deadline comparison and the
// results stop being replayable. detclock pins that invariant: calls to
// clock-reading or sleeping functions of package time are diagnostics in
// core packages, while wall-clock packages (the live server, commands,
// examples) are exempt.
package detclock

import (
	"go/ast"
	"strings"

	"unitdb/internal/lint/analysis"
)

// Analyzer is the detclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "detclock",
	Doc:  "forbid wall-clock time access in deterministic simulator packages",
	Run:  run,
}

// CorePrefixes lists the import-path prefixes that must stay wall-clock
// free: the simulator engine and every pure substrate it is built from.
// internal/server, cmd/..., examples/... and the root package deliberately
// run on the wall clock and are not listed.
var CorePrefixes = []string{
	"unitdb/internal/engine",
	"unitdb/internal/eventsim",
	"unitdb/internal/core",
	"unitdb/internal/baseline",
	"unitdb/internal/datastore",
	"unitdb/internal/experiments",
	"unitdb/internal/faults",
	"unitdb/internal/freshness",
	"unitdb/internal/lockmgr",
	"unitdb/internal/lottery",
	"unitdb/internal/obs",
	"unitdb/internal/readyq",
	"unitdb/internal/scenario",
	"unitdb/internal/stats",
	"unitdb/internal/txn",
	"unitdb/internal/workload",
}

// forbidden are the package time functions that read the host clock or
// block on it. Conversions and constants (time.Duration, time.Second) and
// arithmetic on explicit values stay legal — they carry no hidden state.
var forbidden = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "blocks on the wall clock",
	"Tick":      "creates a wall-clock ticker",
	"NewTicker": "creates a wall-clock ticker",
	"NewTimer":  "creates a wall-clock timer",
	"AfterFunc": "schedules on the wall clock",
}

// isCore reports whether the package path falls under a core prefix.
func isCore(path string) bool {
	for _, p := range CorePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !isCore(pass.Pkg.Path) {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		timeNames := map[string]bool{}
		for _, n := range analysis.ImportNames(file, "time") {
			if n != "." {
				timeNames[n] = true
			}
		}
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[ident.Name] {
				return true
			}
			if why, bad := forbidden[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(),
					"%s.%s %s; simulator core must use virtual time (eventsim.Sim.Now)",
					ident.Name, sel.Sel.Name, why)
			}
			return true
		})
	}
	return nil
}
