// Package seededrand forbids the process-global math/rand generators.
//
// Lottery draws (paper Fig. 2 line 4) and LBC tie-breaking must replay
// bit-for-bit from an injected seed, so every random stream in this repo
// is either a *stats.RNG threaded down from a Seed config field or a
// locally constructed, explicitly seeded *rand.Rand. Top-level math/rand
// functions (rand.Intn, rand.Float64, ...) draw from a shared global
// source whose sequence interleaves across goroutines and — since Go 1.20
// — auto-seeds at startup, which destroys reproducibility everywhere, not
// just in the simulator core. seededrand flags them in all packages.
// Constructors (rand.New, rand.NewSource, rand.NewZipf, ...) are legal:
// they are exactly how a local seeded generator is built.
package seededrand

import (
	"go/ast"

	"unitdb/internal/lint/analysis"
)

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand functions; randomness must flow from an injected seed",
	Run:  run,
}

// randPackages are the import paths providing a global generator.
var randPackages = []string{"math/rand", "math/rand/v2"}

// allowed are selectors on the rand package that do NOT touch the global
// source: constructors for local generators and source interfaces.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // rand/v2
	"NewChaCha8": true, // rand/v2
	// Type names, usable in declarations like var r *rand.Rand.
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"Zipf":     true,
	"PCG":      true,
	"ChaCha8":  true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		names := map[string]string{} // local name → import path
		for _, p := range randPackages {
			for _, n := range analysis.ImportNames(file, p) {
				if n != "." {
					names[n] = p
				}
			}
		}
		if len(names) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, isRand := names[ident.Name]
			if !isRand || allowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global %s.%s is not seed-reproducible; use an injected *stats.RNG or a locally seeded *rand.Rand (%s)",
				ident.Name, sel.Sel.Name, path)
			return true
		})
	}
	return nil
}
