// Negative fixture: explicitly seeded local generators are the sanctioned
// pattern — constructors and method calls on a *rand.Rand are all legal.
package main

import "math/rand"

func seeded(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	var r *rand.Rand = rng
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Intn(100))
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	z := rand.NewZipf(rng, 1.4, 1, 1023)
	_ = z.Uint64()
	return out
}
