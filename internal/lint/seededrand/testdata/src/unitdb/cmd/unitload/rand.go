// Positive fixture: global math/rand draws, which no package may use.
package main

import (
	"math/rand"
	mrand "math/rand"
)

func draws(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rand.Float64()) // want `global rand\.Float64 is not seed-reproducible`
	}
	rand.Seed(42)                                                       // want `global rand\.Seed is not seed-reproducible`
	_ = rand.Intn(10)                                                   // want `global rand\.Intn is not seed-reproducible`
	_ = mrand.Perm(4)                                                   // want `global mrand\.Perm is not seed-reproducible`
	rand.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] }) // want `global rand\.Shuffle is not seed-reproducible`
	return out
}

func suppressed() int {
	return rand.Int() //unitlint:ignore seededrand -- fixture: pins that a scoped, reasoned ignore suppresses
}
