package seededrand_test

import (
	"testing"

	"unitdb/internal/lint/analysistest"
	"unitdb/internal/lint/seededrand"
)

func TestGlobalRandFlaggedSeededAllowed(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seededrand.Analyzer,
		"unitdb/cmd/unitload")
}
