// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis, carrying just what unitlint's checkers
// need: an Analyzer descriptor, a per-package Pass with parsed files, and
// positioned diagnostics. The container this repo builds in has no module
// proxy access, so vendoring the real x/tools is not an option; the API
// mirrors it closely enough that the analyzers port mechanically if the
// dependency ever becomes available.
//
// The deliberate difference from x/tools: passes are purely syntactic.
// There is no types.Info and no Facts store — every unitlint invariant
// (wall-clock calls, global math/rand, guarded-field conventions, literal
// ranges) is checkable from the AST plus per-file import tables, and
// staying type-free keeps the loader trivial and fast.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //unitlint:ignore comments. It must be a valid identifier.
	Name string
	// Doc is the help text: first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Package is one parsed Go package as the loader sees it: all source
// files of a directory that share a package name.
type Package struct {
	// Path is the import path ("unitdb/internal/engine"). Fixture
	// packages under an analysistest testdata tree use the path below
	// testdata/src, mirroring x/tools.
	Path string
	// Name is the package identifier.
	Name string
	// Dir is the absolute directory the files came from.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files holds the parsed sources, comments included. Test files
	// (_test.go) are present; analyzers that must skip them can consult
	// Pass.InTestFile.
	Files []*ast.File
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// NewPass prepares a run of a over pkg, appending findings to sink.
func NewPass(a *Analyzer, pkg *Package, sink *[]Diagnostic) *Pass {
	return &Pass{Analyzer: a, Pkg: pkg, diags: sink}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves pos against the package's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Pkg.Fset.Position(pos)
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// ImportNames returns every name under which file imports path — a file
// may import one path several times under different names. Blank imports
// are omitted; a dot import contributes ".".
func ImportNames(file *ast.File, path string) []string {
	var names []string
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name != "_" {
				names = append(names, imp.Name.Name)
			}
			continue
		}
		// Default name: the last path element ("math/rand" → "rand").
		if i := strings.LastIndex(p, "/"); i >= 0 {
			names = append(names, p[i+1:])
		} else {
			names = append(names, p)
		}
	}
	return names
}

// FileFor returns the *ast.File of pkg containing pos, or nil.
func FileFor(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether a diagnostic is silenced by a scoped inline
// comment on the same line or the line immediately above:
//
//	//unitlint:ignore <analyzer>[,<analyzer>] -- <reason>
//
// Both the analyzer list and the reason are mandatory. A bare or
// unreasoned ignore suppresses nothing — and BadIgnores turns it into a
// finding of its own — so every escape hatch in the tree names what it
// silences and says why.
func Suppressed(pkg *Package, d Diagnostic) bool {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.FileStart).Filename != d.Pos.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ig, ok := parseIgnore(c.Text)
				if !ok || ig.reason == "" {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				if line != d.Pos.Line && line != d.Pos.Line-1 {
					continue
				}
				for _, n := range ig.names {
					if n == d.Analyzer {
						return true
					}
				}
			}
		}
	}
	return false
}

// ignoreComment is one parsed //unitlint:ignore comment; validation is
// the caller's job.
type ignoreComment struct {
	names  []string // analyzers being silenced
	reason string   // text after " -- "
}

// parseIgnore recognizes //unitlint:ignore comments. ok is false for
// unrelated comments (including other unitlint: directives).
func parseIgnore(text string) (ignoreComment, bool) {
	rest, found := strings.CutPrefix(text, "//unitlint:ignore")
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return ignoreComment{}, false
	}
	namesPart, reason, _ := strings.Cut(rest, "--")
	var ig ignoreComment
	ig.reason = strings.TrimSpace(reason)
	for _, n := range strings.Split(namesPart, ",") {
		if n = strings.TrimSpace(n); n != "" {
			ig.names = append(ig.names, n)
		}
	}
	return ig, true
}

// BadIgnores audits every //unitlint:ignore comment in the package and
// returns a diagnostic (analyzer name "ignore") for each malformed one:
// missing the analyzer list, missing the "-- reason" tail, or naming an
// analyzer that does not exist (known is the registry; nil skips that
// check). Malformed ignores suppress nothing, so a typo would silently
// re-enable a finding — this audit makes the mistake loud instead.
func BadIgnores(pkg *Package, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: "ignore",
			Pos:      pkg.Fset.Position(c.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ig, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				switch {
				case len(ig.names) == 0:
					report(c, "ignore comment suppresses nothing: write //unitlint:ignore <analyzer> -- <reason>")
				case ig.reason == "":
					report(c, "ignore comment has no reason and suppresses nothing: append \" -- <why this violation is deliberate>\"")
				default:
					for _, n := range ig.names {
						if known != nil && !known[n] {
							report(c, "ignore comment names unknown analyzer %q", n)
						}
					}
				}
			}
		}
	}
	return out
}
