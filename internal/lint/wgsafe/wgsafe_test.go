package wgsafe

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unitdb/internal/wgfix")
}

// TestMutationAddInsideGoroutine is the seeded mutation check: folding
// New's wg.Add(1) into the spawned worker goroutine — a tempting
// "simplification" that races Close's Wait — must produce exactly one
// finding on the real server source.
func TestMutationAddInsideGoroutine(t *testing.T) {
	src := readServerGo(t)
	mutated := strings.Replace(src,
		"\t\ts.wg.Add(1)\n\t\tgo s.worker()",
		"\t\tgo func() { s.wg.Add(1); s.worker() }()", 1)
	if mutated == src {
		t.Fatal("mutation had no effect; did internal/server/server.go change shape?")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "inside the spawned goroutine it guards races the parent's Wait()") {
		t.Errorf("finding is not a spawned-Add report: %s", diags[0])
	}
}

// TestUnmutatedServerIsClean pins the baseline the mutation test depends
// on: the real file alone must produce no wgsafe findings.
func TestUnmutatedServerIsClean(t *testing.T) {
	if diags := runOnSource(t, readServerGo(t)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine server.go:\n%s",
			analysistest.Fprint(diags))
	}
}

func readServerGo(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "server", "server.go")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	return string(b)
}

// runOnSource applies the analyzer to one in-memory file.
func runOnSource(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "server.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &analysis.Package{
		Path:  "unitdb/internal/server",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
	var diags []analysis.Diagnostic
	if err := Analyzer.Run(analysis.NewPass(Analyzer, pkg, &diags)); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !analysis.Suppressed(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
