// Package wgfix exercises the wgsafe analyzer: Add inside the spawned
// goroutine it guards, Add after Wait, Done outrunning Add on a path,
// and the idiomatic patterns that must stay silent.
package wgfix

import "sync"

type Pool struct {
	wg sync.WaitGroup
}

// Start is the idiom: Add on the parent goroutine, before the spawn.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.run()
	}
}

// run balances an Add its caller made: a bare deferred Done is never a
// finding.
func (p *Pool) run() { defer p.wg.Done() }

// BadStart races the Add against a concurrent Wait.
func (p *Pool) BadStart() {
	go func() {
		p.wg.Add(1) // want `\(Pool\)\.wg\.Add\(\) inside the spawned goroutine it guards races the parent's Wait\(\)`
		p.run()
	}()
}

// Reuse Adds again after Wait on the same group in one function.
func (p *Pool) Reuse() {
	p.wg.Add(1)
	go p.run()
	p.wg.Wait()
	p.wg.Add(1) // want `\(Pool\)\.wg\.Add\(\) after \(Pool\)\.wg\.Wait\(\) in the same function \(WaitGroup reuse race\)`
	go p.run()
	p.wg.Wait()
}

// overDone drives the counter negative on the only path.
func overDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Done() // want `wg\.Done\(\) exceeds this path's Add\(\) calls \(negative WaitGroup counter panics\)`
}

// branchDone is balanced on every path: clean.
func branchDone(b bool) {
	var wg sync.WaitGroup
	wg.Add(2)
	wg.Done()
	if b {
		wg.Done()
	}
}

// literalLocal declares the group inside the spawned literal: the
// literal is the parent then, and its Add is ordered by program order.
func literalLocal() {
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() { inner.Done() }()
		inner.Wait()
	}()
}

// helper takes the group by pointer; its deferred Done balances the
// caller's Add (deferred ops are skipped, callers are not judged).
func helper(wg *sync.WaitGroup) {
	defer wg.Done()
}

// notAWaitGroup: Add/Done on something else never matches — the
// receiver's declared type, not the method name, selects the key.
type counter struct{ n int }

func (c *counter) Add(d int) { c.n += d }

func bumpInsideGo(c *counter) {
	go func() {
		c.Add(1)
	}()
}
