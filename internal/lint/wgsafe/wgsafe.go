// Package wgsafe checks sync.WaitGroup discipline. The type's contract
// has three classic violations, all invisible to the race detector
// until a run happens to lose the race:
//
//   - Add inside the spawned goroutine it guards: `go func() {
//     wg.Add(1); ... }()` races Add against the parent's Wait — if Wait
//     runs first it sees a zero counter and returns before the work
//     exists. Add must happen before the go statement. A WaitGroup
//     declared inside the literal itself is exempt: the literal is its
//     parent then, and ordering within one goroutine is program order.
//
//   - Add after Wait on the same group within one function: reusing a
//     WaitGroup for a second round of goroutines while the first Wait
//     may still be returning is the documented misuse of Add ("must
//     happen before a Wait", reuse requires all previous Waits to have
//     returned). Flagged path-sensitively with the same must-lattice
//     style as locksafe.
//
//   - Done without a matching Add on some path: a path whose statically
//     visible Done calls outnumber its Adds drives the counter negative
//     and panics. Only functions that call Add themselves are judged —
//     a bare `defer wg.Done()` in a worker balances an Add the caller
//     made, which is the idiom, not a bug. Deferred operations are
//     skipped entirely (they run at return, where path state differs),
//     and function literals are separate analysis units.
//
// WaitGroups are recognized by declared type: struct fields whose type
// flattens to sync.WaitGroup (keyed "(T).wg" package-wide) and locals
// or parameters declared sync.WaitGroup / *sync.WaitGroup (keyed by
// name). A method named Add/Done/Wait on anything else — a metrics
// counter, an atomic — never matches, because the receiver's type, not
// the method name, selects the key. Unresolvable receivers contribute
// nothing: the analysis under-approximates like the rest of the suite.
package wgsafe

import (
	"go/ast"
	"go/token"
	"strconv"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
	"unitdb/internal/lint/summary"
)

// Analyzer is the wgsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "wgsafe",
	Doc:  "WaitGroup discipline: Add before the go statement, never after Wait; Done balances Add on every path",
	Run:  run,
}

// opKind is a WaitGroup operation.
type opKind uint8

const (
	opAdd opKind = iota
	opDone
	opWait
)

// op is one WaitGroup operation at a position.
type op struct {
	kind opKind
	key  string
	n    uint8 // Add's increment, saturating at maxDelta; maxDelta if unknown
	pos  token.Pos
}

// maxDelta saturates the tracked Add-Done balance: 3 means "three or
// more", enough to keep loops finite while still catching a lone Done
// against zero Adds.
const maxDelta = 3

// pathState is the state of one WaitGroup along one path.
type pathState struct {
	delta  uint8 // visible Adds minus Dones, saturating at maxDelta
	added  bool  // an Add executed on this path
	waited bool  // a Wait executed on this path
}

func (p pathState) index() uint {
	i := uint(p.delta)
	if p.added {
		i |= 1 << 2
	}
	if p.waited {
		i |= 1 << 3
	}
	return i
}

// stateSet is a set of pathStates as a bitmask (paths merge at joins).
type stateSet uint16

// entrySet is the state of an untouched WaitGroup.
var entrySet = stateSet(0).add(pathState{})

func (s stateSet) add(p pathState) stateSet { return s | 1<<p.index() }

func (s stateSet) states() []pathState {
	var out []pathState
	for i := uint(0); i < 16; i++ {
		if s&(1<<i) == 0 {
			continue
		}
		out = append(out, pathState{
			delta:  uint8(i & 3),
			added:  i&(1<<2) != 0,
			waited: i&(1<<3) != 0,
		})
	}
	return out
}

// apply computes the successor of one path state under o, plus a problem
// description ("" when clean). Like lockstate.Apply, the same function
// drives the fixpoint transfer and the reporting replay.
func apply(o op, p pathState) (pathState, string) {
	switch o.kind {
	case opAdd:
		problem := ""
		if p.waited {
			problem = o.key + ".Add() after " + o.key + ".Wait() in the same function (WaitGroup reuse race)"
		}
		d := p.delta + o.n
		if d > maxDelta {
			d = maxDelta
		}
		return pathState{delta: d, added: true, waited: p.waited}, problem
	case opDone:
		if p.delta == maxDelta {
			return p, "" // saturated: balance unknown, stay silent
		}
		if p.delta == 0 {
			problem := ""
			if p.added {
				problem = o.key + ".Done() exceeds this path's Add() calls (negative WaitGroup counter panics)"
			}
			return p, problem
		}
		return pathState{delta: p.delta - 1, added: p.added, waited: p.waited}, ""
	default: // opWait
		return pathState{delta: p.delta, added: p.added, waited: true}, ""
	}
}

// fact maps WaitGroup key → set of path states.
type fact map[string]stateSet

func (f fact) get(key string) stateSet {
	if s, ok := f[key]; ok {
		return s
	}
	return entrySet
}

func (f fact) Equal(o dataflow.Fact) bool {
	g := o.(fact)
	for k, v := range f {
		if g.get(k) != v {
			return false
		}
	}
	for k, v := range g {
		if f.get(k) != v {
			return false
		}
	}
	return true
}

func (f fact) clone() fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func join(a, b dataflow.Fact) dataflow.Fact {
	fa, fb := a.(fact), b.(fact)
	out := fa.clone()
	for k, v := range fb {
		out[k] = out.get(k) | v
	}
	for k := range fa {
		if _, ok := fb[k]; !ok {
			out[k] |= entrySet
		}
	}
	return out
}

type checker struct {
	pass *analysis.Pass
	g    *callgraph.Graph
	seen map[string]bool // finding dedupe across merged paths
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, g: summary.Of(pass.Pkg).Graph, seen: map[string]bool{}}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := callgraph.DeclID(fd)
			c.checkSpawnedAdds(fn, fd.Body)
			c.checkUnit(fn, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkUnit(fn, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// wgKey resolves the receiver of a potential WaitGroup method call:
// "(T).wg" for a field of evident struct type, the bare name for a
// local or parameter declared sync.WaitGroup.
func (c *checker) wgKey(fn callgraph.FuncID, e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if c.g.Bindings(fn)[x.Name] == "sync.WaitGroup" {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			break
		}
		typ, ok := c.g.Bindings(fn)[base.Name]
		if !ok {
			break
		}
		if c.g.FieldTypes[typ][x.Sel.Name] == "sync.WaitGroup" {
			return "(" + typ + ")." + x.Sel.Name, true
		}
	}
	return "", false
}

// callOp classifies one call as a WaitGroup operation on a resolvable
// key.
func (c *checker) callOp(fn callgraph.FuncID, call *ast.CallExpr) (op, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return op{}, false
	}
	var kind opKind
	switch sel.Sel.Name {
	case "Add":
		if len(call.Args) != 1 {
			return op{}, false
		}
		kind = opAdd
	case "Done":
		if len(call.Args) != 0 {
			return op{}, false
		}
		kind = opDone
	case "Wait":
		if len(call.Args) != 0 {
			return op{}, false
		}
		kind = opWait
	default:
		return op{}, false
	}
	key, ok := c.wgKey(fn, sel.X)
	if !ok {
		return op{}, false
	}
	o := op{kind: kind, key: key, pos: call.Pos()}
	if kind == opAdd {
		o.n = maxDelta // unknown increment saturates
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.INT {
			if v, err := strconv.Atoi(lit.Value); err == nil && v >= 0 && v < maxDelta {
				o.n = uint8(v)
			}
		}
	}
	return o, true
}

// nodeOps extracts one CFG node's WaitGroup operations in source order,
// skipping deferred calls (they run at return), go statements (the
// spawned call runs elsewhere), and function literals (separate units).
func (c *checker) nodeOps(fn callgraph.FuncID, n ast.Node) []op {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return nil
	}
	var ops []op
	cfg.Walk(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.GoStmt); ok {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if o, ok := c.callOp(fn, call); ok {
				ops = append(ops, o)
			}
		}
		return true
	})
	return ops
}

// checkUnit solves the lattice over one body and replays it for
// reporting, locksafe-style.
func (c *checker) checkUnit(fn callgraph.FuncID, body *ast.BlockStmt) {
	g := cfg.New(body)
	transfer := func(n ast.Node, f dataflow.Fact) dataflow.Fact {
		ops := c.nodeOps(fn, n)
		if len(ops) == 0 {
			return f
		}
		out := f.(fact).clone()
		for _, o := range ops {
			var next stateSet
			for _, p := range out.get(o.key).states() {
				np, _ := apply(o, p)
				next = next.add(np)
			}
			out[o.key] = next
		}
		return out
	}
	res := dataflow.Solve(g, &dataflow.Analysis{
		Entry:    fact{},
		Join:     join,
		Transfer: transfer,
	})
	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil && b.Index != 0 {
			continue // unreachable
		}
		f := fact{}
		if in != nil {
			f = in.(fact)
		}
		for _, node := range b.Nodes {
			for _, o := range c.nodeOps(fn, node) {
				var next stateSet
				for _, p := range f.get(o.key).states() {
					np, problem := apply(o, p)
					if problem != "" {
						c.report(o.pos, problem)
					}
					next = next.add(np)
				}
				f = f.clone()
				f[o.key] = next
			}
		}
	}
}

// checkSpawnedAdds flags Add calls lexically inside a go statement's
// function literal when the group was declared outside that literal.
// Each spawned literal is judged on its own: a nested spawned literal's
// Adds are its own problem, not the outer's.
func (c *checker) checkSpawnedAdds(fn callgraph.FuncID, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		declared := declaredNames(lit)
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(node ast.Node) bool {
				if inner, ok := node.(*ast.GoStmt); ok {
					if _, ok := inner.Call.Fun.(*ast.FuncLit); ok {
						return false // judged as its own spawned literal
					}
					return true
				}
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				o, ok := c.callOp(fn, call)
				if !ok || o.kind != opAdd {
					return true
				}
				if id, isIdent := call.Fun.(*ast.SelectorExpr).X.(*ast.Ident); isIdent && declared[id.Name] {
					return true // the literal's own WaitGroup
				}
				c.report(o.pos,
					o.key+".Add() inside the spawned goroutine it guards races the parent's Wait(); Add before the go statement")
				return true
			})
		}
		walk(lit.Body)
		return true
	})
}

// declaredNames collects every identifier the literal declares anywhere
// in its body (var statements and short declarations), plus its
// parameters.
func declaredNames(lit *ast.FuncLit) map[string]bool {
	out := map[string]bool{}
	if lit.Type.Params != nil {
		for _, p := range lit.Type.Params.List {
			for _, n := range p.Names {
				out[n.Name] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for _, name := range n.Names {
				out[name.Name] = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return out
}

func (c *checker) report(pos token.Pos, msg string) {
	key := c.pass.Pkg.Fset.Position(pos).String() + "|" + msg
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}
