// Negative fixture: in-domain literals, the zero "use the default"
// sentinel on lax fields, and non-literal values are all silent.
package workload

func good(f float64) {
	_ = QuerySpec{FreshReq: 0.9}
	_ = QuerySpec{FreshReq: 1}
	_ = QuerySpec{FreshReq: f}     // non-literal: not our business
	_ = QueryRequest{Freshness: 0} // zero delegates to the server default
	_ = QueryRequest{Freshness: 0.99}
	_ = Weights{Cr: 0, Cfm: 0.75, Cfs: 0.25}

	var q QuerySpec
	q.FreshReq = 0.5
	_ = q
}
