// Positive fixture: literal freshness and weight values outside the
// paper's domains, at both composite-literal and assignment sites.
package workload

type QuerySpec struct {
	Items    []int
	FreshReq float64
}

type QueryRequest struct {
	Freshness float64
}

type Weights struct {
	Cr, Cfm, Cfs float64
}

func bad() {
	_ = QuerySpec{FreshReq: 0}                  // want `freshness requirement FreshReq = 0 outside \(0,1\]`
	_ = QuerySpec{FreshReq: 1.5}                // want `freshness requirement FreshReq = 1\.5 outside \(0,1\]`
	_ = QuerySpec{FreshReq: -0.2}               // want `freshness requirement FreshReq = -0\.2 outside \(0,1\]`
	_ = QueryRequest{Freshness: 2}              // want `freshness Freshness = 2 outside \(0,1\]`
	_ = QueryRequest{Freshness: -1}             // want `freshness Freshness = -1 outside \(0,1\]`
	_ = Weights{Cr: -0.5, Cfm: 0.75, Cfs: 0.25} // want `USM penalty weight Cr = -0\.5 is negative`

	var q QuerySpec
	q.FreshReq = 1.01 // want `freshness requirement FreshReq = 1\.01 outside \(0,1\]`
	var w Weights
	w.Cfs = -1 // want `USM penalty weight Cfs = -1 is negative`
	_, _ = q, w
}
