// Test files are exempt: validators are exercised with deliberately
// invalid values, which must not trip the linter.
package workload

func exercised() {
	_ = QuerySpec{FreshReq: -5}
	_ = Weights{Cr: -1}
}
