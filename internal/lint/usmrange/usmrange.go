// Package usmrange sanity-checks literal UNIT parameters at construction
// sites.
//
// Two families of values carry tight domain contracts in the paper:
// freshness requirements qf live in (0, 1] (Eq. 1 — a query demanding
// zero freshness is meaningless and one demanding more than 1 can never
// succeed), and the USM penalty weights C_r, C_fm, C_fs are non-negative
// (Eq. 4 subtracts them; a negative weight would reward failures). The
// runtime validators catch bad values at run time — usmrange catches the
// literal ones at lint time, where the fix costs nothing.
//
// Checked syntactically, in non-test files only (tests construct invalid
// values on purpose to exercise the validators): composite-literal fields
// and simple assignments whose field name is a freshness field (FreshReq
// strictly in (0,1]; Freshness, DefaultFreshness, TargetFreshness also
// admit 0, their "use the configured default" sentinel) or a weight field
// (Cr, Cfm, Cfs non-negative), with a numeric literal value.
package usmrange

import (
	"go/ast"
	"go/token"
	"strconv"

	"unitdb/internal/lint/analysis"
)

// Analyzer is the usmrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "usmrange",
	Doc:  "literal freshness requirements must lie in (0,1] and USM penalty weights must be non-negative",
	Run:  run,
}

// strictFresh fields must be in (0,1]; laxFresh fields additionally allow
// the zero "server default" sentinel.
var (
	strictFresh = map[string]bool{"FreshReq": true}
	laxFresh    = map[string]bool{"Freshness": true, "DefaultFreshness": true, "TargetFreshness": true}
	weight      = map[string]bool{"Cr": true, "Cfm": true, "Cfs": true}
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				key, ok := n.Key.(*ast.Ident)
				if !ok {
					return true
				}
				check(pass, key.Name, n.Value)
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					check(pass, sel.Sel.Name, n.Rhs[i])
				}
			}
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, field string, value ast.Expr) {
	v, ok := literalFloat(value)
	if !ok {
		return
	}
	switch {
	case strictFresh[field]:
		if v <= 0 || v > 1 {
			pass.Reportf(value.Pos(),
				"freshness requirement %s = %v outside (0,1] (Eq. 1)", field, v)
		}
	case laxFresh[field]:
		if v < 0 || v > 1 {
			pass.Reportf(value.Pos(),
				"freshness %s = %v outside (0,1] (0 delegates to the default)", field, v)
		}
	case weight[field]:
		if v < 0 {
			pass.Reportf(value.Pos(),
				"USM penalty weight %s = %v is negative; Eq. 4 requires non-negative costs", field, v)
		}
	}
}

// literalFloat evaluates an int/float literal, optionally under a single
// unary +/-. Anything else (variables, expressions) is not usmrange's
// business.
func literalFloat(e ast.Expr) (float64, bool) {
	neg := false
	if u, ok := e.(*ast.UnaryExpr); ok {
		switch u.Op {
		case token.SUB:
			neg, e = true, u.X
		case token.ADD:
			e = u.X
		default:
			return 0, false
		}
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return 0, false
	}
	v, err := strconv.ParseFloat(lit.Value, 64)
	if err != nil {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}
