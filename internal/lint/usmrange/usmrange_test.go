package usmrange_test

import (
	"testing"

	"unitdb/internal/lint/analysistest"
	"unitdb/internal/lint/usmrange"
)

func TestLiteralRanges(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), usmrange.Analyzer,
		"unitdb/internal/workload")
}
