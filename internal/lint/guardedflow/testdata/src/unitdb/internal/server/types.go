// Fixture for guardedflow, part 1 of a two-file package: the annotated
// struct lives here, the methods in methods.go — collection must work
// across files.
package server

import "sync"

type Queue struct {
	mu sync.Mutex

	items   []int // guarded by mu
	total   int   // guarded by mu
	victims int   // guarded by mu
}
