// Fixture for guardedflow, part 2: methods of the struct declared in
// types.go. Clean methods pin false-positive behaviour; want-lines pin
// the flow-sensitive findings guardedby (comment-presence) cannot see.
package server

// The canonical patterns stay clean.
func (q *Queue) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
	q.total++
}

func (q *Queue) Total() int {
	q.mu.Lock()
	n := q.total
	q.mu.Unlock()
	return n
}

// Held through a loop: the head condition and the body access both see
// the mutex held on every path.
func (q *Queue) DrainAll() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for len(q.items) > 0 {
		q.items = q.items[1:]
		n++
	}
	return n
}

// guardedby passes this method — it locks mu *somewhere*. guardedflow
// sees the access happens after the unlock.
func (q *Queue) AfterUnlock() int {
	q.mu.Lock()
	q.mu.Unlock()
	return q.total // want `q\.total is guarded by "mu" but q\.mu is not provably held here`
}

// One branch releases before touching the field.
func (q *Queue) FlushRace(flush bool) {
	q.mu.Lock()
	if flush {
		q.mu.Unlock()
		q.items = nil // want `q\.items is guarded by "mu"`
		return
	}
	q.mu.Unlock()
}

// Locking in only one branch is not proof: the merge point holds the
// unlocked path too.
func (q *Queue) MaybeGuard(careful bool) {
	if careful {
		q.mu.Lock()
	}
	q.victims++ // want `q\.victims is guarded by "mu"`
	if careful {
		q.mu.Unlock()
	}
}

// *Locked convention: the caller holds mu, so accesses are fine...
func (q *Queue) drainLocked() []int {
	out := q.items
	q.items = nil
	return out
}

// ...but a *Locked method that releases the caller's lock early is still
// checked against the flow.
func (q *Queue) leakyLocked() int {
	q.mu.Unlock()
	return q.total // want `q\.total is guarded by "mu"`
}

// Closure bodies are exempt by design: they run at call time under the
// call site's lock regime (the race detector covers the dynamics).
func (q *Queue) observer() func() int {
	return func() int { return q.total }
}

// A method of an unannotated struct is out of scope entirely.
type plain struct{ n int }

func (p *plain) bump() { p.n++ }
