// Package guardedflow upgrades the guardedby convention from
// comment-presence checking to flow-sensitive enforcement: every read or
// write of a "// guarded by mu" field through a method receiver must
// happen at a program point where the lockstate lattice proves the mutex
// held (write- or read-locked on every path reaching the access), or
// inside a method whose name ends in "Locked" (which is analyzed with the
// mutex assumed held at entry — and still checked, so a *Locked method
// that releases early is caught).
//
// Where guardedby asks "does this method lock mu somewhere?", guardedflow
// asks "is mu held *here*?" — it catches the access moved past the
// unlock, the branch that releases before touching the field, and the
// *Locked helper that drops the caller's lock.
//
// Scope matches guardedby deliberately: only accesses spelled through the
// method receiver are checked (aliases are out of syntactic reach), plain
// functions and constructors are exempt (the struct has not escaped yet),
// and function-literal bodies are exempt (a closure runs at call time
// under whatever lock regime its call site has — the server's dequeue
// closure, for example, runs under the mutex of three different call
// sites; `go test -race` covers the dynamics).
package guardedflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
	"unitdb/internal/lint/guardedby"
	"unitdb/internal/lint/lockstate"
)

// Analyzer is the guardedflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedflow",
	Doc:  "guarded-field accesses must occur where the mutex is provably held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := guardedby.CollectGuards(pass.Pkg.Files)
	if len(g) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv, typ := guardedby.ReceiverName(fd)
			if recv == "" || recv == "_" || len(g[typ]) == 0 {
				continue
			}
			checkMethod(pass, fd, recv, typ, g[typ])
		}
	}
	return nil
}

// checkMethod runs the lockstate fixpoint over one method and reports
// every guarded-field access at a point where the mutex is not provably
// held. fields maps field name → guarding mutex name.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recv, typ string, fields map[string]string) {
	entry := lockstate.Fact{}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		// The caller holds every guarding mutex of the struct; the method
		// body is still checked under that assumption.
		for _, mutex := range fields {
			entry[recv+"."+mutex] = lockstate.Set(0).Add(lockstate.PathState{Mode: lockstate.Locked})
		}
	}
	g := cfg.New(fd.Body)
	res := dataflow.Solve(g, &dataflow.Analysis{
		Entry:    entry,
		Join:     lockstate.Join,
		Transfer: lockstate.Transfer,
	})

	seen := map[string]bool{}
	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil {
			continue // unreachable
		}
		fact := in.(lockstate.Fact)
		for _, node := range b.Nodes {
			checkAccesses(pass, node, fact, fd, recv, typ, fields, seen)
			// Advance the lock state past this node's own operations;
			// bad transitions are locksafe's findings, not ours.
			fact = lockstate.Transfer(node, fact).(lockstate.Fact)
		}
	}
}

// checkAccesses reports unguarded recv.field accesses within one node,
// judged against the lock state at the node's entry.
func checkAccesses(pass *analysis.Pass, node ast.Node, fact lockstate.Fact,
	fd *ast.FuncDecl, recv, typ string, fields map[string]string, seen map[string]bool) {
	cfg.Walk(node, func(c ast.Node) bool {
		sel, ok := c.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		mutex, guarded := fields[sel.Sel.Name]
		if !guarded || lockstate.Held(fact, recv+"."+mutex) {
			return true
		}
		key := fmt.Sprintf("%v|%s", sel.Pos(), sel.Sel.Name)
		if seen[key] {
			return true
		}
		seen[key] = true
		report(pass, sel.Pos(), recv, sel.Sel.Name, mutex, typ, fd.Name.Name)
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos, recv, field, mutex, typ, method string) {
	pass.Reportf(pos,
		"%s.%s is guarded by %q but %s.%s is not provably held here (method %s.%s; suffix the name with Locked if the caller holds it)",
		recv, field, mutex, recv, mutex, typ, method)
}
