package guardedby_test

import (
	"testing"

	"unitdb/internal/lint/analysistest"
	"unitdb/internal/lint/guardedby"
)

func TestAnnotatedStruct(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer,
		"unitdb/internal/server")
}

func TestUnannotatedPackageClean(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer,
		"unitdb/internal/plain")
}
