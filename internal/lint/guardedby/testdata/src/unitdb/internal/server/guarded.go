// Fixture for the guarded-by convention: counter mixes compliant and
// non-compliant methods so one file pins both directions.
package server

import "sync"

type counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// hits is bumped on every read. // guarded by mu
	hits  int
	label string // unguarded: set once before the struct escapes

	rw   sync.RWMutex
	view []int // guarded by rw
}

// newCounter is a plain function: populating fields before the value
// escapes needs no lock.
func newCounter(label string) *counter {
	c := &counter{label: label}
	c.n = 0
	return c
}

// Add locks the right mutex.
func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// Get reads n without mu: flagged.
func (c *counter) Get() int {
	return c.n // want `c\.n is guarded by "mu" but method counter\.Get never locks c\.mu`
}

// Peek holds the wrong lock for n.
func (c *counter) Peek() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	_ = c.view // rw is held: fine
	return c.n // want `c\.n is guarded by "mu" but method counter\.Peek never locks c\.mu`
}

// View reads through the RWMutex read lock.
func (c *counter) View() []int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.view
}

// bumpLocked documents via its name that the caller holds mu.
func (c *counter) bumpLocked() {
	c.n++
	c.hits++
}

// Label touches only the unguarded field.
func (c *counter) Label() string { return c.label }

// closure accesses inside function literals still count.
func (c *counter) Async() func() {
	return func() {
		c.hits++ // want `c\.hits is guarded by "mu" but method counter\.Async never locks c\.mu`
	}
}

// Suppressed demonstrates the escape hatch for a deliberate unguarded
// read (say, a monitoring fast path that tolerates a torn value).
func (c *counter) Suppressed() int {
	return c.n //unitlint:ignore guardedby -- fixture: pins that a scoped, reasoned ignore suppresses
}
