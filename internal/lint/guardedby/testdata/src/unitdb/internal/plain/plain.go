// Negative fixture: a package with no annotations produces nothing, even
// with mutexes and racy-looking code present.
package plain

import "sync"

type bag struct {
	mu sync.Mutex
	n  int
}

func (b *bag) Inc() { b.n++ } // no annotation, no finding
