// Package guardedby enforces a lightweight lock-annotation convention on
// concurrent structs, in the spirit of Clang's thread-safety analysis and
// Java's @GuardedBy, scaled down to what a syntactic pass can honestly
// check.
//
// Convention: a struct field whose comment contains "guarded by <mutex>"
// (case-insensitive) names the sibling field that must be held when the
// field is read or written:
//
//	mu    sync.Mutex
//	queue queryHeap // guarded by mu
//
// Every method of the struct that mentions an annotated field through its
// receiver must either contain a call to recv.<mutex>.Lock() or
// recv.<mutex>.RLock() somewhere in its body, or declare by naming
// convention that its caller already holds the lock (method name ending
// in "Locked"). Plain functions, including constructors that populate the
// struct before it escapes, are outside the method set and exempt.
//
// This is deliberately best-effort: it does not track lock/unlock
// ordering or flow, so a method that unlocks before touching the field
// still passes. The race detector covers the dynamic side; guardedby
// keeps the static annotation honest and makes unguarded-access review a
// grep instead of an archaeology dig.
package guardedby

import (
	"go/ast"
	"regexp"
	"strings"

	"unitdb/internal/lint/analysis"
)

// Analyzer is the guardedby pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "methods touching a '// guarded by mu' field must lock that mutex",
	Run:  run,
}

var guardRE = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// Guards maps struct name → field name → guarding mutex field name. It is
// exported for guardedflow, which upgrades the same annotations from
// comment-presence checking to flow-sensitive enforcement.
type Guards map[string]map[string]string

func run(pass *analysis.Pass) error {
	g := CollectGuards(pass.Pkg.Files)
	if len(g) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, g, fd)
		}
	}
	return nil
}

// CollectGuards finds annotated fields across the package's structs.
func CollectGuards(files []*ast.File) Guards {
	g := Guards{}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				m := g[ts.Name.Name]
				if m == nil {
					m = map[string]string{}
					g[ts.Name.Name] = m
				}
				for _, name := range field.Names {
					m[name.Name] = mutex
				}
			}
			return true
		})
	}
	return g
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or returns "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// ReceiverName returns the receiver identifier and its struct type name.
func ReceiverName(fd *ast.FuncDecl) (recv, typ string) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", ""
	}
	recv = fd.Recv.List[0].Names[0].Name
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Drop type parameters on generic receivers.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return recv, id.Name
	}
	return "", ""
}

func checkMethod(pass *analysis.Pass, g Guards, fd *ast.FuncDecl) {
	recv, typ := ReceiverName(fd)
	fields := g[typ]
	if recv == "" || recv == "_" || len(fields) == 0 {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // caller-holds-lock convention
	}
	held := lockedMutexes(fd.Body, recv)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		mutex, guarded := fields[sel.Sel.Name]
		if !guarded || held[mutex] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %q but method %s.%s never locks %s.%s (suffix the name with Locked if the caller holds it)",
			recv, sel.Sel.Name, mutex, typ, fd.Name.Name, recv, mutex)
		return true
	})
}

// lockedMutexes collects mutex field names m for which the body contains
// recv.m.Lock() or recv.m.RLock().
func lockedMutexes(body *ast.BlockStmt, recv string) map[string]bool {
	held := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := inner.X.(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		held[inner.Sel.Name] = true
		return true
	})
	return held
}
