package summary

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
)

func parsePkg(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &analysis.Package{
		Path:  "unitdb/internal/sumfix",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
}

const src = `package sumfix

import (
	"sort"
	"sync"
)

var pkgMu sync.Mutex

type Store struct {
	mu    sync.Mutex
	items map[string]int
}

func (s *Store) lockBoth() {
	s.mu.Lock()
	pkgMu.Lock()
	pkgMu.Unlock()
	s.mu.Unlock()
}

func (s *Store) indirect() {
	s.lockBoth()
}

func (s *Store) spawner() {
	go s.lockBoth()
}

func localLock() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func relay(m map[string]int) []string {
	return keys(m)
}

func sortedKeys(m map[string]int) []string {
	out := keys(m)
	sort.Strings(out)
	return out
}
`

// TestLockClasses checks key normalization: receiver-rooted keys become
// type classes, package variables become (pkg) classes, and a purely
// local mutex stays scoped to its function.
func TestLockClasses(t *testing.T) {
	s := Of(parsePkg(t, src))
	want := []string{"(Store).mu", "(pkg).pkgMu"}
	if got := s.DirectAcquires["Store.lockBoth"]; !reflect.DeepEqual(got, want) {
		t.Errorf("DirectAcquires[Store.lockBoth] = %v, want %v", got, want)
	}
	if got := s.DirectAcquires["localLock"]; !reflect.DeepEqual(got, []string{"(localLock).mu"}) {
		t.Errorf("DirectAcquires[localLock] = %v, want the function-scoped class", got)
	}
}

// TestAcquiresTransitive checks closure over plain call edges — and that
// spawned calls do not propagate (the caller's goroutine never takes the
// spawned callee's locks at the call site).
func TestAcquiresTransitive(t *testing.T) {
	s := Of(parsePkg(t, src))
	want := []string{"(Store).mu", "(pkg).pkgMu"}
	if got := s.Acquires["Store.indirect"]; !reflect.DeepEqual(got, want) {
		t.Errorf("Acquires[Store.indirect] = %v, want %v", got, want)
	}
	if got := s.Acquires["Store.spawner"]; len(got) != 0 {
		t.Errorf("Acquires[Store.spawner] = %v, want none (spawn edges excluded)", got)
	}
	if !s.AcquiresClass("Store.indirect", "(Store).mu") {
		t.Error("AcquiresClass(Store.indirect, (Store).mu) = false")
	}
	if s.AcquiresClass("localLock", "(Store).mu") {
		t.Error("AcquiresClass(localLock, (Store).mu) = true")
	}
}

// TestMapOrdered checks the cross-function taint fixpoint: a function
// returning map-range order is flagged, a caller relaying it inherits
// the flag, and an intervening sort clears it.
func TestMapOrdered(t *testing.T) {
	s := Of(parsePkg(t, src))
	for fn, want := range map[callgraph.FuncID]bool{
		"keys":       true,
		"relay":      true,
		"sortedKeys": false,
		"localLock":  false,
	} {
		if got := s.MapOrdered[fn]; got != want {
			t.Errorf("MapOrdered[%s] = %v, want %v", fn, got, want)
		}
	}
}

// TestCache checks the per-package memoization the driver relies on:
// same *Package pointer, same *Summary.
func TestCache(t *testing.T) {
	pkg := parsePkg(t, src)
	if Of(pkg) != Of(pkg) {
		t.Error("Of(pkg) recomputed for the same package pointer")
	}
	if Of(pkg) == Of(parsePkg(t, src)) {
		t.Error("distinct package pointers must not share a summary")
	}
}

// TestTaintUnit exercises the intra-unit lattice directly: range over a
// map taints the key, an append inside the loop taints the slice, a
// compound assignment neither taints nor launders, and a sort untaints.
func TestTaintUnit(t *testing.T) {
	const unitSrc = `package sumfix

import "sort"

func f(m map[string]int) (int, []string) {
	total := 0
	var names []string
	for k, v := range m {
		names = append(names, k)
		total += v
	}
	copied := names
	sort.Strings(names)
	_ = copied
	return total, names
}
`
	s := Of(parsePkg(t, unitSrc))
	fd := s.Graph.Funcs["f"]
	if fd == nil {
		t.Fatal("fixture function f not found")
	}
	u := s.NewTaintUnit("f", fd.Body, nil)

	// At the (single) return, names was sorted but copied aliased the
	// unsorted slice; total accumulated order-independently.
	var ret *ast.ReturnStmt
	var fact Taint
	for _, b := range u.CFG.Blocks {
		in := u.Result.In[b.Index]
		if in == nil && b.Index != 0 {
			continue
		}
		f := Taint{}
		if in != nil {
			f = in.(Taint)
		}
		for _, node := range b.Nodes {
			if r, ok := node.(*ast.ReturnStmt); ok {
				ret, fact = r, f
			}
			f = u.Transfer(node, f).(Taint)
		}
	}
	if ret == nil {
		t.Fatal("no reachable return found")
	}
	if u.ExprTainted(fact, ret.Results[0]) {
		t.Error("total is tainted; compound assignments must not propagate taint")
	}
	if u.ExprTainted(fact, ret.Results[1]) {
		t.Error("names is tainted after sort.Strings")
	}
	if !fact.Has("copied") {
		t.Error("copied lost its taint; sorting names must not launder aliases")
	}
	if s.MapOrdered["f"] {
		t.Error("MapOrdered[f] = true, want false (both returns are order-clean)")
	}
}
