// Package summary computes per-function interprocedural facts over one
// package's call graph (internal/lint/callgraph) and caches them per
// loaded package, so the analyzers built on top — deadlock, owned,
// maporder — share one computation instead of three.
//
// Three kinds of facts:
//
//   - Lock classes and acquire sets. Every mutex key the lockstate
//     lattice tracks ("s.mu") is normalized to a package-global lock
//     class — "(Server).mu" when the key is rooted in a receiver, a
//     parameter, or a local of syntactically evident named type,
//     "(pkg).mu" for package-level variables, and a function-scoped
//     class otherwise (a purely local mutex cannot participate in a
//     cross-function cycle). DirectAcquires is the set of classes a
//     function's own body may lock; Acquires closes it transitively
//     over plain call edges (spawned and closure calls excluded: their
//     locks are not acquired by the caller's goroutine at the call
//     site).
//
//   - Map-order taint. A forward dataflow analysis (the Taint lattice
//     in this package) tracks which variables carry nondeterministic
//     map-iteration order: range over a map taints the iteration
//     variables, appending inside a map-range loop taints the slice
//     (the append order is the iteration order), taint propagates
//     through copies, composite literals, and indexing, and an
//     explicit sort untaints. MapOrdered marks functions whose return
//     value can carry taint — calls to such in-package functions taint
//     their results, which is how the property crosses function
//     boundaries.
//
//   - The graph itself, re-exported so analyzers resolve calls and
//     reachability against the same tables.
//
// Soundness posture, inherited from the callgraph: everything here
// under-approximates (unresolved calls contribute nothing), so the
// analyzers report only what the syntax proves and stay quiet on
// dynamic dispatch.
package summary

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
	"unitdb/internal/lint/lockstate"
)

// Summary holds one package's interprocedural facts.
type Summary struct {
	Graph *callgraph.Graph

	// DirectAcquires maps function → the sorted lock classes its own
	// body may Lock/RLock (function literals excluded — a closure's
	// locks run when the closure runs).
	DirectAcquires map[callgraph.FuncID][]string
	// Acquires is the transitive closure of DirectAcquires over plain
	// call edges.
	Acquires map[callgraph.FuncID][]string
	// MapOrdered marks functions whose return value can carry
	// map-iteration order.
	MapOrdered map[callgraph.FuncID]bool
}

var (
	cacheMu sync.Mutex
	cache   = map[*analysis.Package]*Summary{}
)

// Of returns the package's summary, computing it on first request. The
// driver runs several analyzers over the same *Package value, so the
// cache key is the package pointer itself.
func Of(pkg *analysis.Package) *Summary {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := cache[pkg]; ok {
		return s
	}
	s := compute(pkg)
	cache[pkg] = s
	return s
}

func compute(pkg *analysis.Package) *Summary {
	s := &Summary{
		Graph:          callgraph.Build(pkg),
		DirectAcquires: map[callgraph.FuncID][]string{},
		Acquires:       map[callgraph.FuncID][]string{},
		MapOrdered:     map[callgraph.FuncID]bool{},
	}
	s.computeAcquires()
	s.computeMapOrdered()
	return s
}

// --- lock classes ---

// LockClass normalizes a lockstate mutex key as seen inside fn to a
// package-global class name.
func (s *Summary) LockClass(fn callgraph.FuncID, key string) string {
	root, rest, _ := strings.Cut(key, ".")
	if typ, ok := s.Graph.Bindings(fn)[root]; ok && typ != "" {
		if rest != "" {
			return "(" + typ + ")." + rest
		}
		// A bare identifier bound to a named type used as a mutex —
		// the local itself is the mutex; scope it to the function.
		return "(" + string(fn) + ")." + key
	}
	if s.Graph.PkgVars[root] {
		return "(pkg)." + key
	}
	return "(" + string(fn) + ")." + key
}

// directAcquires collects the classes fn's own body may lock, with
// function literals skipped.
func (s *Summary) directAcquires(fn callgraph.FuncID, fd *ast.FuncDecl) []string {
	set := map[string]bool{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			if _, ok := c.(*ast.FuncLit); ok {
				return false
			}
			call, ok := c.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			if key := lockstate.Flatten(sel.X); key != "" {
				set[s.LockClass(fn, key)] = true
			}
			return true
		})
	}
	walk(fd.Body)
	return sortedSet(set)
}

func (s *Summary) computeAcquires() {
	for fn, fd := range s.Graph.Funcs {
		s.DirectAcquires[fn] = s.directAcquires(fn, fd)
	}
	// Transitive closure over plain call edges; classes only grow, so
	// round-robin iteration reaches the fixpoint.
	trans := map[callgraph.FuncID]map[string]bool{}
	for fn, direct := range s.DirectAcquires {
		set := map[string]bool{}
		for _, c := range direct {
			set[c] = true
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, e := range s.Graph.Edges {
			if e.Kind != callgraph.Call {
				continue
			}
			from, to := trans[e.Caller], trans[e.Callee]
			for c := range to {
				if !from[c] {
					from[c] = true
					changed = true
				}
			}
		}
	}
	for fn, set := range trans {
		s.Acquires[fn] = sortedSet(set)
	}
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// AcquiresClass reports whether fn may (transitively) acquire class.
func (s *Summary) AcquiresClass(fn callgraph.FuncID, class string) bool {
	for _, c := range s.Acquires[fn] {
		if c == class {
			return true
		}
	}
	return false
}

// --- map-order taint ---

// Taint is the dataflow fact: the set of flattened variable names that
// carry map-iteration order at a program point.
type Taint map[string]bool

// Equal implements dataflow.Fact.
func (t Taint) Equal(o dataflow.Fact) bool {
	u := o.(Taint)
	if len(t) != len(u) {
		return false
	}
	for k := range t {
		if !u[k] {
			return false
		}
	}
	return true
}

func (t Taint) clone() Taint {
	out := make(Taint, len(t))
	for k := range t {
		out[k] = true
	}
	return out
}

// Has reports whether name or any selector prefix of it is tainted
// ("s.f" is tainted when "s" is).
func (t Taint) Has(name string) bool {
	if name == "" {
		return false
	}
	for {
		if t[name] {
			return true
		}
		i := strings.LastIndex(name, ".")
		if i < 0 {
			return false
		}
		name = name[:i]
	}
}

func (t Taint) set(name string, on bool) {
	if name == "" {
		return
	}
	if on {
		t[name] = true
		return
	}
	delete(t, name)
	// Untainting a variable also clears taint recorded on its fields.
	for k := range t {
		if strings.HasPrefix(k, name+".") {
			delete(t, k)
		}
	}
}

func joinTaint(a, b dataflow.Fact) dataflow.Fact {
	ta, tb := a.(Taint), b.(Taint)
	out := ta.clone()
	for k := range tb {
		out[k] = true
	}
	return out
}

// TaintUnit is the map-order taint analysis of one function body (a
// FuncDecl body or a function literal's). Build it with NewTaintUnit,
// then read Result facts or replay blocks for reporting.
type TaintUnit struct {
	Summary *Summary
	// Fn is the enclosing declared function, used for call resolution
	// and name bindings (function literals share their encloser's).
	Fn     callgraph.FuncID
	Body   *ast.BlockStmt
	CFG    *cfg.CFG
	Result *dataflow.Result

	localMaps map[string]bool     // names of evident map type in this unit
	inMapLoop map[*cfg.Block]bool // blocks inside a map-range loop body
}

// NewTaintUnit builds and solves the taint analysis for one body.
// extraMaps adds unit-local map-typed names (a literal's parameters).
func (s *Summary) NewTaintUnit(fn callgraph.FuncID, body *ast.BlockStmt, extraMaps map[string]bool) *TaintUnit {
	u := &TaintUnit{
		Summary:   s,
		Fn:        fn,
		Body:      body,
		CFG:       cfg.New(body),
		localMaps: map[string]bool{},
		inMapLoop: map[*cfg.Block]bool{},
	}
	for name := range extraMaps {
		u.localMaps[name] = true
	}
	u.collectLocalMaps()
	u.markMapLoops()
	u.Result = dataflow.Solve(u.CFG, &dataflow.Analysis{
		Entry:    Taint{},
		Join:     joinTaint,
		Transfer: u.Transfer,
	})
	return u
}

// collectLocalMaps finds names of evident map type: parameters and
// receiver fields are handled via MapFields; here the unit's own
// `var m map[...]`, `m := make(map[...])`, `m := map[...]{...}`.
func (u *TaintUnit) collectLocalMaps() {
	if fd, ok := u.Summary.Graph.Funcs[u.Fn]; ok && fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if _, isMap := p.Type.(*ast.MapType); isMap {
				for _, n := range p.Names {
					u.localMaps[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(u.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if _, isMap := n.Type.(*ast.MapType); isMap {
				for _, name := range n.Names {
					u.localMaps[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if exprIsMapValue(n.Rhs[i]) {
					u.localMaps[id.Name] = true
				}
			}
		}
		return true
	})
}

// exprIsMapValue reports whether e evidently constructs a map.
func exprIsMapValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) == 0 {
			return false
		}
		_, ok = e.Args[0].(*ast.MapType)
		return ok
	}
	return false
}

// IsMapExpr reports whether e denotes a map: a known local map name, or
// a selector whose final field is map-typed somewhere in the package.
func (u *TaintUnit) IsMapExpr(e ast.Expr) bool {
	name := lockstate.Flatten(e)
	if name == "" {
		return false
	}
	if u.localMaps[name] {
		return true
	}
	if i := strings.LastIndex(name, "."); i >= 0 {
		return u.Summary.Graph.MapFields[name[i+1:]]
	}
	return false
}

// markMapLoops marks every block in the body of a loop that ranges over
// a map: appends executed there happen in map-iteration order.
func (u *TaintUnit) markMapLoops() {
	for _, loop := range u.CFG.Loops {
		isMap := false
		for _, b := range loop.Body {
			for _, n := range b.Nodes {
				if rb, ok := n.(*cfg.RangeBind); ok && u.IsMapExpr(rb.Range.X) {
					isMap = true
				}
			}
		}
		if !isMap {
			continue
		}
		for _, b := range loop.Body {
			u.inMapLoop[b] = true
		}
	}
}

// InMapLoopBlock reports whether block b executes inside a map-range
// loop body.
func (u *TaintUnit) InMapLoopBlock(b *cfg.Block) bool { return u.inMapLoop[b] }

// blockOf finds the block containing node n (the transfer function is
// called per node; append handling needs the loop context).
func (u *TaintUnit) blockOf(n ast.Node) *cfg.Block {
	for _, b := range u.CFG.Blocks {
		for _, m := range b.Nodes {
			if m == n {
				return b
			}
		}
	}
	return nil
}

// ExprTainted reports whether e carries map-iteration order under fact
// f. Taint flows through names, composite literals, indexing, slicing,
// address-of, and calls to MapOrdered in-package functions; it does not
// flow through binary expressions (sums and comparisons over map values
// are order-independent).
func (u *TaintUnit) ExprTainted(f Taint, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return f.Has(lockstate.Flatten(e))
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if u.ExprTainted(f, el) {
				return true
			}
		}
	case *ast.IndexExpr:
		return u.ExprTainted(f, e.X)
	case *ast.SliceExpr:
		return u.ExprTainted(f, e.X)
	case *ast.UnaryExpr:
		return u.ExprTainted(f, e.X)
	case *ast.StarExpr:
		return u.ExprTainted(f, e.X)
	case *ast.ParenExpr:
		return u.ExprTainted(f, e.X)
	case *ast.TypeAssertExpr:
		return u.ExprTainted(f, e.X)
	case *ast.CallExpr:
		if isAppend(e) {
			for _, a := range e.Args {
				if u.ExprTainted(f, a) {
					return true
				}
			}
			return false
		}
		for _, callee := range u.Summary.Graph.ResolveAll(u.Fn, e) {
			if u.Summary.MapOrdered[callee] {
				return true
			}
		}
	}
	return false
}

func isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// sortTargets returns the names a statement-level call untaints: the
// flattenable arguments of sort.* and slices.Sort* calls (including
// through a one-argument conversion like sort.Sort(byName(x))).
func sortTargets(call *ast.CallExpr) []string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
		return nil
	}
	var out []string
	for _, a := range call.Args {
		if conv, ok := a.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			a = conv.Args[0]
		}
		if name := lockstate.Flatten(a); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Transfer is the taint transfer function (dataflow.Analysis.Transfer).
func (u *TaintUnit) Transfer(n ast.Node, f dataflow.Fact) dataflow.Fact {
	t := f.(Taint)
	switch n := n.(type) {
	case *cfg.RangeBind:
		out := t.clone()
		tainted := u.IsMapExpr(n.Range.X) || u.ExprTainted(t, n.Range.X)
		for _, e := range []ast.Expr{n.Range.Key, n.Range.Value} {
			if e == nil {
				continue
			}
			out.set(lockstate.Flatten(e), tainted)
		}
		return out
	case *ast.AssignStmt:
		return u.transferAssign(n, t)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return t
		}
		out := t.clone()
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				on := i < len(vs.Values) && u.ExprTainted(t, vs.Values[i])
				out.set(name.Name, on)
			}
		}
		return out
	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		if !ok {
			return t
		}
		if targets := sortTargets(call); len(targets) > 0 {
			out := t.clone()
			for _, name := range targets {
				out.set(name, false)
			}
			return out
		}
	}
	return t
}

func (u *TaintUnit) transferAssign(n *ast.AssignStmt, t Taint) dataflow.Fact {
	out := t.clone()
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound assignment (+=, |=, ...): an accumulator folded over
		// a map range is order-independent for the numeric reductions
		// the repo writes, and string-concat order-dependence is not
		// provable without types. Leave the target's taint unchanged —
		// neither tainting the accumulator nor laundering taint it
		// already carries.
		return out
	}
	inLoop := false
	if b := u.blockOf(n); b != nil {
		inLoop = u.inMapLoop[b]
	}
	// Tuple form x, y := f(): one call feeding several names.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		tainted := u.ExprTainted(t, n.Rhs[0])
		for _, lhs := range n.Lhs {
			if name := lockstate.Flatten(lhs); name != "" {
				out.set(name, tainted)
			}
		}
		return out
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		if _, ok := lhs.(*ast.IndexExpr); ok {
			// Writes into maps (and slice elements) absorb order taint:
			// a map is unordered however it was filled, and a slice
			// element write at a fixed index is order-independent.
			continue
		}
		name := lockstate.Flatten(lhs)
		if name == "" {
			continue
		}
		rhs := n.Rhs[i]
		if call, ok := rhs.(*ast.CallExpr); ok && isAppend(call) {
			// Appending inside a map-range loop body records the
			// iteration order in the slice, whatever is appended.
			argTaint := u.ExprTainted(t, call)
			out.set(name, inLoop || argTaint || t.Has(name))
			continue
		}
		out.set(name, u.ExprTainted(t, rhs))
	}
	return out
}

// ReturnsTainted reports whether any normally-reachable return of the
// unit returns a tainted value, by replaying facts through exit blocks.
func (u *TaintUnit) ReturnsTainted() bool {
	for _, b := range u.CFG.Blocks {
		in := u.Result.In[b.Index]
		if in == nil && b.Index != 0 {
			continue
		}
		f := Taint{}
		if in != nil {
			f = in.(Taint)
		}
		for _, node := range b.Nodes {
			if ret, ok := node.(*ast.ReturnStmt); ok {
				for _, res := range ret.Results {
					if u.ExprTainted(f, res) {
						return true
					}
				}
			}
			f = u.Transfer(node, f).(Taint)
		}
	}
	return false
}

// computeMapOrdered iterates the per-function taint analysis until the
// MapOrdered set stabilizes (calls to flagged functions taint their
// results, which can flag further functions; the set only grows, so the
// loop terminates).
func (s *Summary) computeMapOrdered() {
	fns := make([]callgraph.FuncID, 0, len(s.Graph.Funcs))
	for fn := range s.Graph.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i] < fns[j] })
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if s.MapOrdered[fn] {
				continue
			}
			u := s.NewTaintUnit(fn, s.Graph.Funcs[fn].Body, nil)
			if u.ReturnsTainted() {
				s.MapOrdered[fn] = true
				changed = true
			}
		}
	}
}
