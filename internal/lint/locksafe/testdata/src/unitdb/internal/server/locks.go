// Fixture for locksafe: flow-sensitive mutex discipline. Clean functions
// pin the analyzer's false-positive behaviour; want-lines pin findings.
package server

import "sync"

type sstate struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// The canonical pattern: lock + deferred unlock.
func (s *sstate) cleanDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Explicit unlock on every path.
func (s *sstate) cleanExplicit(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// Both arms lock; the join still proves Locked.
func (s *sstate) cleanEitherWay(cond bool) {
	if cond {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	s.n++
	s.mu.Unlock()
}

// An early return that skips the unlock leaks the lock.
func (s *sstate) leakOnEarlyReturn(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0 // want `s\.mu is still held at return`
	}
	s.mu.Unlock()
	return s.n
}

// A select arm that returns while holding leaks too.
func (s *sstate) leakInSelect(ch chan int) {
	s.mu.Lock()
	select {
	case <-ch:
		s.mu.Unlock()
	default:
		return // want `s\.mu is still held at return`
	}
}

func (s *sstate) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `second s\.mu\.Lock\(\) while already holding s\.mu`
	s.mu.Unlock()
}

func (s *sstate) doubleUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want `double unlock`
}

// Releasing a read lock with Unlock is a mismatch.
func (s *sstate) wrongUnlock() {
	s.rw.RLock()
	s.rw.Unlock() // want `s\.rw\.Unlock\(\) of a read-locked mutex`
}

// Upgrading a read lock to a write lock deadlocks sync.RWMutex.
func (s *sstate) upgrade() {
	s.rw.RLock()
	s.rw.Lock() // want `upgrade deadlocks`
	s.rw.Unlock()
}

// A deferred unlock inside a loop stacks one defer per iteration; the
// extras fire on an already-released mutex when the function returns.
func (s *sstate) deferInLoop(items []int) {
	for range items {
		s.rw.RLock()
		defer s.rw.RUnlock() // want `second deferred unlock of s\.rw on the same path`
	}
} // want `deferred unlock of s\.rw runs after s\.rw was already released`

// Unlocking explicitly with the deferred unlock still pending double
// unlocks at return.
func (s *sstate) deferThenExplicit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Unlock()
	return // want `deferred unlock of s\.mu runs after s\.mu was already released`
}

// *Locked convention: the caller holds the lock, so releasing a mutex
// this function never locked is assumed to be the caller's hold.
func (s *sstate) releaseLocked() {
	s.mu.Unlock()
}

// Locking in only one branch then unlocking unconditionally is
// suspicious but not provably wrong syntactically (the untouched path is
// Unknown, and unlocking Unknown is forgiven by the *Locked convention).
func (s *sstate) maybeLock(cond bool) {
	if cond {
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// A closure is its own analysis unit: its lock operations run at call
// time, so the enclosing function stays clean...
func (s *sstate) spawn() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.n++
	}
}

// ...and the closure body itself is still checked.
func (s *sstate) badClosure() func() {
	return func() {
		s.mu.Lock()
		s.n++
	} // want `s\.mu is still held at return`
}

// Paths that end in panic are exempt from the leak check.
func (s *sstate) panicPath(cond bool) {
	s.mu.Lock()
	if cond {
		panic("boom")
	}
	s.mu.Unlock()
}

// Switch: every non-panicking path must release.
func (s *sstate) switchPaths(mode int) int {
	s.mu.Lock()
	switch mode {
	case 0:
		s.mu.Unlock()
		return 0
	case 1:
		// falls to the common unlock below
	default:
		s.mu.Unlock()
		return 2
	}
	s.mu.Unlock()
	return 1
}

// cond.Wait releases and reacquires internally; at the statement
// boundary the mutex is held again, so no special case is needed.
type waiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	jobs []int
}

func (w *waiter) next() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.jobs) == 0 {
		w.cond.Wait()
	}
	j := w.jobs[0]
	w.jobs = w.jobs[1:]
	return j
}

// The worker-loop shape: lock per iteration, release on every branch.
func (w *waiter) loop(done func() bool) {
	for {
		w.mu.Lock()
		if done() {
			w.mu.Unlock()
			return
		}
		if len(w.jobs) == 0 {
			w.mu.Unlock()
			continue
		}
		w.jobs = w.jobs[1:]
		w.mu.Unlock()
	}
}
