// Package locksafe checks mutex discipline flow-sensitively: every
// mu.Lock()/RLock() must be released (explicitly or by defer) on every
// path to a normal return, with no double-lock, no double-unlock, no
// read/write mismatch, and no second deferred unlock on one path.
//
// Each function body and each function literal is one analysis unit with
// its own CFG (a closure runs at call time, so its lock operations are
// not part of the enclosing function's paths). The entry state of every
// mutex is Unknown, which makes the analyzer safe on *Locked-style
// helpers: unlocking a mutex the function never locked is assumed to
// release the caller's hold, and only provable contradictions on the
// function's own operations are reported. Paths ending in panic are
// exempt from the leak check — a panicking path's defers still run, but
// the function is already failing and sync.Mutex state after a panic is
// the recover handler's problem, not this analyzer's.
//
// See internal/lint/lockstate for the lattice and the exact transition
// rules, and internal/lint/cfg + internal/lint/dataflow for the engine.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
	"unitdb/internal/lint/lockstate"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "every mutex lock is released on all paths; no double lock/unlock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			// Every function literal is its own unit, nested ones included.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkBody analyzes one function body: fixpoint first, then a replay
// pass that reports each bad transition once.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	res := dataflow.Solve(g, &dataflow.Analysis{
		Entry:    lockstate.Fact{},
		Join:     lockstate.Join,
		Transfer: lockstate.Transfer,
	})

	r := reporter{pass: pass, seen: map[string]bool{}}
	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil && b.Index != 0 {
			continue // unreachable
		}
		fact := lockstate.Fact{}
		if in != nil {
			fact = in.(lockstate.Fact)
		}
		// Replay the block's transfers, surfacing the problems the pure
		// fixpoint pass ignored.
		for _, node := range b.Nodes {
			fact = r.apply(node, fact)
		}
		if b.Exits && !b.Panic {
			r.atExit(b, body, fact)
		}
	}
}

type reporter struct {
	pass *analysis.Pass
	seen map[string]bool // (position, message) dedupe across merged paths
}

func (r *reporter) report(pos token.Pos, msg string) {
	key := fmt.Sprintf("%v|%s", pos, msg)
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.pass.Reportf(pos, "%s", msg)
}

// apply replays one node's ops over every path state, reporting problems.
func (r *reporter) apply(node ast.Node, f lockstate.Fact) lockstate.Fact {
	ops := lockstate.Ops(node)
	if len(ops) == 0 {
		return f
	}
	fact := f.Clone()
	for _, op := range ops {
		var next lockstate.Set
		for _, p := range fact.Get(op.Key).States() {
			np, problem := lockstate.Apply(op.Kind, op.Key, p)
			if problem != "" {
				r.report(op.Pos, problem)
			}
			next = next.Add(np)
		}
		fact[op.Key] = next
	}
	return fact
}

// atExit checks the exit-time problems of one normal-return block.
func (r *reporter) atExit(b *cfg.Block, body *ast.BlockStmt, f lockstate.Fact) {
	pos := body.Rbrace
	if n := len(b.Nodes); n > 0 {
		if ret, ok := b.Nodes[n-1].(*ast.ReturnStmt); ok {
			pos = ret.Pos()
		}
	}
	for _, key := range f.Keys() {
		for _, p := range f[key].States() {
			for _, problem := range lockstate.AtExit(key, p) {
				r.report(pos, problem)
			}
		}
	}
}
