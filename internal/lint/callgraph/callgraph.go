// Package callgraph builds a package-level call graph for unitlint's
// interprocedural analyzers, purely syntactically (the analysis framework
// has no types.Info; see internal/lint/analysis for the policy). It
// resolves what static syntax can honestly resolve:
//
//   - direct calls to package-level functions: f()
//   - method calls through the receiver of the enclosing method: s.m()
//   - method calls through locals and parameters whose named type is
//     syntactically evident (var x T; x := T{...}; x := &T{...};
//     x := new(T); func f(x *T)): x.m()
//   - one level of field indirection when the field's declared type is a
//     named in-package type: s.field.m() where field's type is known
//
// Everything else — function values, interface method calls, calls
// through composite expressions — stays unresolved, and unresolved calls
// simply contribute no edge. Consumers must treat a missing edge as
// "unknown", never as "does not call": the graph under-approximates the
// real call relation, which is the honest direction for the analyzers
// built on it (deadlock and owned only report facts provable from edges
// that do exist).
//
// Each edge is classified by the goroutine context of its call site:
// a plain call (Call), a call inside a function literal that is not the
// operand of a go statement (Closure — the callee runs whenever the
// closure runs, possibly on the same goroutine, e.g. an event-loop
// callback), or a spawned call (Spawn — `go f()` or any call inside a
// `go func(){...}` literal, which runs on a new goroutine).
//
// The builder also collects the package's struct tables — field types,
// mutex-typed fields, map-typed field names — and the set of HTTP
// handler functions (any function with an http.ResponseWriter
// parameter), because the downstream analyzers all need the same
// syntactic inventory and it should be computed once.
package callgraph

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"unitdb/internal/lint/analysis"
)

// FuncID names one function declaration in the package: "New" for a
// package-level function, "Server.worker" for a method (pointer and
// value receivers are not distinguished — the repo never declares both).
type FuncID string

// MethodID forms the FuncID of typ's method name.
func MethodID(typ, name string) FuncID { return FuncID(typ + "." + name) }

// EdgeKind classifies the goroutine context of a call site.
type EdgeKind uint8

const (
	// Call is a plain call: the callee runs on the caller's goroutine
	// before the next statement.
	Call EdgeKind = iota
	// Closure is a call inside a function literal that is not spawned:
	// the callee runs whenever the closure is invoked, which may be the
	// same goroutine (event-loop callbacks) or another.
	Closure
	// Spawn is `go f()` or a call inside a `go func(){...}` literal: the
	// callee runs on a freshly spawned goroutine.
	Spawn
)

func (k EdgeKind) String() string {
	switch k {
	case Closure:
		return "closure"
	case Spawn:
		return "spawn"
	default:
		return "call"
	}
}

// Edge is one resolved call site.
type Edge struct {
	Caller FuncID
	Callee FuncID
	Kind   EdgeKind
	Pos    token.Pos
}

// Graph is the package call graph plus the struct tables every
// interprocedural analyzer needs.
type Graph struct {
	// Funcs maps every declared function or method with a body.
	Funcs map[FuncID]*ast.FuncDecl
	// Edges lists the resolved call sites in deterministic (file,
	// position) order.
	Edges []Edge
	// Callees indexes Edges by caller.
	Callees map[FuncID][]Edge
	// Callers indexes Edges by callee.
	Callers map[FuncID][]Edge

	// FieldTypes maps struct type → field name → the flattened field
	// type ("Store", "http.Request"; pointers are dereferenced). Only
	// fields whose type flattens to a name appear.
	FieldTypes map[string]map[string]string
	// MutexFields maps struct type → the set of its sync.Mutex /
	// sync.RWMutex fields (detected by type name suffix; the repo
	// imports sync unaliased).
	MutexFields map[string]map[string]bool
	// MapFields is the set of field names declared with a map type
	// anywhere in the package's structs. Field names, not (type, field)
	// pairs: consumers use it to recognize `x.field` as a map when x's
	// type is not inferable, accepting the package-local collision risk.
	MapFields map[string]bool
	// PkgVars is the set of package-level variable names.
	PkgVars map[string]bool
	// Handlers marks functions with an http.ResponseWriter parameter —
	// HTTP handler entry points, which run on server goroutines.
	Handlers map[FuncID]bool

	// bindings caches per-function identifier→type tables.
	bindings map[FuncID]map[string]string
}

// Build constructs the graph for one package.
func Build(pkg *analysis.Package) *Graph {
	g := &Graph{
		Funcs:       map[FuncID]*ast.FuncDecl{},
		Callees:     map[FuncID][]Edge{},
		Callers:     map[FuncID][]Edge{},
		FieldTypes:  map[string]map[string]string{},
		MutexFields: map[string]map[string]bool{},
		MapFields:   map[string]bool{},
		PkgVars:     map[string]bool{},
		Handlers:    map[FuncID]bool{},
		bindings:    map[FuncID]map[string]string{},
	}
	g.collectDecls(pkg)
	for _, file := range pkg.Files {
		httpNames := analysis.ImportNames(file, "net/http")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			id := DeclID(fd)
			if isHandler(fd, httpNames) {
				g.Handlers[id] = true
			}
			g.resolveCalls(id, fd)
		}
	}
	sort.SliceStable(g.Edges, func(i, j int) bool { return g.Edges[i].Pos < g.Edges[j].Pos })
	for _, e := range g.Edges {
		g.Callees[e.Caller] = append(g.Callees[e.Caller], e)
		g.Callers[e.Callee] = append(g.Callers[e.Callee], e)
	}
	return g
}

// DeclID names a function declaration.
func DeclID(fd *ast.FuncDecl) FuncID {
	if fd.Recv == nil {
		return FuncID(fd.Name.Name)
	}
	_, typ := receiverName(fd)
	if typ == "" {
		return FuncID("?." + fd.Name.Name)
	}
	return MethodID(typ, fd.Name.Name)
}

// receiverName mirrors guardedby.ReceiverName without the import cycle
// risk: the receiver identifier and its named type.
func receiverName(fd *ast.FuncDecl) (recv, typ string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0].Name, id.Name
	}
	return "", id.Name
}

// collectDecls fills the function table and the struct/var inventories.
func (g *Graph) collectDecls(pkg *analysis.Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					g.Funcs[DeclID(d)] = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						if d.Tok == token.VAR {
							for _, n := range s.Names {
								g.PkgVars[n.Name] = true
							}
						}
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok {
							continue
						}
						g.collectStruct(s.Name.Name, st)
					}
				}
			}
		}
	}
}

func (g *Graph) collectStruct(typ string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if _, ok := field.Type.(*ast.MapType); ok {
			for _, n := range field.Names {
				g.MapFields[n.Name] = true
			}
			continue
		}
		ft := FlattenType(field.Type)
		if ft == "" {
			continue
		}
		if ft == "sync.Mutex" || ft == "sync.RWMutex" {
			m := g.MutexFields[typ]
			if m == nil {
				m = map[string]bool{}
				g.MutexFields[typ] = m
			}
			for _, n := range field.Names {
				m[n.Name] = true
			}
		}
		m := g.FieldTypes[typ]
		if m == nil {
			m = map[string]string{}
			g.FieldTypes[typ] = m
		}
		for _, n := range field.Names {
			m[n.Name] = ft
		}
	}
}

// FlattenType renders a type expression as a dotted name: "T", "pkg.T"
// (pointers dereferenced, generic instantiations stripped), or "" for
// composite types.
func FlattenType(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return FlattenType(t.X)
	case *ast.SelectorExpr:
		base := FlattenType(t.X)
		if base == "" {
			return ""
		}
		return base + "." + t.Sel.Name
	case *ast.IndexExpr:
		return FlattenType(t.X)
	default:
		return ""
	}
}

// isHandler reports whether fd takes an http.ResponseWriter parameter.
// The literal spelling "http.ResponseWriter" is accepted even without a
// net/http import table so in-memory mutation tests parse standalone.
func isHandler(fd *ast.FuncDecl, httpNames []string) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		ft := FlattenType(p.Type)
		pkg, name, ok := strings.Cut(ft, ".")
		if !ok || name != "ResponseWriter" {
			continue
		}
		if pkg == "http" {
			return true
		}
		for _, n := range httpNames {
			if pkg == n {
				return true
			}
		}
	}
	return false
}

// Bindings returns fd's identifier→type table: the receiver, every
// parameter of named type, and every local whose type is syntactically
// evident (var x T; x := T{...}; x := &T{...}; x := new(T)). The table
// is flow-insensitive — later bindings win nothing, the first named
// binding for an identifier sticks — which over-approximates shadowing
// but is stable and cheap.
func (g *Graph) Bindings(id FuncID) map[string]string {
	if b, ok := g.bindings[id]; ok {
		return b
	}
	fd := g.Funcs[id]
	b := map[string]string{}
	if fd != nil {
		if recv, typ := receiverName(fd); recv != "" && recv != "_" {
			b[recv] = typ
		}
		if fd.Type.Params != nil {
			for _, p := range fd.Type.Params.List {
				if ft := FlattenType(p.Type); ft != "" {
					for _, n := range p.Names {
						bindFirst(b, n.Name, ft)
					}
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) || len(n.Rhs) != len(n.Lhs) {
						continue
					}
					if t := literalType(n.Rhs[i]); t != "" {
						bindFirst(b, id.Name, t)
					}
				}
			case *ast.ValueSpec:
				if t := FlattenType(n.Type); t != "" {
					for _, name := range n.Names {
						bindFirst(b, name.Name, t)
					}
				}
			}
			return true
		})
	}
	g.bindings[id] = b
	return b
}

func bindFirst(b map[string]string, name, typ string) {
	if name == "_" {
		return
	}
	if _, ok := b[name]; !ok {
		b[name] = typ
	}
}

// literalType extracts the named type a value expression evidently
// constructs: T{...}, &T{...}, new(T).
func literalType(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return literalType(e.X)
		}
	case *ast.CompositeLit:
		return FlattenType(e.Type)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			return FlattenType(e.Args[0])
		}
	}
	return ""
}

// Resolve maps one call expression inside function id to its callee, if
// the syntax pins it down. ok is false for unresolved calls.
func (g *Graph) Resolve(id FuncID, call *ast.CallExpr) (FuncID, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee := FuncID(fun.Name)
		if fd, ok := g.Funcs[callee]; ok && fd.Recv == nil {
			return callee, true
		}
	case *ast.SelectorExpr:
		b := g.Bindings(id)
		switch x := fun.X.(type) {
		case *ast.Ident:
			if typ, ok := b[x.Name]; ok {
				if callee := MethodID(typ, fun.Sel.Name); g.Funcs[callee] != nil {
					return callee, true
				}
			}
		case *ast.SelectorExpr:
			// One level of field indirection: base.field.Method().
			base, ok := x.X.(*ast.Ident)
			if !ok {
				break
			}
			typ, ok := b[base.Name]
			if !ok {
				break
			}
			ft, ok := g.FieldTypes[typ][x.Sel.Name]
			if !ok || strings.Contains(ft, ".") {
				break
			}
			if callee := MethodID(ft, fun.Sel.Name); g.Funcs[callee] != nil {
				return callee, true
			}
		}
	}
	return "", false
}

// resolveCalls walks fd's body recording resolved edges with their
// goroutine-context kind.
func (g *Graph) resolveCalls(id FuncID, fd *ast.FuncDecl) {
	var walk func(n ast.Node, kind EdgeKind)
	walk = func(n ast.Node, kind EdgeKind) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.GoStmt:
				if lit, ok := c.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, Spawn)
				} else if callee, ok := g.Resolve(id, c.Call); ok {
					g.Edges = append(g.Edges, Edge{Caller: id, Callee: callee, Kind: Spawn, Pos: c.Call.Pos()})
				}
				// Argument expressions evaluate on the caller's goroutine,
				// but any call among them is vanishingly rare; skip the
				// subtree rather than misclassify the spawned call itself.
				return false
			case *ast.FuncLit:
				next := Closure
				if kind == Spawn {
					next = Spawn
				}
				walk(c.Body, next)
				return false
			case *ast.CallExpr:
				if callee, ok := g.Resolve(id, c); ok {
					g.Edges = append(g.Edges, Edge{Caller: id, Callee: callee, Kind: kind, Pos: c.Pos()})
				}
			}
			return true
		})
	}
	walk(fd.Body, Call)
}

// Reachable returns every function reachable from the roots over edges
// whose kind passes keep (the roots themselves included). Traversal
// order is deterministic.
func (g *Graph) Reachable(roots []FuncID, keep func(EdgeKind) bool) map[FuncID]bool {
	seen := map[FuncID]bool{}
	queue := append([]FuncID(nil), roots...)
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if seen[f] {
			continue
		}
		seen[f] = true
		for _, e := range g.Callees[f] {
			if keep(e.Kind) && !seen[e.Callee] {
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}
