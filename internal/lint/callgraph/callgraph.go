// Package callgraph builds a package-level call graph for unitlint's
// interprocedural analyzers, purely syntactically (the analysis framework
// has no types.Info; see internal/lint/analysis for the policy). It
// resolves what static syntax can honestly resolve:
//
//   - direct calls to package-level functions: f()
//   - method calls through the receiver of the enclosing method: s.m()
//   - method calls through locals and parameters whose named type is
//     syntactically evident (var x T; x := T{...}; x := &T{...};
//     x := new(T); func f(x *T)): x.m()
//   - one level of field indirection when the field's declared type is a
//     named in-package type: s.field.m() where field's type is known
//   - interface method calls, devirtualized CHA-style: a call x.m()
//     where x's evident type is a package-local interface resolves to
//     T.m for every package-local concrete type T whose declared method
//     set covers the interface (matched by method name and arity — the
//     closest honest approximation of implements without go/types).
//     One level of field indirection applies here too: s.field.m()
//     where field's declared type is a local interface fans out the
//     same way.
//   - function values, flow-insensitively: assignments of named
//     functions and bound methods to variables (f := helper), to
//     struct fields (s.cb = helper, T{cb: helper}), and to the
//     parameters of resolved in-package calls (run(helper) binds run's
//     parameter) accumulate into binding sets, and a later call through
//     the variable, field, or parameter produces an edge to every
//     function ever bound there.
//
// Everything else — calls through composite expressions, cross-package
// interfaces, function values the package never binds — stays
// unresolved, and unresolved calls simply contribute no edge. Consumers
// must treat a missing edge as "unknown", never as "does not call": the
// graph under-approximates the real call relation, which is the honest
// direction for the analyzers built on it (deadlock and owned only
// report facts provable from edges that do exist). Devirtualized and
// function-value edges point at real package functions that the syntax
// shows can be bound at the call site; a call with several candidates
// gets one edge per candidate.
//
// Each edge is classified by the goroutine context of its call site:
// a plain call (Call), a call inside a function literal that is not the
// operand of a go statement (Closure — the callee runs whenever the
// closure runs, possibly on the same goroutine, e.g. an event-loop
// callback), or a spawned call (Spawn — `go f()` or any call inside a
// `go func(){...}` literal, which runs on a new goroutine).
//
// The builder also collects the package's struct tables — field types,
// mutex-typed fields, map-typed field names — and the set of HTTP
// handler functions (any function with an http.ResponseWriter
// parameter), because the downstream analyzers all need the same
// syntactic inventory and it should be computed once.
package callgraph

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"unitdb/internal/lint/analysis"
)

// FuncID names one function declaration in the package: "New" for a
// package-level function, "Server.worker" for a method (pointer and
// value receivers are not distinguished — the repo never declares both).
type FuncID string

// MethodID forms the FuncID of typ's method name.
func MethodID(typ, name string) FuncID { return FuncID(typ + "." + name) }

// EdgeKind classifies the goroutine context of a call site.
type EdgeKind uint8

const (
	// Call is a plain call: the callee runs on the caller's goroutine
	// before the next statement.
	Call EdgeKind = iota
	// Closure is a call inside a function literal that is not spawned:
	// the callee runs whenever the closure is invoked, which may be the
	// same goroutine (event-loop callbacks) or another.
	Closure
	// Spawn is `go f()` or a call inside a `go func(){...}` literal: the
	// callee runs on a freshly spawned goroutine.
	Spawn
)

func (k EdgeKind) String() string {
	switch k {
	case Closure:
		return "closure"
	case Spawn:
		return "spawn"
	default:
		return "call"
	}
}

// Edge is one resolved call site.
type Edge struct {
	Caller FuncID
	Callee FuncID
	Kind   EdgeKind
	Pos    token.Pos
}

// Graph is the package call graph plus the struct tables every
// interprocedural analyzer needs.
type Graph struct {
	// Funcs maps every declared function or method with a body.
	Funcs map[FuncID]*ast.FuncDecl
	// Edges lists the resolved call sites in deterministic (file,
	// position) order.
	Edges []Edge
	// Callees indexes Edges by caller.
	Callees map[FuncID][]Edge
	// Callers indexes Edges by callee.
	Callers map[FuncID][]Edge

	// FieldTypes maps struct type → field name → the flattened field
	// type ("Store", "http.Request"; pointers are dereferenced). Only
	// fields whose type flattens to a name appear.
	FieldTypes map[string]map[string]string
	// MutexFields maps struct type → the set of its sync.Mutex /
	// sync.RWMutex fields (detected by type name suffix; the repo
	// imports sync unaliased).
	MutexFields map[string]map[string]bool
	// MapFields is the set of field names declared with a map type
	// anywhere in the package's structs. Field names, not (type, field)
	// pairs: consumers use it to recognize `x.field` as a map when x's
	// type is not inferable, accepting the package-local collision risk.
	MapFields map[string]bool
	// PkgVars is the set of package-level variable names.
	PkgVars map[string]bool
	// Handlers marks functions with an http.ResponseWriter parameter —
	// HTTP handler entry points, which run on server goroutines.
	Handlers map[FuncID]bool

	// Interfaces maps each package-local interface type to its sorted
	// method names (embedded local interfaces flattened; an interface
	// embedding anything unresolvable — a cross-package type — is
	// omitted entirely, so devirtualization never matches a partial
	// method set).
	Interfaces map[string][]string
	// Implementers maps interface name → the sorted package-local
	// concrete types whose declared method set covers every interface
	// method (matched by name and arity).
	Implementers map[string][]string

	// bindings caches per-function identifier→type tables.
	bindings map[FuncID]map[string]string

	// ifaceMethods records, per interface, method name → arity
	// (parameter count, results count) for implementer matching.
	ifaceMethods map[string]map[string]arity
	// ifaceEmbeds records embedded type names per interface, resolved
	// (or rejected) in computeImplementers.
	ifaceEmbeds map[string][]string
	// funcVars accumulates function-value bindings per enclosing
	// function: identifier → every named function or method the package
	// ever binds to it (assignments and resolved call arguments).
	funcVars map[FuncID]map[string][]FuncID
	// fieldFuncs accumulates function-value bindings per struct field:
	// type → field → every function the package ever stores there.
	fieldFuncs map[string]map[string][]FuncID
}

// arity is the shape of a method used for implements-matching: the
// number of parameters and results (names and types are invisible to a
// syntactic pass, but a name+arity match is already a strong signal
// within one package).
type arity struct{ params, results int }

// Build constructs the graph for one package.
func Build(pkg *analysis.Package) *Graph {
	g := &Graph{
		Funcs:        map[FuncID]*ast.FuncDecl{},
		Callees:      map[FuncID][]Edge{},
		Callers:      map[FuncID][]Edge{},
		FieldTypes:   map[string]map[string]string{},
		MutexFields:  map[string]map[string]bool{},
		MapFields:    map[string]bool{},
		PkgVars:      map[string]bool{},
		Handlers:     map[FuncID]bool{},
		Interfaces:   map[string][]string{},
		Implementers: map[string][]string{},
		bindings:     map[FuncID]map[string]string{},
		ifaceMethods: map[string]map[string]arity{},
		ifaceEmbeds:  map[string][]string{},
		funcVars:     map[FuncID]map[string][]FuncID{},
		fieldFuncs:   map[string]map[string][]FuncID{},
	}
	g.collectDecls(pkg)
	g.computeImplementers()
	g.collectFuncValues(pkg)
	for _, file := range pkg.Files {
		httpNames := analysis.ImportNames(file, "net/http")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			id := DeclID(fd)
			if isHandler(fd, httpNames) {
				g.Handlers[id] = true
			}
			g.resolveCalls(id, fd)
		}
	}
	sort.SliceStable(g.Edges, func(i, j int) bool { return g.Edges[i].Pos < g.Edges[j].Pos })
	for _, e := range g.Edges {
		g.Callees[e.Caller] = append(g.Callees[e.Caller], e)
		g.Callers[e.Callee] = append(g.Callers[e.Callee], e)
	}
	return g
}

// DeclID names a function declaration.
func DeclID(fd *ast.FuncDecl) FuncID {
	if fd.Recv == nil {
		return FuncID(fd.Name.Name)
	}
	_, typ := receiverName(fd)
	if typ == "" {
		return FuncID("?." + fd.Name.Name)
	}
	return MethodID(typ, fd.Name.Name)
}

// receiverName mirrors guardedby.ReceiverName without the import cycle
// risk: the receiver identifier and its named type.
func receiverName(fd *ast.FuncDecl) (recv, typ string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0].Name, id.Name
	}
	return "", id.Name
}

// collectDecls fills the function table and the struct/var inventories.
func (g *Graph) collectDecls(pkg *analysis.Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					g.Funcs[DeclID(d)] = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						if d.Tok == token.VAR {
							for _, n := range s.Names {
								g.PkgVars[n.Name] = true
							}
						}
					case *ast.TypeSpec:
						switch t := s.Type.(type) {
						case *ast.StructType:
							g.collectStruct(s.Name.Name, t)
						case *ast.InterfaceType:
							g.collectInterface(s.Name.Name, t)
						}
					}
				}
			}
		}
	}
}

func (g *Graph) collectStruct(typ string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if _, ok := field.Type.(*ast.MapType); ok {
			for _, n := range field.Names {
				g.MapFields[n.Name] = true
			}
			continue
		}
		ft := FlattenType(field.Type)
		if ft == "" {
			continue
		}
		if ft == "sync.Mutex" || ft == "sync.RWMutex" {
			m := g.MutexFields[typ]
			if m == nil {
				m = map[string]bool{}
				g.MutexFields[typ] = m
			}
			for _, n := range field.Names {
				m[n.Name] = true
			}
		}
		m := g.FieldTypes[typ]
		if m == nil {
			m = map[string]string{}
			g.FieldTypes[typ] = m
		}
		for _, n := range field.Names {
			m[n.Name] = ft
		}
	}
}

// collectInterface records one package-local interface's explicit
// methods (with arity) and embedded type names.
func (g *Graph) collectInterface(name string, it *ast.InterfaceType) {
	methods := map[string]arity{}
	for _, m := range it.Methods.List {
		if len(m.Names) == 0 {
			// Embedded interface (or type-set term); resolved later.
			if en := FlattenType(m.Type); en != "" {
				g.ifaceEmbeds[name] = append(g.ifaceEmbeds[name], en)
			} else {
				// A type-set union or other construct we cannot name:
				// poison the interface so it never half-matches.
				g.ifaceEmbeds[name] = append(g.ifaceEmbeds[name], "?")
			}
			continue
		}
		ft, ok := m.Type.(*ast.FuncType)
		if !ok {
			continue
		}
		for _, n := range m.Names {
			methods[n.Name] = arity{params: fieldCount(ft.Params), results: fieldCount(ft.Results)}
		}
	}
	g.ifaceMethods[name] = methods
}

// fieldCount counts the identifiers a parameter/result list declares
// (grouped names each count; an unnamed field counts once).
func fieldCount(fl *ast.FieldList) int {
	if fl == nil {
		return 0
	}
	n := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// computeImplementers flattens embedded local interfaces and matches
// every package-local concrete type's declared method set against every
// interface. An interface embedding anything that is not a local
// interface is dropped: matching against a partial method set would
// claim implementers the real type system might reject.
func (g *Graph) computeImplementers() {
	// Resolve embeds transitively; detect the unresolvable.
	for name := range g.ifaceMethods {
		if !g.flattenEmbeds(name, map[string]bool{}) {
			delete(g.ifaceMethods, name)
		}
	}
	// Declared method sets of concrete receivers, from the function
	// table (methods with bodies — the only ones whose acquisitions the
	// analyzers can see anyway).
	methodSets := map[string]map[string]arity{}
	for id, fd := range g.Funcs {
		if fd.Recv == nil {
			continue
		}
		typ, method, ok := strings.Cut(string(id), ".")
		if !ok {
			continue
		}
		m := methodSets[typ]
		if m == nil {
			m = map[string]arity{}
			methodSets[typ] = m
		}
		m[method] = arity{params: fieldCount(fd.Type.Params), results: fieldCount(fd.Type.Results)}
	}
	for name, want := range g.ifaceMethods {
		if len(want) == 0 {
			// interface{} — nothing callable, nothing to devirtualize.
			continue
		}
		names := make([]string, 0, len(want))
		for m := range want {
			names = append(names, m)
		}
		sort.Strings(names)
		g.Interfaces[name] = names
		for typ, have := range methodSets {
			ok := true
			for m, a := range want {
				if have[m] != a {
					ok = false
					break
				}
			}
			if ok {
				g.Implementers[name] = append(g.Implementers[name], typ)
			}
		}
		sort.Strings(g.Implementers[name])
	}
}

// flattenEmbeds folds name's embedded local interfaces into its method
// map, reporting false when any embed cannot be resolved locally.
func (g *Graph) flattenEmbeds(name string, visiting map[string]bool) bool {
	if visiting[name] {
		return true // embed cycle; the parser allows it, methods already merged
	}
	visiting[name] = true
	for _, en := range g.ifaceEmbeds[name] {
		em, ok := g.ifaceMethods[en]
		if !ok {
			return false // "?", a cross-package name, or a non-interface
		}
		if !g.flattenEmbeds(en, visiting) {
			return false
		}
		for m, a := range em {
			g.ifaceMethods[name][m] = a
		}
	}
	g.ifaceEmbeds[name] = nil
	return true
}

// collectFuncValues accumulates the package's function-value bindings:
// named funcs and bound methods assigned to variables, stored into
// struct fields (by assignment or composite literal), or passed as
// arguments to resolved in-package calls. The tables only grow, and a
// binding discovered in one round can resolve calls that bind more
// parameters in the next, so collection iterates to a fixpoint.
func (g *Graph) collectFuncValues(pkg *analysis.Package) {
	for changed := true; changed; {
		changed = false
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if g.collectFuncValuesIn(DeclID(fd), fd.Body) {
					changed = true
				}
			}
		}
	}
}

func (g *Graph) collectFuncValuesIn(id FuncID, body *ast.BlockStmt) bool {
	changed := false
	bindVar := func(owner FuncID, name string, vals []FuncID) {
		if name == "" || name == "_" || len(vals) == 0 {
			return
		}
		m := g.funcVars[owner]
		if m == nil {
			m = map[string][]FuncID{}
			g.funcVars[owner] = m
		}
		if addFuncs(m, name, vals) {
			changed = true
		}
	}
	bindField := func(typ, field string, vals []FuncID) {
		if typ == "" || strings.Contains(typ, ".") || field == "" || len(vals) == 0 {
			return
		}
		m := g.fieldFuncs[typ]
		if m == nil {
			m = map[string][]FuncID{}
			g.fieldFuncs[typ] = m
		}
		if addFuncs(m, field, vals) {
			changed = true
		}
	}
	bindTarget := func(lhs ast.Expr, vals []FuncID) {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			bindVar(id, lhs.Name, vals)
		case *ast.SelectorExpr:
			if x, ok := lhs.X.(*ast.Ident); ok {
				if typ, ok := g.Bindings(id)[x.Name]; ok {
					bindField(typ, lhs.Sel.Name, vals)
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				bindTarget(lhs, g.FuncValues(id, n.Rhs[i]))
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					bindVar(id, name.Name, g.FuncValues(id, n.Values[i]))
				}
			}
		case *ast.CompositeLit:
			typ := FlattenType(n.Type)
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				bindField(typ, key.Name, g.FuncValues(id, kv.Value))
			}
		case *ast.CallExpr:
			for _, callee := range g.ResolveAll(id, n) {
				fd := g.Funcs[callee]
				if fd == nil {
					continue
				}
				for i, arg := range n.Args {
					vals := g.FuncValues(id, arg)
					if len(vals) == 0 {
						continue
					}
					if name := paramName(fd, i); name != "" {
						bindVar(callee, name, vals)
					}
				}
			}
		}
		return true
	})
	return changed
}

// addFuncs merges vals into m[name] keeping the slice sorted and
// deduplicated; it reports whether anything new arrived.
func addFuncs(m map[string][]FuncID, name string, vals []FuncID) bool {
	have := m[name]
	set := map[FuncID]bool{}
	for _, f := range have {
		set[f] = true
	}
	added := false
	for _, f := range vals {
		if !set[f] {
			set[f] = true
			added = true
		}
	}
	if !added {
		return false
	}
	out := make([]FuncID, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	m[name] = out
	return true
}

// paramName returns the name of fd's i-th parameter (grouped names
// expanded), or "" when it is unnamed or out of range.
func paramName(fd *ast.FuncDecl, i int) string {
	if fd.Type.Params == nil {
		return ""
	}
	idx := 0
	for _, p := range fd.Type.Params.List {
		n := len(p.Names)
		if n == 0 {
			n = 1
		}
		if i < idx+n {
			if len(p.Names) == 0 {
				return ""
			}
			name := p.Names[i-idx].Name
			if name == "_" {
				return ""
			}
			return name
		}
		idx += n
	}
	return ""
}

// FuncValues returns the named package functions and bound methods
// expression e evidently denotes as a value: `helper` for a package
// function, `x.m` for a method of x's evident type (fanning out through
// a local interface's implementers). Anything else — literals, calls,
// composite expressions — yields nothing.
func (g *Graph) FuncValues(fn FuncID, e ast.Expr) []FuncID {
	switch e := e.(type) {
	case *ast.Ident:
		if fd, ok := g.Funcs[FuncID(e.Name)]; ok && fd.Recv == nil {
			return []FuncID{FuncID(e.Name)}
		}
	case *ast.SelectorExpr:
		x, ok := e.X.(*ast.Ident)
		if !ok {
			return nil
		}
		typ, ok := g.Bindings(fn)[x.Name]
		if !ok {
			return nil
		}
		if m := MethodID(typ, e.Sel.Name); g.Funcs[m] != nil {
			return []FuncID{m}
		}
		var out []FuncID
		for _, impl := range g.Implementers[typ] {
			if m := MethodID(impl, e.Sel.Name); g.Funcs[m] != nil {
				out = append(out, m)
			}
		}
		return out
	}
	return nil
}

// FlattenType renders a type expression as a dotted name: "T", "pkg.T"
// (pointers dereferenced, generic instantiations stripped), or "" for
// composite types.
func FlattenType(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return FlattenType(t.X)
	case *ast.SelectorExpr:
		base := FlattenType(t.X)
		if base == "" {
			return ""
		}
		return base + "." + t.Sel.Name
	case *ast.IndexExpr:
		return FlattenType(t.X)
	default:
		return ""
	}
}

// isHandler reports whether fd takes an http.ResponseWriter parameter.
// The literal spelling "http.ResponseWriter" is accepted even without a
// net/http import table so in-memory mutation tests parse standalone.
func isHandler(fd *ast.FuncDecl, httpNames []string) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		ft := FlattenType(p.Type)
		pkg, name, ok := strings.Cut(ft, ".")
		if !ok || name != "ResponseWriter" {
			continue
		}
		if pkg == "http" {
			return true
		}
		for _, n := range httpNames {
			if pkg == n {
				return true
			}
		}
	}
	return false
}

// Bindings returns fd's identifier→type table: the receiver, every
// parameter of named type, and every local whose type is syntactically
// evident (var x T; x := T{...}; x := &T{...}; x := new(T)). The table
// is flow-insensitive — later bindings win nothing, the first named
// binding for an identifier sticks — which over-approximates shadowing
// but is stable and cheap.
func (g *Graph) Bindings(id FuncID) map[string]string {
	if b, ok := g.bindings[id]; ok {
		return b
	}
	fd := g.Funcs[id]
	b := map[string]string{}
	if fd != nil {
		if recv, typ := receiverName(fd); recv != "" && recv != "_" {
			b[recv] = typ
		}
		if fd.Type.Params != nil {
			for _, p := range fd.Type.Params.List {
				if ft := FlattenType(p.Type); ft != "" {
					for _, n := range p.Names {
						bindFirst(b, n.Name, ft)
					}
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) || len(n.Rhs) != len(n.Lhs) {
						continue
					}
					if t := literalType(n.Rhs[i]); t != "" {
						bindFirst(b, id.Name, t)
					}
				}
			case *ast.ValueSpec:
				if t := FlattenType(n.Type); t != "" {
					for _, name := range n.Names {
						bindFirst(b, name.Name, t)
					}
				}
			}
			return true
		})
	}
	g.bindings[id] = b
	return b
}

func bindFirst(b map[string]string, name, typ string) {
	if name == "_" {
		return
	}
	if _, ok := b[name]; !ok {
		b[name] = typ
	}
}

// literalType extracts the named type a value expression evidently
// constructs: T{...}, &T{...}, new(T).
func literalType(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return literalType(e.X)
		}
	case *ast.CompositeLit:
		return FlattenType(e.Type)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			return FlattenType(e.Args[0])
		}
	}
	return ""
}

// Resolve maps one call expression inside function id to its callee
// when the syntax pins it down to exactly one function. ok is false for
// unresolved calls and for devirtualized calls with several candidates;
// consumers that can handle fan-out should use ResolveAll.
func (g *Graph) Resolve(id FuncID, call *ast.CallExpr) (FuncID, bool) {
	all := g.ResolveAll(id, call)
	if len(all) == 1 {
		return all[0], true
	}
	return "", false
}

// ResolveAll maps one call expression inside function id to every
// callee the syntax shows it can reach: exactly one for a direct call,
// one per implementing type for a devirtualized interface call, one per
// bound function for a call through a function-valued variable or
// field. The slice is sorted and empty for unresolved calls.
func (g *Graph) ResolveAll(id FuncID, call *ast.CallExpr) []FuncID {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee := FuncID(fun.Name)
		if fd, ok := g.Funcs[callee]; ok && fd.Recv == nil {
			return []FuncID{callee}
		}
		// A call through a function-valued variable or parameter:
		// every named function the package ever binds to it.
		return g.funcVars[id][fun.Name]
	case *ast.SelectorExpr:
		b := g.Bindings(id)
		switch x := fun.X.(type) {
		case *ast.Ident:
			if typ, ok := b[x.Name]; ok {
				return g.methodTargets(typ, fun.Sel.Name)
			}
		case *ast.SelectorExpr:
			// One level of field indirection: base.field.Method() or a
			// call through a function-valued field base.field.cb().
			base, ok := x.X.(*ast.Ident)
			if !ok {
				break
			}
			typ, ok := b[base.Name]
			if !ok {
				break
			}
			ft, ok := g.FieldTypes[typ][x.Sel.Name]
			if !ok || strings.Contains(ft, ".") {
				break
			}
			return g.methodTargets(ft, fun.Sel.Name)
		}
	}
	return nil
}

// methodTargets resolves a method-shaped call typ.name: the concrete
// method if typ declares one, otherwise the interface fan-out if typ is
// a local interface, otherwise any functions bound to a func-valued
// field typ.name.
func (g *Graph) methodTargets(typ, name string) []FuncID {
	if callee := MethodID(typ, name); g.Funcs[callee] != nil {
		return []FuncID{callee}
	}
	if impls, ok := g.Implementers[typ]; ok {
		var out []FuncID
		for _, impl := range impls {
			if m := MethodID(impl, name); g.Funcs[m] != nil {
				out = append(out, m)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return g.fieldFuncs[typ][name]
}

// resolveCalls walks fd's body recording resolved edges with their
// goroutine-context kind.
func (g *Graph) resolveCalls(id FuncID, fd *ast.FuncDecl) {
	var walk func(n ast.Node, kind EdgeKind)
	walk = func(n ast.Node, kind EdgeKind) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.GoStmt:
				if lit, ok := c.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, Spawn)
				} else {
					for _, callee := range g.ResolveAll(id, c.Call) {
						g.Edges = append(g.Edges, Edge{Caller: id, Callee: callee, Kind: Spawn, Pos: c.Call.Pos()})
					}
				}
				// Argument expressions evaluate on the caller's goroutine,
				// but any call among them is vanishingly rare; skip the
				// subtree rather than misclassify the spawned call itself.
				return false
			case *ast.FuncLit:
				next := Closure
				if kind == Spawn {
					next = Spawn
				}
				walk(c.Body, next)
				return false
			case *ast.CallExpr:
				for _, callee := range g.ResolveAll(id, c) {
					g.Edges = append(g.Edges, Edge{Caller: id, Callee: callee, Kind: kind, Pos: c.Pos()})
				}
			}
			return true
		})
	}
	walk(fd.Body, Call)
}

// Reachable returns every function reachable from the roots over edges
// whose kind passes keep (the roots themselves included). Traversal
// order is deterministic.
func (g *Graph) Reachable(roots []FuncID, keep func(EdgeKind) bool) map[FuncID]bool {
	seen := map[FuncID]bool{}
	queue := append([]FuncID(nil), roots...)
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if seen[f] {
			continue
		}
		seen[f] = true
		for _, e := range g.Callees[f] {
			if keep(e.Kind) && !seen[e.Callee] {
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}
