package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"unitdb/internal/lint/analysis"
)

func parsePkg(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &analysis.Package{
		Path:  "unitdb/internal/cgfix",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
}

const src = `package cgfix

import (
	"net/http"
	"sync"
)

var global int

type Inner struct{}

func (i *Inner) Ping() {}

type Store struct {
	mu     sync.Mutex
	inner  *Inner
	byName map[string]int
}

func (s *Store) Get() int { return 0 }

func helper() {}

func Top(s *Store) {
	helper()
	s.Get()
	s.inner.Ping()
	go helper()
	go func() { helper() }()
	f := func() { helper() }
	f()
	unknown()
	cb(helper)
}

func Handler(w http.ResponseWriter) { helper() }
`

func build(t *testing.T) *Graph {
	t.Helper()
	return Build(parsePkg(t, src))
}

func TestDecls(t *testing.T) {
	g := build(t)
	for _, id := range []FuncID{"Inner.Ping", "Store.Get", "helper", "Top", "Handler"} {
		if g.Funcs[id] == nil {
			t.Errorf("Funcs missing %q", id)
		}
	}
	if !g.PkgVars["global"] {
		t.Error("PkgVars missing global")
	}
	if !g.MutexFields["Store"]["mu"] {
		t.Error("MutexFields missing Store.mu")
	}
	if !g.MapFields["byName"] {
		t.Error("MapFields missing byName")
	}
	if got := g.FieldTypes["Store"]["inner"]; got != "Inner" {
		t.Errorf("FieldTypes[Store][inner] = %q, want %q", got, "Inner")
	}
	if !g.Handlers["Handler"] || g.Handlers["Top"] {
		t.Errorf("Handlers = %v, want exactly {Handler}", g.Handlers)
	}
}

// TestEdges checks resolution and goroutine-context classification of
// every call site in Top — and that the unresolvable ones (unknown(),
// f(), a function value passed as an argument) contribute no edge.
func TestEdges(t *testing.T) {
	g := build(t)
	type ck struct {
		callee FuncID
		kind   EdgeKind
	}
	counts := map[ck]int{}
	for _, e := range g.Callees["Top"] {
		counts[ck{e.Callee, e.Kind}]++
	}
	want := map[ck]int{
		{"helper", Call}:     1,
		{"Store.Get", Call}:  1,
		{"Inner.Ping", Call}: 1, // one level of field indirection
		{"helper", Spawn}:    2, // go helper() and go func(){ helper() }()
		{"helper", Closure}:  1, // the unspawned literal bound to f
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("edges Top -> %s (%s): got %d, want %d", k.callee, k.kind, counts[k], n)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 6 {
		t.Errorf("Top has %d resolved edges, want 6 (unresolved calls must add none)", total)
	}
}

func TestBindings(t *testing.T) {
	g := build(t)
	b := g.Bindings("Top")
	if b["s"] != "Store" {
		t.Errorf(`Bindings(Top)["s"] = %q, want "Store"`, b["s"])
	}
	if typ, ok := b["f"]; ok {
		t.Errorf("function literal bound f should stay untyped, got %q", typ)
	}
	if rb := g.Bindings("Store.Get"); rb["s"] != "Store" {
		t.Errorf("receiver binding = %q, want Store", rb["s"])
	}
}

// TestReachable checks BFS over a kind filter: plain calls only must not
// cross the spawn edges.
func TestReachable(t *testing.T) {
	g := build(t)
	calls := g.Reachable([]FuncID{"Top"}, func(k EdgeKind) bool { return k == Call })
	for _, id := range []FuncID{"Top", "helper", "Store.Get", "Inner.Ping"} {
		if !calls[id] {
			t.Errorf("Reachable(Top, Call) missing %q", id)
		}
	}
	if calls["Handler"] {
		t.Error("Handler must not be reachable from Top")
	}
	none := g.Reachable([]FuncID{"Inner.Ping"}, func(EdgeKind) bool { return true })
	if len(none) != 1 || !none["Inner.Ping"] {
		t.Errorf("Reachable(Inner.Ping) = %v, want just the root", none)
	}
}

// TestEdgesDeterministic pins the position ordering of Edges, which the
// analyzers rely on for stable findings.
func TestEdgesDeterministic(t *testing.T) {
	g := build(t)
	for i := 1; i < len(g.Edges); i++ {
		if g.Edges[i-1].Pos > g.Edges[i].Pos {
			t.Fatalf("Edges out of position order at %d", i)
		}
	}
}
