package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"unitdb/internal/lint/analysis"
)

func parsePkg(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &analysis.Package{
		Path:  "unitdb/internal/cgfix",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
}

const src = `package cgfix

import (
	"net/http"
	"sync"
)

var global int

type Inner struct{}

func (i *Inner) Ping() {}

type Store struct {
	mu     sync.Mutex
	inner  *Inner
	byName map[string]int
}

func (s *Store) Get() int { return 0 }

func helper() {}

func Top(s *Store) {
	helper()
	s.Get()
	s.inner.Ping()
	go helper()
	go func() { helper() }()
	f := func() { helper() }
	f()
	unknown()
	cb(helper)
}

func Handler(w http.ResponseWriter) { helper() }
`

func build(t *testing.T) *Graph {
	t.Helper()
	return Build(parsePkg(t, src))
}

func TestDecls(t *testing.T) {
	g := build(t)
	for _, id := range []FuncID{"Inner.Ping", "Store.Get", "helper", "Top", "Handler"} {
		if g.Funcs[id] == nil {
			t.Errorf("Funcs missing %q", id)
		}
	}
	if !g.PkgVars["global"] {
		t.Error("PkgVars missing global")
	}
	if !g.MutexFields["Store"]["mu"] {
		t.Error("MutexFields missing Store.mu")
	}
	if !g.MapFields["byName"] {
		t.Error("MapFields missing byName")
	}
	if got := g.FieldTypes["Store"]["inner"]; got != "Inner" {
		t.Errorf("FieldTypes[Store][inner] = %q, want %q", got, "Inner")
	}
	if !g.Handlers["Handler"] || g.Handlers["Top"] {
		t.Errorf("Handlers = %v, want exactly {Handler}", g.Handlers)
	}
}

// TestEdges checks resolution and goroutine-context classification of
// every call site in Top — and that the unresolvable ones (unknown(),
// f(), a function value passed as an argument) contribute no edge.
func TestEdges(t *testing.T) {
	g := build(t)
	type ck struct {
		callee FuncID
		kind   EdgeKind
	}
	counts := map[ck]int{}
	for _, e := range g.Callees["Top"] {
		counts[ck{e.Callee, e.Kind}]++
	}
	want := map[ck]int{
		{"helper", Call}:     1,
		{"Store.Get", Call}:  1,
		{"Inner.Ping", Call}: 1, // one level of field indirection
		{"helper", Spawn}:    2, // go helper() and go func(){ helper() }()
		{"helper", Closure}:  1, // the unspawned literal bound to f
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("edges Top -> %s (%s): got %d, want %d", k.callee, k.kind, counts[k], n)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 6 {
		t.Errorf("Top has %d resolved edges, want 6 (unresolved calls must add none)", total)
	}
}

func TestBindings(t *testing.T) {
	g := build(t)
	b := g.Bindings("Top")
	if b["s"] != "Store" {
		t.Errorf(`Bindings(Top)["s"] = %q, want "Store"`, b["s"])
	}
	if typ, ok := b["f"]; ok {
		t.Errorf("function literal bound f should stay untyped, got %q", typ)
	}
	if rb := g.Bindings("Store.Get"); rb["s"] != "Store" {
		t.Errorf("receiver binding = %q, want Store", rb["s"])
	}
}

// TestReachable checks BFS over a kind filter: plain calls only must not
// cross the spawn edges.
func TestReachable(t *testing.T) {
	g := build(t)
	calls := g.Reachable([]FuncID{"Top"}, func(k EdgeKind) bool { return k == Call })
	for _, id := range []FuncID{"Top", "helper", "Store.Get", "Inner.Ping"} {
		if !calls[id] {
			t.Errorf("Reachable(Top, Call) missing %q", id)
		}
	}
	if calls["Handler"] {
		t.Error("Handler must not be reachable from Top")
	}
	none := g.Reachable([]FuncID{"Inner.Ping"}, func(EdgeKind) bool { return true })
	if len(none) != 1 || !none["Inner.Ping"] {
		t.Errorf("Reachable(Inner.Ping) = %v, want just the root", none)
	}
}

// TestEdgesDeterministic pins the position ordering of Edges, which the
// analyzers rely on for stable findings.
func TestEdgesDeterministic(t *testing.T) {
	g := build(t)
	for i := 1; i < len(g.Edges); i++ {
		if g.Edges[i-1].Pos > g.Edges[i].Pos {
			t.Fatalf("Edges out of position order at %d", i)
		}
	}
}

const devirtSrc = `package cgfix

type Policy interface {
	Score(x int) int
	Reset()
}

type Greedy struct{}

func (g *Greedy) Score(x int) int { return x }
func (g *Greedy) Reset()          {}

type Fair struct{}

func (f *Fair) Score(x int) int { return -x }
func (f *Fair) Reset()          {}

// Partial has the right names but the wrong Score arity: not an
// implementer.
type Partial struct{}

func (p *Partial) Score() int { return 0 }
func (p *Partial) Reset()     {}

// Tainted embeds a cross-package interface: dropped entirely.
type Tainted interface {
	Policy
	fmtStringer
}

type Scorer interface{ Score(x int) int }

type Runner struct {
	p  Policy
	cb func()
}

func Apply(p Policy, x int) int {
	p.Reset()
	return p.Score(x)
}

func (r *Runner) Drive() int { return r.p.Score(1) }

func onTick() {}

func Register(r *Runner) {
	r.cb = onTick
	f := onTick
	f()
	run(onTick)
}

func run(cb func()) { cb() }

func (r *Runner) Fire() { r.cb() }
`

func buildDevirt(t *testing.T) *Graph {
	t.Helper()
	return Build(parsePkg(t, devirtSrc))
}

// TestImplementers checks CHA matching: name+arity method sets, the
// arity mismatch exclusion, and subset interfaces matching supersets.
func TestImplementers(t *testing.T) {
	g := buildDevirt(t)
	wantPolicy := []string{"Fair", "Greedy"}
	if got := g.Implementers["Policy"]; len(got) != 2 || got[0] != wantPolicy[0] || got[1] != wantPolicy[1] {
		t.Errorf("Implementers[Policy] = %v, want %v", got, wantPolicy)
	}
	for _, impl := range g.Implementers["Policy"] {
		if impl == "Partial" {
			t.Error("Partial matches Policy despite the Score arity mismatch")
		}
	}
	// Scorer's single method is satisfied by both concrete types too.
	if got := g.Implementers["Scorer"]; len(got) != 2 {
		t.Errorf("Implementers[Scorer] = %v, want both concrete types", got)
	}
	if _, ok := g.Interfaces["Tainted"]; ok {
		t.Error("Tainted embeds an unresolvable interface and must be dropped")
	}
	if got := g.Interfaces["Policy"]; len(got) != 2 || got[0] != "Reset" || got[1] != "Score" {
		t.Errorf("Interfaces[Policy] = %v, want [Reset Score]", got)
	}
}

// TestDevirtEdges checks that interface calls fan out to every
// implementer, through parameters and one field indirection alike.
func TestDevirtEdges(t *testing.T) {
	g := buildDevirt(t)
	count := func(caller, callee FuncID) int {
		n := 0
		for _, e := range g.Callees[caller] {
			if e.Callee == callee {
				n++
			}
		}
		return n
	}
	// Apply: p.Reset() and p.Score(x) each fan out to Greedy and Fair.
	for _, callee := range []FuncID{"Greedy.Score", "Fair.Score", "Greedy.Reset", "Fair.Reset"} {
		if got := count("Apply", callee); got != 1 {
			t.Errorf("edges Apply -> %s: got %d, want 1", callee, got)
		}
	}
	// Drive: r.p.Score(1) — interface behind one field indirection.
	if count("Runner.Drive", "Greedy.Score") != 1 || count("Runner.Drive", "Fair.Score") != 1 {
		t.Errorf("Runner.Drive edges = %v, want devirtualized Score fan-out", g.Callees["Runner.Drive"])
	}
}

// TestFuncValueEdges checks the flow-insensitive function-value
// bindings: locals, struct fields, and resolved call arguments.
func TestFuncValueEdges(t *testing.T) {
	g := buildDevirt(t)
	count := func(caller, callee FuncID) int {
		n := 0
		for _, e := range g.Callees[caller] {
			if e.Callee == callee {
				n++
			}
		}
		return n
	}
	if got := count("Register", "onTick"); got != 1 {
		t.Errorf("f := onTick; f() edges = %d, want 1", got)
	}
	if got := count("run", "onTick"); got != 1 {
		t.Errorf("run(onTick) must bind run's parameter: edges run -> onTick = %d, want 1", got)
	}
	if got := count("Runner.Fire", "onTick"); got != 1 {
		t.Errorf("r.cb = onTick must bind the field: edges Runner.Fire -> onTick = %d, want 1", got)
	}
}
