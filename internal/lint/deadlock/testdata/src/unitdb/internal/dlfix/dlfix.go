// Package dlfix exercises the deadlock analyzer: wrapper re-acquisition
// through a call edge, direct and call-mediated ABBA lock-order cycles,
// and the clean patterns that must stay silent.
package dlfix

import "sync"

var muA, muB sync.Mutex

// lockAB and lockBA acquire the package mutexes in opposite orders: two
// goroutines running them concurrently can block each other forever,
// even though each function on its own is perfectly balanced.
func lockAB() {
	muA.Lock()
	muB.Lock() // want `lock order cycle: \(pkg\)\.muA -> \(pkg\)\.muB -> \(pkg\)\.muA`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var muC, muD sync.Mutex

func lockC() { muC.Lock(); muC.Unlock() }
func lockD() { muD.Lock(); muD.Unlock() }

// withC holds muC across a call whose summary acquires muD, withD the
// reverse: the cycle only exists across call edges — no single function
// ever touches both mutexes.
func withC() {
	muC.Lock()
	lockD() // want `lock order cycle: \(pkg\)\.muC -> \(pkg\)\.muD -> \(pkg\)\.muC`
	muC.Unlock()
}

func withD() {
	muD.Lock()
	lockC()
	muD.Unlock()
}

type Store struct {
	mu sync.Mutex
	n  int
}

// Stats takes the lock itself: callers must not already hold it.
func (s *Store) Stats() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Store) statsLocked() int { return s.n }

// Window calls the locking wrapper while already holding mu: the callee
// blocks forever on its caller's own lock.
func (s *Store) Window() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats() // want `call to Store.Stats acquires \(Store\)\.mu, which is already held at this call \(deadlock\)`
}

// Sum uses the sanctioned Locked-suffix pattern: the callee assumes the
// lock instead of taking it.
func (s *Store) Sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// sequential never holds both package mutexes at once: no order edge in
// either direction.
func sequential() {
	muA.Lock()
	muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

// spawnStats starts Stats on a fresh goroutine, which begins with
// nothing held — the caller's lock does not transfer to the callee.
func (s *Store) spawnStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.Stats()
}

// --- interface-mediated cases: before devirtualization the calls below
// had no edge and every finding here was invisible. ---

var muE sync.Mutex

// Prober is implemented by FastProbe and SlowProbe (matched by method
// name and arity); a call through it fans out to both.
type Prober interface{ Probe() }

type FastProbe struct{}

func (FastProbe) Probe() { muE.Lock(); muE.Unlock() }

type SlowProbe struct{}

func (SlowProbe) Probe() { muE.Lock(); muE.Unlock() }

// holdAndProbe calls through the interface while holding the very mutex
// every implementer acquires: one finding per devirtualized callee.
func holdAndProbe(p Prober) {
	muE.Lock()
	p.Probe() // want 2:`acquires \(pkg\)\.muE, which is already held at this call \(deadlock\)`
	muE.Unlock()
}

var muF, muG sync.Mutex

type Stepper interface{ Step() }

type GStep struct{}

func (GStep) Step() { muG.Lock(); muG.Unlock() }

// cycleViaIface holds muF across an interface call whose only
// implementer acquires muG; stepBack holds muG and takes muF directly.
// The cycle exists only through the devirtualized edge.
func cycleViaIface(s Stepper) {
	muF.Lock()
	s.Step() // want `lock order cycle: \(pkg\)\.muF -> \(pkg\)\.muG -> \(pkg\)\.muF`
	muF.Unlock()
}

func stepBack() {
	muG.Lock()
	muF.Lock()
	muF.Unlock()
	muG.Unlock()
}
