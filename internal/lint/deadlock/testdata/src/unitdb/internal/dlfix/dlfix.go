// Package dlfix exercises the deadlock analyzer: wrapper re-acquisition
// through a call edge, direct and call-mediated ABBA lock-order cycles,
// and the clean patterns that must stay silent.
package dlfix

import "sync"

var muA, muB sync.Mutex

// lockAB and lockBA acquire the package mutexes in opposite orders: two
// goroutines running them concurrently can block each other forever,
// even though each function on its own is perfectly balanced.
func lockAB() {
	muA.Lock()
	muB.Lock() // want `lock order cycle: \(pkg\)\.muA -> \(pkg\)\.muB -> \(pkg\)\.muA`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var muC, muD sync.Mutex

func lockC() { muC.Lock(); muC.Unlock() }
func lockD() { muD.Lock(); muD.Unlock() }

// withC holds muC across a call whose summary acquires muD, withD the
// reverse: the cycle only exists across call edges — no single function
// ever touches both mutexes.
func withC() {
	muC.Lock()
	lockD() // want `lock order cycle: \(pkg\)\.muC -> \(pkg\)\.muD -> \(pkg\)\.muC`
	muC.Unlock()
}

func withD() {
	muD.Lock()
	lockC()
	muD.Unlock()
}

type Store struct {
	mu sync.Mutex
	n  int
}

// Stats takes the lock itself: callers must not already hold it.
func (s *Store) Stats() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Store) statsLocked() int { return s.n }

// Window calls the locking wrapper while already holding mu: the callee
// blocks forever on its caller's own lock.
func (s *Store) Window() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats() // want `call to Store.Stats acquires \(Store\)\.mu, which is already held at this call \(deadlock\)`
}

// Sum uses the sanctioned Locked-suffix pattern: the callee assumes the
// lock instead of taking it.
func (s *Store) Sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// sequential never holds both package mutexes at once: no order edge in
// either direction.
func sequential() {
	muA.Lock()
	muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

// spawnStats starts Stats on a fresh goroutine, which begins with
// nothing held — the caller's lock does not transfer to the callee.
func (s *Store) spawnStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.Stats()
}
