package deadlock

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unitdb/internal/dlfix")
}

// TestMutationWrapperReacquire is the seeded mutation check from the
// issue: replacing StatsWindow's statsLocked() call with the locking
// Stats() wrapper — a one-token slip a refactor could easily make —
// must produce exactly one deadlock finding on the real server source.
func TestMutationWrapperReacquire(t *testing.T) {
	src := readServerGo(t)
	mutated := strings.Replace(src,
		"st := s.statsLocked()",
		"st := s.Stats()", 1)
	if mutated == src {
		t.Fatal("mutation had no effect; did internal/server/server.go change shape?")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "already held at this call") {
		t.Errorf("finding is not a re-acquisition report: %s", diags[0])
	}
}

// ifaceSrc is clean: drain holds the lock and calls the Locked-suffix
// accessor directly. The snapshotter interface's only implementer is
// metrics, so a call through it devirtualizes to metrics.Snapshot.
const ifaceSrc = `package server

import "sync"

type metrics struct {
	mu sync.Mutex
	n  int
}

func (m *metrics) Snapshot() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

func (m *metrics) snapshotLocked() int { return m.n }

type snapshotter interface{ Snapshot() int }

func drain(m *metrics, s snapshotter) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}
`

// TestMutationInterfaceReacquire swaps drain's direct Locked-suffix call
// for a call through the interface. Before devirtualization the call
// s.Snapshot() had no edge and the mutation was invisible; now it must
// produce exactly one re-acquisition finding naming the devirtualized
// callee.
func TestMutationInterfaceReacquire(t *testing.T) {
	mutated := strings.Replace(ifaceSrc,
		"return m.snapshotLocked()",
		"return s.Snapshot()", 1)
	if mutated == ifaceSrc {
		t.Fatal("mutation had no effect")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "call to metrics.Snapshot acquires (metrics).mu, which is already held") {
		t.Errorf("finding does not name the devirtualized callee: %s", diags[0])
	}
}

// TestUnmutatedInterfaceSourceIsClean pins the baseline the interface
// mutation test depends on.
func TestUnmutatedInterfaceSourceIsClean(t *testing.T) {
	if diags := runOnSource(t, ifaceSrc); len(diags) != 0 {
		t.Fatalf("unexpected findings on clean interface source:\n%s",
			analysistest.Fprint(diags))
	}
}

// TestUnmutatedServerIsClean pins the baseline the mutation test depends
// on: the real file alone must produce no deadlock findings.
func TestUnmutatedServerIsClean(t *testing.T) {
	if diags := runOnSource(t, readServerGo(t)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine server.go:\n%s",
			analysistest.Fprint(diags))
	}
}

func readServerGo(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "server", "server.go")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	return string(b)
}

// runOnSource applies the analyzer to one in-memory file.
func runOnSource(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "server.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &analysis.Package{
		Path:  "unitdb/internal/server",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
	var diags []analysis.Diagnostic
	if err := Analyzer.Run(analysis.NewPass(Analyzer, pkg, &diags)); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !analysis.Suppressed(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
