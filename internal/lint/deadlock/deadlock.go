// Package deadlock checks lock acquisition order interprocedurally: it
// builds a package-wide lock-order graph — an edge A → B for every
// program point that acquires mutex class B while holding class A,
// including acquisitions reached through resolved calls — and reports
//
//   - any call to a function whose summary (transitively) acquires a
//     mutex class that is already held at the call site: the callee
//     will self-deadlock on the caller's lock (the classic
//     wrapper-calls-wrapper bug, e.g. a method that takes s.mu calling
//     s.Stats() instead of s.statsLocked());
//   - any cycle among distinct mutex classes in the order graph: two
//     goroutines taking the same pair of mutexes in opposite orders
//     can block each other forever, even though every individual
//     function looks correct.
//
// Held sets come from the same lockstate lattice locksafe uses ("held"
// is a must-property: true only when every path to the point holds the
// mutex), and mutex keys are normalized to package-global classes by
// internal/lint/summary — "(Server).mu" for receiver-rooted keys, so
// acquisition order composes across functions without call-site
// substitution. Direct double-locking of one mutex inside a single
// function is locksafe's finding, not this analyzer's: deadlock only
// reports self-acquisition that arrives through a call edge, and its
// order graph never contains self-edges.
//
// Spawned calls (`go f()`) do not propagate the held set — the new
// goroutine starts with nothing held — and deferred calls are skipped
// (they run at return, where the held set differs). Unresolved calls
// contribute nothing: like the call graph itself, the analysis
// under-approximates and stays silent rather than guessing.
package deadlock

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
	"unitdb/internal/lint/lockstate"
	"unitdb/internal/lint/summary"
)

// Analyzer is the deadlock pass.
var Analyzer = &analysis.Analyzer{
	Name: "deadlock",
	Doc:  "no lock-order cycles; no call into a function that re-acquires a held mutex",
	Run:  run,
}

// orderEdge is one "B acquired while A held" observation.
type orderEdge struct {
	from, to string
	pos      token.Pos
}

type checker struct {
	pass  *analysis.Pass
	sum   *summary.Summary
	edges []orderEdge
	seen  map[string]bool // finding dedupe across merged paths
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, sum: summary.Of(pass.Pkg), seen: map[string]bool{}}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	c.reportCycles()
	return nil
}

// checkFunc replays the lockstate facts through fd's blocks, recording
// order edges at each acquisition and checking callee summaries at each
// resolved call site.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	fn := callgraph.DeclID(fd)
	g := cfg.New(fd.Body)
	res := dataflow.Solve(g, &dataflow.Analysis{
		Entry:    lockstate.Fact{},
		Join:     lockstate.Join,
		Transfer: lockstate.Transfer,
	})
	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil && b.Index != 0 {
			continue // unreachable
		}
		fact := lockstate.Fact{}
		if in != nil {
			fact = in.(lockstate.Fact)
		}
		for _, node := range b.Nodes {
			c.checkCalls(fn, node, fact)
			fact = c.applyOps(fn, node, fact)
		}
	}
}

// heldClasses returns the lock classes provably held under fact, sorted.
func (c *checker) heldClasses(fn callgraph.FuncID, fact lockstate.Fact) []string {
	var held []string
	for _, key := range fact.Keys() {
		if lockstate.Held(fact, key) {
			held = append(held, c.sum.LockClass(fn, key))
		}
	}
	sort.Strings(held)
	return held
}

// checkCalls examines the resolved calls executing in node against the
// held set on entry to the node. Go statements spawn a fresh goroutine
// (held set does not transfer) and deferred calls run at return, so
// both are skipped.
func (c *checker) checkCalls(fn callgraph.FuncID, node ast.Node, fact lockstate.Fact) {
	switch node.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return
	}
	held := c.heldClasses(fn, fact)
	if len(held) == 0 {
		return
	}
	cfg.Walk(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range c.sum.Graph.ResolveAll(fn, call) {
			for _, acq := range c.sum.Acquires[callee] {
				if contains(held, acq) {
					c.report(call.Pos(), fmt.Sprintf(
						"call to %s acquires %s, which is already held at this call (deadlock)",
						callee, acq))
					continue
				}
				for _, h := range held {
					c.addEdge(h, acq, call.Pos())
				}
			}
		}
		return true
	})
}

// applyOps replays node's lock operations over fact, recording an order
// edge held → acquired at each Lock/RLock.
func (c *checker) applyOps(fn callgraph.FuncID, node ast.Node, fact lockstate.Fact) lockstate.Fact {
	ops := lockstate.Ops(node)
	if len(ops) == 0 {
		return fact
	}
	fact = fact.Clone()
	for _, op := range ops {
		if op.Kind == lockstate.OpLock || op.Kind == lockstate.OpRLock {
			acq := c.sum.LockClass(fn, op.Key)
			for _, h := range c.heldClasses(fn, fact) {
				if h != acq { // same-mutex re-lock is locksafe's finding
					c.addEdge(h, acq, op.Pos)
				}
			}
		}
		var next lockstate.Set
		for _, p := range fact.Get(op.Key).States() {
			np, _ := lockstate.Apply(op.Kind, op.Key, p)
			next = next.Add(np)
		}
		fact[op.Key] = next
	}
	return fact
}

func (c *checker) addEdge(from, to string, pos token.Pos) {
	c.edges = append(c.edges, orderEdge{from: from, to: to, pos: pos})
}

func (c *checker) report(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d|%s", pos, msg)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

// reportCycles finds cycles among distinct lock classes in the order
// graph and reports one finding per strongly connected component,
// anchored at the component's earliest edge position.
func (c *checker) reportCycles() {
	succ := map[string]map[string]token.Pos{}
	nodes := map[string]bool{}
	for _, e := range c.edges {
		nodes[e.from], nodes[e.to] = true, true
		m := succ[e.from]
		if m == nil {
			m = map[string]token.Pos{}
			succ[e.from] = m
		}
		if p, ok := m[e.to]; !ok || e.pos < p {
			m[e.to] = e.pos
		}
	}
	for _, scc := range stronglyConnected(nodes, succ) {
		if len(scc) < 2 {
			continue // self-edges are never added, so singletons are acyclic
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// Anchor the finding at the earliest acquisition that closes the
		// cycle, and describe a concrete cycle path from the smallest
		// class for a stable, readable message.
		pos := token.Pos(0)
		for _, from := range scc {
			for to, p := range succ[from] {
				if inSCC[to] && (pos == 0 || p < pos) {
					pos = p
				}
			}
		}
		path := cyclePath(scc[0], inSCC, succ)
		c.report(pos, fmt.Sprintf(
			"lock order cycle: %s — these mutexes are acquired in inconsistent order (deadlock)",
			strings.Join(path, " -> ")))
	}
}

// cyclePath walks a deterministic cycle through the SCC starting and
// ending at start.
func cyclePath(start string, inSCC map[string]bool, succ map[string]map[string]token.Pos) []string {
	path := []string{start}
	seen := map[string]bool{start: true}
	cur := start
	for range inSCC {
		nexts := make([]string, 0, len(succ[cur]))
		for to := range succ[cur] {
			if inSCC[to] {
				nexts = append(nexts, to)
			}
		}
		sort.Strings(nexts)
		// Prefer closing the cycle, then an unvisited node.
		next := ""
		for _, n := range nexts {
			if n == start {
				next = n
				break
			}
		}
		if next == start {
			break
		}
		for _, n := range nexts {
			if !seen[n] {
				next = n
				break
			}
		}
		if next == "" {
			break
		}
		path = append(path, next)
		seen[next] = true
		cur = next
	}
	return append(path, start)
}

// stronglyConnected is Tarjan's algorithm over deterministically sorted
// nodes and successors.
func stronglyConnected(nodes map[string]bool, succ map[string]map[string]token.Pos) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		ws := make([]string, 0, len(succ[v]))
		for w := range succ[v] {
			ws = append(ws, w)
		}
		sort.Strings(ws)
		for _, w := range ws {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range sorted {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
