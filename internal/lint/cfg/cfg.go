// Package cfg builds intraprocedural control-flow graphs from Go function
// bodies, a stdlib-only miniature of golang.org/x/tools/go/cfg (the build
// environment has no module proxy; see internal/lint/analysis for the
// policy). The graph is the substrate for unitlint's flow-sensitive
// analyzers: internal/lint/dataflow runs lattice transfer functions over
// its blocks, and locksafe/guardedflow/outcomeonce interpret the nodes.
//
// A CFG is a list of basic blocks. Each block holds the AST nodes that
// execute unconditionally once the block is entered, in execution order:
// statements, plus the condition expressions of if/for/switch (a condition
// is the last node of the block that tests it, and Block.Cond marks the
// branch so edge-sensitive analyses can refine facts per outcome —
// Succs[0] is the true edge, Succs[1] the false edge).
//
// Handled control flow: if/else chains, for (all three clauses), range,
// switch (including fallthrough), type switch, select, labeled break and
// continue, goto (forward and backward), defer (kept in the block as an
// ordinary node — clients model deferred execution themselves), and
// panic, which terminates its block abnormally (Block.Panic). Function
// literals are NOT inlined: a FuncLit stays embedded in the statement
// that mentions it, and clients analyze literal bodies as separate
// functions (a closure runs at call time, not where it is written, so
// splicing its body into the enclosing graph would be wrong).
//
// Two conveniences the x/tools package does not have, both for
// internal/lint/outcomeonce: a synthetic RangeBind node marks the
// per-iteration rebinding of a range loop's key/value variables at the
// top of the loop body (so the rebind is observed on the body edge only,
// never on the exit edge), and CFG.Loops records each loop's head block
// and body blocks so clients can find retreating edges.
package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Kind names the construct that created the block ("entry", "if.then",
	// "for.body", ...), for debugging and golden tests.
	Kind string
	// Nodes are the statements and condition expressions of the block, in
	// execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
	// Cond is set when the block ends with a two-way test: Succs[0] is
	// taken when Cond is true, Succs[1] when it is false. Range loop heads
	// branch without a condition expression and leave Cond nil.
	Cond ast.Expr
	// Exits marks a block that ends the function normally: it ends with a
	// return statement or falls off the end of the body.
	Exits bool
	// Panic marks a block terminated by a call to the panic builtin.
	Panic bool
}

// Loop records one for/range loop: its head (the block deciding the next
// iteration) and every block of its body, post statement included.
type Loop struct {
	Head *Block
	// Body lists the blocks executed inside the loop (the head and the
	// after-loop block are not body blocks).
	Body []*Block
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; blocks other than the entry with no predecessors are
// unreachable code.
type CFG struct {
	Blocks []*Block
	Loops  []Loop
}

// RangeBind is a synthetic node marking the per-iteration rebinding of a
// range loop's key/value variables. It is the first node of the loop body
// block, so a forward analysis sees the rebind exactly when an iteration
// starts — the loop's exit edge carries the state of the last completed
// iteration, unrebound.
type RangeBind struct {
	Range *ast.RangeStmt
}

// Pos implements ast.Node.
func (b *RangeBind) Pos() token.Pos { return b.Range.Pos() }

// End implements ast.Node.
func (b *RangeBind) End() token.Pos { return b.Range.X.End() }

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{g: &CFG{}, labels: map[string]*Block{}}
	b.cur = b.newBlock("entry")
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.Exits = true
	}
	return b.g
}

type target struct {
	label     string
	breaksTo  *Block
	continues *Block // nil for switch/select targets
}

type builder struct {
	g   *CFG
	cur *Block // nil while control cannot reach the next statement

	targets      []target
	labels       map[string]*Block // label name → its block
	pendingLabel string            // label of the labeled loop/switch being built
	nextCase     *Block            // fallthrough target while building a case body
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ensure returns the current block, starting an unreachable one if control
// cannot reach this point (code after return/panic/goto).
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	b.ensure().Nodes = append(b.ensure().Nodes, n)
}

// takeLabel consumes the pending label for the loop/switch being entered.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.BadStmt, *ast.EmptyStmt:
		// no effect on the graph
	case *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.AssignStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.ensure().Panic = true
			b.cur = nil
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.ensure().Exits = true
		b.cur = nil
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		b.add(s)
	}
}

// isPanic reports whether e is a direct call to the panic builtin.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	blk := b.labelBlock(s.Label.Name)
	if b.cur != nil {
		edge(b.cur, blk)
	}
	b.cur = blk
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = s.Label.Name
	}
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

// labelBlock returns (creating on first reference) the block a label names,
// so forward gotos can target labels not yet built.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	from := b.ensure()
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(label, false); t != nil {
			edge(from, t.breaksTo)
		}
	case token.CONTINUE:
		if t := b.findTarget(label, true); t != nil {
			edge(from, t.continues)
		}
	case token.GOTO:
		edge(from, b.labelBlock(label))
	case token.FALLTHROUGH:
		if b.nextCase != nil {
			edge(from, b.nextCase)
		}
	}
	b.cur = nil
}

// findTarget resolves a break (needsContinue=false) or continue target,
// innermost first; labeled branches match the labeled construct.
func (b *builder) findTarget(label string, needsContinue bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needsContinue && t.continues == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.ensure()
	cond.Cond = s.Cond
	then := b.newBlock("if.then")
	edge(cond, then)

	var after *Block
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock("if.else")
		edge(cond, elseB)
	} else {
		after = b.newBlock("if.after")
		edge(cond, after)
	}

	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	if after == nil && (thenEnd != nil || elseEnd != nil) {
		after = b.newBlock("if.after")
	}
	if thenEnd != nil {
		edge(thenEnd, after)
	}
	if elseEnd != nil {
		edge(elseEnd, after)
	}
	b.cur = after // nil when both arms terminated and no after exists
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	if b.cur != nil {
		edge(b.cur, head)
	}
	after := b.newBlock("for.after")
	mark := len(b.g.Blocks)

	var post *Block
	continues := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		continues = post
	}
	body := b.newBlock("for.body")

	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		edge(head, body)
		edge(head, after)
	} else {
		edge(head, body)
	}

	b.targets = append(b.targets, target{label: label, breaksTo: after, continues: continues})
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		edge(b.cur, continues)
	}
	if post != nil {
		b.cur = post
		b.add(s.Post)
		edge(post, head)
	}
	b.targets = b.targets[:len(b.targets)-1]

	b.g.Loops = append(b.g.Loops, Loop{Head: head, Body: b.g.Blocks[mark:len(b.g.Blocks):len(b.g.Blocks)]})
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s) // evaluates the range expression
	head := b.newBlock("range.head")
	if b.cur != nil {
		edge(b.cur, head)
	}
	after := b.newBlock("range.after")
	mark := len(b.g.Blocks)
	body := b.newBlock("range.body")
	edge(head, body)
	edge(head, after)

	b.targets = append(b.targets, target{label: label, breaksTo: after, continues: head})
	b.cur = body
	if s.Key != nil || s.Value != nil {
		b.add(&RangeBind{Range: s})
	}
	b.stmtList(s.Body.List)
	if b.cur != nil {
		edge(b.cur, head)
	}
	b.targets = b.targets[:len(b.targets)-1]

	b.g.Loops = append(b.g.Loops, Loop{Head: head, Body: b.g.Blocks[mark:len(b.g.Blocks):len(b.g.Blocks)]})
	b.cur = after
}

// switchStmt builds expression switches (tag != nil possible) and type
// switches (assign != nil).
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.ensure()
	after := b.newBlock("switch.after")

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		kind := "switch.case"
		if c.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		edge(head, blocks[i])
	}
	if !hasDefault {
		edge(head, after)
	}

	b.targets = append(b.targets, target{label: label, breaksTo: after})
	for i, c := range clauses {
		b.nextCase = nil
		if i+1 < len(blocks) {
			b.nextCase = blocks[i+1]
		}
		b.cur = blocks[i]
		b.add(c)
		b.stmtList(c.Body)
		if b.cur != nil {
			edge(b.cur, after)
		}
	}
	b.nextCase = nil
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.ensure()
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock("select.after")

	b.targets = append(b.targets, target{label: label, breaksTo: after})
	for _, c := range s.Body.List {
		comm := c.(*ast.CommClause)
		kind := "select.comm"
		if comm.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		edge(head, blk)
		b.cur = blk
		b.add(comm)
		b.stmtList(comm.Body)
		if b.cur != nil {
			edge(b.cur, after)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	// A select with no cases blocks forever; its head gets no other succs.
	b.cur = after
}

// Walk visits the parts of a CFG node that execute within the node's own
// block, in source order, calling fn for each (fn returning false prunes
// that subtree). This is the traversal analyzers must use on Block.Nodes
// instead of ast.Inspect: the builder stores a few composite statements
// whole (a range statement, a select head, case/comm clauses) while their
// bodies execute in other blocks — Inspect would double-count those — and
// it also knows the synthetic RangeBind node, which Inspect panics on.
// Function literals are surfaced (fn sees the *ast.FuncLit node) but
// never entered: a closure body runs at call time and is analyzed as its
// own unit.
func Walk(n ast.Node, fn func(ast.Node) bool) {
	switch n := n.(type) {
	case *RangeBind:
		fn(n)
	case *ast.RangeStmt:
		// Only the range expression is evaluated here; the body has its
		// own blocks.
		if fn(n) {
			Walk(n.X, fn)
		}
	case *ast.SelectStmt:
		// Pure branch marker; each communication lives in its comm block.
		fn(n)
	case *ast.CaseClause:
		// The guard expressions; the body statements are separate nodes
		// of the same block.
		if fn(n) {
			for _, e := range n.List {
				Walk(e, fn)
			}
		}
	case *ast.CommClause:
		// The communication itself executes when this branch is chosen;
		// the body statements are separate nodes of the same block.
		if fn(n) && n.Comm != nil {
			Walk(n.Comm, fn)
		}
	default:
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil {
				return true
			}
			if _, ok := c.(*ast.FuncLit); ok {
				// Surface the literal itself (clients may care that a
				// closure exists, e.g. to detect variable capture) but
				// never descend into its body: it runs at call time.
				fn(c)
				return false
			}
			return fn(c)
		})
	}
}

// --- rendering (debugging and golden tests) ---

// String renders the graph, one block per line:
//
//	b0 entry: assign; cond(x > 0) → b1 b2
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		for i, n := range blk.Nodes {
			if i > 0 {
				sb.WriteString(";")
			}
			sb.WriteString(" " + nodeLabel(n))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" →")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		var marks []string
		if blk.Exits {
			marks = append(marks, "exit")
		}
		if blk.Panic {
			marks = append(marks, "panic")
		}
		if len(marks) > 0 {
			fmt.Fprintf(&sb, " [%s]", strings.Join(marks, ","))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeLabel summarizes one node for String.
func nodeLabel(n ast.Node) string {
	switch n := n.(type) {
	case *RangeBind:
		return "rangebind"
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		if n.Label != nil {
			return n.Tok.String() + " " + n.Label.Name
		}
		return n.Tok.String()
	case *ast.AssignStmt:
		return "assign"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.SendStmt:
		return "send"
	case *ast.DeferStmt:
		return "defer " + callLabel(n.Call)
	case *ast.GoStmt:
		return "go " + callLabel(n.Call)
	case *ast.DeclStmt:
		return "decl"
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			return "call " + callLabel(call)
		}
		return "expr"
	case *ast.CaseClause:
		if n.List == nil {
			return "default"
		}
		return "case"
	case *ast.CommClause:
		if n.Comm == nil {
			return "default"
		}
		return "comm"
	case *ast.RangeStmt:
		return "range"
	case *ast.SelectStmt:
		return "select"
	case ast.Expr:
		return "cond(" + exprString(n) + ")"
	default:
		return strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast.")
	}
}

func callLabel(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	default:
		return "func"
	}
}

// exprString renders an expression on one line, truncated.
func exprString(e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, token.NewFileSet(), e); err != nil {
		return "?"
	}
	s := strings.Join(strings.Fields(sb.String()), " ")
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
