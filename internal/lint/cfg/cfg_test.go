package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse wraps a statement list in a function and returns its body.
func parse(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc _() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// TestGolden freezes the rendered CFG for every statement form the builder
// handles. A golden mismatch means the graph shape changed — update only
// after checking the new shape by hand.
func TestGolden(t *testing.T) {
	tests := []struct{ name, body, want string }{
		{"straightline",
			`x := 1; x++; f(x); return`, `
b0 entry: assign; incdec; call f; return [exit]
`},
		{"ifelse",
			`if x > 0 { f() } else { g() }; h()`, `
b0 entry: cond(x > 0) → b1 b2
b1 if.then: call f → b3
b2 if.else: call g → b3
b3 if.after: call h [exit]
`},
		{"ifnoelse",
			`if x > 0 { f() }; g()`, `
b0 entry: cond(x > 0) → b1 b2
b1 if.then: call f → b2
b2 if.after: call g [exit]
`},
		{"ifbotharmreturn",
			`if x > 0 { return 1 } else { return 2 }`, `
b0 entry: cond(x > 0) → b1 b2
b1 if.then: return [exit]
b2 if.else: return [exit]
`},
		{"ifinit",
			`if y := f(); y > 0 { g(y) }`, `
b0 entry: assign; cond(y > 0) → b1 b2
b1 if.then: call g → b2
b2 if.after: [exit]
`},
		{"forfull",
			`for i := 0; i < n; i++ { f(i) }; g()`, `
b0 entry: assign → b1
b1 for.head: cond(i < n) → b4 b2
b2 for.after: call g [exit]
b3 for.post: incdec → b1
b4 for.body: call f → b3
`},
		{"forcondonly",
			`for x < n { f() }`, `
b0 entry: → b1
b1 for.head: cond(x < n) → b3 b2
b2 for.after: [exit]
b3 for.body: call f → b1
`},
		{"forever",
			`for { f() }`, `
b0 entry: → b1
b1 for.head: → b3
b2 for.after: [exit]
b3 for.body: call f → b1
`},
		{"forbreakcontinue",
			`for i := 0; i < n; i++ { if i == 3 { continue }; if i == 7 { break }; f(i) }`, `
b0 entry: assign → b1
b1 for.head: cond(i < n) → b4 b2
b2 for.after: [exit]
b3 for.post: incdec → b1
b4 for.body: cond(i == 3) → b5 b6
b5 if.then: continue → b3
b6 if.after: cond(i == 7) → b7 b8
b7 if.then: break → b2
b8 if.after: call f → b3
`},
		{"rangeloop",
			`for k, v := range m { f(k, v) }; g()`, `
b0 entry: range → b1
b1 range.head: → b3 b2
b2 range.after: call g [exit]
b3 range.body: rangebind; call f → b1
`},
		{"rangenovars",
			`for range ch { f() }`, `
b0 entry: range → b1
b1 range.head: → b3 b2
b2 range.after: [exit]
b3 range.body: call f → b1
`},
		{"labeledbreakcontinue",
			`outer: for i := 0; i < n; i++ { for j := 0; j < n; j++ { if bad(i, j) { break outer }; if skip(i, j) { continue outer }; f(i, j) } }; g()`, `
b0 entry: → b1
b1 label.outer: assign → b2
b2 for.head: cond(i < n) → b5 b3
b3 for.after: call g [exit]
b4 for.post: incdec → b2
b5 for.body: assign → b6
b6 for.head: cond(j < n) → b9 b7
b7 for.after: → b4
b8 for.post: incdec → b6
b9 for.body: cond(bad(i, j)) → b10 b11
b10 if.then: break outer → b3
b11 if.after: cond(skip(i, j)) → b12 b13
b12 if.then: continue outer → b4
b13 if.after: call f → b8
`},
		{"gotobackward",
			`x := 0; loop: x++; if x < n { goto loop }; return`, `
b0 entry: assign → b1
b1 label.loop: incdec; cond(x < n) → b2 b3
b2 if.then: goto loop → b1
b3 if.after: return [exit]
`},
		{"gotoforward",
			`if x > 0 { goto done }; f(); done: g()`, `
b0 entry: cond(x > 0) → b1 b2
b1 if.then: goto done → b3
b2 if.after: call f → b3
b3 label.done: call g [exit]
`},
		{"switchfallthrough",
			`switch x { case 1: f(); case 2: g(); fallthrough; case 3: h(); default: d() }; after()`, `
b0 entry: cond(x) → b2 b3 b4 b5
b1 switch.after: call after [exit]
b2 switch.case: case; call f → b1
b3 switch.case: case; call g; fallthrough → b4
b4 switch.case: case; call h → b1
b5 switch.default: default; call d → b1
`},
		{"switchnodefault",
			`switch x { case 1: f() }; g()`, `
b0 entry: cond(x) → b2 b1
b1 switch.after: call g [exit]
b2 switch.case: case; call f → b1
`},
		{"typeswitch",
			`switch v := x.(type) { case int: f(v); case string: g(v); default: h() }`, `
b0 entry: assign → b2 b3 b4
b1 switch.after: [exit]
b2 switch.case: case; call f → b1
b3 switch.case: case; call g → b1
b4 switch.default: default; call h → b1
`},
		{"switchbreak",
			`switch { case x > 0: if y { break }; f() }; g()`, `
b0 entry: → b2 b1
b1 switch.after: call g [exit]
b2 switch.case: case; cond(y) → b3 b4
b3 if.then: break → b1
b4 if.after: call f → b1
`},
		{"selectstmt",
			`select { case v := <-ch: f(v); case out <- x: g(); default: h() }; after()`, `
b0 entry: select → b2 b3 b4
b1 select.after: call after [exit]
b2 select.comm: comm; call f → b1
b3 select.comm: comm; call g → b1
b4 select.default: default; call h → b1
`},
		{"deferinloop",
			`mu.Lock(); defer mu.Unlock(); for i := 0; i < n; i++ { defer f(i) }; return`, `
b0 entry: call Lock; defer Unlock; assign → b1
b1 for.head: cond(i < n) → b4 b2
b2 for.after: return [exit]
b3 for.post: incdec → b1
b4 for.body: defer f → b3
`},
		{"panicstmt",
			`if x < 0 { panic("neg") }; f()`, `
b0 entry: cond(x < 0) → b1 b2
b1 if.then: call panic [panic]
b2 if.after: call f [exit]
`},
		{"deadcode",
			`return; f()`, `
b0 entry: return [exit]
b1 unreachable: call f [exit]
`},
		{"goandsend",
			`go f(); ch <- 1; x := <-ch; _ = x`, `
b0 entry: go f; send; assign; assign [exit]
`},
		{"funclitnotinlined",
			`f := func() { mu.Lock(); return }; f()`, `
b0 entry: assign; call f [exit]
`},
		{"gotooutofloop",
			`for i := range xs { if xs[i] == 0 { goto fail } }; return; fail: panic("zero")`, `
b0 entry: range → b1
b1 range.head: → b3 b2
b2 range.after: return [exit]
b3 range.body: rangebind; cond(xs[i] == 0) → b4 b5
b4 if.then: goto fail → b6
b5 if.after: → b1
b6 label.fail: call panic [panic]
`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := New(parse(t, tt.body)).String()
			want := strings.TrimPrefix(tt.want, "\n")
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenBranchTargets freezes the graphs of the trickier
// control-transfer forms: labeled break out of switch and select, select
// without (and entirely without) branches, labels on plain statements,
// and gotos that form loops the structured constructs cannot — including
// an irreducible two-entry loop.
func TestGoldenBranchTargets(t *testing.T) {
	tests := []struct{ name, body, want string }{
		{"labeledswitchbreak",
			`L: switch x { case 1: if y { break L }; f(); default: g() }; h()`, `
b0 entry: → b1
b1 label.L: cond(x) → b3 b4
b2 switch.after: call h [exit]
b3 switch.case: case; cond(y) → b5 b6
b4 switch.default: default; call g → b2
b5 if.then: break L → b2
b6 if.after: call f → b2
`},
		{"labeledselectbreak",
			`L: select { case <-ch: if y { break L }; f(); default: g() }; h()`, `
b0 entry: → b1
b1 label.L: select → b3 b6
b2 select.after: call h [exit]
b3 select.comm: comm; cond(y) → b4 b5
b4 if.then: break L → b2
b5 if.after: call f → b2
b6 select.default: default; call g → b2
`},
		{"selectnodefault",
			`select { case <-a: f(); case b <- 1: g() }; h()`, `
b0 entry: select → b2 b3
b1 select.after: call h [exit]
b2 select.comm: comm; call f → b1
b3 select.comm: comm; call g → b1
`},
		{"selectempty",
			`select {}; f()`, `
b0 entry: select
b1 select.after: call f [exit]
`},
		{"labeledplainstmt",
			`x := 0; top: x++; f(); goto top`, `
b0 entry: assign → b1
b1 label.top: incdec; call f; goto top → b1
`},
		{"labeledrangecontinue",
			`outer: for k := range m { for j := 0; j < n; j++ { if bad(k, j) { continue outer } }; f(k) }; g()`, `
b0 entry: → b1
b1 label.outer: range → b2
b2 range.head: → b4 b3
b3 range.after: call g [exit]
b4 range.body: rangebind; assign → b5
b5 for.head: cond(j < n) → b8 b6
b6 for.after: call f → b2
b7 for.post: incdec → b5
b8 for.body: cond(bad(k, j)) → b9 b10
b9 if.then: continue outer → b2
b10 if.after: → b7
`},
		{"gotoirreducible",
			`a = 1; if c { goto l1 }; goto l2; l1: b = 2; goto l2; l2: d = 3; if e { goto l1 }; return`, `
b0 entry: assign; cond(c) → b1 b2
b1 if.then: goto l1 → b3
b2 if.after: goto l2 → b4
b3 label.l1: assign; goto l2 → b4
b4 label.l2: assign; cond(e) → b5 b6
b5 if.then: goto l1 → b3
b6 if.after: return [exit]
`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := New(parse(t, tt.body)).String()
			want := strings.TrimPrefix(tt.want, "\n")
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestEdgesConsistent checks the Preds/Succs invariant on a graph that
// exercises every construct at once.
func TestEdgesConsistent(t *testing.T) {
	g := New(parse(t, `
	x := 0
loop:
	for i := 0; i < n; i++ {
		switch {
		case i == 1:
			continue loop
		case i == 2:
			break loop
		default:
			select {
			case <-ch:
				goto out
			default:
			}
		}
		for range m {
			x++
		}
	}
out:
	if x > 0 {
		panic("x")
	}
	return`))
	count := func(list []*Block, b *Block) int {
		n := 0
		for _, x := range list {
			if x == b {
				n++
			}
		}
		return n
	}
	for _, b := range g.Blocks {
		if b.Index != g.Blocks[b.Index].Index {
			t.Fatalf("block index mismatch at b%d", b.Index)
		}
		for _, s := range b.Succs {
			if count(s.Preds, b) != count(b.Succs, s) {
				t.Errorf("edge b%d→b%d: succ/pred counts disagree", b.Index, s.Index)
			}
		}
	}
}

// TestLoops checks that Loops records each loop head and exactly its body
// blocks, innermost loops included.
func TestLoops(t *testing.T) {
	g := New(parse(t, `
	for i := 0; i < n; i++ {
		for k := range m {
			f(i, k)
		}
	}`))
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(g.Loops))
	}
	// Builder pushes loops on pop, so the inner range loop comes first.
	inner, outer := g.Loops[0], g.Loops[1]
	if inner.Head.Kind != "range.head" || outer.Head.Kind != "for.head" {
		t.Fatalf("loop heads: got %q and %q", inner.Head.Kind, outer.Head.Kind)
	}
	inBody := func(l Loop, kind string) bool {
		for _, b := range l.Body {
			if b.Kind == kind {
				return true
			}
		}
		return false
	}
	if !inBody(inner, "range.body") || inBody(inner, "for.body") {
		t.Errorf("inner loop body wrong: %v", kinds(inner.Body))
	}
	for _, kind := range []string{"for.body", "for.post", "range.head", "range.body"} {
		if !inBody(outer, kind) {
			t.Errorf("outer loop body missing %q: %v", kind, kinds(outer.Body))
		}
	}
	if inBody(outer, "for.after") {
		t.Errorf("outer loop body must not contain for.after: %v", kinds(outer.Body))
	}
}

func kinds(blocks []*Block) []string {
	var out []string
	for _, b := range blocks {
		out = append(out, b.Kind)
	}
	return out
}

// TestCondEdges checks the Succs[0]=true / Succs[1]=false convention on
// two-way tests, which edge-sensitive analyses rely on.
func TestCondEdges(t *testing.T) {
	g := New(parse(t, `if ok { f() } else { g() }`))
	entry := g.Blocks[0]
	if entry.Cond == nil {
		t.Fatal("entry.Cond not set")
	}
	if len(entry.Succs) != 2 {
		t.Fatalf("entry has %d succs, want 2", len(entry.Succs))
	}
	if entry.Succs[0].Kind != "if.then" || entry.Succs[1].Kind != "if.else" {
		t.Errorf("cond edge order: got %q, %q", entry.Succs[0].Kind, entry.Succs[1].Kind)
	}
	// Loop heads follow the same convention: Succs[0] enters the body.
	g = New(parse(t, `for x < n { f() }`))
	head := g.Blocks[1]
	if head.Cond == nil || head.Succs[0].Kind != "for.body" || head.Succs[1].Kind != "for.after" {
		t.Errorf("for head edges: cond=%v succs=%v", head.Cond != nil, kinds(head.Succs))
	}
}

// TestRangeBindPlacement checks the synthetic rebind node sits at the top
// of the loop body — never on the head — so the loop-exit edge carries the
// state of the last completed iteration, unrebound.
func TestRangeBindPlacement(t *testing.T) {
	g := New(parse(t, `for k := range m { f(k) }`))
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if rb, ok := n.(*RangeBind); ok {
				if b.Kind != "range.body" || i != 0 {
					t.Errorf("RangeBind at %s node %d, want range.body node 0", b.Kind, i)
				}
				if rb.Range == nil || !rb.Pos().IsValid() || !rb.End().IsValid() {
					t.Errorf("RangeBind positions invalid")
				}
				return
			}
		}
	}
	t.Fatal("no RangeBind node found")
}
