// Package loader parses Go packages for unitlint without the go/packages
// machinery (which would pull in x/tools; see internal/lint/analysis). It
// resolves `./...`-style patterns against the enclosing module, parses
// each directory into one analysis.Package, and derives import paths from
// the module path in go.mod.
package loader

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"unitdb/internal/lint/analysis"
)

// Load expands the patterns relative to dir and parses every matched
// package. Supported patterns: "./...", "./sub/...", "./sub", and plain
// relative directories. Directories named "testdata", hidden directories,
// and directories with no non-generated .go files are skipped.
func Load(dir string, patterns []string) ([]*analysis.Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, p
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := filepath.Join(dir, pat)
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("loader: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("loader: pattern %q: not a directory", pat)
		}
		if !rec {
			dirSet[base] = true
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			dirSet[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*analysis.Package
	for _, d := range dirs {
		pkg, err := ParseDir(d, importPath(root, modPath, d))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// ParseDir parses the .go files of one directory into a package with the
// given import path. It returns nil when the directory holds no Go files.
// Files from a second package name in the same directory (external test
// packages like foo_test) are folded into the same analysis.Package:
// unitlint's checks are per-file, so the distinction does not matter.
func ParseDir(dir, path string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	name := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		if name == "" || !strings.HasSuffix(f.Name.Name, "_test") {
			name = f.Name.Name
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &analysis.Package{Path: path, Name: name, Dir: dir, Fset: fset, Files: files}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if m, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(m), nil
				}
			}
			return "", "", fmt.Errorf("loader: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("loader: no go.mod above %s", abs)
		}
		d = parent
	}
}

func importPath(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
