package lockstate

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestApplyTransitions(t *testing.T) {
	tests := []struct {
		kind    OpKind
		in      PathState
		want    Mode
		problem string // substring, "" = clean
	}{
		{OpLock, PathState{Unknown, 0}, Locked, ""},
		{OpLock, PathState{Unlocked, 0}, Locked, ""},
		{OpLock, PathState{Locked, 0}, Locked, "deadlock"},
		{OpLock, PathState{RLocked, 0}, Locked, "upgrade"},
		{OpRLock, PathState{Unknown, 0}, RLocked, ""},
		{OpRLock, PathState{RLocked, 0}, RLocked, ""},
		{OpRLock, PathState{Locked, 0}, RLocked, "deadlock"},
		{OpUnlock, PathState{Locked, 0}, Unlocked, ""},
		{OpUnlock, PathState{Unknown, 0}, Unlocked, ""}, // caller's lock
		{OpUnlock, PathState{Unlocked, 0}, Unlocked, "double unlock"},
		{OpUnlock, PathState{RLocked, 0}, Unlocked, "want RUnlock"},
		{OpRUnlock, PathState{RLocked, 0}, Unlocked, ""},
		{OpRUnlock, PathState{Locked, 0}, Unlocked, "want Unlock"},
		{OpRUnlock, PathState{Unlocked, 0}, Unlocked, "double unlock"},
		{OpDeferUnlock, PathState{Locked, 0}, Locked, ""},
		{OpDeferUnlock, PathState{Locked, 1}, Locked, "defer in a loop"},
	}
	for i, tt := range tests {
		got, problem := Apply(tt.kind, "mu", tt.in)
		if got.Mode != tt.want {
			t.Errorf("#%d: Apply(%v, %v) mode = %v, want %v", i, tt.kind, tt.in, got.Mode, tt.want)
		}
		if (problem == "") != (tt.problem == "") ||
			(tt.problem != "" && !strings.Contains(problem, tt.problem)) {
			t.Errorf("#%d: Apply(%v, %v) problem = %q, want match %q", i, tt.kind, tt.in, problem, tt.problem)
		}
	}
}

func TestDeferSaturates(t *testing.T) {
	p := PathState{Locked, 0}
	for i := 0; i < 5; i++ {
		p, _ = Apply(OpDeferUnlock, "mu", p)
	}
	if p.Defers != maxDefers {
		t.Errorf("defers = %d, want saturation at %d", p.Defers, maxDefers)
	}
}

func TestAtExit(t *testing.T) {
	if got := AtExit("mu", PathState{Locked, 1}); len(got) != 0 {
		t.Errorf("lock+defer at exit: %v, want clean", got)
	}
	if got := AtExit("mu", PathState{Locked, 0}); len(got) != 1 || !strings.Contains(got[0], "still held") {
		t.Errorf("leak at exit: %v", got)
	}
	if got := AtExit("mu", PathState{Unlocked, 1}); len(got) != 1 || !strings.Contains(got[0], "already released") {
		t.Errorf("defer after explicit unlock: %v", got)
	}
	if got := AtExit("mu", PathState{Unknown, 1}); len(got) != 0 {
		t.Errorf("defer releasing caller's lock: %v, want clean", got)
	}
}

func TestJoinAndHeld(t *testing.T) {
	locked := Fact{"mu": Set(0).Add(PathState{Locked, 0})}
	// Join with a fact that never touched mu adds the Unknown state.
	j := Join(locked, Fact{}).(Fact)
	if Held(j, "mu") {
		t.Error("join with untouched path must not prove mu held")
	}
	if !Held(locked, "mu") {
		t.Error("all-Locked set must prove mu held")
	}
	both := Join(locked, Fact{"mu": Set(0).Add(PathState{RLocked, 0})}).(Fact)
	if !Held(both, "mu") {
		t.Error("Locked ∪ RLocked still proves held (read or write)")
	}
	if !locked.Equal(Fact{"mu": Set(0).Add(PathState{Locked, 0}), "other": UnknownSet}) {
		t.Error("explicit UnknownSet entry must compare equal to an absent key")
	}
}

func TestOpsSkipsOtherBlocksAndClosures(t *testing.T) {
	src := `package p
func f() {
	for _, x := range xs {
		mu.Lock()
		_ = x
	}
	go func() { mu.Lock() }()
}`
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	// The range statement node must contribute no ops (its body executes
	// in other CFG blocks), and the go statement none (closure body).
	for _, stmt := range body.List {
		if ops := Ops(stmt); len(ops) != 0 {
			t.Errorf("%T contributed ops %v, want none", stmt, ops)
		}
	}
}
