// Package lockstate is the lattice the flow-sensitive lock analyzers
// share: a per-mutex abstract state tracking whether the mutex is held
// and how many deferred unlocks are pending on the current path.
//
// A mutex is identified by its flattened selector chain as written at the
// call site ("mu", "s.mu", "in.mu") — purely syntactic, like the rest of
// unitlint, which is honest about aliasing: two spellings of the same
// mutex are two keys, and the analyzers only reason about consistent
// spellings within one function (the repo's convention everywhere).
//
// Per path, a mutex is in one Mode:
//
//	Unknown  — never touched by this function (the entry state; a
//	           *Locked-style callee may be running under its caller's
//	           lock, so Unknown answers neither "held" nor "free")
//	Unlocked — this function released it (or locked and released)
//	Locked   — held for writing
//	RLocked  — held for reading
//
// and carries a count of pending deferred unlocks (saturating at 2 — one
// is normal, two on a single path means a defer in a loop). A dataflow
// fact is a set of such PathStates per mutex (paths merge at joins), and
// "held" is a must-property: every state in the set is Locked/RLocked.
package lockstate

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
)

// Mode is the per-path lock mode.
type Mode uint8

const (
	Unknown Mode = iota
	Unlocked
	Locked
	RLocked
)

func (m Mode) String() string {
	switch m {
	case Unlocked:
		return "unlocked"
	case Locked:
		return "locked"
	case RLocked:
		return "rlocked"
	default:
		return "unknown"
	}
}

// maxDefers saturates the pending-defer count: 2 means "two or more",
// which is already a bug (only one deferred unlock can be right), so
// finer counting buys nothing and the lattice stays finite.
const maxDefers = 2

// PathState is the state of one mutex along one path.
type PathState struct {
	Mode   Mode
	Defers uint8 // pending deferred unlocks, saturating at maxDefers
}

func (p PathState) index() uint { return uint(p.Mode)*(maxDefers+1) + uint(p.Defers) }

// Set is a set of PathStates (the join of several paths), as a bitmask.
type Set uint16

// UnknownSet is the entry state of every mutex: untouched, no defers.
var UnknownSet = Set(0).Add(PathState{})

// Add returns s with p included.
func (s Set) Add(p PathState) Set { return s | 1<<p.index() }

// Has reports whether p is in s.
func (s Set) Has(p PathState) bool { return s&(1<<p.index()) != 0 }

// States lists the set's elements in a fixed order.
func (s Set) States() []PathState {
	var out []PathState
	for m := Unknown; m <= RLocked; m++ {
		for d := uint8(0); d <= maxDefers; d++ {
			if p := (PathState{m, d}); s.Has(p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// Fact maps mutex key → set of path states. An absent key means the
// mutex is untouched on every path (UnknownSet). Facts are immutable;
// Apply-style updates go through clones.
type Fact map[string]Set

// Equal implements dataflow.Fact. Absent keys compare equal to explicit
// UnknownSet entries, so transfer functions need not normalize.
func (f Fact) Equal(o dataflow.Fact) bool {
	g := o.(Fact)
	for k, v := range f {
		if g.Get(k) != v {
			return false
		}
	}
	for k, v := range g {
		if f.Get(k) != v {
			return false
		}
	}
	return true
}

// Get returns the set for key, defaulting to UnknownSet.
func (f Fact) Get(key string) Set {
	if s, ok := f[key]; ok {
		return s
	}
	return UnknownSet
}

// Clone copies the fact.
func (f Fact) Clone() Fact {
	out := make(Fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Keys lists the fact's mutex keys in sorted order.
func (f Fact) Keys() []string {
	var keys []string
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Join unions path-state sets per mutex (dataflow.Analysis.Join).
func Join(a, b dataflow.Fact) dataflow.Fact {
	fa, fb := a.(Fact), b.(Fact)
	out := fa.Clone()
	for k, v := range fb {
		out[k] = out.Get(k) | v
	}
	for k := range fa {
		if _, ok := fb[k]; !ok {
			out[k] = out[k] | UnknownSet
		}
	}
	return out
}

// Held reports whether f proves key held (read or write) on every path.
func Held(f Fact, key string) bool {
	states := f.Get(key).States()
	for _, p := range states {
		if p.Mode != Locked && p.Mode != RLocked {
			return false
		}
	}
	return len(states) > 0
}

// OpKind is a lock operation.
type OpKind uint8

const (
	OpLock OpKind = iota
	OpRLock
	OpUnlock
	OpRUnlock
	OpDeferUnlock
	OpDeferRUnlock
)

// Op is one lock operation at a position.
type Op struct {
	Kind OpKind
	Key  string // flattened mutex expression ("s.mu")
	Pos  token.Pos
}

// Flatten renders a selector chain of identifiers as a dotted key, or ""
// for anything more complex (index expressions, calls, parens).
func Flatten(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := Flatten(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	default:
		return ""
	}
}

// Ops extracts the lock operations of one CFG node in source order,
// via cfg.Walk (so nested statements that execute in other blocks, and
// function-literal bodies, are not miscounted here).
func Ops(n ast.Node) []Op {
	if d, ok := n.(*ast.DeferStmt); ok {
		if op, ok := callOp(d.Call); ok {
			switch op.Kind {
			case OpUnlock:
				op.Kind = OpDeferUnlock
			case OpRUnlock:
				op.Kind = OpDeferRUnlock
			default:
				// defer mu.Lock() — acquiring at exit is almost surely a
				// typo, but it is not this lattice's business; drop it.
				return nil
			}
			op.Pos = d.Pos()
			return []Op{op}
		}
		return nil
	}
	var ops []Op
	cfg.Walk(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if op, ok := callOp(call); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// callOp classifies call as a zero-argument mutex method call.
func callOp(call *ast.CallExpr) (Op, bool) {
	if len(call.Args) != 0 {
		return Op{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	var kind OpKind
	switch sel.Sel.Name {
	case "Lock":
		kind = OpLock
	case "RLock":
		kind = OpRLock
	case "Unlock":
		kind = OpUnlock
	case "RUnlock":
		kind = OpRUnlock
	default:
		return Op{}, false
	}
	key := Flatten(sel.X)
	if key == "" {
		return Op{}, false
	}
	return Op{Kind: kind, Key: key, Pos: call.Pos()}, true
}

// Apply computes the successor of one path state under op, plus a problem
// description ("" when the transition is clean). The same function drives
// both the pure fixpoint transfer (problems ignored) and the post-fixpoint
// reporting replay, so the two passes cannot disagree.
func Apply(kind OpKind, key string, p PathState) (PathState, string) {
	switch kind {
	case OpLock:
		switch p.Mode {
		case Locked:
			return PathState{Locked, p.Defers}, "second " + key + ".Lock() while already holding " + key + " (deadlock)"
		case RLocked:
			return PathState{Locked, p.Defers}, key + ".Lock() while holding " + key + ".RLock() (upgrade deadlocks)"
		default:
			return PathState{Locked, p.Defers}, ""
		}
	case OpRLock:
		if p.Mode == Locked {
			return PathState{RLocked, p.Defers}, key + ".RLock() while already holding " + key + ".Lock() (deadlock)"
		}
		return PathState{RLocked, p.Defers}, ""
	case OpUnlock:
		switch p.Mode {
		case Unlocked:
			return PathState{Unlocked, p.Defers}, key + ".Unlock() of an already-released mutex (double unlock)"
		case RLocked:
			return PathState{Unlocked, p.Defers}, key + ".Unlock() of a read-locked mutex (want RUnlock)"
		default:
			// Locked → clean release; Unknown → assume the caller locked
			// it (*Locked-method convention) and stay silent.
			return PathState{Unlocked, p.Defers}, ""
		}
	case OpRUnlock:
		switch p.Mode {
		case Unlocked:
			return PathState{Unlocked, p.Defers}, key + ".RUnlock() of an already-released mutex (double unlock)"
		case Locked:
			return PathState{Unlocked, p.Defers}, key + ".RUnlock() of a write-locked mutex (want Unlock)"
		default:
			return PathState{Unlocked, p.Defers}, ""
		}
	default: // OpDeferUnlock, OpDeferRUnlock
		if p.Defers >= 1 {
			d := p.Defers
			if d < maxDefers {
				d++
			}
			return PathState{p.Mode, d}, "second deferred unlock of " + key + " on the same path (defer in a loop?)"
		}
		return PathState{p.Mode, 1}, ""
	}
}

// AtExit reports the problems of one path state at a normal function
// return: pending defers fire (each releases one hold; a defer firing on
// an already-released mutex is a double unlock), and a mutex still held
// with no pending defer leaks.
func AtExit(key string, p PathState) []string {
	var problems []string
	mode := p.Mode
	for d := p.Defers; d > 0; d-- {
		if mode == Unlocked {
			problems = append(problems, "deferred unlock of "+key+" runs after "+key+" was already released (double unlock at return)")
			continue
		}
		// Locked/RLocked → released; Unknown → assume caller's lock.
		mode = Unlocked
	}
	if mode == Locked || mode == RLocked {
		problems = append(problems, key+" is still held at return (missing unlock on this path)")
	}
	return problems
}

// Transfer applies the node's lock operations to the fact, ignoring
// problems (dataflow.Analysis.Transfer — the reporting replay surfaces
// them after the fixpoint).
func Transfer(n ast.Node, f dataflow.Fact) dataflow.Fact {
	ops := Ops(n)
	if len(ops) == 0 {
		return f
	}
	fact := f.(Fact).Clone()
	for _, op := range ops {
		var next Set
		for _, p := range fact.Get(op.Key).States() {
			np, _ := Apply(op.Kind, op.Key, p)
			next = next.Add(np)
		}
		fact[op.Key] = next
	}
	return fact
}

// String renders a fact for debugging: "mu:{locked/1} s.mu:{unknown}".
func (f Fact) String() string {
	var parts []string
	for _, k := range f.Keys() {
		var ss []string
		for _, p := range f[k].States() {
			s := p.Mode.String()
			if p.Defers > 0 {
				s += "/" + string(rune('0'+p.Defers))
			}
			ss = append(ss, s)
		}
		parts = append(parts, k+":{"+strings.Join(ss, ",")+"}")
	}
	return strings.Join(parts, " ")
}
