// Package analysistest runs a unitlint analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <analyzer pkg>/testdata/src/<importpath>/ and use
// GOPATH-style layout so an analyzer that scopes itself by import path
// (detclock's core-package list, for example) sees realistic paths.
// An expectation is a trailing comment on the offending line:
//
//	time.Now() // want `wall clock`
//
// The backquoted (or double-quoted) text is a regular expression that must
// match the message of a diagnostic reported on that line. A pattern may
// carry a multiplicity prefix asserting an exact count of matching
// diagnostics at that line — devirtualized calls often report once per
// implementing type:
//
//	p.Score(x) // want 2:`acquires`
//
// Lines without a want comment must produce no diagnostics, so every
// fixture doubles as its own negative test; clean files pin the
// analyzer's false-positive behaviour.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/loader"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package (an import path below testdata/src) and
// applies the analyzer, failing t on any mismatch between reported and
// expected diagnostics.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		runOne(t, testdata, a, path)
	}
}

type expect struct {
	file string
	line int
	re   *regexp.Regexp
	want int // exact number of matching diagnostics expected
	got  int
}

var wantPatRE = regexp.MustCompile("^\\s*(?:(\\d+):)?\\s*(`([^`]*)`|\"([^\"]*)\")")

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	pkg, err := loader.ParseDir(dir, path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if pkg == nil {
		t.Fatalf("%s: no Go files in %s", path, dir)
	}

	var expects []*expect
	for _, f := range pkg.Files {
		expects = append(expects, collectWants(t, pkg.Fset, f)...)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, pkg, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", path, a.Name, err)
	}

	for _, d := range diags {
		if analysis.Suppressed(pkg, d) {
			continue
		}
		matched := false
		for _, e := range expects {
			if e.got >= e.want || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.got++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", path, d)
		}
	}
	for _, e := range expects {
		if e.got != e.want {
			t.Errorf("%s: %s:%d: expected %d diagnostic(s) matching %q, got %d",
				path, e.file, e.line, e.want, e.re, e.got)
		}
	}
}

// collectWants extracts // want expectations from one file. A want
// comment applies to the line it sits on.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expect {
	t.Helper()
	var out []*expect
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			_, rest, ok := strings.Cut(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			// A single want comment may carry several space-separated
			// patterns, one per expected diagnostic on the line; an
			// optional "N:" prefix asserts an exact count instead of 1.
			for {
				m := wantPatRE.FindStringSubmatch(rest)
				if m == nil {
					break
				}
				pat := m[3]
				if pat == "" {
					pat = m[4]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
				}
				want := 1
				if m[1] != "" {
					if want, err = strconv.Atoi(m[1]); err != nil || want < 1 {
						t.Fatalf("%s: bad want multiplicity %q", pos, m[1])
					}
				}
				out = append(out, &expect{file: pos.Filename, line: pos.Line, re: re, want: want})
				rest = rest[len(m[0]):]
			}
		}
	}
	return out
}

// Fprint renders diagnostics for debugging fixture failures.
func Fprint(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}
