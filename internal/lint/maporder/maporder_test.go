package maporder

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unitdb/internal/mofix")
}

// TestMutationSortRemoved is the seeded mutation check from the issue:
// deleting the sort.Slice that orders Registry.Snapshot's families —
// whose output the Prometheus exposition and golden tests compare
// byte-for-byte — must produce exactly one maporder finding on the real
// metrics source.
func TestMutationSortRemoved(t *testing.T) {
	src := readMetricsGo(t)
	mutated := strings.Replace(src,
		"\tsort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })\n",
		"", 1)
	if mutated == src {
		t.Fatal("mutation had no effect; did internal/obs/metrics/metrics.go change shape?")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "return value of exported Snapshot") {
		t.Errorf("finding is not an exported-return report: %s", diags[0])
	}
}

// ifaceSrc is clean: Dump sorts the keys it gets through the lister
// interface, whose only implementer (table) ranges its map field.
const ifaceSrc = `package metrics

import "sort"

type lister interface{ keys() []string }

type table struct{ m map[string]int }

func (t *table) keys() []string {
	var out []string
	for k := range t.m {
		out = append(out, k)
	}
	return out
}

func Dump(l lister) []string {
	ks := l.keys()
	sort.Strings(ks)
	return ks
}
`

// TestMutationInterfaceSortRemoved deletes Dump's sort. The taint
// reaches Dump's return only through the devirtualized l.keys() edge
// and table.keys' MapOrdered summary — before devirtualization this
// mutation was invisible.
func TestMutationInterfaceSortRemoved(t *testing.T) {
	mutated := strings.Replace(ifaceSrc, "\tsort.Strings(ks)\n", "", 1)
	if mutated == ifaceSrc {
		t.Fatal("mutation had no effect")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "return value of exported Dump") {
		t.Errorf("finding is not an exported-return report: %s", diags[0])
	}
}

// TestUnmutatedInterfaceSourceIsClean pins the baseline the interface
// mutation test depends on.
func TestUnmutatedInterfaceSourceIsClean(t *testing.T) {
	if diags := runOnSource(t, ifaceSrc); len(diags) != 0 {
		t.Fatalf("unexpected findings on clean interface source:\n%s",
			analysistest.Fprint(diags))
	}
}

// TestUnmutatedMetricsIsClean pins the baseline the mutation test
// depends on: the real file alone must produce no maporder findings.
func TestUnmutatedMetricsIsClean(t *testing.T) {
	if diags := runOnSource(t, readMetricsGo(t)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine metrics.go:\n%s",
			analysistest.Fprint(diags))
	}
}

func readMetricsGo(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "obs", "metrics", "metrics.go")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	return string(b)
}

// runOnSource applies the analyzer to one in-memory file.
func runOnSource(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "metrics.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &analysis.Package{
		Path:  "unitdb/internal/obs/metrics",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
	var diags []analysis.Diagnostic
	if err := Analyzer.Run(analysis.NewPass(Analyzer, pkg, &diags)); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !analysis.Suppressed(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
