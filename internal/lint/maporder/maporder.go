// Package maporder catches the classic Go replay-determinism bug: map
// iteration order escaping into output that must be deterministic. The
// repo's golden-replication tests compare JSON byte-for-byte, so a
// slice built by appending inside a `for k := range m` loop and emitted
// without an intervening sort is a latent flake.
//
// The taint engine lives in internal/lint/summary: range over a map
// taints the iteration variables, appends inside a map-range loop taint
// the slice, taint flows through copies, composite literals, indexing,
// and calls to in-package functions whose summary says their return
// value carries iteration order; sort.* / slices.* calls untaint.
// Binary expressions do not propagate taint (sums and comparisons over
// map values are order-independent), and writes into maps absorb it (a
// map is unordered however it was filled).
//
// Findings, at the point where order escapes:
//
//   - a channel send of a tainted value;
//   - a tainted argument to an output call (Write, WriteString,
//     WriteJSONL, Encode, Fprint*, Print*, Record, RecordDecision);
//   - a tainted return value of an exported function or method — the
//     package boundary is where deterministic order becomes part of
//     the contract. Unexported functions returning taint are not
//     findings themselves; their callers inherit the taint through the
//     function summary and are judged where it finally escapes.
package maporder

import (
	"go/ast"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/summary"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach returns, channel sends, or writes unsorted",
	Run:  run,
}

// sinkNames are call names that emit their arguments into output whose
// order the repo treats as meaningful.
var sinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteJSONL": true, "Encode": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Record": true, "RecordDecision": true,
}

func run(pass *analysis.Pass) error {
	sum := summary.Of(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := callgraph.DeclID(fd)
			exported := ast.IsExported(fd.Name.Name)
			checkUnit(pass, sum.NewTaintUnit(fn, fd.Body, nil), exported, fd.Name.Name)
			// Function literals are separate analysis units (their bodies
			// run at call time); they share the encloser's bindings but
			// never its export status — a literal's return is not a
			// package-boundary escape.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkUnit(pass, sum.NewTaintUnit(fn, lit.Body, litMapParams(lit)), false, "")
					return false
				}
				return true
			})
		}
	}
	return nil
}

// litMapParams collects a literal's map-typed parameter names.
func litMapParams(lit *ast.FuncLit) map[string]bool {
	out := map[string]bool{}
	if lit.Type.Params == nil {
		return out
	}
	for _, p := range lit.Type.Params.List {
		if _, ok := p.Type.(*ast.MapType); ok {
			for _, n := range p.Names {
				out[n.Name] = true
			}
		}
	}
	return out
}

// checkUnit replays the solved taint facts through one unit's blocks
// and reports each escape.
func checkUnit(pass *analysis.Pass, u *summary.TaintUnit, exported bool, name string) {
	for _, b := range u.CFG.Blocks {
		in := u.Result.In[b.Index]
		if in == nil && b.Index != 0 {
			continue // unreachable
		}
		f := summary.Taint{}
		if in != nil {
			f = in.(summary.Taint)
		}
		for _, node := range b.Nodes {
			checkNode(pass, u, node, f, exported, name)
			f = u.Transfer(node, f).(summary.Taint)
		}
	}
}

func checkNode(pass *analysis.Pass, u *summary.TaintUnit, node ast.Node, f summary.Taint, exported bool, name string) {
	switch n := node.(type) {
	case *ast.SendStmt:
		if u.ExprTainted(f, n.Value) {
			pass.Reportf(n.Pos(),
				"map iteration order reaches a channel send; receivers see a nondeterministic sequence (sort first)")
		}
		return
	case *ast.ReturnStmt:
		if exported {
			for _, res := range n.Results {
				if u.ExprTainted(f, res) {
					pass.Reportf(n.Pos(),
						"map iteration order reaches the return value of exported %s; sort before returning", name)
					break
				}
			}
		}
		return
	}
	// Output calls anywhere in the node. cfg.Walk handles the composite
	// statements the builder stores whole and never descends into
	// function literals (those are separate units).
	cfg.Walk(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sinkNames[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			if u.ExprTainted(f, arg) {
				pass.Reportf(call.Pos(),
					"map iteration order reaches %s; the emitted order is nondeterministic (sort first)", sel.Sel.Name)
				break
			}
		}
		return true
	})
}
