// Package mofix exercises the maporder analyzer: map-iteration order
// escaping into deterministic output — returns of exported functions,
// channel sends, output calls — without an intervening sort.
package mofix

import (
	"fmt"
	"io"
	"sort"
)

type Reg struct {
	items map[string]int
}

// Names sorts before returning: clean.
func (r *Reg) Names() []string {
	var names []string
	for name := range r.items {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Dump leaks iteration order across the exported boundary.
func (r *Reg) Dump() []string {
	var names []string
	for name := range r.items {
		names = append(names, name)
	}
	return names // want `map iteration order reaches the return value of exported Dump; sort before returning`
}

// Total folds the values into an accumulator: sums are order-independent.
func (r *Reg) Total() int {
	total := 0
	for _, v := range r.items {
		total += v
	}
	return total
}

// Stream sends keys in iteration order: every receiver sees a different
// sequence on every run.
func Stream(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `map iteration order reaches a channel send; receivers see a nondeterministic sequence \(sort first\)`
	}
}

// Emit writes the keys unsorted, then sorted: only the first escapes.
func Emit(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Fprintln(w, keys) // want `map iteration order reaches Fprintln; the emitted order is nondeterministic \(sort first\)`
	sort.Strings(keys)
	fmt.Fprintln(w, keys)
}

// keysOf is unexported: its tainted return is not a finding here —
// callers inherit the taint through the function summary instead.
func keysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Exported relays the unexported helper's taint to the package boundary.
func Exported(m map[string]int) []string {
	return keysOf(m) // want `map iteration order reaches the return value of exported Exported; sort before returning`
}

// SortedOf launders the helper's taint with an explicit sort: clean.
func SortedOf(m map[string]int) []string {
	out := keysOf(m)
	sort.Strings(out)
	return out
}

// Invert writes into a map: a map is unordered however it is filled.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// MakeDumper returns a closure; a literal's return is not a
// package-boundary escape, and the closure itself carries no taint.
func MakeDumper(m map[string]int) func() []string {
	return func() []string {
		var out []string
		for k := range m {
			out = append(out, k)
		}
		return out
	}
}
