// Package atfix exercises the atomicsafe analyzer: handle-typed fields
// (atomic.Int64 and friends), plain fields promoted to atomic by a
// sync/atomic call elsewhere in the package, and the sanctioned uses
// that must stay silent.
package atfix

import "sync/atomic"

type Stats struct {
	hits  atomic.Int64 // handle field: methods and & only
	total int64        // promoted: Bump/Load access it via sync/atomic
	plain int64        // never atomic: free to use plainly
}

// Hit uses the handle's own method: sanctioned.
func (s *Stats) Hit() { s.hits.Add(1) }

// Bump promotes total: its address reaches a sync/atomic call, so every
// other access must too.
func (s *Stats) Bump() { atomic.AddInt64(&s.total, 1) }

// Load is the sanctioned atomic read of the promoted field.
func (s *Stats) Load() int64 { return atomic.LoadInt64(&s.total) }

// Racy mixes plain access into both classes.
func (s *Stats) Racy() int64 {
	s.total++    // want `plain write to \(Stats\)\.total, accessed via sync/atomic elsewhere in this package`
	v := s.total // want `plain read of \(Stats\)\.total, accessed via sync/atomic elsewhere in this package`
	h := s.hits  // want `plain read of \(Stats\)\.hits, declared atomic\.Int64`
	_ = h
	s.plain++ // plain field: fine
	return v + s.plain
}

// Assign writes the promoted field directly.
func (s *Stats) Assign() {
	s.total = 0 // want `plain write to \(Stats\)\.total`
}

// Wrap reaches the field through one level of indirection; the same
// rules apply.
type Wrap struct{ st *Stats }

func (w *Wrap) Touch() {
	atomic.AddInt64(&w.st.total, 1) // & into a sync/atomic call: sanctioned
	w.st.total = 1                  // want `plain write to \(Stats\)\.total`
}

// share hands the handle's address on — how a helper receives an
// *atomic.Int64 — which is not a plain access.
func share(s *Stats) *atomic.Int64 { return &s.hits }

// localHandle is out of scope: atomicsafe tracks struct fields, and a
// local atomic's uses are all visible in one function anyway.
func localHandle() int64 {
	var n atomic.Int64
	n.Add(2)
	return n.Load()
}
