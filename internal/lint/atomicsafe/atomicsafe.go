// Package atomicsafe enforces all-or-nothing atomicity on struct
// fields: once a field is accessed through sync/atomic anywhere in the
// package, every access must be. Mixing `atomic.AddInt64(&s.n, 1)` in
// one function with a plain `s.n++` in another is a data race the race
// detector only catches when a run happens to interleave the two; the
// mix is visible statically.
//
// Two field classes are tracked, package-wide:
//
//   - handle fields, declared with a sync/atomic handle type
//     (atomic.Int64, atomic.Uint64, atomic.Bool, ...): the only
//     sanctioned uses are calling a method on the field (s.n.Add(1),
//     s.n.Load()) and taking its address (handing the handle to a
//     helper). Assigning, incrementing, or reading the field bare
//     copies or races the handle;
//   - pointer-call fields, plain-typed fields whose address is passed
//     to a sync/atomic function (atomic.AddInt64(&s.n, 1)) anywhere in
//     the package: every other read or write of the field must also go
//     through sync/atomic.
//
// The check is interprocedural in the same sense as the rest of the
// summary layer: classification in any function poisons plain access in
// every other, and field accesses are resolved through the callgraph's
// binding and field-type tables — receivers, parameters, locals of
// evident type, and one level of field indirection (s.inner.n) — so a
// method reached only through a devirtualized interface call is judged
// exactly like one called directly. Unresolvable expressions
// contribute nothing, in either direction: an access the syntax cannot
// pin to a field neither classifies nor violates (under-approximation,
// like the call graph itself).
package atomicsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
	"unitdb/internal/lint/summary"
)

// Analyzer is the atomicsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsafe",
	Doc:  "fields accessed via sync/atomic (or declared atomic.*) are never read or written plainly",
	Run:  run,
}

// handleTypes are the sync/atomic handle types (Go 1.19+).
var handleTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Pointer": true,
	"Uint32": true, "Uint64": true, "Uintptr": true, "Value": true,
}

// fieldKey names one struct field package-wide.
type fieldKey struct{ typ, field string }

func (k fieldKey) String() string { return fmt.Sprintf("(%s).%s", k.typ, k.field) }

type checker struct {
	pass *analysis.Pass
	g    *callgraph.Graph
	// handle maps handle fields to their declared type ("atomic.Int64").
	handle map[fieldKey]string
	// viaCalls marks plain-typed fields whose address reaches a
	// sync/atomic function call somewhere in the package.
	viaCalls map[fieldKey]token.Pos
	// sanctioned marks selector nodes that are legitimate atomic uses:
	// the receiver of a handle-field method call, the operand of & (the
	// address either feeds a sync/atomic call or hands the handle on).
	sanctioned map[*ast.SelectorExpr]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		g:          summary.Of(pass.Pkg).Graph,
		handle:     map[fieldKey]string{},
		viaCalls:   map[fieldKey]token.Pos{},
		sanctioned: map[*ast.SelectorExpr]bool{},
	}
	for typ, fields := range c.g.FieldTypes {
		for f, ft := range fields {
			if pkg, name, ok := strings.Cut(ft, "."); ok && pkg == "atomic" && handleTypes[name] {
				c.handle[fieldKey{typ, f}] = ft
			}
		}
	}
	// Classification sweep: find every &field argument of a sync/atomic
	// call. Runs before checking so use in one function governs all.
	for _, file := range pass.Pkg.Files {
		atomicNames := atomicImportNames(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.classify(callgraph.DeclID(fd), fd.Body, atomicNames)
		}
	}
	for _, file := range pass.Pkg.Files {
		atomicNames := atomicImportNames(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.check(callgraph.DeclID(fd), fd.Body, atomicNames)
		}
	}
	return nil
}

// atomicImportNames returns the file's names for sync/atomic, always
// including the default so standalone mutation fixtures work unimported.
func atomicImportNames(file *ast.File) map[string]bool {
	names := map[string]bool{"atomic": true}
	for _, n := range analysis.ImportNames(file, "sync/atomic") {
		names[n] = true
	}
	return names
}

// isAtomicCall reports whether call is atomic.Fn(...) under the file's
// import names.
func isAtomicCall(call *ast.CallExpr, atomicNames map[string]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && atomicNames[pkg.Name]
}

// fieldOf resolves a selector to the struct field it names, through the
// callgraph's binding table, with one level of field indirection.
func (c *checker) fieldOf(fn callgraph.FuncID, sel *ast.SelectorExpr) (fieldKey, bool) {
	switch x := sel.X.(type) {
	case *ast.Ident:
		if typ, ok := c.g.Bindings(fn)[x.Name]; ok {
			return fieldKey{typ, sel.Sel.Name}, true
		}
	case *ast.SelectorExpr:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			break
		}
		typ, ok := c.g.Bindings(fn)[base.Name]
		if !ok {
			break
		}
		ft, ok := c.g.FieldTypes[typ][x.Sel.Name]
		if ok && !strings.Contains(ft, ".") {
			return fieldKey{ft, sel.Sel.Name}, true
		}
	}
	return fieldKey{}, false
}

// classify records fields whose address feeds a sync/atomic call.
func (c *checker) classify(fn callgraph.FuncID, body *ast.BlockStmt, atomicNames map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(call, atomicNames) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if key, ok := c.fieldOf(fn, sel); ok {
				if _, handled := c.handle[key]; !handled {
					if _, seen := c.viaCalls[key]; !seen {
						c.viaCalls[key] = sel.Pos()
					}
				}
			}
		}
		return true
	})
}

// classified reports whether key is atomic, with a description of why.
func (c *checker) classified(key fieldKey) (string, bool) {
	if ft, ok := c.handle[key]; ok {
		return "declared " + ft, true
	}
	if _, ok := c.viaCalls[key]; ok {
		return "accessed via sync/atomic elsewhere in this package", true
	}
	return "", false
}

// check walks one function body: first sanctioning the atomic-shaped
// uses, then reporting every remaining access to a classified field.
func (c *checker) check(fn callgraph.FuncID, body *ast.BlockStmt, atomicNames map[string]bool) {
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAtomicCall(n, atomicNames) {
				for _, arg := range n.Args {
					if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
						if sel, ok := un.X.(*ast.SelectorExpr); ok {
							c.sanctioned[sel] = true
						}
					}
				}
				return true
			}
			// A method call whose receiver is a handle field: s.n.Add(1).
			if fun, ok := n.Fun.(*ast.SelectorExpr); ok {
				if recv, ok := fun.X.(*ast.SelectorExpr); ok {
					if key, ok := c.fieldOf(fn, recv); ok {
						if _, isHandle := c.handle[key]; isHandle {
							c.sanctioned[recv] = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			// &s.n hands the field's address on; for handle fields that is
			// the normal way to share the handle, for pointer-call fields
			// the pointee's further use is beyond syntax. Either way, not
			// a plain access.
			if n.Op == token.AND {
				if sel, ok := n.X.(*ast.SelectorExpr); ok {
					c.sanctioned[sel] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || c.sanctioned[sel] {
			return true
		}
		key, ok := c.fieldOf(fn, sel)
		if !ok {
			return true
		}
		why, atomic := c.classified(key)
		if !atomic {
			return true
		}
		verb := "read of"
		if writes[sel] {
			verb = "write to"
		}
		c.pass.Reportf(sel.Pos(),
			"plain %s %s, %s (racy mix of atomic and plain access)",
			verb, key, why)
		// The field selector was judged; don't descend and re-judge its
		// base as an access of its own.
		return false
	})
}
