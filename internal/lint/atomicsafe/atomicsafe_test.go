package atomicsafe

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unitdb/internal/atfix")
}

// TestMutationPlainIncrement is the seeded mutation check: replacing
// Counter.Inc's atomic Add with a plain increment — the exact slip a
// refactor away from sync/atomic would make — must produce exactly one
// finding on the real metrics source.
func TestMutationPlainIncrement(t *testing.T) {
	src := readMetricsGo(t)
	mutated := strings.Replace(src,
		"func (c *Counter) Inc() { c.v.Add(1) }",
		"func (c *Counter) Inc() { c.v++ }", 1)
	if mutated == src {
		t.Fatal("mutation had no effect; did internal/obs/metrics/metrics.go change shape?")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "plain write to (Counter).v, declared atomic.Int64") {
		t.Errorf("finding does not name the racy field: %s", diags[0])
	}
}

// TestUnmutatedMetricsIsClean pins the baseline the mutation test
// depends on: the real file alone must produce no atomicsafe findings.
func TestUnmutatedMetricsIsClean(t *testing.T) {
	if diags := runOnSource(t, readMetricsGo(t)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine metrics.go:\n%s",
			analysistest.Fprint(diags))
	}
}

func readMetricsGo(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "obs", "metrics", "metrics.go")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	return string(b)
}

// runOnSource applies the analyzer to one in-memory file.
func runOnSource(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "metrics.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &analysis.Package{
		Path:  "unitdb/internal/obs/metrics",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
	var diags []analysis.Diagnostic
	if err := Analyzer.Run(analysis.NewPass(Analyzer, pkg, &diags)); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !analysis.Suppressed(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
