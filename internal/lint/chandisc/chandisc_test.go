package chandisc

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unitdb/internal/chfix")
}

// TestMutationDoubleClose is the seeded mutation check: duplicating the
// close(s.stopCh) in Server.Close — the kind of slip a merge conflict
// resolution produces — must yield exactly one double-close finding on
// the real server source. Both closes sit in the annotated owner, so
// the ownership rule stays quiet and the path rule alone catches it.
func TestMutationDoubleClose(t *testing.T) {
	src := readServerGo(t)
	mutated := strings.Replace(src,
		"\tclose(s.stopCh)\n",
		"\tclose(s.stopCh)\n\tclose(s.stopCh)\n", 1)
	if mutated == src {
		t.Fatal("mutation had no effect; did internal/server/server.go change shape?")
	}

	diags := runOnSource(t, mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "may follow an earlier close on this path") {
		t.Errorf("finding is not a double-close report: %s", diags[0])
	}
}

// TestUnmutatedServerIsClean pins the baseline the mutation test depends
// on: the real file alone must produce no chandisc findings.
func TestUnmutatedServerIsClean(t *testing.T) {
	if diags := runOnSource(t, readServerGo(t)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine server.go:\n%s",
			analysistest.Fprint(diags))
	}
}

func readServerGo(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "server", "server.go")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	return string(b)
}

// runOnSource applies the analyzer to one in-memory file.
func runOnSource(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "server.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &analysis.Package{
		Path:  "unitdb/internal/server",
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
	var diags []analysis.Diagnostic
	if err := Analyzer.Run(analysis.NewPass(Analyzer, pkg, &diags)); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !analysis.Suppressed(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
