// Package chandisc checks channel close discipline. Closing is the
// dangerous half of a channel's life: a second close panics, a send on
// a closed channel panics, and both failures happen at the victim, far
// from the goroutine that closed too early. Two layers of checking:
//
//   - ownership: the '// owned by <method>' annotation, extended from
//     the owned analyzer to channel-typed fields, names the one method
//     allowed to close the channel:
//
//     stopCh chan struct{} // owned by Close
//
//     A close of an annotated channel field anywhere but the owner's
//     own body — another function, or a go statement's function literal
//     even inside the owner — is a finding. Sends and receives are not
//     restricted: receiving from a quit channel inside the goroutines
//     it stops is the entire point of the pattern.
//
//   - per-path close state, for every channel spelled consistently
//     within a function (annotated or not): a flow-sensitive may-closed
//     fact over the CFG flags a close that may follow another close
//     (double close) and a send that may follow a close (send on closed
//     channel). Function literals are separate analysis units — their
//     bodies run at call time, not inline. Deferred closes are judged
//     lexically instead: two deferred closes of the same channel, or a
//     deferred close alongside a plain close, both panic at return.
//
// Like the rest of the suite this under-approximates: channels reached
// through expressions the syntax cannot name (map lookups, calls,
// channels of channels) are invisible, and a close the analysis cannot
// see never counts against a later send.
package chandisc

import (
	"go/ast"
	"go/token"
	"sort"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/callgraph"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
	"unitdb/internal/lint/lockstate"
	"unitdb/internal/lint/owned"
	"unitdb/internal/lint/summary"
)

// Analyzer is the chandisc pass.
var Analyzer = &analysis.Analyzer{
	Name: "chandisc",
	Doc:  "channel close discipline: only the '// owned by' owner closes; no double close; no send after close",
	Run:  run,
}

// ChanOwners maps struct type → channel field name → owning method.
type ChanOwners map[string]map[string]string

// CollectChanOwners finds '// owned by' annotated channel-typed fields
// (the complement of owned.CollectOwned, which skips them).
func CollectChanOwners(files []*ast.File) ChanOwners {
	o := ChanOwners{}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, isChan := field.Type.(*ast.ChanType); !isChan {
					continue
				}
				owner := owned.OwnerAnnotation(field)
				if owner == "" {
					continue
				}
				m := o[ts.Name.Name]
				if m == nil {
					m = map[string]string{}
					o[ts.Name.Name] = m
				}
				for _, name := range field.Names {
					m[name.Name] = owner
				}
			}
			return true
		})
	}
	return o
}

type checker struct {
	pass   *analysis.Pass
	g      *callgraph.Graph
	owners ChanOwners
	seen   map[string]bool // finding dedupe across merged paths
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:   pass,
		g:      summary.Of(pass.Pkg).Graph,
		owners: CollectChanOwners(pass.Pkg.Files),
		seen:   map[string]bool{},
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := callgraph.DeclID(fd)
			c.checkOwnership(fn, fd)
			c.checkUnit(fn, fd.Body)
			c.checkDefers(fn, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkUnit(fn, lit.Body)
					c.checkDefers(fn, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// closeTarget returns the operand of a close(...) call, or nil.
func closeTarget(n ast.Node) ast.Expr {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
		return call.Args[0]
	}
	return nil
}

// fieldOwner resolves expr to an annotated channel field, returning the
// owning method's FuncID and the field's display name.
func (c *checker) fieldOwner(fn callgraph.FuncID, e ast.Expr) (callgraph.FuncID, string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	typ, ok := c.g.Bindings(fn)[base.Name]
	if !ok {
		return "", "", false
	}
	owner, ok := c.owners[typ][sel.Sel.Name]
	if !ok {
		return "", "", false
	}
	return callgraph.MethodID(typ, owner), "(" + typ + ")." + sel.Sel.Name, true
}

// checkOwnership walks fd lexically: a close of an annotated channel
// belongs in the owner's plain body and nowhere else.
func (c *checker) checkOwnership(fn callgraph.FuncID, fd *ast.FuncDecl) {
	var walk func(n ast.Node, inSpawnedLit bool)
	walk = func(n ast.Node, inSpawnedLit bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.GoStmt:
				if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
					return false
				}
				return true
			case *ast.FuncLit:
				walk(node.Body, inSpawnedLit)
				return false
			case *ast.CallExpr:
				target := closeTarget(node)
				if target == nil {
					return true
				}
				ownerID, name, ok := c.fieldOwner(fn, target)
				if !ok {
					return true
				}
				if inSpawnedLit {
					c.report(node.Pos(),
						name+" is closed inside a go statement's function literal, but only its owner "+
							string(ownerID)+" may close it")
					return true
				}
				if fn != ownerID {
					c.report(node.Pos(),
						name+" is closed in "+string(fn)+", but only its owner "+
							string(ownerID)+" may close it")
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// chanKey names a channel expression within one function: the flattened
// selector chain as written ("ch", "s.stopCh"), like lockstate mutex
// keys — honest about aliasing, consistent spelling assumed.
func chanKey(e ast.Expr) string { return lockstate.Flatten(e) }

// fact maps channel key → may-closed on some path into this point.
type fact map[string]bool

func (f fact) Equal(o dataflow.Fact) bool {
	g := o.(fact)
	if len(f) != len(g) {
		return false
	}
	for k, v := range f {
		if g[k] != v {
			return false
		}
	}
	return true
}

func (f fact) clone() fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func join(a, b dataflow.Fact) dataflow.Fact {
	fa, fb := a.(fact), b.(fact)
	out := fa.clone()
	for k, v := range fb {
		out[k] = out[k] || v
	}
	return out
}

// nodeCloses lists the channel keys closed by one CFG node, in source
// order, skipping deferred closes (they run at return) and function
// literals and go statements (separate execution contexts).
func nodeCloses(n ast.Node) []struct {
	key string
	pos token.Pos
} {
	var out []struct {
		key string
		pos token.Pos
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		return nil
	}
	cfg.Walk(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.GoStmt); ok {
			return false
		}
		if target := closeTarget(c); target != nil {
			if key := chanKey(target); key != "" {
				out = append(out, struct {
					key string
					pos token.Pos
				}{key, c.Pos()})
			}
		}
		return true
	})
	return out
}

func transfer(n ast.Node, f dataflow.Fact) dataflow.Fact {
	closes := nodeCloses(n)
	if len(closes) == 0 {
		return f
	}
	out := f.(fact).clone()
	for _, cl := range closes {
		out[cl.key] = true
	}
	return out
}

// checkUnit solves may-closed over one body and replays it, reporting
// double closes and sends after a close.
func (c *checker) checkUnit(fn callgraph.FuncID, body *ast.BlockStmt) {
	g := cfg.New(body)
	res := dataflow.Solve(g, &dataflow.Analysis{
		Entry:    fact{},
		Join:     join,
		Transfer: transfer,
	})
	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil && b.Index != 0 {
			continue // unreachable
		}
		f := fact{}
		if in != nil {
			f = in.(fact)
		}
		for _, node := range b.Nodes {
			c.checkNode(node, f)
			f = transfer(node, f).(fact)
		}
	}
}

func (c *checker) checkNode(node ast.Node, f fact) {
	if send, ok := node.(*ast.SendStmt); ok {
		if key := chanKey(send.Chan); key != "" && f[key] {
			c.report(send.Pos(),
				"send on "+key+" is reachable after close("+key+") (send on closed channel panics)")
		}
		return
	}
	for _, cl := range nodeCloses(node) {
		if f[cl.key] {
			c.report(cl.pos,
				"close("+cl.key+") may follow an earlier close on this path (double close panics)")
		}
		f = f.clone()
		f[cl.key] = true
	}
}

// checkDefers judges deferred closes lexically within one body (not
// descending into nested literals): two deferred closes of one channel,
// or a deferred close alongside any plain close, double-close at return.
func (c *checker) checkDefers(fn callgraph.FuncID, body *ast.BlockStmt) {
	deferred := map[string]token.Pos{}
	plain := map[string]bool{}
	var order []string
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if target := closeTarget(node.Call); target != nil {
					if key := chanKey(target); key != "" {
						if p, ok := deferred[key]; ok {
							c.report(node.Pos(),
								"second deferred close("+key+") in one function (double close at return); first at "+
									c.pass.Pkg.Fset.Position(p).String())
						} else {
							deferred[key] = node.Pos()
							order = append(order, key)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if target := closeTarget(node); target != nil {
					if key := chanKey(target); key != "" {
						plain[key] = true
					}
				}
			}
			return true
		})
	}
	visit(body)
	sort.Strings(order)
	for _, key := range order {
		if plain[key] {
			c.report(deferred[key],
				"deferred close("+key+") alongside a plain close in the same function (double close at return)")
		}
	}
}

func (c *checker) report(pos token.Pos, msg string) {
	key := c.pass.Pkg.Fset.Position(pos).String() + "|" + msg
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}
