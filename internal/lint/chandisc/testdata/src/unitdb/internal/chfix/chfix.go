// Package chfix exercises the chandisc analyzer: channel close
// ownership via '// owned by', double close and send-after-close over
// CFG paths, deferred-close accounting, and the clean patterns that
// must stay silent.
package chfix

type Worker struct {
	quit chan struct{} // owned by Stop
	out  chan int
}

// Stop is the annotated owner: its close is the sanctioned one.
func (w *Worker) Stop() {
	close(w.quit)
}

// Restart closes a channel it does not own.
func (w *Worker) Restart() {
	close(w.quit) // want `\(Worker\)\.quit is closed in Worker\.Restart, but only its owner Worker\.Stop may close it`
	w.quit = make(chan struct{})
}

// StopAsync closes from a spawned goroutine — even the owner may not do
// that: the close must happen on the owner's own goroutine.
func (w *Worker) StopAsync() {
	go func() {
		close(w.quit) // want `\(Worker\)\.quit is closed inside a go statement's function literal`
	}()
}

// loop receives from the quit channel inside the goroutine it stops:
// the normal pattern, never a finding.
func (w *Worker) loop() {
	for {
		select {
		case <-w.quit:
			return
		case v := <-w.out:
			_ = v
		}
	}
}

func doubleClose(ch chan int) {
	close(ch)
	close(ch) // want `close\(ch\) may follow an earlier close on this path \(double close panics\)`
}

func sendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want `send on ch is reachable after close\(ch\) \(send on closed channel panics\)`
}

// branchClose closes on each arm but never twice on one path: clean.
func branchClose(ch chan int, b bool) {
	if b {
		close(ch)
	} else {
		close(ch)
	}
}

// sendThenClose is the correct order: clean.
func sendThenClose(ch chan int) {
	ch <- 1
	close(ch)
}

func deferredTwice(ch chan int) {
	defer close(ch)
	defer close(ch) // want `second deferred close\(ch\) in one function \(double close at return\)`
}

func deferredPlusPlain(ch chan int) {
	defer close(ch) // want `deferred close\(ch\) alongside a plain close in the same function \(double close at return\)`
	close(ch)
}

// closeInLiteral: the literal is its own unit; one close per unit is
// clean even though the enclosing function also closes its own channel.
func closeInLiteral() func() {
	done := make(chan struct{})
	f := func() { close(done) }
	return f
}
