package outcomeonce

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unitdb/internal/engine")
}

// TestMutationFinalizeRemoved is the seeded mutation check from the
// issue: deleting the finalizeQuery call in Engine.completeQuery leaves
// the committed query's outcome unrecorded on every path, and must
// produce exactly one outcomeonce finding on the real file.
func TestMutationFinalizeRemoved(t *testing.T) {
	src := readEngineGo(t)
	mutated := strings.Replace(src, "\te.finalizeQuery(q, outcome)\n", "", 1)
	if mutated == src {
		t.Fatal("mutation had no effect; did internal/engine/engine.go change shape?")
	}

	diags := runOnSource(t, "engine.go", mutated)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%s",
			len(diags), analysistest.Fprint(diags))
	}
	if !strings.Contains(diags[0].Message, "q may reach this return with its outcome unrecorded") {
		t.Errorf("finding is not the dropped outcome: %s", diags[0])
	}
}

// TestUnmutatedEngineIsClean pins the baseline the mutation test depends
// on: the real engine file alone must produce no outcomeonce findings.
func TestUnmutatedEngineIsClean(t *testing.T) {
	if diags := runOnSource(t, "engine.go", readEngineGo(t)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine engine.go:\n%s",
			analysistest.Fprint(diags))
	}
}

// TestUnmutatedServerIsClean does the same for the live server, whose
// worker loop, context cancellation, and drain-on-close paths exercise
// the loop and hand-off rules far harder than the engine does. The one
// intentional escape (a canceled query's transaction) is suppressed in
// the source with a scoped, reasoned ignore.
func TestUnmutatedServerIsClean(t *testing.T) {
	path := filepath.Join("..", "..", "server", "server.go")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	if diags := runOnSource(t, "server.go", string(b)); len(diags) != 0 {
		t.Fatalf("unexpected findings on pristine server.go:\n%s",
			analysistest.Fprint(diags))
	}
}

func readEngineGo(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "engine", "engine.go"))
	if err != nil {
		t.Fatalf("reading real source: %v", err)
	}
	return string(b)
}

func runOnSource(t *testing.T, name, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &analysis.Package{
		Path:  "unitdb/internal/" + strings.TrimSuffix(name, ".go"),
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
	}
	var diags []analysis.Diagnostic
	if err := Analyzer.Run(analysis.NewPass(Analyzer, pkg, &diags)); err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !analysis.Suppressed(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
