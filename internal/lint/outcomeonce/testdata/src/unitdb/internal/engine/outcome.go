// Fixture for outcomeonce: a miniature of the engine's query lifecycle.
// Clean functions pin the hand-off and guard conventions; want-lines pin
// the conservation violations.
package engine

type Outcome int

const (
	OutcomePending Outcome = iota
	OutcomeSuccess
	OutcomeRejected
	OutcomeDMF
)

type Txn struct {
	Outcome  Outcome
	Deadline float64
}

type queue struct{ items []*Txn }

func (q *queue) Push(t *Txn) { q.items = append(q.items, t) }

type box struct{ t *Txn }

type Engine struct {
	ready     queue
	finalized int
}

// The sink itself: the guard resolves the non-pending path, the write
// records the outcome on the pending one.
//
//unitlint:outcome q
func (e *Engine) finalizeQuery(q *Txn, o Outcome) {
	if q.Outcome != OutcomePending {
		panic("double finalize")
	}
	q.Outcome = o
	e.finalized++
}

// Clean: every branch finalizes or hands off to the ready queue.
//
//unitlint:outcome q
func (e *Engine) present(q *Txn, admit bool) {
	if admit {
		e.ready.Push(q)
		return
	}
	e.finalizeQuery(q, OutcomeRejected)
}

// One branch forgets: the fall-through path still owes an outcome.
//
//unitlint:outcome q
func (e *Engine) droppy(q *Txn, ok bool) {
	if ok {
		e.finalizeQuery(q, OutcomeSuccess)
	}
	return // want `q may reach this return with its outcome unrecorded`
}

// The unconditional finalize can be the second one.
//
//unitlint:outcome q
func (e *Engine) twice(q *Txn, miss bool) {
	if miss {
		e.finalizeQuery(q, OutcomeDMF)
	}
	e.finalizeQuery(q, OutcomeSuccess) // want `q may already have a recorded outcome`
}

// The != Pending guard resolves the early return.
//
//unitlint:outcome q
func (e *Engine) deadline(q *Txn) {
	if q.Outcome != OutcomePending {
		return
	}
	e.finalizeQuery(q, OutcomeDMF)
}

// The == Pending guard, opposite polarity: the else-path is resolved.
//
//unitlint:outcome q
func (e *Engine) retryIfPending(q *Txn) {
	if q.Outcome == OutcomePending {
		e.finalizeQuery(q, OutcomeSuccess)
	}
}

// Resetting to Pending re-arms the obligation; the second finalize is
// therefore not a double.
//
//unitlint:outcome q
func (e *Engine) rearm(q *Txn) {
	e.finalizeQuery(q, OutcomeDMF)
	q.Outcome = OutcomePending
	e.finalizeQuery(q, OutcomeSuccess)
}

// Hand-off via composite literal: the box owns the transaction now.
//
//unitlint:outcome t
func (e *Engine) stash(t *Txn) *box {
	return &box{t: t}
}

// Hand-off via closure capture: the scheduled callback owns it.
//
//unitlint:outcome q
func (e *Engine) schedule(q *Txn, at func(func())) {
	at(func() { e.finalizeQuery(q, OutcomeDMF) })
}

// Loop rebinding: each iteration's t is settled before the back edge,
// and the loop exit carries no stale state.
//
//unitlint:outcome t
func (e *Engine) drain(pending []*Txn) {
	for _, t := range pending {
		e.finalizeQuery(t, OutcomeDMF)
	}
}

// Loop hand-off is just as good.
//
//unitlint:outcome t
func (e *Engine) requeueAll(pending []*Txn) {
	for _, t := range pending {
		e.ready.Push(t)
	}
}

// A skipped iteration reaches the back edge still live.
//
//unitlint:outcome t
func (e *Engine) leakyDrain(pending []*Txn, skip func(*Txn) bool) {
	for _, t := range pending {
		if skip(t) {
			continue // want `t may finish this loop iteration with its outcome unrecorded`
		}
		e.finalizeQuery(t, OutcomeDMF)
	}
}

// A dotted key: the obligation attaches to b.t, rebound with b.
//
//unitlint:outcome b.t
func (e *Engine) drainBoxes(boxes []*box) {
	for _, b := range boxes {
		e.finalizeQuery(b.t, OutcomeDMF)
	}
}

// Finalizing without declaring ownership: the law cannot be checked, so
// the missing directive is itself a finding.
func (e *Engine) sneaky(q *Txn) {
	e.finalizeQuery(q, OutcomeDMF) // want `sneaky records a transaction outcome but has no //unitlint:outcome directive`
}

// A direct Outcome write without a directive is the same hole.
func (e *Engine) sneakyWrite(q *Txn) {
	q.Outcome = OutcomeDMF // want `sneakyWrite records a transaction outcome but has no //unitlint:outcome directive`
}

// Reading Outcome, or writing Pending, records nothing — no directive
// needed.
func (e *Engine) observer(q *Txn) bool {
	q.Outcome = OutcomePending
	return q.Outcome == OutcomePending
}
