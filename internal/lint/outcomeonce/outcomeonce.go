// Package outcomeonce enforces the USM conservation law from the paper:
// every admitted query ends in exactly one terminal outcome (success,
// rejected, DMF, or DSF). The engine and server uphold that law through a
// handful of finalize functions; this analyzer proves, per function, that
// every control-flow path either records exactly one outcome for the
// transaction it owns or provably hands ownership off.
//
// Ownership is declared with a directive in the function's doc comment:
//
//	//unitlint:outcome q
//
// names the expression (a dotted identifier chain: q, tx, q.tx) whose
// transaction this function must resolve. The analyzer then runs a
// forward dataflow over the function's CFG with a per-key state set:
//
//	live     — bound on this path and still owing exactly one outcome
//	final    — an outcome was recorded on this path
//	kept     — ownership was handed off (pushed to a queue, stored in a
//	           composite literal, or captured by a closure)
//	resolved — an Outcome guard proved someone else already finalized it
//
// Recording an outcome means calling a finalize*-named function with the
// key as first argument, or assigning a non-Pending value to
// <key>.Outcome. Assigning OutcomePending re-arms the obligation.
// Conditions of the form <key>.Outcome ==/!= ...OutcomePending refine the
// state edge-sensitively: the pending edge owes an outcome, the other
// edge is resolved. Rebinding the key's base identifier (assignment or a
// range clause) starts a fresh obligation, and a loop that rebinds per
// iteration must settle each binding before the back edge.
//
// Findings: a path reaching return with the key live (dropped outcome), a
// loop iteration ending with the key live (dropped in a worker loop), a
// finalize on a possibly-already-final state (double finalize), and — so
// new finalize call sites cannot dodge the law — any function that
// records outcomes without carrying a directive. Test files are exempt;
// tests drive internals deliberately.
package outcomeonce

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"unitdb/internal/lint/analysis"
	"unitdb/internal/lint/cfg"
	"unitdb/internal/lint/dataflow"
	"unitdb/internal/lint/lockstate"
)

// Analyzer is the outcomeonce pass.
var Analyzer = &analysis.Analyzer{
	Name: "outcomeonce",
	Doc:  "every path records exactly one terminal transaction outcome or hands the transaction off",
	Run:  run,
}

const directive = "//unitlint:outcome"

// Per-key path states. A key absent from the fact is unbound.
const (
	live     uint8 = 1 << iota // owes exactly one outcome
	final                      // outcome recorded
	kept                       // ownership handed off
	resolved                   // proven finalized elsewhere
)

// fact maps tracked key → set of path states (bitmask). Implements
// dataflow.Fact. An absent key and a zero set are equivalent.
type fact map[string]uint8

func (f fact) Equal(other dataflow.Fact) bool {
	o, ok := other.(fact)
	if !ok {
		return false
	}
	for k, v := range f {
		if o[k] != v {
			return false
		}
	}
	for k, v := range o {
		if f[k] != v {
			return false
		}
	}
	return true
}

func (f fact) clone() fact {
	c := make(fact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func join(a, b dataflow.Fact) dataflow.Fact {
	fa, fb := a.(fact), b.(fact)
	out := fa.clone()
	for k, v := range fb {
		out[k] |= v
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			keys := directives(fd)
			if len(keys) == 0 {
				if pos, found := findsFinalize(fd.Body); found {
					pass.Reportf(pos,
						"%s records a transaction outcome but has no %s directive naming the transaction it resolves",
						fd.Name.Name, directive)
				}
				continue
			}
			checkFunc(pass, fd, keys)
		}
	}
	return nil
}

// directives returns the keys named by //unitlint:outcome lines in the
// function's doc comment.
func directives(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var keys []string
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, directive) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, directive))
		if rest != "" {
			keys = append(keys, strings.Fields(rest)[0])
		}
	}
	return keys
}

// findsFinalize scans a body (closures included) for an outcome-recording
// operation: a finalize*-named call or a non-Pending assignment to an
// .Outcome field. Returns the first one's position.
func findsFinalize(body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if strings.HasPrefix(calleeName(n), "finalize") {
				pos = n.Pos()
				return false
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Outcome" || i >= len(n.Rhs) {
					continue
				}
				if !strings.HasSuffix(lockstate.Flatten(n.Rhs[i]), "OutcomePending") {
					pos = n.Pos()
					return false
				}
			}
		}
		return true
	})
	return pos, pos != token.NoPos
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// loopInfo describes one CFG loop for retreating-edge handling.
type loopInfo struct {
	body  map[int]bool    // block indices inside the loop
	kills map[string]bool // tracked keys rebound inside the body
}

// checker carries the per-function analysis state.
type checker struct {
	pass  *analysis.Pass
	fd    *ast.FuncDecl
	keys  []string          // tracked keys (dotted chains)
	base  map[string]string // key → base identifier
	loops map[*cfg.Block]*loopInfo
	seen  map[string]bool // report dedupe
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, keys []string) {
	c := &checker{
		pass: pass,
		fd:   fd,
		keys: keys,
		base: make(map[string]string, len(keys)),
		seen: map[string]bool{},
	}
	for _, k := range keys {
		c.base[k] = k
		if i := strings.IndexByte(k, '.'); i >= 0 {
			c.base[k] = k[:i]
		}
	}

	g := cfg.New(fd.Body)
	c.loops = make(map[*cfg.Block]*loopInfo, len(g.Loops))
	for _, l := range g.Loops {
		li := &loopInfo{body: map[int]bool{}, kills: map[string]bool{}}
		for _, b := range l.Body {
			li.body[b.Index] = true
			for _, node := range b.Nodes {
				for _, k := range keys {
					if c.killsBase(node, c.base[k]) {
						li.kills[k] = true
					}
				}
			}
		}
		c.loops[l.Head] = li
	}

	entry := fact{}
	params := map[string]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			params[name.Name] = true
		}
	}
	for _, k := range keys {
		if params[c.base[k]] {
			entry[k] = live
		}
	}

	res := dataflow.Solve(g, &dataflow.Analysis{
		Entry: entry,
		Join:  join,
		Transfer: func(n ast.Node, f dataflow.Fact) dataflow.Fact {
			return c.apply(n, f.(fact).clone(), nil)
		},
		EdgeTransfer: func(from *cfg.Block, succIdx int, f dataflow.Fact) dataflow.Fact {
			return c.edge(from, succIdx, f.(fact))
		},
	})

	// Replay reachable blocks to place double-finalize reports.
	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil {
			if b.Index != 0 {
				continue
			}
			in = entry
		}
		f := in.(fact).clone()
		for _, node := range b.Nodes {
			f = c.apply(node, f, func(pos token.Pos, key string) {
				c.report(pos, "%s may already have a recorded outcome here (outcome recorded twice on some path)", key)
			})
		}
	}

	// A path reaching return with a key still live dropped its outcome.
	for _, b := range g.Blocks {
		if !b.Exits || b.Panic || res.Out[b.Index] == nil {
			continue
		}
		out := res.Out[b.Index].(fact)
		for _, k := range keys {
			if out[k]&live != 0 {
				c.report(c.exitPos(b), "%s may reach this return with its outcome unrecorded (record exactly one outcome or hand the transaction off)", k)
			}
		}
	}

	// A back edge carrying live for a key the loop rebinds per iteration
	// means one iteration finished without settling its binding.
	for _, l := range g.Loops {
		li := c.loops[l.Head]
		for _, b := range l.Body {
			if res.Out[b.Index] == nil || !hasSucc(b, l.Head) {
				continue
			}
			out := res.Out[b.Index].(fact)
			for _, k := range keys {
				if li.kills[k] && out[k]&live != 0 {
					c.report(c.lastPos(b, l), "%s may finish this loop iteration with its outcome unrecorded", k)
				}
			}
		}
	}
}

func hasSucc(b, target *cfg.Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}

func (c *checker) exitPos(b *cfg.Block) token.Pos {
	if n := len(b.Nodes); n > 0 {
		if ret, ok := b.Nodes[n-1].(*ast.ReturnStmt); ok {
			return ret.Pos()
		}
	}
	return c.fd.Body.Rbrace
}

func (c *checker) lastPos(b *cfg.Block, l cfg.Loop) token.Pos {
	if n := len(b.Nodes); n > 0 {
		return b.Nodes[n-1].Pos()
	}
	if len(l.Head.Nodes) > 0 {
		return l.Head.Nodes[0].Pos()
	}
	return c.fd.Body.Rbrace
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	dedupe := fmt.Sprintf("%v|%s", pos, msg)
	if c.seen[dedupe] {
		return
	}
	c.seen[dedupe] = true
	c.pass.Reportf(pos, "%s", msg)
}

// apply advances the fact over one node's operations, in source order,
// with rebindings applied last. report, when non-nil, receives
// double-finalize positions (the replay pass); Solve passes nil.
func (c *checker) apply(n ast.Node, f fact, report func(token.Pos, string)) fact {
	for _, k := range c.keys {
		base := c.base[k]
		finals, keeps, rearm := c.nodeOps(n, k, base)
		for _, pos := range finals {
			if report != nil && f[k]&final != 0 {
				report(pos, k)
			}
			f[k] = final
		}
		if keeps > 0 && f[k]&live != 0 {
			f[k] = (f[k] &^ live) | kept
		}
		if rearm {
			f[k] = live
		}
		if c.killsBase(n, base) {
			f[k] = live
		}
	}
	return f
}

// nodeOps collects one node's finalize positions, keep count, and re-arm
// flag for one key. Closure bodies are not entered (a captured key is a
// keep, not a sequence of ops on this path).
func (c *checker) nodeOps(n ast.Node, key, base string) (finals []token.Pos, keeps int, rearm bool) {
	cfg.Walk(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			name := calleeName(node)
			if strings.HasPrefix(name, "finalize") && len(node.Args) > 0 &&
				lockstate.Flatten(node.Args[0]) == key {
				finals = append(finals, node.Pos())
			}
			if name == "Push" {
				for _, arg := range node.Args {
					if flat := lockstate.Flatten(arg); flat == key || flat == base {
						keeps++
						break
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				if lockstate.Flatten(lhs) != key+".Outcome" || i >= len(node.Rhs) {
					continue
				}
				if strings.HasSuffix(lockstate.Flatten(node.Rhs[i]), "OutcomePending") {
					rearm = true
				} else {
					finals = append(finals, node.Pos())
				}
			}
		case *ast.CompositeLit:
			if mentionsIdent(node, base) {
				keeps++
			}
			return false // elements already scanned by mentionsIdent
		case *ast.FuncLit:
			if mentionsIdent(node.Body, base) {
				keeps++
			}
		}
		return true
	})
	return finals, keeps, rearm
}

func mentionsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// killsBase reports whether the node rebinds the key's base identifier:
// an assignment with the bare identifier on the left, or a range clause
// binding it per iteration (the synthetic RangeBind node).
func (c *checker) killsBase(n ast.Node, base string) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == base {
				return true
			}
		}
	case *cfg.RangeBind:
		for _, e := range []ast.Expr{n.Range.Key, n.Range.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name == base {
				return true
			}
		}
	}
	return false
}

// edge refines the fact along one CFG edge: retreating edges into a loop
// that rebinds a key drop the key (each iteration owes independently, and
// the rebind restarts the obligation), and Outcome-pending guards
// partition the state between their branches.
func (c *checker) edge(from *cfg.Block, succIdx int, f fact) dataflow.Fact {
	to := from.Succs[succIdx]
	out := f
	copied := false
	mutate := func() fact {
		if !copied {
			out = out.clone()
			copied = true
		}
		return out
	}

	if li, ok := c.loops[to]; ok && li.body[from.Index] {
		for k := range li.kills {
			if _, bound := out[k]; bound {
				delete(mutate(), k)
			}
		}
	}

	if cond, ok := from.Cond.(*ast.BinaryExpr); ok &&
		(cond.Op == token.EQL || cond.Op == token.NEQ) {
		for _, k := range c.keys {
			if !isOutcomeGuard(cond, k) {
				continue
			}
			// ==: the true edge (succIdx 0) is the pending side.
			pendingEdge := (succIdx == 0) == (cond.Op == token.EQL)
			if pendingEdge {
				mutate()[k] = live
			} else {
				mutate()[k] = resolved
			}
		}
	}
	return out
}

// isOutcomeGuard reports whether cond compares <key>.Outcome against an
// expression naming OutcomePending (either operand order).
func isOutcomeGuard(cond *ast.BinaryExpr, key string) bool {
	x, y := lockstate.Flatten(cond.X), lockstate.Flatten(cond.Y)
	if x == key+".Outcome" {
		return strings.HasSuffix(y, "OutcomePending")
	}
	if y == key+".Outcome" {
		return strings.HasSuffix(x, "OutcomePending")
	}
	return false
}
