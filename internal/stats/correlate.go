package stats

import (
	"fmt"
	"sort"
)

// ApportionCounts scales weights to non-negative integer counts summing
// exactly to total, using largest-remainder rounding. Negative weights are
// clamped to zero. It panics when total < 0 or weights is empty while
// total > 0.
func ApportionCounts(weights []float64, total int) []int {
	if total < 0 {
		panic("stats: ApportionCounts with negative total")
	}
	n := len(weights)
	counts := make([]int, n)
	if total == 0 {
		return counts
	}
	if n == 0 {
		panic("stats: ApportionCounts with no weights")
	}
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 {
		// Degenerate: spread uniformly.
		for i := range counts {
			counts[i] = total / n
		}
		for i := 0; i < total%n; i++ {
			counts[i]++
		}
		return counts
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := w / sum * float64(total)
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; k < total-assigned; k++ {
		counts[rems[k%n].idx]++
	}
	return counts
}

// CorrelatedCounts synthesizes per-item integer counts that sum to total and
// whose Pearson correlation with ref approximates targetR (within tol when
// achievable). targetR = 0 yields an (approximately) uniform allocation.
//
// The synthesizer mixes a base series (ref itself for positive targets, the
// linear inversion max(ref)−ref for negative targets, which correlates −1
// with ref) with uniform noise, and binary-searches the mixing weight until
// the realized correlation of the rounded counts hits the target. This is
// how the update traces of paper Table 1 obtain their ±0.8 correlation with
// the query distribution.
func CorrelatedCounts(rng *RNG, ref []float64, total int, targetR, tol float64) ([]int, float64, error) {
	n := len(ref)
	if n < 2 {
		return nil, 0, fmt.Errorf("stats: need at least 2 items, got %d", n)
	}
	if targetR < -1 || targetR > 1 {
		return nil, 0, fmt.Errorf("stats: target correlation %v out of [-1,1]", targetR)
	}
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = 0.5 + rng.Float64() // positive, roughly uniform
	}
	if targetR == 0 {
		counts := ApportionCounts(noise, total)
		return counts, pearsonCountsRef(counts, ref), nil
	}
	base := make([]float64, n)
	if targetR > 0 {
		copy(base, ref)
	} else {
		m := Max(ref)
		for i, v := range ref {
			base[i] = m - v
		}
	}
	baseNorm := normalize(base)
	noiseNorm := normalize(noise)
	want := targetR
	mix := func(alpha float64) ([]int, float64) {
		w := make([]float64, n)
		for i := range w {
			w[i] = alpha*baseNorm[i] + (1-alpha)*noiseNorm[i]
		}
		counts := ApportionCounts(w, total)
		return counts, pearsonCountsRef(counts, ref)
	}
	lo, hi := 0.0, 1.0
	bestCounts, bestR := mix(1)
	if abs(bestR-want) <= tol {
		return bestCounts, bestR, nil
	}
	for iter := 0; iter < 60; iter++ {
		alpha := (lo + hi) / 2
		counts, r := mix(alpha)
		if abs(r-want) < abs(bestR-want) {
			bestCounts, bestR = counts, r
		}
		if abs(r-want) <= tol {
			return counts, r, nil
		}
		// |r| grows with alpha for both signs of the target.
		if abs(r) < abs(want) {
			lo = alpha
		} else {
			hi = alpha
		}
	}
	return bestCounts, bestR, nil
}

func normalize(xs []float64) []float64 {
	sum := 0.0
	for _, x := range xs {
		if x > 0 {
			sum += x
		}
	}
	out := make([]float64, len(xs))
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return out
	}
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		out[i] = x / sum
	}
	return out
}

func pearsonCountsRef(counts []int, ref []float64) float64 {
	f := make([]float64, len(counts))
	for i, c := range counts {
		f[i] = float64(c)
	}
	return Pearson(f, ref)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
