package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// PearsonInts is Pearson over integer series, the common case for per-item
// access and update counts.
func PearsonInts(xs, ys []int) float64 {
	fx := make([]float64, len(xs))
	fy := make([]float64, len(ys))
	for i, x := range xs {
		fx[i] = float64(x)
	}
	for i, y := range ys {
		fy[i] = float64(y)
	}
	return Pearson(fx, fy)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// EWMA maintains an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]: larger alpha weighs recent observations more.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics when
// alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha out of (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average. The first observation primes the value.
func (e *EWMA) Observe(x float64) {
	if !e.primed {
		e.value = x
		e.primed = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one observation has been folded in.
func (e *EWMA) Primed() bool { return e.primed }

// Reset discards all state.
func (e *EWMA) Reset() { e.value, e.primed = 0, false }

// Welford accumulates running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}
