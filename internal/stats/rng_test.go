package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	child := a.Split()
	// Drawing from the child must not perturb the parent's stream relative
	// to a parent that also split once.
	b := NewRNG(7)
	b.Split()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("parent stream perturbed by child draws at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Float64())
	}
	if math.Abs(w.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", w.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(6)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Exp(2.5))
	}
	if math.Abs(w.Mean()-2.5) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~2.5", w.Mean())
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(8)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Normal(10, 3))
	}
	if math.Abs(w.Mean()-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", w.Mean())
	}
	if math.Abs(math.Sqrt(w.Variance())-3) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~3", math.Sqrt(w.Variance()))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2); v < 2 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(12)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d -> %d", sum, got)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Uniform(3,9) = %v", v)
		}
	}
}
