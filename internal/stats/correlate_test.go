package stats

import (
	"testing"
	"testing/quick"
)

func TestApportionCountsExactSum(t *testing.T) {
	r := NewRNG(21)
	f := func(seed uint64, totalRaw uint16) bool {
		rr := NewRNG(seed)
		n := 2 + rr.Intn(64)
		w := make([]float64, n)
		for i := range w {
			w[i] = rr.Float64() * 10
		}
		total := int(totalRaw % 5000)
		counts := ApportionCounts(w, total)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestApportionCountsProportionality(t *testing.T) {
	counts := ApportionCounts([]float64{1, 2, 3, 4}, 1000)
	want := []int{100, 200, 300, 400}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestApportionCountsZeroWeights(t *testing.T) {
	counts := ApportionCounts([]float64{0, 0, 0}, 10)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 10 {
		t.Fatalf("zero-weight apportionment sum = %d", sum)
	}
}

func TestApportionCountsNegativeClamped(t *testing.T) {
	counts := ApportionCounts([]float64{-5, 1, 1}, 100)
	if counts[0] != 0 {
		t.Fatalf("negative weight should get 0, got %d", counts[0])
	}
	if counts[1]+counts[2] != 100 {
		t.Fatalf("sum = %d", counts[1]+counts[2])
	}
}

func makeSkewedRef(rng *RNG, n int) []float64 {
	z := NewZipf(rng, n, 1.0)
	ref := make([]float64, n)
	for i := 0; i < n*100; i++ {
		ref[z.Next()]++
	}
	return ref
}

func TestCorrelatedCountsPositive(t *testing.T) {
	rng := NewRNG(33)
	ref := makeSkewedRef(rng, 256)
	counts, r, err := CorrelatedCounts(rng, ref, 30000, 0.8, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.8, 0.05) {
		t.Fatalf("realized correlation %v, want ~0.8", r)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 30000 {
		t.Fatalf("total = %d, want 30000", sum)
	}
}

func TestCorrelatedCountsNegative(t *testing.T) {
	rng := NewRNG(34)
	ref := makeSkewedRef(rng, 256)
	counts, r, err := CorrelatedCounts(rng, ref, 30000, -0.8, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, -0.8, 0.05) {
		t.Fatalf("realized correlation %v, want ~-0.8", r)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 30000 {
		t.Fatalf("total = %d", sum)
	}
}

func TestCorrelatedCountsUniform(t *testing.T) {
	rng := NewRNG(35)
	ref := makeSkewedRef(rng, 256)
	counts, r, err := CorrelatedCounts(rng, ref, 30000, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if abs(r) > 0.2 {
		t.Fatalf("uniform allocation correlates %v with ref", r)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 30000 {
		t.Fatalf("total = %d", sum)
	}
}

func TestCorrelatedCountsErrors(t *testing.T) {
	rng := NewRNG(36)
	if _, _, err := CorrelatedCounts(rng, []float64{1}, 10, 0.5, 0.1); err == nil {
		t.Fatal("expected error for tiny ref")
	}
	if _, _, err := CorrelatedCounts(rng, []float64{1, 2, 3}, 10, 1.5, 0.1); err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	rng := NewRNG(37)
	z := NewZipf(rng, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	// Probability masses must sum to ~1.
	total := 0.0
	for i := 0; i < 100; i++ {
		total += z.Prob(i)
	}
	if !almostEq(total, 1, 1e-9) {
		t.Fatalf("Zipf probabilities sum to %v", total)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	rng := NewRNG(38)
	z := NewZipf(rng, 10, 0)
	for i := 0; i < 10; i++ {
		if !almostEq(z.Prob(i), 0.1, 1e-9) {
			t.Fatalf("s=0 rank %d prob %v", i, z.Prob(i))
		}
	}
}

func TestZipfPanics(t *testing.T) {
	rng := NewRNG(39)
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) did not panic", c.n, c.s)
				}
			}()
			NewZipf(rng, c.n, c.s)
		}()
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-1) // underflow
	h.Observe(99) // overflow
	if h.Count() != 12 {
		t.Fatalf("count = %d", h.Count())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d", i, h.Bucket(i))
		}
	}
	if h.Min() != -1 || h.Max() != 99 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 3 || q > 7 {
		t.Fatalf("median estimate %v", q)
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramTopEdge(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Observe(0.999999999999) // must not index out of range
	if h.Bucket(3) != 1 {
		t.Fatalf("top-edge sample landed in wrong bucket")
	}
}
