// Package stats provides the deterministic statistics substrate used by the
// UNIT reproduction: a seedable random number generator, distribution
// samplers (uniform, exponential, lognormal, Pareto, Zipf), descriptive
// statistics (mean, variance, Pearson correlation), exponentially weighted
// moving averages, histograms, and a synthesizer that produces integer
// series with a prescribed Pearson correlation to a reference series.
//
// Everything in this package is pure computation with explicit seeds, so
// simulation runs are reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). It is not safe for concurrent
// use; each goroutine should own its RNG, typically derived via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64 so that nearby
// seeds still yield decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current one, for handing
// to a sub-component without sharing state.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed sample (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a lognormally distributed sample where mu and sigma are
// the parameters of the underlying normal distribution.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto(shape alpha, scale xm) sample; heavy-tailed for
// small alpha, used for bursty inter-arrival gaps.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
