package stats

import "math"

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution so sampling is a
// binary search, which is plenty fast for the n=1024 item spaces used here
// and keeps the sampler exact (no rejection).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s >= 0.
// s = 0 degenerates to uniform. It panics when n <= 0 or s < 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	if s < 0 {
		panic("stats: Zipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next samples one rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
