package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant series should give 0")
	}
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("length mismatch should give 0")
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	r := NewRNG(99)
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		n := 3 + rr.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Normal(0, 1)
			ys[i] = rr.Normal(0, 1)
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Fatal("Min wrong")
	}
	if Max(xs) != 7 {
		t.Fatal("Max wrong")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Fatal("fresh EWMA should be unprimed")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation should prime: %v", e.Value())
	}
	e.Observe(20)
	if !almostEq(e.Value(), 15, 1e-12) {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
	e.Reset()
	if e.Primed() || e.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 200; i++ {
		e.Observe(7)
	}
	if !almostEq(e.Value(), 7, 1e-9) {
		t.Fatalf("EWMA of constant stream = %v", e.Value())
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRNG(17)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = r.Normal(5, 2)
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Welford var %v vs batch %v", w.Variance(), Variance(xs))
	}
	if w.N() != len(xs) {
		t.Fatalf("Welford N = %d", w.N())
	}
}
