package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram over [lo, hi) with overflow and
// underflow buckets, used for reporting latency and freshness profiles.
type Histogram struct {
	lo, hi   float64
	width    float64
	buckets  []int
	under    int
	over     int
	count    int
	sum      float64
	min, max float64
	anyObs   bool
}

// NewHistogram builds a histogram of n equal buckets over [lo, hi).
// It panics when n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram with non-positive bucket count")
	}
	if hi <= lo {
		panic("stats: histogram with empty range")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int, n)}
}

// HistogramFromBuckets reconstructs a histogram from recorded bucket
// counts — the read side of concurrent collectors that share this bucket
// layout (internal/obs/metrics), rehydrated here so quantile and mean
// estimation live in one place. The per-sample extremes are lost in
// bucketed form, so Min/Max report the range edges clamped to the
// occupied buckets. It panics on an empty bucket slice or range.
func HistogramFromBuckets(lo, hi float64, buckets []int, under, over int, sum float64) *Histogram {
	h := NewHistogram(lo, hi, len(buckets))
	copy(h.buckets, buckets)
	h.under = under
	h.over = over
	h.sum = sum
	if under > 0 {
		h.min, h.max = lo, lo
		h.anyObs = true
	}
	for i, c := range buckets {
		h.count += c
		if c > 0 {
			if !h.anyObs {
				h.min = lo + float64(i)*h.width
				h.anyObs = true
			}
			h.max = lo + float64(i+1)*h.width
		}
	}
	if over > 0 {
		if !h.anyObs {
			h.min = hi
			h.anyObs = true
		}
		h.max = hi
	}
	h.count += under + over
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.count++
	h.sum += x
	if !h.anyObs || x < h.min {
		h.min = x
	}
	if !h.anyObs || x > h.max {
		h.max = x
	}
	h.anyObs = true
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // rounding at the top edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.count }

// Mean returns the mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Quantile returns an approximate quantile (q in [0,1]) assuming samples are
// uniform within each bucket. Underflow maps to lo and overflow to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	acc := float64(h.under)
	if target <= acc {
		return h.lo
	}
	for i, c := range h.buckets {
		if target <= acc+float64(c) {
			frac := 0.0
			if c > 0 {
				frac = (target - acc) / float64(c)
			}
			return h.lo + (float64(i)+frac)*h.width
		}
		acc += float64(c)
	}
	return h.hi
}

// String renders an ASCII sketch of the histogram, one row per bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.buckets {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.buckets {
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(maxC)*40)))
		fmt.Fprintf(&b, "[%8.3f,%8.3f) %7d %s\n", h.lo+float64(i)*h.width, h.lo+float64(i+1)*h.width, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.over)
	}
	return b.String()
}
