// Package core assembles UNIT, the paper's primary contribution: the Load
// Balancing Controller (feedback control, §3.2), Query Admission Control
// (§3.3) and Update Frequency Modulation (§3.4), wired over the simulation
// engine to maximize the User Satisfaction Metric.
package core

import (
	"fmt"
	"math"

	"unitdb/internal/core/admission"
	"unitdb/internal/core/control"
	"unitdb/internal/core/ufm"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/obs/trace"
	"unitdb/internal/stats"
	"unitdb/internal/txn"
)

// Config parameterizes UNIT.
type Config struct {
	// Weights are the USM penalty parameters; they drive both the LBC's
	// cost comparison and the admission controller's USM check.
	Weights usm.Weights
	// ControlPeriod is the monitoring tick of the LBC (seconds).
	ControlPeriod float64
	// GracePeriod is the maximum time between allocation decisions; a
	// windowed USM drop beyond the threshold decides earlier (paper Fig. 2
	// line 1).
	GracePeriod float64
	// DegradeBatch is how many lottery draws one Degrade signal performs.
	// Zero picks the item count (~1 draw per item per signal on average).
	// Against the arithmetic Upgrade step this creates the intended
	// bistability: items whose lottery weight exceeds the mean by enough
	// accumulate multiplicative period growth faster than Upgrade's
	// −C_uu·pi can pull them back and run away to deep degradation, while
	// well-accessed items hover near their ideal period.
	DegradeBatch int
	// MinDecisionSamples is the minimum number of finalized query outcomes
	// a window must hold before the LBC acts on it. Cost ratios measured
	// over one or two queries are noise; acting on them whipsaws the
	// actuators (a single spurious Upgrade undoes many Degrade draws).
	MinDecisionSamples int
	// Seed drives the lottery and tie-breaking randomness.
	Seed uint64

	// AdmissionOptions and ModulatorOptions forward tuning knobs.
	AdmissionOptions []admission.Option
	ModulatorOptions []ufm.Option
	ControlOptions   []control.Option
}

// DefaultConfig returns the paper-faithful configuration for the given
// weights.
func DefaultConfig(w usm.Weights) Config {
	return Config{
		Weights:            w,
		ControlPeriod:      1,
		GracePeriod:        5,
		MinDecisionSamples: 25,
		Seed:               1,
	}
}

// UNIT is the policy. Create it with New and hand it to engine.New.
type UNIT struct {
	cfg Config

	e   *engine.Engine
	ac  *admission.Controller
	mod *ufm.Modulator
	lbc *control.LBC
	rng *stats.RNG

	lastEnqueued []float64
	// sinceDecision accumulates weighted outcome tallies between allocation
	// decisions; tick windows feed the drop trigger.
	sinceDecision usm.Tally
	lastDecision  float64

	nSignals map[string]int
}

// New creates a UNIT policy.
func New(cfg Config) *UNIT {
	if err := cfg.Weights.Validate(); err != nil {
		panic(err)
	}
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = 1
	}
	if cfg.GracePeriod < cfg.ControlPeriod {
		cfg.GracePeriod = cfg.ControlPeriod
	}
	return &UNIT{cfg: cfg, nSignals: make(map[string]int)}
}

// Name implements engine.Policy.
func (u *UNIT) Name() string { return "UNIT" }

// Attach implements engine.Policy: it sizes the modulator from the
// workload's update feeds and initializes the controllers.
func (u *UNIT) Attach(e *engine.Engine) {
	u.e = e
	w := e.Workload()
	u.rng = stats.NewRNG(u.cfg.Seed)
	ideal := make([]float64, w.NumItems)
	for i := range ideal {
		ideal[i] = math.Inf(1)
	}
	for _, spec := range w.Updates {
		ideal[spec.Item] = spec.Period
	}
	u.mod = ufm.New(ideal, u.rng.Split(), u.cfg.ModulatorOptions...)
	// Per-transaction weight resolution makes the system USM check honor
	// heterogeneous user preferences (multi-preference extension, §3.1).
	acOpts := append([]admission.Option{admission.WithResolver(e.WeightsFor)}, u.cfg.AdmissionOptions...)
	u.ac = admission.New(u.cfg.Weights, acOpts...)
	u.lbc = control.New(u.cfg.Weights, u.rng.Split(), u.cfg.ControlOptions...)
	u.lastEnqueued = make([]float64, w.NumItems)
	for i := range u.lastEnqueued {
		u.lastEnqueued[i] = math.Inf(-1)
	}
	if u.cfg.DegradeBatch == 0 {
		u.cfg.DegradeBatch = w.NumItems
	}
}

// Admission returns the admission controller (introspection and tests).
func (u *UNIT) Admission() *admission.Controller { return u.ac }

// Modulator returns the update-frequency modulator (introspection).
func (u *UNIT) Modulator() *ufm.Modulator { return u.mod }

// Controller returns the LBC (introspection).
func (u *UNIT) Controller() *control.LBC { return u.lbc }

// SignalCounts reports how many times each control signal fired.
func (u *UNIT) SignalCounts() map[string]int {
	out := make(map[string]int, len(u.nSignals))
	for k, v := range u.nSignals {
		out[k] = v
	}
	return out
}

// AdmitQuery implements engine.Policy via the two admission gates.
func (u *UNIT) AdmitQuery(q *txn.Txn) bool {
	return u.ac.Admit(u.e.Now(), q, u.e) == admission.Admitted
}

// AdmitUpdate implements engine.Policy: an arriving source update executes
// only when the item's current (possibly degraded) period has elapsed since
// the last executed one.
func (u *UNIT) AdmitUpdate(item int) bool {
	now := u.e.Now()
	period := u.mod.Period(item)
	if now-u.lastEnqueued[item] < period*(1-1e-9) {
		return false
	}
	u.lastEnqueued[item] = now
	return true
}

// OnSourceUpdate implements engine.Policy: every feed arrival raises the
// item's ticket (Eq. 7).
func (u *UNIT) OnSourceUpdate(item int, exec float64) {
	u.mod.OnUpdate(item, exec)
}

// BeforeQueryDispatch implements engine.Policy: UNIT never postpones.
func (u *UNIT) BeforeQueryDispatch(*txn.Txn) bool { return true }

// OnQueryDone implements engine.Policy: query demand lowers the tickets of
// the items touched (Eq. 6). Every submitted query counts, not only the
// committed ones — a rejected or deadline-missed query needed its items
// just the same, and counting only commits starves the ticket ledger of
// its access signal exactly when the system is overloaded (queries fail →
// no decrements → hot items drift ticket-positive → their updates get
// degraded → more queries fail), a death spiral.
func (u *UNIT) OnQueryDone(q *txn.Txn) {
	for _, item := range q.Items {
		u.mod.OnQueryAccess(item, q.EstExec, q.RelDeadline)
	}
}

// OnUpdateApplied implements engine.Policy.
func (u *UNIT) OnUpdateApplied(*txn.Txn) {}

// ControlPeriod implements engine.Policy.
func (u *UNIT) ControlPeriod() float64 { return u.cfg.ControlPeriod }

// OnControlTick implements engine.Policy: the LBC monitors the windowed
// USM and decides when the window shows a drop beyond the threshold or the
// grace period has elapsed (paper Fig. 2).
func (u *UNIT) OnControlTick() {
	u.sinceDecision.Add(u.e.Accountant().Rollover())
	if u.sinceDecision.Counts.Total() < u.cfg.MinDecisionSamples {
		return
	}
	now := u.e.Now()
	windowUSM := u.sinceDecision.USM()
	samples := u.sinceDecision.Counts.Total()
	trigger := now-u.lastDecision >= u.cfg.GracePeriod
	dropped := u.lbc.DropTriggered(windowUSM)
	if dropped {
		trigger = true
	}
	if !trigger {
		return
	}
	action, costs := u.lbc.DecideTallyExplained(u.sinceDecision)
	u.sinceDecision = usm.Tally{}
	u.lastDecision = now
	u.apply(action)
	if rec := u.e.TraceRecorder(); rec != nil {
		// Logged after apply so CFlex and the degraded count show the
		// actuator settings the decision produced (paper Fig. 2 state).
		rec.RecordDecision(trace.Decision{
			T:             now,
			Samples:       samples,
			WindowUSM:     windowUSM,
			RCost:         costs.R,
			FmCost:        costs.Fm,
			FsCost:        costs.Fs,
			DropTriggered: dropped,
			Action:        action.String(),
			CFlex:         u.ac.CFlex(),
			DegradedItems: u.mod.DegradedCount(),
		})
	}
}

func (u *UNIT) apply(a control.Action) {
	if a.None() {
		return
	}
	if a.LoosenAC {
		if u.ac.AtFloor() {
			// Admission is already wide open, so the rejections that made
			// rejection the dominant cost stem from a capacity shortage the
			// deadline check merely reports — update load is the only
			// shedable capacity left. Fall through to Degrade so the
			// controller cannot wedge itself at 100% rejection under a
			// sustained update overload (e.g. the 150% "high" traces).
			if u.warmedUp() {
				u.mod.DegradeN(u.cfg.DegradeBatch)
				u.nSignals["LAC-DU"]++
			}
		} else {
			u.ac.Loosen()
			u.nSignals["LAC"]++
		}
	}
	if a.TightenAC {
		// Tightening admission remedies DMF cost by converting would-be
		// misses into rejections — a trade that only pays while a
		// rejection is no more expensive than a miss. When the user says
		// rejections hurt more (C_r > C_fm), the conversion raises the
		// very cost the controller is minimizing, so the Degrade half of
		// the DMF remedy acts alone.
		if u.cfg.Weights.Cr <= u.cfg.Weights.Cfm {
			u.ac.Tighten()
			u.nSignals["TAC"]++
		}
	}
	if a.DegradeUpdate {
		if u.warmedUp() {
			u.mod.DegradeN(u.cfg.DegradeBatch)
			u.nSignals["DU"]++
		}
	}
	if a.UpgradeUpdate {
		u.mod.Upgrade()
		u.nSignals["UU"]++
	}
}

// warmedUp reports whether the ticket ledger has absorbed enough events to
// discriminate hot from cold items. Degrading on an undifferentiated
// ledger draws victims uniformly and pushes every item — hot ones included
// — past the point the Upgrade signal can recover, so Degrade signals are
// held back until roughly two updates per feed have been observed.
func (u *UNIT) warmedUp() bool {
	upd, _ := u.mod.EventsSeen()
	feeds := len(u.e.Workload().Updates)
	return feeds == 0 || upd >= 2*feeds
}

var _ engine.Policy = (*UNIT)(nil)

// String renders the policy configuration.
func (u *UNIT) String() string {
	return fmt.Sprintf("UNIT(weights=%+v tick=%v grace=%v batch=%d)",
		u.cfg.Weights, u.cfg.ControlPeriod, u.cfg.GracePeriod, u.cfg.DegradeBatch)
}
