package core

import (
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/txn"
	"unitdb/internal/workload"
)

func smallTrace(t *testing.T, v workload.Volume, d workload.Distribution) *workload.Workload {
	t.Helper()
	qc := workload.SmallQueryConfig()
	qc.NumQueries = 3000
	qc.Duration = 12000
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(v, d), 43)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runUNIT(t *testing.T, w *workload.Workload, cfg Config) (*engine.Results, *UNIT) {
	t.Helper()
	p := New(cfg)
	e, err := engine.New(engine.NewConfig(w, cfg.Weights, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, p
}

func TestUNITEndToEnd(t *testing.T) {
	w := smallTrace(t, workload.Med, workload.Uniform)
	r, p := runUNIT(t, w, DefaultConfig(usm.Weights{}))
	if r.Counts.Total() != len(w.Queries) {
		t.Fatalf("outcomes %d != submitted %d", r.Counts.Total(), len(w.Queries))
	}
	if r.Counts.Success == 0 {
		t.Fatal("UNIT succeeded on nothing")
	}
	if r.UpdatesDropped == 0 {
		t.Fatal("UNIT never modulated the med update load")
	}
	deg, _ := p.Modulator().Stats()
	if deg == 0 {
		t.Fatal("no degrade steps under a 75% update load")
	}
	adm, _, _ := p.Admission().Stats()
	if adm == 0 {
		t.Fatal("admission controller never admitted")
	}
}

func TestUNITBeatsNoControlUnderLoad(t *testing.T) {
	// Against the same med-unif trace, UNIT must clearly beat the
	// admit-everything/apply-everything strategy (IMU) on the naive USM.
	w := smallTrace(t, workload.Med, workload.Uniform)
	unitRes, _ := runUNIT(t, w, DefaultConfig(usm.Weights{}))

	imu := &plainPolicy{}
	e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), imu)
	if err != nil {
		t.Fatal(err)
	}
	imuRes, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if unitRes.USM <= imuRes.USM {
		t.Fatalf("UNIT %.4f did not beat IMU %.4f at med-unif", unitRes.USM, imuRes.USM)
	}
}

type plainPolicy struct{ engine.Base }

func (plainPolicy) Name() string { return "plain" }

func TestUNITWeightedShiftsFailureMix(t *testing.T) {
	// §4.5: with the rejection penalty dominant, UNIT should reject less
	// than with the DMF penalty dominant (it shifts failures toward the
	// cheap class).
	w := smallTrace(t, workload.Med, workload.Uniform)
	highCr, _ := runUNIT(t, w, DefaultConfig(usm.Weights{Cr: 0.8, Cfm: 0.2, Cfs: 0.2}))
	highCfm, _ := runUNIT(t, w, DefaultConfig(usm.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}))
	if highCfm.DMFRatio >= highCr.DMFRatio {
		t.Fatalf("high-Cfm run has DMF %.3f >= high-Cr run's %.3f; the mix did not shift",
			highCfm.DMFRatio, highCr.DMFRatio)
	}
}

func TestUNITSignals(t *testing.T) {
	w := smallTrace(t, workload.High, workload.Uniform)
	_, p := runUNIT(t, w, DefaultConfig(usm.Weights{}))
	sig := p.SignalCounts()
	total := 0
	for _, v := range sig {
		total += v
	}
	if total == 0 {
		t.Fatal("controller never acted under a 150% update load")
	}
}

func TestUNITWarmup(t *testing.T) {
	w := smallTrace(t, workload.Med, workload.Uniform)
	p := New(DefaultConfig(usm.Weights{}))
	e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	if p.warmedUp() {
		t.Fatal("warmed up before any updates")
	}
	// (the med trace delivers well over two updates per feed)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.warmedUp() {
		t.Fatal("never warmed up over a full trace")
	}
}

func TestUNITAdmitUpdateThrottles(t *testing.T) {
	// Build a 1-item workload and degrade it manually; AdmitUpdate must
	// then skip arrivals inside the stretched period.
	w := &workload.Workload{
		Name: "t", NumItems: 1, Duration: 100,
		Updates:      []workload.UpdateSpec{{Item: 0, Period: 10, Exec: 1}},
		QueryCounts:  []int{0},
		UpdateCounts: []int{10},
	}
	p := New(DefaultConfig(usm.Weights{}))
	if _, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p); err != nil {
		t.Fatal(err)
	}
	// All arrivals pass at the ideal period.
	if !p.AdmitUpdate(0) {
		t.Fatal("first arrival dropped")
	}
	// Stretch the period: the next arrival at +10 must be dropped. We
	// simulate the passage of time by querying AdmitUpdate directly; the
	// engine clock is 0 throughout, so a doubled period rejects.
	p.Modulator().OnUpdate(0, 1)
	for p.Modulator().Period(0) < 25 {
		p.Modulator().DegradeN(8)
	}
	if p.AdmitUpdate(0) {
		t.Fatal("arrival inside the degraded period admitted")
	}
}

func TestUNITConfigDefaults(t *testing.T) {
	p := New(Config{Weights: usm.Weights{}})
	if p.cfg.ControlPeriod != 1 || p.cfg.GracePeriod != 1 {
		t.Fatalf("defaults: %+v", p.cfg)
	}
	if p.Name() != "UNIT" {
		t.Fatal("name")
	}
	if p.String() == "" {
		t.Fatal("String")
	}
}

func TestUNITRejectsBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weights accepted")
		}
	}()
	New(Config{Weights: usm.Weights{Cr: -1}})
}

func TestUNITOnQueryDoneCountsAllOutcomes(t *testing.T) {
	w := &workload.Workload{
		Name: "t", NumItems: 2, Duration: 100,
		QueryCounts: []int{1, 1}, UpdateCounts: []int{0, 0},
	}
	p := New(DefaultConfig(usm.Weights{}))
	if _, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p); err != nil {
		t.Fatal(err)
	}
	q := txn.NewQuery(1, 0, []int{0}, 1, 10, 0.9)
	q.Outcome = txn.OutcomeRejected
	before := p.Modulator().Ticket(0)
	p.OnQueryDone(q)
	if p.Modulator().Ticket(0) >= before {
		t.Fatal("rejected query did not lower the item's ticket (demand signal lost)")
	}
}
