// Package ufm implements UNIT's Update Frequency Modulation (paper §3.4).
// Each data item carries a lottery ticket value. Query accesses decrease it
// by DT = qe/qt (Eq. 6) — items needed by CPU-hungry queries are poor
// victims. Source updates increase it by the sigmoid
// IT = 1/(1+e^{ue_avg−ue_j}) (Eq. 7) — frequently and expensively updated
// items are good victims. Both adjustments apply exponential forgetting
// with C_forget = 0.9 (Eq. 8).
//
// On a Degrade signal the modulator draws victims by lottery over the
// min-shifted tickets and stretches each victim's current period:
// pc ← pc·(1+C_du) (Eq. 9). On an Upgrade signal every degraded period
// shrinks back toward the ideal: pc ← max(pi, pc − C_uu·pi) (Eq. 10; see
// DESIGN.md on the paper's min/max typo), with C_uu = 0.5.
package ufm

import (
	"fmt"
	"math"
	"sort"

	"unitdb/internal/lottery"
	"unitdb/internal/stats"
)

// Defaults from the paper's experiments.
const (
	DefaultCForget = 0.9 // forgetting factor (§3.4.1)
	DefaultCDu     = 0.1 // degrade step (Eq. 9)
	DefaultCUu     = 0.5 // upgrade step (Eq. 10)

	// DefaultMaxDegrade caps pc at this multiple of pi. Unbounded Eq. 9
	// compounding sends periods to astronomic values within a few thousand
	// draws, where the arithmetic Upgrade step (−C_uu·pi per sweep) could
	// never recover an item mistakenly degraded before the ticket ledger
	// differentiated. At 64× the item already skips ~98% of its updates —
	// degradation is saturated for every practical purpose — while a
	// recovery stays within ~126 Upgrade sweeps.
	DefaultMaxDegrade = 64

	// DefaultGate is the victim-eligibility threshold, expressed as a
	// fraction of the distance from the minimum ticket to the mean: a
	// drawn item is degraded only if its ticket reaches min + gate·(mean −
	// min). Zero reproduces the paper's plain min-shifted lottery.
	DefaultGate = 0.5
)

// Modulator holds per-item ticket values and update periods.
type Modulator struct {
	tickets *lottery.Sampler
	ideal   []float64 // pi_j; +Inf when the item receives no updates
	current []float64 // pc_j >= pi_j
	ueAvg   stats.Welford
	rng     *stats.RNG

	cforget    float64
	cdu        float64
	cuu        float64
	maxDegrade float64
	gate       float64 // eligibility threshold as a fraction of (mean−min)

	degraded    map[int]struct{}
	degrades    int // cumulative degrade steps applied
	upgrades    int // cumulative upgrade sweeps
	updatesSeen int // source updates folded into tickets
	queriesSeen int // query accesses folded into tickets

	useStride          bool
	stride             *lottery.Stride
	strideAge          int // draws since the stride weights were rebuilt
	strideRebuildEvery int
}

// Option configures a Modulator.
type Option func(*Modulator)

// WithStrideSelection replaces the randomized lottery draw with stride
// scheduling, its deterministic proportional-share counterpart from the
// same Waldspurger report the paper cites — an ablation of the paper's
// choice of "Lottery Scheduling for efficiency and fairness" (§5). The
// stride pass weights are rebuilt from the ticket ledger every rebuildEvery
// draws (default 256 when <= 0).
func WithStrideSelection(rebuildEvery int) Option {
	return func(m *Modulator) {
		m.useStride = true
		if rebuildEvery <= 0 {
			rebuildEvery = 256
		}
		m.strideAge = rebuildEvery // force an initial build
		m.strideRebuildEvery = rebuildEvery
	}
}

// WithGate overrides the victim-eligibility fraction (default DefaultGate;
// 0 disables the gate, reproducing the paper's plain min-shifted lottery).
func WithGate(gate float64) Option {
	return func(m *Modulator) {
		if gate < 0 || gate >= 1 {
			panic(fmt.Sprintf("ufm: gate %v out of [0,1)", gate))
		}
		m.gate = gate
	}
}

// WithMaxDegrade overrides the cap on pc/pi (default DefaultMaxDegrade).
func WithMaxDegrade(factor float64) Option {
	return func(m *Modulator) {
		if factor <= 1 {
			panic(fmt.Sprintf("ufm: max degrade factor %v must exceed 1", factor))
		}
		m.maxDegrade = factor
	}
}

// WithConstants overrides C_forget, C_du and C_uu.
func WithConstants(cforget, cdu, cuu float64) Option {
	return func(m *Modulator) {
		if cforget <= 0 || cforget > 1 {
			panic(fmt.Sprintf("ufm: C_forget %v out of (0,1]", cforget))
		}
		if cdu <= 0 {
			panic(fmt.Sprintf("ufm: non-positive C_du %v", cdu))
		}
		if cuu <= 0 || cuu > 1 {
			panic(fmt.Sprintf("ufm: C_uu %v out of (0,1]", cuu))
		}
		m.cforget, m.cdu, m.cuu = cforget, cdu, cuu
	}
}

// New creates a modulator for the given ideal update periods (one per data
// item; use math.Inf(1) for items without updates). rng drives the lottery.
func New(idealPeriods []float64, rng *stats.RNG, opts ...Option) *Modulator {
	if len(idealPeriods) == 0 {
		panic("ufm: no data items")
	}
	m := &Modulator{
		tickets:    lottery.NewSampler(len(idealPeriods)),
		ideal:      make([]float64, len(idealPeriods)),
		current:    make([]float64, len(idealPeriods)),
		rng:        rng,
		cforget:    DefaultCForget,
		cdu:        DefaultCDu,
		cuu:        DefaultCUu,
		maxDegrade: DefaultMaxDegrade,
		gate:       DefaultGate,
		degraded:   make(map[int]struct{}),
	}
	for i, p := range idealPeriods {
		if p <= 0 {
			panic(fmt.Sprintf("ufm: non-positive ideal period %v for item %d", p, i))
		}
		m.ideal[i] = p
		m.current[i] = p
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Len returns the number of data items.
func (m *Modulator) Len() int { return len(m.ideal) }

// Ticket returns the current ticket value of item i.
func (m *Modulator) Ticket(i int) float64 { return m.tickets.Ticket(i) }

// IdealPeriod returns pi_i.
func (m *Modulator) IdealPeriod(i int) float64 { return m.ideal[i] }

// SetIdealPeriod re-bases item i's ideal period, preserving the current
// degradation ratio pc/pi. The live server uses this to learn feed periods
// online from observed inter-arrival times.
func (m *Modulator) SetIdealPeriod(i int, p float64) {
	if p <= 0 {
		panic(fmt.Sprintf("ufm: non-positive ideal period %v", p))
	}
	ratio := 1.0
	if !math.IsInf(m.ideal[i], 1) && m.ideal[i] > 0 {
		ratio = m.current[i] / m.ideal[i]
	}
	m.ideal[i] = p
	m.current[i] = p * ratio
}

// Period returns the current update period pc_i.
func (m *Modulator) Period(i int) float64 { return m.current[i] }

// DegradedCount returns how many items currently run above their ideal
// period.
func (m *Modulator) DegradedCount() int { return len(m.degraded) }

// Stats returns cumulative degrade steps and upgrade sweeps.
func (m *Modulator) Stats() (degrades, upgrades int) { return m.degrades, m.upgrades }

// OnQueryAccess folds a committed query access of item i into the ticket:
// T ← T·C_forget − qe/qt (Eqs. 6 and 8). qt must be positive.
func (m *Modulator) OnQueryAccess(i int, qe, qt float64) {
	if qt <= 0 {
		panic(fmt.Sprintf("ufm: non-positive relative deadline %v", qt))
	}
	dt := qe / qt
	m.queriesSeen++
	m.tickets.Set(i, m.tickets.Ticket(i)*m.cforget-dt)
}

// OnUpdate folds one source update of item i with execution time ue into
// the ticket: T ← T·C_forget + 1/(1+e^{ue_avg−ue}) (Eqs. 7 and 8), and
// refreshes the running average update execution time.
func (m *Modulator) OnUpdate(i int, ue float64) {
	m.updatesSeen++
	m.ueAvg.Add(ue)
	it := 1 / (1 + math.Exp(m.ueAvg.Mean()-ue))
	m.tickets.Set(i, m.tickets.Ticket(i)*m.cforget+it)
}

// AvgUpdateExec returns the running mean update execution time (ue_avg).
func (m *Modulator) AvgUpdateExec() float64 { return m.ueAvg.Mean() }

// EventsSeen returns how many source updates and query accesses have been
// folded into the ticket ledger.
func (m *Modulator) EventsSeen() (updates, queries int) {
	return m.updatesSeen, m.queriesSeen
}

// Degrade draws one victim by lottery over the min-shifted tickets and
// stretches its current period by C_du (Eq. 9). It returns the victim; ok
// is false when no item is eligible (all tickets equal and none updated).
func (m *Modulator) Degrade() (victim int, ok bool) {
	i := m.drawVictim()
	if math.IsInf(m.ideal[i], 1) {
		// The item receives no updates; stretching its period is a no-op.
		// Count it as a draw but report no victim.
		return i, false
	}
	mean := m.tickets.Sum() / float64(m.tickets.Len())
	committed := m.current[i] > 2*m.ideal[i] // hysteresis: deep victims stay victims
	if threshold := m.tickets.Min() + m.gate*(mean-m.tickets.Min()); m.gate > 0 && !committed && m.tickets.Ticket(i) < threshold {
		// Reject draws in the lower half of the ticket range (below the
		// midpoint of the minimum and the mean). The paper's min-shift
		// alone leaves every non-minimum item with some winning
		// probability, and over thousands of draws even well-accessed
		// items accumulate period stretches whose staleness lingers for a
		// full update period. Query-heavy items live near the ticket
		// minimum (Eq. 6 drives them down on every access) while the cold
		// mass sits near or above the mean, so this gate excludes exactly
		// the items whose staleness queries would observe, keeping the
		// realized drop distribution aligned with the access distribution
		// (paper Fig. 3). Items already degraded beyond 2× bypass the gate:
		// without that hysteresis, items whose tickets hover at the
		// threshold churn between half-degraded and restored — paying for
		// most of their updates while still serving stale reads.
		return i, false
	}
	m.current[i] *= 1 + m.cdu
	if cap := m.ideal[i] * m.maxDegrade; m.current[i] > cap {
		m.current[i] = cap
	}
	m.degraded[i] = struct{}{}
	m.degrades++
	return i, true
}

// drawVictim picks a candidate index: a lottery draw over the min-shifted
// tickets, or — under WithStrideSelection — the next client of a stride
// scheduler rebuilt periodically from the same shifted weights.
func (m *Modulator) drawVictim() int {
	if !m.useStride {
		return m.tickets.Sample(m.rng.Float64())
	}
	if m.strideAge >= m.strideRebuildEvery || m.stride == nil || m.stride.Len() == 0 {
		m.rebuildStride()
	}
	m.strideAge++
	if m.stride.Len() == 0 {
		// Degenerate weights: fall back to the lottery's uniform draw.
		return m.tickets.Sample(m.rng.Float64())
	}
	return m.stride.Next()
}

func (m *Modulator) rebuildStride() {
	m.stride = lottery.NewStride()
	m.strideAge = 0
	type iw struct {
		i int
		w float64
	}
	var ws []iw
	for i := 0; i < m.tickets.Len(); i++ {
		if w := m.tickets.Weight(i); w > 1e-12 {
			ws = append(ws, iw{i, w})
		}
	}
	// Deterministic join order for reproducibility.
	sort.Slice(ws, func(a, b int) bool { return ws[a].i < ws[b].i })
	for _, x := range ws {
		m.stride.Join(x.i, x.w)
	}
}

// DegradeN performs n lottery draws (the controller's actuation batch).
// It returns how many draws stretched a period.
func (m *Modulator) DegradeN(n int) int {
	hit := 0
	for k := 0; k < n; k++ {
		if _, ok := m.Degrade(); ok {
			hit++
		}
	}
	return hit
}

// Upgrade shrinks every degraded period one step toward its ideal
// (Eq. 10): pc ← max(pi, pc − C_uu·pi). Together with the multiplicative
// Degrade step this arithmetic decrement makes the modulation bistable in
// exactly the way the paper needs: a lightly-degraded item (a hot item
// that picked up stray lottery draws, pc ≤ 2·pi) snaps back to its ideal
// period within a couple of sweeps, while a deeply-degraded cold item
// (pc ≫ pi) barely moves — so the lottery decides which items stay
// degraded and the Upgrade signal cannot erase the controller's
// accumulated load shedding. Items reaching their ideal period leave the
// degraded set. It returns how many items moved.
func (m *Modulator) Upgrade() int {
	moved := 0
	for i := range m.degraded {
		next := m.current[i] - m.cuu*m.ideal[i]
		if next <= m.ideal[i] {
			next = m.ideal[i]
			delete(m.degraded, i)
		}
		if next != m.current[i] {
			moved++
		}
		m.current[i] = next
	}
	m.upgrades++
	return moved
}

// DropRatio returns the fraction of source updates currently being skipped
// for item i: 1 − pi/pc.
func (m *Modulator) DropRatio(i int) float64 {
	if math.IsInf(m.ideal[i], 1) {
		return 0
	}
	return 1 - m.ideal[i]/m.current[i]
}
