package ufm

import (
	"math"
	"testing"
	"testing/quick"

	"unitdb/internal/stats"
)

func newMod(periods ...float64) *Modulator {
	return New(periods, stats.NewRNG(1))
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(nil, stats.NewRNG(1)) },
		func() { newMod(0) },
		func() { newMod(-1) },
		func() { New([]float64{1}, stats.NewRNG(1), WithConstants(0, 0.1, 0.5)) },
		func() { New([]float64{1}, stats.NewRNG(1), WithConstants(0.9, 0, 0.5)) },
		func() { New([]float64{1}, stats.NewRNG(1), WithConstants(0.9, 0.1, 2)) },
		func() { New([]float64{1}, stats.NewRNG(1), WithMaxDegrade(1)) },
		func() { New([]float64{1}, stats.NewRNG(1), WithGate(1)) },
		func() { New([]float64{1}, stats.NewRNG(1), WithGate(-0.1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction accepted")
				}
			}()
			fn()
		}()
	}
}

func TestInitialState(t *testing.T) {
	m := newMod(10, 20, math.Inf(1))
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 3; i++ {
		if m.Ticket(i) != 0 {
			t.Fatal("tickets must start at zero")
		}
		if m.Period(i) != m.IdealPeriod(i) {
			t.Fatal("current period must start at ideal")
		}
		if m.DropRatio(i) != 0 {
			t.Fatal("no drops initially")
		}
	}
	if m.DegradedCount() != 0 {
		t.Fatal("degraded set must start empty")
	}
}

func TestOnQueryAccessEquation(t *testing.T) {
	// Eq. 6 + 8: T <- T*0.9 - qe/qt.
	m := newMod(10)
	m.OnQueryAccess(0, 2, 10) // DT = 0.2
	if got := m.Ticket(0); math.Abs(got-(-0.2)) > 1e-12 {
		t.Fatalf("ticket = %v, want -0.2", got)
	}
	m.OnQueryAccess(0, 2, 10)
	want := -0.2*0.9 - 0.2
	if got := m.Ticket(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ticket = %v, want %v", got, want)
	}
}

func TestOnQueryAccessPanicsOnBadDeadline(t *testing.T) {
	m := newMod(10)
	defer func() {
		if recover() == nil {
			t.Fatal("qt=0 accepted")
		}
	}()
	m.OnQueryAccess(0, 1, 0)
}

func TestOnUpdateSigmoid(t *testing.T) {
	// Eq. 7 + 8: the first update has ue == ue_avg, so IT = 0.5.
	m := newMod(10)
	m.OnUpdate(0, 3)
	if got := m.Ticket(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ticket = %v, want 0.5", got)
	}
	if m.AvgUpdateExec() != 3 {
		t.Fatalf("ue_avg = %v", m.AvgUpdateExec())
	}
	// An expensive update (ue >> avg) adds close to 1; a cheap one close
	// to 0.
	m2 := newMod(10, 10)
	m2.OnUpdate(0, 1)
	m2.OnUpdate(1, 100) // avg becomes 50.5; sigmoid(100-50.5) ~ 1
	if got := m2.Ticket(1); got < 0.99 {
		t.Fatalf("expensive update IT = %v, want ~1", got)
	}
}

func TestTicketForgettingConverges(t *testing.T) {
	// The per-event forgetting bounds the ticket at ±magnitude/(1-Cforget).
	m := newMod(10)
	for i := 0; i < 1000; i++ {
		m.OnQueryAccess(0, 1, 10) // DT = 0.1, bound = -1
	}
	if got := m.Ticket(0); math.Abs(got-(-1)) > 1e-6 {
		t.Fatalf("ticket fixed point = %v, want -1", got)
	}
	updates, queries := m.EventsSeen()
	if updates != 0 || queries != 1000 {
		t.Fatalf("EventsSeen = %d,%d", updates, queries)
	}
}

func TestDegradeStretchesPeriod(t *testing.T) {
	m := New([]float64{10}, stats.NewRNG(1), WithGate(0))
	m.OnUpdate(0, 1) // make it the (only) lottery mass
	victim, ok := m.Degrade()
	if !ok || victim != 0 {
		t.Fatalf("Degrade = %d,%v", victim, ok)
	}
	if got := m.Period(0); math.Abs(got-11) > 1e-9 {
		t.Fatalf("period = %v, want 11 (Eq. 9 with C_du=0.1)", got)
	}
	if m.DegradedCount() != 1 {
		t.Fatal("degraded set not updated")
	}
	if got := m.DropRatio(0); math.Abs(got-(1-10.0/11)) > 1e-9 {
		t.Fatalf("DropRatio = %v", got)
	}
}

func TestDegradeSkipsFeedlessItems(t *testing.T) {
	m := New([]float64{math.Inf(1)}, stats.NewRNG(1), WithGate(0))
	if _, ok := m.Degrade(); ok {
		t.Fatal("degraded an item without an update feed")
	}
	if m.DropRatio(0) != 0 {
		t.Fatal("feedless item has a drop ratio")
	}
}

func TestDegradeCap(t *testing.T) {
	m := New([]float64{10}, stats.NewRNG(1), WithGate(0), WithMaxDegrade(4))
	m.OnUpdate(0, 1)
	m.DegradeN(1000)
	if got := m.Period(0); got != 40 {
		t.Fatalf("period = %v, want capped at 40", got)
	}
}

func TestGateProtectsHotItems(t *testing.T) {
	// Item 0 is hot (many accesses, ticket at the minimum); item 1 is cold
	// and update-heavy. With the gate, only item 1 may be degraded.
	m := New([]float64{10, 10}, stats.NewRNG(1)) // default gate 0.5
	for i := 0; i < 200; i++ {
		m.OnQueryAccess(0, 1, 2) // hot: ticket -> -2.5
	}
	for i := 0; i < 10; i++ {
		m.OnUpdate(1, 1) // cold: ticket -> ~+3.2
	}
	hits := m.DegradeN(500)
	if hits == 0 {
		t.Fatal("no victims at all")
	}
	if m.Period(0) != 10 {
		t.Fatalf("hot item degraded to period %v", m.Period(0))
	}
	if m.Period(1) <= 10 {
		t.Fatal("cold item not degraded")
	}
}

func TestHysteresisBypassesGate(t *testing.T) {
	// Degrade an item deep while eligible, then make it ineligible; it must
	// continue to accept degradation (committed victims stay victims).
	m := New([]float64{10, 10}, stats.NewRNG(1))
	m.OnUpdate(0, 1)
	for m.Period(0) <= 25 { // push beyond 2x
		if _, ok := m.Degrade(); !ok {
			t.Fatal("initial degradation failed")
		}
	}
	// Now make item 0's ticket the minimum (ineligible by gate).
	for i := 0; i < 300; i++ {
		m.OnQueryAccess(0, 1, 2)
	}
	for i := 0; i < 10; i++ {
		m.OnUpdate(1, 1)
	}
	before := m.Period(0)
	// Draws that land on item 0 must still stick.
	m.DegradeN(500)
	if m.Period(0) < before {
		t.Fatal("period shrank without an upgrade")
	}
	if m.Period(0) == before {
		t.Skip("lottery never drew the committed item; acceptable but uninformative")
	}
}

func TestUpgradeArithmeticStep(t *testing.T) {
	m := New([]float64{10}, stats.NewRNG(1), WithGate(0))
	m.OnUpdate(0, 1)
	m.DegradeN(8) // period = 10*1.1^8 ~ 21.4
	p := m.Period(0)
	moved := m.Upgrade()
	if moved != 1 {
		t.Fatalf("moved = %d", moved)
	}
	if got := m.Period(0); math.Abs(got-(p-5)) > 1e-9 {
		t.Fatalf("period = %v, want %v (Eq. 10: pc - C_uu*pi)", got, p-5)
	}
	// Repeated upgrades restore the ideal period and clear the set.
	for i := 0; i < 10; i++ {
		m.Upgrade()
	}
	if m.Period(0) != 10 || m.DegradedCount() != 0 {
		t.Fatalf("not restored: period=%v degraded=%d", m.Period(0), m.DegradedCount())
	}
}

func TestStatsCounters(t *testing.T) {
	m := New([]float64{10}, stats.NewRNG(1), WithGate(0))
	m.OnUpdate(0, 1)
	m.DegradeN(3)
	m.Upgrade()
	deg, upg := m.Stats()
	if deg != 3 || upg != 1 {
		t.Fatalf("stats = %d,%d", deg, upg)
	}
}

func TestSetIdealPeriodPreservesRatio(t *testing.T) {
	m := New([]float64{10}, stats.NewRNG(1), WithGate(0))
	m.OnUpdate(0, 1)
	m.DegradeN(8)
	ratio := m.Period(0) / m.IdealPeriod(0)
	m.SetIdealPeriod(0, 20)
	if m.IdealPeriod(0) != 20 {
		t.Fatal("ideal not updated")
	}
	if math.Abs(m.Period(0)/20-ratio) > 1e-9 {
		t.Fatalf("degradation ratio not preserved: %v vs %v", m.Period(0)/20, ratio)
	}
	// From infinity: current snaps to the new ideal.
	m2 := newMod(math.Inf(1))
	m2.SetIdealPeriod(0, 5)
	if m2.Period(0) != 5 {
		t.Fatalf("period = %v", m2.Period(0))
	}
}

func TestPeriodNeverBelowIdealProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(16)
		periods := make([]float64, n)
		for i := range periods {
			periods[i] = 1 + rng.Float64()*100
		}
		m := New(periods, rng.Split(), WithGate(0))
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				m.OnQueryAccess(i, rng.Float64()*5, 1+rng.Float64()*10)
			case 1:
				m.OnUpdate(i, rng.Float64()*10)
			case 2:
				m.Degrade()
			case 3:
				m.Upgrade()
			}
			for j := 0; j < n; j++ {
				if m.Period(j) < m.IdealPeriod(j)*(1-1e-12) {
					return false
				}
				if m.Period(j) > m.IdealPeriod(j)*DefaultMaxDegrade*(1+1e-9) {
					return false
				}
				if r := m.DropRatio(j); r < 0 || r >= 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStrideSelectionAblation(t *testing.T) {
	// Stride selection must, like the lottery, direct degradation at the
	// high-ticket (cold, update-heavy) items and spare the hot item.
	m := New([]float64{10, 10, 10}, stats.NewRNG(1), WithStrideSelection(16))
	for i := 0; i < 200; i++ {
		m.OnQueryAccess(0, 1, 2) // hot
	}
	for i := 0; i < 10; i++ {
		m.OnUpdate(1, 1)
		m.OnUpdate(2, 1)
	}
	hits := m.DegradeN(200)
	if hits == 0 {
		t.Fatal("stride selection degraded nothing")
	}
	if m.Period(0) != 10 {
		t.Fatalf("hot item degraded under stride selection: %v", m.Period(0))
	}
	if m.Period(1) <= 10 && m.Period(2) <= 10 {
		t.Fatal("no cold item degraded")
	}
}

func TestStrideSelectionDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		m := New([]float64{10, 10}, stats.NewRNG(9), WithStrideSelection(8))
		m.OnUpdate(0, 1)
		m.OnUpdate(1, 2)
		m.DegradeN(50)
		return m.Period(0), m.Period(1)
	}
	a0, a1 := run()
	b0, b1 := run()
	if a0 != b0 || a1 != b1 {
		t.Fatal("stride selection not deterministic")
	}
}
