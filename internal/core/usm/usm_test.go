package usm

import (
	"math"
	"testing"
	"testing/quick"

	"unitdb/internal/txn"
)

func TestWeightsValidate(t *testing.T) {
	if err := (Weights{}).Validate(); err != nil {
		t.Fatalf("zero weights invalid: %v", err)
	}
	if err := (Weights{Cr: 1, Cfm: 2, Cfs: 3}).Validate(); err != nil {
		t.Fatalf("positive weights invalid: %v", err)
	}
	if err := (Weights{Cr: -1}).Validate(); err == nil {
		t.Fatal("negative penalty accepted")
	}
}

func TestWeightsZeroAndRange(t *testing.T) {
	if !(Weights{}).Zero() {
		t.Fatal("zero weights not detected")
	}
	if (Weights{Cfs: 0.1}).Zero() {
		t.Fatal("non-zero weights reported zero")
	}
	w := Weights{Cr: 0.5, Cfm: 2, Cfs: 1}
	if w.MaxPenalty() != 2 {
		t.Fatalf("MaxPenalty = %v", w.MaxPenalty())
	}
	if w.Range() != 3 {
		t.Fatalf("Range = %v", w.Range())
	}
	if (Weights{}).Range() != 1 {
		t.Fatal("naive range must be 1")
	}
}

func TestCountsRecordAndTotal(t *testing.T) {
	var c Counts
	c.Record(txn.OutcomeSuccess)
	c.Record(txn.OutcomeSuccess)
	c.Record(txn.OutcomeRejected)
	c.Record(txn.OutcomeDMF)
	c.Record(txn.OutcomeDSF)
	if c.Success != 2 || c.Rejected != 1 || c.DMF != 1 || c.DSF != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Total() != 5 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestRecordPendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("recording pending outcome did not panic")
		}
	}()
	var c Counts
	c.Record(txn.OutcomePending)
}

func TestRatios(t *testing.T) {
	c := Counts{Success: 6, Rejected: 2, DMF: 1, DSF: 1}
	rs, rr, rfm, rfs := c.Ratios()
	if rs != 0.6 || rr != 0.2 || rfm != 0.1 || rfs != 0.1 {
		t.Fatalf("ratios = %v %v %v %v", rs, rr, rfm, rfs)
	}
	rs, rr, rfm, rfs = Counts{}.Ratios()
	if rs != 0 || rr != 0 || rfm != 0 || rfs != 0 {
		t.Fatal("empty counts should give zero ratios")
	}
}

func TestUSMEquation(t *testing.T) {
	// Eq. 5 on a worked example.
	c := Counts{Success: 5, Rejected: 2, DMF: 2, DSF: 1}
	w := Weights{Cr: 0.5, Cfm: 1, Cfs: 2}
	// (5 - 0.5*2 - 1*2 - 2*1) / 10 = 0/10 = 0
	if got := c.USM(w); got != 0 {
		t.Fatalf("USM = %v, want 0", got)
	}
	// Naive: USM == success ratio.
	if got := c.USM(Weights{}); got != 0.5 {
		t.Fatalf("naive USM = %v, want 0.5", got)
	}
	if (Counts{}).USM(w) != 0 {
		t.Fatal("empty counts should give 0")
	}
}

func TestUSMBoundsProperty(t *testing.T) {
	// §2.3.2: USM always lies in [-max(Cr,Cfm,Cfs), 1].
	f := func(s, r, fm, fs uint8, cr, cfm, cfs float64) bool {
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			if !(x < 100) { // also catches NaN and Inf
				return math.Mod(x, 100)
			}
			return x
		}
		w := Weights{Cr: clamp(cr), Cfm: clamp(cfm), Cfs: clamp(cfs)}
		c := Counts{Success: int(s), Rejected: int(r), DMF: int(fm), DSF: int(fs)}
		if c.Total() == 0 {
			return true
		}
		u := c.USM(w)
		return u <= 1+1e-9 && u >= -w.MaxPenalty()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUSMExtremes(t *testing.T) {
	w := Weights{Cr: 1, Cfm: 3, Cfs: 2}
	all := Counts{Success: 10}
	if all.USM(w) != 1 {
		t.Fatal("all-success must give 1")
	}
	worst := Counts{DMF: 10}
	if worst.USM(w) != -3 {
		t.Fatalf("all-DMF = %v, want -3 (the most annoying failure)", worst.USM(w))
	}
}

func TestAccountantWindows(t *testing.T) {
	a := NewAccountant(Weights{Cfm: 2})
	a.Record(txn.OutcomeSuccess)
	a.Record(txn.OutcomeDMF)
	if a.Window().Total() != 2 || a.Total().Total() != 2 {
		t.Fatal("window/total mismatch")
	}
	win := a.Rollover()
	if win.Total() != 2 {
		t.Fatalf("rolled window total = %d", win.Total())
	}
	if a.Window().Total() != 0 {
		t.Fatal("rollover did not reset the window")
	}
	a.Record(txn.OutcomeSuccess)
	if a.Total().Total() != 3 {
		t.Fatal("cumulative lost after rollover")
	}
	if got := a.TotalUSM(); math.Abs(got-(2.0-2.0)/3.0) > 1e-12 {
		t.Fatalf("TotalUSM = %v", got)
	}
	if a.Weights().Cfm != 2 {
		t.Fatal("weights accessor wrong")
	}
}

func TestAccountantRejectsBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weights accepted")
		}
	}()
	NewAccountant(Weights{Cr: -1})
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Success: 1, Rejected: 2}
	a.Add(Counts{Success: 3, DMF: 4, DSF: 5})
	if a.Success != 4 || a.Rejected != 2 || a.DMF != 4 || a.DSF != 5 {
		t.Fatalf("Add result %+v", a)
	}
}
