package usm

import (
	"fmt"

	"unitdb/internal/txn"
)

// The paper evaluates a single user-preference vector and notes (§3.1)
// that "our framework can be easily extended to support multiple
// preferences". This file is that extension: queries carry a preference
// class, each class has its own penalty weights, and the satisfaction
// metric aggregates the per-query gains and penalties exactly as Eq. 2
// prescribes — USM_total is a sum over queries, so heterogeneous weights
// drop in without changing the metric's structure.

// Tally accumulates the weighted components of Eq. 4 across queries with
// possibly different weights: the success gain and the three penalty sums.
type Tally struct {
	Counts Counts
	Gain   float64 // Σ G_s over successes (G_s = 1 each)
	RCost  float64 // Σ C_r over rejections
	FmCost float64 // Σ C_fm over deadline misses
	FsCost float64 // Σ C_fs over stale reads
}

// Record tallies one outcome under the given weights.
func (t *Tally) Record(o txn.Outcome, w Weights) {
	t.Counts.Record(o)
	switch o {
	case txn.OutcomeSuccess:
		t.Gain++
	case txn.OutcomeRejected:
		t.RCost += w.Cr
	case txn.OutcomeDMF:
		t.FmCost += w.Cfm
	case txn.OutcomeDSF:
		t.FsCost += w.Cfs
	}
}

// Add accumulates other into t.
func (t *Tally) Add(other Tally) {
	t.Counts.Add(other.Counts)
	t.Gain += other.Gain
	t.RCost += other.RCost
	t.FmCost += other.FmCost
	t.FsCost += other.FsCost
}

// USM evaluates Eq. 5 over the tally: (gain − penalties) / submitted.
func (t Tally) USM() float64 {
	n := t.Counts.Total()
	if n == 0 {
		return 0
	}
	return (t.Gain - t.RCost - t.FmCost - t.FsCost) / float64(n)
}

// AvgCosts returns the average rejection, DMF and DSF costs (R, F_m, F_s
// of Eq. 5) — the quantities the Adaptive Allocation Algorithm compares.
func (t Tally) AvgCosts() (r, fm, fs float64) {
	n := t.Counts.Total()
	if n == 0 {
		return 0, 0, 0
	}
	f := float64(n)
	return t.RCost / f, t.FmCost / f, t.FsCost / f
}

// ClassAccountant tracks outcomes for a population with multiple
// preference classes: cumulative and windowed weighted tallies plus
// per-class outcome counts.
type ClassAccountant struct {
	classes []Weights
	def     Weights

	total    Tally
	window   Tally
	perClass []Counts
}

// NewClassAccountant creates an accountant with the given preference
// classes; class -1 (or an empty class list) uses the default weights.
func NewClassAccountant(def Weights, classes []Weights) *ClassAccountant {
	if err := def.Validate(); err != nil {
		panic(err)
	}
	for i, w := range classes {
		if err := w.Validate(); err != nil {
			panic(fmt.Sprintf("usm: class %d: %v", i, err))
		}
	}
	return &ClassAccountant{
		classes:  classes,
		def:      def,
		perClass: make([]Counts, len(classes)),
	}
}

// WeightsFor resolves a class index to its weights; out-of-range indices
// (including the conventional -1) fall back to the default.
func (a *ClassAccountant) WeightsFor(class int) Weights {
	if class >= 0 && class < len(a.classes) {
		return a.classes[class]
	}
	return a.def
}

// Record tallies one outcome for a query of the given class.
func (a *ClassAccountant) Record(o txn.Outcome, class int) {
	w := a.WeightsFor(class)
	a.total.Record(o, w)
	a.window.Record(o, w)
	if class >= 0 && class < len(a.perClass) {
		a.perClass[class].Record(o)
	}
}

// Total returns the cumulative weighted tally.
func (a *ClassAccountant) Total() Tally { return a.total }

// Rollover returns the window tally and starts a new window.
func (a *ClassAccountant) Rollover() Tally {
	w := a.window
	a.window = Tally{}
	return w
}

// PerClass returns a copy of the per-class outcome counts.
func (a *ClassAccountant) PerClass() []Counts {
	out := make([]Counts, len(a.perClass))
	copy(out, a.perClass)
	return out
}

// Classes returns the class weight vectors.
func (a *ClassAccountant) Classes() []Weights {
	out := make([]Weights, len(a.classes))
	copy(out, a.classes)
	return out
}
