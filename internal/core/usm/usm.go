// Package usm implements the User Satisfaction Metric of paper §2.3: every
// user query earns a success gain G_s = 1 or pays an outcome-specific
// penalty (C_r for rejections, C_fm for deadline-missed failures, C_fs for
// data-stale failures), and the system-wide metric is the average
// USM = S − R − F_m − F_s (Eq. 5), bounded by [−max(C_r,C_fm,C_fs), 1].
package usm

import (
	"fmt"

	"unitdb/internal/txn"
)

// Weights are the user-preference parameters of the metric. The success
// gain is fixed at 1 and the penalties are normalized to it (paper §2.3.1).
type Weights struct {
	Cr  float64 // rejection penalty
	Cfm float64 // deadline-missed failure penalty
	Cfs float64 // data-stale failure penalty
}

// Validate returns an error when any penalty is negative.
func (w Weights) Validate() error {
	if w.Cr < 0 || w.Cfm < 0 || w.Cfs < 0 {
		return fmt.Errorf("usm: negative penalty in %+v", w)
	}
	return nil
}

// Zero reports whether all penalties are zero — the "naive" setting where
// USM degenerates to the plain success ratio (paper §4.3).
func (w Weights) Zero() bool { return w.Cr == 0 && w.Cfm == 0 && w.Cfs == 0 }

// MaxPenalty returns max(C_r, C_fm, C_fs).
func (w Weights) MaxPenalty() float64 {
	m := w.Cr
	if w.Cfm > m {
		m = w.Cfm
	}
	if w.Cfs > m {
		m = w.Cfs
	}
	return m
}

// Range returns the width of the attainable USM interval,
// 1 + max(C_r, C_fm, C_fs) (paper §2.3.2). UNIT's controller uses 1% of
// this as its trigger threshold.
func (w Weights) Range() float64 { return 1 + w.MaxPenalty() }

// Counts tallies query outcomes.
type Counts struct {
	Success  int
	Rejected int
	DMF      int
	DSF      int
}

// Total returns the number of submitted queries covered by the counts.
func (c Counts) Total() int { return c.Success + c.Rejected + c.DMF + c.DSF }

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Success += other.Success
	c.Rejected += other.Rejected
	c.DMF += other.DMF
	c.DSF += other.DSF
}

// Record tallies one outcome. Recording a pending outcome panics: a query
// must be finalized before it is counted.
func (c *Counts) Record(o txn.Outcome) {
	switch o {
	case txn.OutcomeSuccess:
		c.Success++
	case txn.OutcomeRejected:
		c.Rejected++
	case txn.OutcomeDMF:
		c.DMF++
	case txn.OutcomeDSF:
		c.DSF++
	default:
		panic(fmt.Sprintf("usm: recording non-final outcome %v", o))
	}
}

// Ratios returns the outcome ratios R_s, R_r, R_fm, R_fs (each outcome
// count over total submitted). All zero when no queries were submitted.
func (c Counts) Ratios() (rs, rr, rfm, rfs float64) {
	n := c.Total()
	if n == 0 {
		return 0, 0, 0, 0
	}
	f := float64(n)
	return float64(c.Success) / f, float64(c.Rejected) / f, float64(c.DMF) / f, float64(c.DSF) / f
}

// USM evaluates Eq. 5 over the counts: average success gain minus average
// weighted penalties. It returns 0 when no queries were submitted.
func (c Counts) USM(w Weights) float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	total := float64(c.Success) - w.Cr*float64(c.Rejected) - w.Cfm*float64(c.DMF) - w.Cfs*float64(c.DSF)
	return total / float64(n)
}

// Accountant tracks outcome counts both cumulatively and over the current
// control window, on behalf of the feedback controller.
type Accountant struct {
	weights Weights
	total   Counts
	window  Counts
}

// NewAccountant creates an accountant with the given weights.
// It panics on invalid weights.
func NewAccountant(w Weights) *Accountant {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	return &Accountant{weights: w}
}

// Weights returns the metric weights.
func (a *Accountant) Weights() Weights { return a.weights }

// Record tallies one finalized outcome into both views.
func (a *Accountant) Record(o txn.Outcome) {
	a.total.Record(o)
	a.window.Record(o)
}

// Total returns the cumulative counts.
func (a *Accountant) Total() Counts { return a.total }

// Window returns the counts since the last Rollover without resetting.
func (a *Accountant) Window() Counts { return a.window }

// Rollover returns the current window counts and starts a new window.
func (a *Accountant) Rollover() Counts {
	w := a.window
	a.window = Counts{}
	return w
}

// TotalUSM evaluates the cumulative USM.
func (a *Accountant) TotalUSM() float64 { return a.total.USM(a.weights) }
