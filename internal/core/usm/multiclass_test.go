package usm

import (
	"math"
	"testing"

	"unitdb/internal/txn"
)

func TestTallyRecord(t *testing.T) {
	var tl Tally
	w := Weights{Cr: 0.5, Cfm: 1, Cfs: 2}
	tl.Record(txn.OutcomeSuccess, w)
	tl.Record(txn.OutcomeRejected, w)
	tl.Record(txn.OutcomeDMF, w)
	tl.Record(txn.OutcomeDSF, w)
	if tl.Gain != 1 || tl.RCost != 0.5 || tl.FmCost != 1 || tl.FsCost != 2 {
		t.Fatalf("tally = %+v", tl)
	}
	// USM = (1 - 0.5 - 1 - 2)/4
	if got := tl.USM(); math.Abs(got-(-2.5/4)) > 1e-12 {
		t.Fatalf("USM = %v", got)
	}
	r, fm, fs := tl.AvgCosts()
	if r != 0.125 || fm != 0.25 || fs != 0.5 {
		t.Fatalf("avg costs = %v %v %v", r, fm, fs)
	}
}

func TestTallyMatchesCountsUSMForUniformWeights(t *testing.T) {
	// With one weight vector, Tally.USM must equal Counts.USM — the
	// uniform experiments are unchanged by the multi-class extension.
	w := Weights{Cr: 0.3, Cfm: 0.9, Cfs: 0.1}
	var tl Tally
	var c Counts
	outcomes := []txn.Outcome{
		txn.OutcomeSuccess, txn.OutcomeSuccess, txn.OutcomeDMF,
		txn.OutcomeRejected, txn.OutcomeDSF, txn.OutcomeSuccess,
	}
	for _, o := range outcomes {
		tl.Record(o, w)
		c.Record(o)
	}
	if math.Abs(tl.USM()-c.USM(w)) > 1e-12 {
		t.Fatalf("tally %v vs counts %v", tl.USM(), c.USM(w))
	}
}

func TestTallyAdd(t *testing.T) {
	w := Weights{Cr: 1}
	var a, b Tally
	a.Record(txn.OutcomeSuccess, w)
	b.Record(txn.OutcomeRejected, w)
	a.Add(b)
	if a.Counts.Total() != 2 || a.Gain != 1 || a.RCost != 1 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestEmptyTally(t *testing.T) {
	var tl Tally
	if tl.USM() != 0 {
		t.Fatal("empty tally USM")
	}
	r, fm, fs := tl.AvgCosts()
	if r != 0 || fm != 0 || fs != 0 {
		t.Fatal("empty tally costs")
	}
}

func TestClassAccountant(t *testing.T) {
	classes := []Weights{
		{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}, // latency-sensitive
		{Cr: 0.2, Cfm: 0.2, Cfs: 0.8}, // freshness-sensitive
	}
	a := NewClassAccountant(Weights{}, classes)
	a.Record(txn.OutcomeDMF, 0) // costs 0.8
	a.Record(txn.OutcomeDMF, 1) // costs 0.2
	a.Record(txn.OutcomeSuccess, 1)
	a.Record(txn.OutcomeDSF, -1) // default class: zero weights

	total := a.Total()
	if total.Counts.Total() != 4 {
		t.Fatalf("total = %+v", total.Counts)
	}
	if math.Abs(total.FmCost-1.0) > 1e-12 {
		t.Fatalf("FmCost = %v, want 0.8+0.2", total.FmCost)
	}
	if total.FsCost != 0 {
		t.Fatalf("default-class DSF charged %v", total.FsCost)
	}
	per := a.PerClass()
	if per[0].DMF != 1 || per[1].DMF != 1 || per[1].Success != 1 {
		t.Fatalf("per-class = %+v", per)
	}
	// Window rollover.
	win := a.Rollover()
	if win.Counts.Total() != 4 {
		t.Fatal("window")
	}
	if a.Rollover().Counts.Total() != 0 {
		t.Fatal("rollover did not reset")
	}
	if a.Total().Counts.Total() != 4 {
		t.Fatal("total lost")
	}
}

func TestClassAccountantWeightsFor(t *testing.T) {
	def := Weights{Cr: 9}
	a := NewClassAccountant(def, []Weights{{Cfm: 3}})
	if a.WeightsFor(0).Cfm != 3 {
		t.Fatal("class 0")
	}
	for _, c := range []int{-1, 1, 99} {
		if a.WeightsFor(c) != def {
			t.Fatalf("class %d did not fall back to default", c)
		}
	}
	if len(a.Classes()) != 1 {
		t.Fatal("Classes")
	}
}

func TestClassAccountantValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewClassAccountant(Weights{Cr: -1}, nil) },
		func() { NewClassAccountant(Weights{}, []Weights{{Cfm: -1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid accountant accepted")
				}
			}()
			fn()
		}()
	}
}
