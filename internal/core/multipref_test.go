package core

import (
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/workload"
)

// The multi-preference extension (paper §3.1: "our framework can be easily
// extended to support multiple preferences"): a heterogeneous population
// where each query carries its own penalty weights.

func mixedTrace(t *testing.T) *workload.Workload {
	t.Helper()
	qc := workload.SmallQueryConfig()
	qc.NumQueries = 3000
	qc.Duration = 12000
	qc.PreferenceMix = []workload.PreferenceClass{
		{Weights: usm.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}, Fraction: 0.5}, // latency-sensitive
		{Weights: usm.Weights{Cr: 0.2, Cfm: 0.2, Cfs: 0.8}, Fraction: 0.5}, // freshness-sensitive
	}
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(workload.Med, workload.Uniform), 43)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPreferenceAssignment(t *testing.T) {
	w := mixedTrace(t)
	if len(w.Preferences) != 2 {
		t.Fatalf("classes = %d", len(w.Preferences))
	}
	counts := map[int]int{}
	for _, q := range w.Queries {
		counts[q.PrefClass]++
	}
	if counts[0] < 1000 || counts[1] < 1000 {
		t.Fatalf("class split = %v, want roughly even", counts)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedPopulationEndToEnd(t *testing.T) {
	w := mixedTrace(t)
	p := New(DefaultConfig(usm.Weights{}))
	e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerClass) != 2 {
		t.Fatalf("per-class results = %d", len(r.PerClass))
	}
	total := 0
	for _, c := range r.PerClass {
		total += c.Counts.Total()
	}
	if total != r.Counts.Total() {
		t.Fatalf("class counts %d != total %d", total, r.Counts.Total())
	}
	// The USM reported is the weighted Eq. 2 sum: each class's outcomes
	// under its own weights, averaged over all queries.
	want := 0.0
	n := 0
	for _, c := range r.PerClass {
		want += c.ClassUSM * float64(c.Counts.Total())
		n += c.Counts.Total()
	}
	want /= float64(n)
	if diff := r.USM - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("USM %v != per-class aggregate %v", r.USM, want)
	}
}

func TestUniformRunsUnchangedByExtension(t *testing.T) {
	// A workload without preference classes must behave exactly as before
	// the extension: PerClass empty, USM = Counts.USM(weights).
	w := smallTrace(t, workload.Med, workload.Uniform)
	weights := usm.Weights{Cr: 0.2, Cfm: 0.8, Cfs: 0.2}
	p := New(DefaultConfig(weights))
	e, err := engine.New(engine.NewConfig(w, weights, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerClass) != 0 {
		t.Fatalf("uniform run has %d classes", len(r.PerClass))
	}
	if diff := r.USM - r.Counts.USM(weights); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("USM %v != counts USM %v", r.USM, r.Counts.USM(weights))
	}
}

func TestMixedPopulationServesBothClasses(t *testing.T) {
	// UNIT run on the mixed population: both classes must see substantial
	// successes, and the latency-sensitive class must not be starved of
	// deadline protection (its DMF ratio should not dwarf the other's).
	w := mixedTrace(t)
	p := New(DefaultConfig(usm.Weights{}))
	e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range r.PerClass {
		if c.Counts.Success == 0 {
			t.Fatalf("class %d starved: %+v", i, c.Counts)
		}
	}
}
