package control

import (
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/stats"
)

func newLBC(w usm.Weights) *LBC { return New(w, stats.NewRNG(1)) }

func TestThresholdIsOnePercentOfRange(t *testing.T) {
	l := newLBC(usm.Weights{Cr: 1, Cfm: 4, Cfs: 2})
	if got, want := l.Threshold(), 0.01*(1+4); got != want {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
	l2 := New(usm.Weights{}, stats.NewRNG(1), WithThresholdFraction(0.05))
	if l2.Threshold() != 0.05 {
		t.Fatalf("custom threshold = %v", l2.Threshold())
	}
}

func TestOptionValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(usm.Weights{Cr: -1}, stats.NewRNG(1)) },
		func() { New(usm.Weights{}, stats.NewRNG(1), WithThresholdFraction(0)) },
		func() { New(usm.Weights{}, stats.NewRNG(1), WithThresholdFraction(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction accepted")
				}
			}()
			fn()
		}()
	}
}

func TestDropTriggered(t *testing.T) {
	l := newLBC(usm.Weights{}) // threshold 0.01
	if l.DropTriggered(0.9) {
		t.Fatal("first window must only prime")
	}
	if l.DropTriggered(0.895) {
		t.Fatal("drop below threshold triggered")
	}
	if !l.DropTriggered(0.80) {
		t.Fatal("large drop did not trigger")
	}
	// Rising USM never triggers.
	if l.DropTriggered(0.95) {
		t.Fatal("rise triggered")
	}
	_, trig := l.Stats()
	if trig != 1 {
		t.Fatalf("trigger count = %d", trig)
	}
}

func TestDecideDominantCostMapping(t *testing.T) {
	// Fig. 2: R -> Loosen; Fm -> Degrade+Tighten; Fs -> Upgrade.
	cases := []struct {
		name   string
		counts usm.Counts
		want   Action
	}{
		{"rejections dominate", usm.Counts{Success: 5, Rejected: 4, DMF: 1}, Action{LoosenAC: true}},
		{"DMF dominates", usm.Counts{Success: 5, Rejected: 1, DMF: 4}, Action{DegradeUpdate: true, TightenAC: true}},
		{"DSF dominates", usm.Counts{Success: 5, DSF: 4, DMF: 1}, Action{UpgradeUpdate: true}},
	}
	for _, c := range cases {
		l := newLBC(usm.Weights{})
		if got := l.Decide(c.counts); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDecideUsesWeightedCosts(t *testing.T) {
	// Raw ratios favor DMF (4 vs 1 rejection) but C_r dwarfs C_fm, so the
	// weighted cost comparison must pick the rejection branch.
	l := newLBC(usm.Weights{Cr: 10, Cfm: 0.1, Cfs: 0.1})
	got := l.Decide(usm.Counts{Success: 5, Rejected: 1, DMF: 4})
	if !got.LoosenAC {
		t.Fatalf("weighted decision = %v, want LoosenAC", got)
	}
}

func TestDecideNaiveUsesRawRatios(t *testing.T) {
	// All-zero weights: Fig. 2 lines 2-3 fall back to the raw ratios.
	l := newLBC(usm.Weights{})
	got := l.Decide(usm.Counts{Success: 1, DSF: 5, DMF: 2, Rejected: 1})
	if !got.UpgradeUpdate {
		t.Fatalf("naive decision = %v, want UpgradeUpdate", got)
	}
}

func TestDecideNoFailuresNoAction(t *testing.T) {
	l := newLBC(usm.Weights{Cr: 1, Cfm: 1, Cfs: 1})
	if got := l.Decide(usm.Counts{Success: 100}); !got.None() {
		t.Fatalf("all-success window produced %v", got)
	}
	if got := l.Decide(usm.Counts{}); !got.None() {
		t.Fatalf("empty window produced %v", got)
	}
}

func TestDecideTieBreaksRandomly(t *testing.T) {
	// Equal costs for all three: across many decisions every branch should
	// appear (paper Fig. 2 line 4 breaks ties randomly).
	l := newLBC(usm.Weights{})
	counts := usm.Counts{Rejected: 3, DMF: 3, DSF: 3, Success: 1}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[l.Decide(counts).String()] = true
	}
	if len(seen) < 3 {
		t.Fatalf("tie-break explored only %v", seen)
	}
}

func TestActionString(t *testing.T) {
	if (Action{}).String() != "none" {
		t.Fatal("empty action name")
	}
	a := Action{DegradeUpdate: true, TightenAC: true}
	if a.String() != "TAC DU" {
		t.Fatalf("action string = %q", a.String())
	}
}

func TestDecisionCounter(t *testing.T) {
	l := newLBC(usm.Weights{})
	l.Decide(usm.Counts{Rejected: 1})
	l.Decide(usm.Counts{Success: 1}) // no action: not counted
	dec, _ := l.Stats()
	if dec != 1 {
		t.Fatalf("decisions = %d", dec)
	}
}

// TestDecideTallyExplainedCosts pins the decision log's inputs: the
// returned costs are the window's average weighted penalties, and in the
// all-zero-weights fallback the raw failure ratios stand in.
func TestDecideTallyExplainedCosts(t *testing.T) {
	l := newLBC(usm.Weights{Cr: 0.5, Cfm: 1, Cfs: 0.25})
	var w usm.Tally
	w.Counts = usm.Counts{Success: 6, Rejected: 2, DMF: 1, DSF: 1}
	w.RCost = 0.5 * 2
	w.FmCost = 1 * 1
	w.FsCost = 0.25 * 1
	a, c := l.DecideTallyExplained(w)
	if c.R != 0.1 || c.Fm != 0.1 || c.Fs != 0.025 {
		t.Fatalf("costs = %+v, want averages over 10 queries", c)
	}
	if a.None() {
		t.Fatal("dominant cost produced no action")
	}

	// Zero-weight fallback: ratios stand in (Fig. 2 lines 2-3).
	l2 := newLBC(usm.Weights{})
	var z usm.Tally
	z.Counts = usm.Counts{Success: 5, DMF: 5}
	a2, c2 := l2.DecideTallyExplained(z)
	if c2.Fm != 0.5 || c2.R != 0 || c2.Fs != 0 {
		t.Fatalf("fallback costs = %+v, want DMF ratio 0.5", c2)
	}
	if !a2.DegradeUpdate || !a2.TightenAC {
		t.Fatalf("DMF-dominant fallback action = %v", a2)
	}

	// A clean window decides nothing and costs nothing.
	var clean usm.Tally
	clean.Counts = usm.Counts{Success: 10}
	a3, c3 := l2.DecideTallyExplained(clean)
	if !a3.None() || c3 != (Costs{}) {
		t.Fatalf("clean window: action %v costs %+v", a3, c3)
	}
}
