// Package control implements UNIT's Load Balancing Controller and its
// Adaptive Allocation Algorithm (paper §3.2, Fig. 2). The controller fires
// periodically (the grace period) or immediately when the windowed USM
// drops by more than a threshold — 1% of the USM range — and then acts on
// the dominant penalty:
//
//	rejection cost highest      → Loosen Admission Control
//	DMF cost highest            → Degrade Updates + Tighten Admission Control
//	DSF cost highest            → Upgrade Updates
//
// With all-zero weights the raw failure ratios stand in for the costs, so
// the controller still chases the largest failure class to protect the
// success ratio. Ties break randomly, per the paper.
package control

import (
	"fmt"

	"unitdb/internal/core/usm"
	"unitdb/internal/stats"
)

// Action is the control signal set produced by one allocation decision.
type Action struct {
	LoosenAC      bool
	TightenAC     bool
	DegradeUpdate bool
	UpgradeUpdate bool
}

// None reports whether the action carries no signal.
func (a Action) None() bool {
	return !a.LoosenAC && !a.TightenAC && !a.DegradeUpdate && !a.UpgradeUpdate
}

// String renders the signals compactly.
func (a Action) String() string {
	if a.None() {
		return "none"
	}
	s := ""
	if a.LoosenAC {
		s += "LAC "
	}
	if a.TightenAC {
		s += "TAC "
	}
	if a.DegradeUpdate {
		s += "DU "
	}
	if a.UpgradeUpdate {
		s += "UU "
	}
	return s[:len(s)-1]
}

// LBC is the Load Balancing Controller.
type LBC struct {
	weights   usm.Weights
	rng       *stats.RNG
	threshold float64 // USM-drop trigger, 1% of the USM range by default

	lastWindowUSM float64
	primed        bool

	decisions int
	triggers  int
}

// Option configures an LBC.
type Option func(*LBC)

// WithThresholdFraction overrides the drop-trigger fraction of the USM
// range (default 0.01, the paper's 1%).
func WithThresholdFraction(f float64) Option {
	return func(l *LBC) {
		if f <= 0 || f >= 1 {
			panic(fmt.Sprintf("control: threshold fraction %v out of (0,1)", f))
		}
		l.threshold = f * l.weights.Range()
	}
}

// New creates a controller for the given weights. rng breaks cost ties.
func New(w usm.Weights, rng *stats.RNG, opts ...Option) *LBC {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	l := &LBC{weights: w, rng: rng, threshold: 0.01 * w.Range()}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Threshold returns the USM-drop trigger threshold.
func (l *LBC) Threshold() float64 { return l.threshold }

// Stats returns how many windows triggered early and how many decisions
// were taken in total.
func (l *LBC) Stats() (decisions, dropTriggers int) { return l.decisions, l.triggers }

// DropTriggered reports whether the new window's USM fell more than the
// threshold below the previous window's, and remembers the new value.
// The first window only primes the memory.
func (l *LBC) DropTriggered(windowUSM float64) bool {
	if !l.primed {
		l.primed = true
		l.lastWindowUSM = windowUSM
		return false
	}
	dropped := windowUSM < l.lastWindowUSM-l.threshold
	l.lastWindowUSM = windowUSM
	if dropped {
		l.triggers++
	}
	return dropped
}

// Costs are the effective per-query outcome costs one decision compared:
// the average weighted rejection, DMF and DSF penalties (R, F_m, F_s of
// paper Eq. 4), or — in the all-zero-weights fallback of Fig. 2 lines
// 2–3 — the raw failure ratios standing in for them. The decision log
// (internal/obs/trace) records them alongside the chosen action.
type Costs struct {
	R  float64 `json:"r"`
	Fm float64 `json:"fm"`
	Fs float64 `json:"fs"`
}

// Decide runs the Adaptive Allocation Algorithm (paper Fig. 2) on the
// window's outcome counts under the controller's own weights. For
// heterogeneous preference populations use DecideTally, which carries the
// per-query weighted costs.
func (l *LBC) Decide(window usm.Counts) Action {
	a, _ := l.DecideExplained(window)
	return a
}

// DecideExplained is Decide returning, alongside the action, the
// effective costs compared — see DecideTallyExplained.
func (l *LBC) DecideExplained(window usm.Counts) (Action, Costs) {
	var t usm.Tally
	t.Counts = window
	t.Gain = float64(window.Success)
	t.RCost = l.weights.Cr * float64(window.Rejected)
	t.FmCost = l.weights.Cfm * float64(window.DMF)
	t.FsCost = l.weights.Cfs * float64(window.DSF)
	return l.DecideTallyExplained(t)
}

// DecideTally runs the Adaptive Allocation Algorithm on a weighted tally:
// the average rejection, DMF and DSF costs are compared directly, so
// queries with different preference weights contribute their own penalties
// (the multi-preference extension of paper §3.1). When every cost is zero
// but failures exist — the naive all-zero-weights setting — the raw
// failure ratios stand in, per Fig. 2 lines 2–3. A window with no failures
// yields no action.
func (l *LBC) DecideTally(window usm.Tally) Action {
	a, _ := l.DecideTallyExplained(window)
	return a
}

// DecideTallyExplained is DecideTally returning, alongside the action,
// the effective costs the decision compared — the controller's inputs,
// for the decision log. It is behaviorally identical to DecideTally
// (same randomness consumption), so instrumented and bare callers replay
// the same runs.
func (l *LBC) DecideTallyExplained(window usm.Tally) (Action, Costs) {
	r, fm, fs := window.AvgCosts()
	if r == 0 && fm == 0 && fs == 0 {
		_, rr, rfm, rfs := window.Counts.Ratios()
		r, fm, fs = rr, rfm, rfs
	}
	costs := Costs{R: r, Fm: fm, Fs: fs}
	max := r
	if fm > max {
		max = fm
	}
	if fs > max {
		max = fs
	}
	if max == 0 {
		return Action{}, costs
	}
	// Collect the argmax set and break ties randomly (paper Fig. 2 line 4).
	var candidates []int
	if r == max {
		candidates = append(candidates, 0)
	}
	if fm == max {
		candidates = append(candidates, 1)
	}
	if fs == max {
		candidates = append(candidates, 2)
	}
	pick := candidates[0]
	if len(candidates) > 1 {
		pick = candidates[l.rng.Intn(len(candidates))]
	}
	l.decisions++
	switch pick {
	case 0: // rejection cost dominates
		return Action{LoosenAC: true}, costs
	case 1: // DMF cost dominates
		return Action{DegradeUpdate: true, TightenAC: true}, costs
	default: // DSF cost dominates
		return Action{UpgradeUpdate: true}, costs
	}
}
