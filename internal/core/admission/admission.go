// Package admission implements UNIT's Query Admission Control (paper §3.3).
// A candidate query passes two gates:
//
//  1. Transaction deadline check — using the earliest-possible start time
//     (EST) implied by the ready queue, admit only when
//     C_flex·EST + qe < qt. C_flex is the controller's tightness knob:
//     TAC/LAC signals move it ±10% around its initial value of 1.
//  2. System USM check — admitting the candidate delays the queued queries
//     behind it in EDF order; if the summed DMF penalty of the queries it
//     would newly endanger exceeds the candidate's rejection penalty C_r,
//     rejecting is the cheaper choice and the candidate is refused.
//
// Both gates are O(N_rq) in the ready-queue length, as the paper states.
package admission

import (
	"fmt"
	"slices"

	"unitdb/internal/core/usm"
	"unitdb/internal/txn"
)

// QueueView is the engine-state snapshot admission control decides on.
type QueueView interface {
	// RunningRemaining returns the remaining service demand of the
	// currently executing transaction (0 when the CPU is idle).
	RunningRemaining() float64
	// UpdateBacklog returns the summed remaining demand of queued updates,
	// all of which dispatch ahead of any query.
	UpdateBacklog() float64
	// QueuedQueries returns the queries in the ready queue, any order.
	QueuedQueries() []*txn.Txn
}

// BulkView is an optional QueueView extension: views that can append the
// queued queries into a caller-provided buffer let the controller reuse
// one scratch slice across decisions instead of taking a fresh snapshot
// allocation on every Admit — both gates run per query arrival, so this
// is an engine hot path (see BenchmarkAdmissionDecision).
type BulkView interface {
	// AppendQueuedQueries appends the queued queries to buf and returns
	// the extended buffer, any order.
	AppendQueuedQueries(buf []*txn.Txn) []*txn.Txn
}

// Reason says why a query was rejected.
type Reason int

const (
	// Admitted means the query passed both checks.
	Admitted Reason = iota
	// RejectedDeadline means the deadline check failed: the query has
	// little chance to finish in time.
	RejectedDeadline
	// RejectedUSM means the system USM check failed: admitting would
	// endanger more penalty than rejecting costs.
	RejectedUSM
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case Admitted:
		return "admitted"
	case RejectedDeadline:
		return "rejected-deadline"
	case RejectedUSM:
		return "rejected-usm"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Resolver maps a transaction to its effective USM weights — the hook for
// heterogeneous user preferences (multi-preference extension, paper §3.1).
type Resolver func(*txn.Txn) usm.Weights

// Controller is the admission-control state machine.
type Controller struct {
	weights usm.Weights
	resolve Resolver
	cflex   float64
	step    float64
	minFlex float64
	maxFlex float64

	admitted         int
	rejectedDeadline int
	rejectedUSM      int

	// scratch is the reusable queued-query buffer of Admit. A Controller
	// is single-caller by design (the simulator's event loop or the live
	// server under its mutex), so one buffer suffices.
	scratch []*txn.Txn
}

// Option configures a Controller.
type Option func(*Controller)

// WithStep overrides the TAC/LAC step (default 0.10, the paper's 10%).
func WithStep(step float64) Option {
	return func(c *Controller) {
		if step <= 0 || step >= 1 {
			panic(fmt.Sprintf("admission: step %v out of (0,1)", step))
		}
		c.step = step
	}
}

// WithFlexBounds overrides the clamp range of C_flex (default [0.001, 16]).
// The low floor matters: under a sustained update overload the backlog-based
// EST is huge for every candidate, and repeated Loosen signals must be able
// to effectively disarm the deadline check so admissions resume and the
// controller can observe DMFs (which is what triggers update degradation).
func WithFlexBounds(min, max float64) Option {
	return func(c *Controller) {
		if min <= 0 || max < min {
			panic(fmt.Sprintf("admission: bad flex bounds [%v,%v]", min, max))
		}
		c.minFlex, c.maxFlex = min, max
	}
}

// WithResolver installs a per-transaction weight resolver for
// heterogeneous preference populations. Without one, the controller's own
// weights apply to every transaction.
func WithResolver(r Resolver) Option {
	return func(c *Controller) { c.resolve = r }
}

// New creates a controller with C_flex = 1 (the paper's initial value).
func New(w usm.Weights, opts ...Option) *Controller {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{weights: w, cflex: 1, step: 0.10, minFlex: 0.001, maxFlex: 16}
	c.resolve = func(*txn.Txn) usm.Weights { return c.weights }
	for _, o := range opts {
		o(c)
	}
	return c
}

// CFlex returns the current lag ratio C_flex.
func (c *Controller) CFlex() float64 { return c.cflex }

// AtFloor reports whether C_flex sits at its lower clamp — i.e. admission
// control is as loose as it can get and further Loosen signals are no-ops.
func (c *Controller) AtFloor() bool { return c.cflex <= c.minFlex }

// Tighten applies a TAC signal: C_flex grows by the step, making the
// deadline check stricter.
func (c *Controller) Tighten() {
	c.cflex *= 1 + c.step
	if c.cflex > c.maxFlex {
		c.cflex = c.maxFlex
	}
}

// Loosen applies an LAC signal: C_flex shrinks by the step, letting more
// queries in.
func (c *Controller) Loosen() {
	c.cflex *= 1 - c.step
	if c.cflex < c.minFlex {
		c.cflex = c.minFlex
	}
}

// Stats returns the cumulative admission decisions.
func (c *Controller) Stats() (admitted, rejectedDeadline, rejectedUSM int) {
	return c.admitted, c.rejectedDeadline, c.rejectedUSM
}

// Admit runs both admission gates for candidate q at the given time over
// the current queue state, updating the decision counters.
func (c *Controller) Admit(now float64, q *txn.Txn, view QueueView) Reason {
	if q.Class != txn.ClassQuery {
		panic(fmt.Sprintf("admission: Admit on non-query %v", q))
	}
	queued := c.scratch[:0]
	if bv, ok := view.(BulkView); ok {
		queued = bv.AppendQueuedQueries(queued)
	} else {
		queued = append(queued, view.QueuedQueries()...)
	}
	c.scratch = queued[:0]
	slices.SortFunc(queued, func(a, b *txn.Txn) int {
		if a.HigherPriority(b) {
			return -1
		}
		if b.HigherPriority(a) {
			return 1
		}
		return 0
	})
	base := view.RunningRemaining() + view.UpdateBacklog()

	// Gate 1 — transaction deadline check: C_flex·EST + qe < qt, with EST
	// the work dispatched ahead of q (running + update backlog + queued
	// queries with earlier deadlines).
	est := base
	for _, other := range queued {
		if other.HigherPriority(q) {
			est += other.Remaining
		}
	}
	if now+c.cflex*est+q.EstExec >= q.Deadline {
		c.rejectedDeadline++
		return RejectedDeadline
	}

	// Gate 2 — system USM check: q delays every queued query behind it by
	// qe. Sum the DMF penalties of the queries that delay newly endangers
	// (they would have finished in time without q, and no longer would).
	// When that exceeds the candidate's rejection cost, reject. The gate is
	// inert when both C_fm and C_r are zero (naive USM setting).
	endangeredCost := 0.0
	prefix := base
	for _, other := range queued {
		finish := now + prefix + other.Remaining
		if !other.HigherPriority(q) {
			wasSafe := finish < other.Deadline
			nowLate := finish+q.EstExec >= other.Deadline
			if wasSafe && nowLate {
				endangeredCost += c.resolve(other).Cfm
			}
		}
		prefix += other.Remaining
	}
	if endangeredCost > c.resolve(q).Cr {
		c.rejectedUSM++
		return RejectedUSM
	}
	c.admitted++
	return Admitted
}
