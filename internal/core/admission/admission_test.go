package admission

import (
	"math"
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/txn"
)

// fakeView is a hand-built admission.QueueView.
type fakeView struct {
	running float64
	backlog float64
	queued  []*txn.Txn
}

func (v fakeView) RunningRemaining() float64 { return v.running }
func (v fakeView) UpdateBacklog() float64    { return v.backlog }
func (v fakeView) QueuedQueries() []*txn.Txn { return v.queued }

func query(id int64, now, exec, rel float64) *txn.Txn {
	return txn.NewQuery(id, now, []int{0}, exec, rel, 0.9)
}

func TestDeadlineCheckAdmitsFeasible(t *testing.T) {
	c := New(usm.Weights{})
	q := query(1, 0, 1, 10) // needs 1s, has 10s
	if got := c.Admit(0, q, fakeView{}); got != Admitted {
		t.Fatalf("empty system rejected feasible query: %v", got)
	}
}

func TestDeadlineCheckRejectsInfeasible(t *testing.T) {
	c := New(usm.Weights{})
	q := query(1, 0, 5, 3) // needs 5s, has 3s
	if got := c.Admit(0, q, fakeView{}); got != RejectedDeadline {
		t.Fatalf("infeasible query admitted: %v", got)
	}
}

func TestDeadlineCheckCountsBacklog(t *testing.T) {
	c := New(usm.Weights{})
	q := query(1, 0, 1, 5)
	// 3 (running) + 2 (updates) + 1 (exec) > 5.
	if got := c.Admit(0, q, fakeView{running: 3, backlog: 2}); got != RejectedDeadline {
		t.Fatalf("backlog ignored: %v", got)
	}
	if got := c.Admit(0, q, fakeView{running: 1, backlog: 1}); got != Admitted {
		t.Fatalf("feasible with small backlog rejected: %v", got)
	}
}

func TestDeadlineCheckCountsEarlierQueries(t *testing.T) {
	c := New(usm.Weights{})
	earlier := query(1, 0, 3, 4)  // deadline 4
	cand := query(2, 0, 1, 3.5)   // deadline 3.5: earlier than the queued one
	later := query(3, 0, 10, 100) // behind the candidate
	// cand outranks "earlier"? No: deadline 3.5 < 4, so "earlier" is behind
	// cand and must not count toward cand's EST.
	view := fakeView{queued: []*txn.Txn{earlier, later}}
	if got := c.Admit(0, cand, view); got != Admitted {
		t.Fatalf("EST included lower-priority queries: %v", got)
	}
	// A candidate behind the deadline-4 query sees its 3s of work:
	// EST = 3, and 3 + 2.5 >= 5 rejects.
	cand2 := query(4, 0, 2.5, 5)
	if got := c.Admit(0, cand2, view); got != RejectedDeadline {
		t.Fatalf("EST ignored higher-priority queries: %v", got)
	}
}

func TestCFlexScalesEST(t *testing.T) {
	c := New(usm.Weights{})
	q := query(1, 0, 1, 6)
	view := fakeView{backlog: 4.5} // 1*4.5 + 1 < 6 admits
	if got := c.Admit(0, q, view); got != Admitted {
		t.Fatalf("baseline admit failed: %v", got)
	}
	// Tighten enough that cflex*4.5 + 1 >= 6, i.e. cflex >= 1.111…
	c.Tighten() // 1.1
	c.Tighten() // 1.21
	q2 := query(2, 0, 1, 6)
	if got := c.Admit(0, q2, view); got != RejectedDeadline {
		t.Fatalf("tightened controller admitted: %v (cflex=%v)", got, c.CFlex())
	}
	// Loosen back below the threshold.
	c.Loosen()
	c.Loosen()
	q3 := query(3, 0, 1, 6)
	if got := c.Admit(0, q3, view); got != Admitted {
		t.Fatalf("loosened controller rejected: %v (cflex=%v)", got, c.CFlex())
	}
}

func TestCFlexBoundsAndAtFloor(t *testing.T) {
	c := New(usm.Weights{}, WithFlexBounds(0.5, 2))
	for i := 0; i < 100; i++ {
		c.Tighten()
	}
	if c.CFlex() != 2 {
		t.Fatalf("cflex above max: %v", c.CFlex())
	}
	for i := 0; i < 100; i++ {
		c.Loosen()
	}
	if c.CFlex() != 0.5 {
		t.Fatalf("cflex below min: %v", c.CFlex())
	}
	if !c.AtFloor() {
		t.Fatal("AtFloor false at the floor")
	}
	c.Tighten()
	if c.AtFloor() {
		t.Fatal("AtFloor true off the floor")
	}
}

func TestUSMCheckRejectsWhenEndangeringCostlyQueries(t *testing.T) {
	// Cfm=1, Cr=0.2: endangering even one queued query outweighs rejecting.
	c := New(usm.Weights{Cr: 0.2, Cfm: 1})
	// Queued query: exec 2, deadline 4; alone it finishes at 2 < 4 (safe).
	queued := query(1, 0, 2, 4)
	// Candidate: deadline 1 (outranks queued), exec 2.5. The queued query
	// would then finish at 4.5 >= 4: newly endangered.
	cand := query(2, 0, 0.5, 1)
	cand.EstExec = 2.5
	cand.Exec = 2.5
	cand.Remaining = 2.5
	// Deadline check for cand: EST=0, 2.5 < 1? No! Give it a longer
	// deadline but keep it ahead of queued.
	cand.Deadline = 3
	cand.RelDeadline = 3
	got := c.Admit(0, cand, fakeView{queued: []*txn.Txn{queued}})
	if got != RejectedUSM {
		t.Fatalf("USM check did not fire: %v", got)
	}
}

func TestUSMCheckAdmitsWhenRejectionCostlier(t *testing.T) {
	// Cr much larger than Cfm: admit even when endangering.
	c := New(usm.Weights{Cr: 5, Cfm: 1})
	queued := query(1, 0, 2, 4)
	cand := query(2, 0, 2.5, 3)
	got := c.Admit(0, cand, fakeView{queued: []*txn.Txn{queued}})
	if got != Admitted {
		t.Fatalf("rejected although rejection costs more: %v", got)
	}
}

func TestUSMCheckInertWhenNaive(t *testing.T) {
	c := New(usm.Weights{}) // all zero: 0 > 0 is false
	queued := query(1, 0, 2, 4)
	cand := query(2, 0, 2.5, 3)
	if got := c.Admit(0, cand, fakeView{queued: []*txn.Txn{queued}}); got != Admitted {
		t.Fatalf("naive USM check rejected: %v", got)
	}
}

func TestUSMCheckIgnoresAlreadyDoomedQueries(t *testing.T) {
	c := New(usm.Weights{Cr: 0.2, Cfm: 1})
	// Queued query already cannot meet its deadline (finish 5 >= 2): it is
	// not *newly* endangered by the candidate.
	doomed := query(1, 0, 5, 2)
	cand := query(2, 0, 0.5, 1.9)
	if got := c.Admit(0, cand, fakeView{queued: []*txn.Txn{doomed}}); got != Admitted {
		t.Fatalf("candidate charged for an already-doomed query: %v", got)
	}
}

func TestAdmitStats(t *testing.T) {
	c := New(usm.Weights{})
	c.Admit(0, query(1, 0, 1, 10), fakeView{})
	c.Admit(0, query(2, 0, 5, 2), fakeView{})
	adm, rd, ru := c.Stats()
	if adm != 1 || rd != 1 || ru != 0 {
		t.Fatalf("stats = %d %d %d", adm, rd, ru)
	}
}

func TestAdmitPanicsOnUpdate(t *testing.T) {
	c := New(usm.Weights{})
	u := txn.NewUpdate(1, 0, 0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Admit accepted an update transaction")
		}
	}()
	c.Admit(0, u, fakeView{})
}

func TestOptionValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(usm.Weights{}, WithStep(0)) },
		func() { New(usm.Weights{}, WithStep(1)) },
		func() { New(usm.Weights{}, WithFlexBounds(0, 1)) },
		func() { New(usm.Weights{}, WithFlexBounds(2, 1)) },
		func() { New(usm.Weights{Cr: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid option accepted")
				}
			}()
			fn()
		}()
	}
}

func TestReasonStrings(t *testing.T) {
	if Admitted.String() != "admitted" ||
		RejectedDeadline.String() != "rejected-deadline" ||
		RejectedUSM.String() != "rejected-usm" {
		t.Fatal("reason names wrong")
	}
	if Reason(99).String() == "" {
		t.Fatal("unknown reason should render")
	}
}

func TestAdmitIsDeterministic(t *testing.T) {
	mk := func() Reason {
		c := New(usm.Weights{Cr: 0.3, Cfm: 0.6, Cfs: 0.1})
		view := fakeView{running: 0.5, backlog: 1, queued: []*txn.Txn{
			query(1, 0, 2, 8), query(2, 0, 1, 4), query(3, 0, 3, 20),
		}}
		return c.Admit(0, query(9, 0, 1.5, 6), view)
	}
	first := mk()
	for i := 0; i < 10; i++ {
		if mk() != first {
			t.Fatal("admission decision not deterministic")
		}
	}
	if math.IsNaN(float64(first)) {
		t.Fatal("unreachable")
	}
}
