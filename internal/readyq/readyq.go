// Package readyq implements the dual-priority ready queue of paper §3.1:
// update transactions are dispatched above user queries, and within each
// class Earliest Deadline First applies. The queue supports O(log n)
// push/pop/remove plus the O(n) scans that admission control needs to
// compute earliest-possible start times and endangered sets.
package readyq

import (
	"fmt"

	"unitdb/internal/txn"
)

// Queue is the two-class EDF ready queue. Not safe for concurrent use.
//
// Membership is tracked through each transaction's heap index (owned by
// this package via Txn.SetHeapIndex) rather than a side map: the index
// plus an identity check against the heap slot answers Contains in O(1)
// without a map insert on every Push and a delete on every Pop — those
// map operations used to dominate the queue's cost on the engine hot
// path (see BenchmarkReadyQueueOps).
type Queue struct {
	updates classHeap
	queries classHeap
}

// New creates an empty ready queue.
func New() *Queue {
	return &Queue{}
}

// Len returns the number of queued transactions.
func (q *Queue) Len() int { return q.updates.Len() + q.queries.Len() }

// LenClass returns the number of queued transactions of one class.
func (q *Queue) LenClass(c txn.Class) int {
	if c == txn.ClassUpdate {
		return q.updates.Len()
	}
	return q.queries.Len()
}

// Contains reports whether t is queued. A transaction's heap index is
// only trusted when the slot it names still holds that very transaction,
// so stale indexes (left by a different queue or a past membership) can
// never alias.
func (q *Queue) Contains(t *txn.Txn) bool {
	h := q.heapFor(t)
	i := t.HeapIndex()
	return i >= 0 && i < len(h.txns) && h.txns[i] == t
}

// Push enqueues t. It panics if t is already queued.
func (q *Queue) Push(t *txn.Txn) {
	if q.Contains(t) {
		panic(fmt.Sprintf("readyq: %v pushed twice", t))
	}
	q.heapFor(t).push(t)
}

// Pop removes and returns the highest-priority transaction (updates first,
// then earliest deadline). It returns nil when empty.
func (q *Queue) Pop() *txn.Txn {
	h := &q.updates
	if h.Len() == 0 {
		h = &q.queries
	}
	if h.Len() == 0 {
		return nil
	}
	return h.pop()
}

// Peek returns the highest-priority transaction without removing it, or nil
// when empty.
func (q *Queue) Peek() *txn.Txn {
	if q.updates.Len() > 0 {
		return q.updates.txns[0]
	}
	if q.queries.Len() > 0 {
		return q.queries.txns[0]
	}
	return nil
}

// Remove unlinks t from the queue; it reports whether t was queued.
func (q *Queue) Remove(t *txn.Txn) bool {
	if !q.Contains(t) {
		return false
	}
	q.heapFor(t).remove(t.HeapIndex())
	return true
}

// Updates returns the queued update transactions in arbitrary order. The
// returned slice is freshly allocated.
func (q *Queue) Updates() []*txn.Txn { return snapshot(q.updates.txns) }

// Queries returns the queued user queries in arbitrary order. The returned
// slice is freshly allocated.
func (q *Queue) Queries() []*txn.Txn { return snapshot(q.queries.txns) }

// AppendQueries appends the queued user queries to buf (arbitrary order)
// and returns the extended buffer — the allocation-free counterpart of
// Queries for per-decision scans.
func (q *Queue) AppendQueries(buf []*txn.Txn) []*txn.Txn {
	return append(buf, q.queries.txns...)
}

// UpdateBacklog returns the total remaining service demand of queued
// updates; queries dispatch only after all of it.
func (q *Queue) UpdateBacklog() float64 {
	sum := 0.0
	for _, t := range q.updates.txns {
		sum += t.Remaining
	}
	return sum
}

// ExpiredQueries returns queued queries whose firm deadline has passed.
func (q *Queue) ExpiredQueries(now float64) []*txn.Txn {
	var out []*txn.Txn
	for _, t := range q.queries.txns {
		if t.Expired(now) {
			out = append(out, t)
		}
	}
	return out
}

func (q *Queue) heapFor(t *txn.Txn) *classHeap {
	if t.Class == txn.ClassUpdate {
		return &q.updates
	}
	return &q.queries
}

func snapshot(ts []*txn.Txn) []*txn.Txn {
	out := make([]*txn.Txn, len(ts))
	copy(out, ts)
	return out
}

// classHeap is a deadline-ordered binary heap of one transaction class.
// It is hand-rolled rather than driven through container/heap so the
// sift operations call Txn.HigherPriority directly instead of going
// through heap.Interface dispatch on the engine's hottest path.
type classHeap struct {
	txns []*txn.Txn
}

func (h *classHeap) Len() int { return len(h.txns) }

// push appends t and restores the heap order, recording heap indexes.
func (h *classHeap) push(t *txn.Txn) {
	t.SetHeapIndex(len(h.txns))
	h.txns = append(h.txns, t)
	h.up(len(h.txns) - 1)
}

// pop removes and returns the root (highest-priority) transaction.
func (h *classHeap) pop() *txn.Txn {
	t := h.txns[0]
	n := len(h.txns) - 1
	h.txns[0] = h.txns[n]
	h.txns[0].SetHeapIndex(0)
	h.txns[n] = nil
	h.txns = h.txns[:n]
	if n > 0 {
		h.down(0)
	}
	t.SetHeapIndex(-1)
	return t
}

// remove unlinks the transaction at index i.
func (h *classHeap) remove(i int) {
	n := len(h.txns) - 1
	t := h.txns[i]
	if i != n {
		h.txns[i] = h.txns[n]
		h.txns[i].SetHeapIndex(i)
		h.txns[n] = nil
		h.txns = h.txns[:n]
		if !h.down(i) {
			h.up(i)
		}
	} else {
		h.txns[n] = nil
		h.txns = h.txns[:n]
	}
	t.SetHeapIndex(-1)
}

// up sifts the element at index i toward the root.
func (h *classHeap) up(i int) {
	t := h.txns[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.txns[parent]
		if !t.HigherPriority(p) {
			break
		}
		h.txns[i] = p
		p.SetHeapIndex(i)
		i = parent
	}
	h.txns[i] = t
	t.SetHeapIndex(i)
}

// down sifts the element at index i toward the leaves; it reports whether
// the element moved.
func (h *classHeap) down(i int) bool {
	t := h.txns[i]
	start := i
	n := len(h.txns)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.txns[r].HigherPriority(h.txns[child]) {
			child = r
		}
		c := h.txns[child]
		if !c.HigherPriority(t) {
			break
		}
		h.txns[i] = c
		c.SetHeapIndex(i)
		i = child
	}
	h.txns[i] = t
	t.SetHeapIndex(i)
	return i != start
}
