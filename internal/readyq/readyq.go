// Package readyq implements the dual-priority ready queue of paper §3.1:
// update transactions are dispatched above user queries, and within each
// class Earliest Deadline First applies. The queue supports O(log n)
// push/pop/remove plus the O(n) scans that admission control needs to
// compute earliest-possible start times and endangered sets.
package readyq

import (
	"container/heap"
	"fmt"

	"unitdb/internal/txn"
)

// Queue is the two-class EDF ready queue. Not safe for concurrent use.
type Queue struct {
	updates classHeap
	queries classHeap
	members map[*txn.Txn]bool
}

// New creates an empty ready queue.
func New() *Queue {
	return &Queue{members: make(map[*txn.Txn]bool)}
}

// Len returns the number of queued transactions.
func (q *Queue) Len() int { return q.updates.Len() + q.queries.Len() }

// LenClass returns the number of queued transactions of one class.
func (q *Queue) LenClass(c txn.Class) int {
	if c == txn.ClassUpdate {
		return q.updates.Len()
	}
	return q.queries.Len()
}

// Contains reports whether t is queued.
func (q *Queue) Contains(t *txn.Txn) bool { return q.members[t] }

// Push enqueues t. It panics if t is already queued.
func (q *Queue) Push(t *txn.Txn) {
	if q.members[t] {
		panic(fmt.Sprintf("readyq: %v pushed twice", t))
	}
	q.members[t] = true
	heap.Push(q.heapFor(t), t)
}

// Pop removes and returns the highest-priority transaction (updates first,
// then earliest deadline). It returns nil when empty.
func (q *Queue) Pop() *txn.Txn {
	h := &q.updates
	if h.Len() == 0 {
		h = &q.queries
	}
	if h.Len() == 0 {
		return nil
	}
	t := heap.Pop(h).(*txn.Txn)
	delete(q.members, t)
	return t
}

// Peek returns the highest-priority transaction without removing it, or nil
// when empty.
func (q *Queue) Peek() *txn.Txn {
	if q.updates.Len() > 0 {
		return q.updates.txns[0]
	}
	if q.queries.Len() > 0 {
		return q.queries.txns[0]
	}
	return nil
}

// Remove unlinks t from the queue; it reports whether t was queued.
func (q *Queue) Remove(t *txn.Txn) bool {
	if !q.members[t] {
		return false
	}
	delete(q.members, t)
	heap.Remove(q.heapFor(t), t.HeapIndex())
	return true
}

// Updates returns the queued update transactions in arbitrary order. The
// returned slice is freshly allocated.
func (q *Queue) Updates() []*txn.Txn { return snapshot(q.updates.txns) }

// Queries returns the queued user queries in arbitrary order. The returned
// slice is freshly allocated.
func (q *Queue) Queries() []*txn.Txn { return snapshot(q.queries.txns) }

// UpdateBacklog returns the total remaining service demand of queued
// updates; queries dispatch only after all of it.
func (q *Queue) UpdateBacklog() float64 {
	sum := 0.0
	for _, t := range q.updates.txns {
		sum += t.Remaining
	}
	return sum
}

// ExpiredQueries returns queued queries whose firm deadline has passed.
func (q *Queue) ExpiredQueries(now float64) []*txn.Txn {
	var out []*txn.Txn
	for _, t := range q.queries.txns {
		if t.Expired(now) {
			out = append(out, t)
		}
	}
	return out
}

func (q *Queue) heapFor(t *txn.Txn) *classHeap {
	if t.Class == txn.ClassUpdate {
		return &q.updates
	}
	return &q.queries
}

func snapshot(ts []*txn.Txn) []*txn.Txn {
	out := make([]*txn.Txn, len(ts))
	copy(out, ts)
	return out
}

// classHeap is a deadline-ordered heap of one transaction class.
type classHeap struct {
	txns []*txn.Txn
}

func (h *classHeap) Len() int { return len(h.txns) }
func (h *classHeap) Less(i, j int) bool {
	return h.txns[i].HigherPriority(h.txns[j])
}
func (h *classHeap) Swap(i, j int) {
	h.txns[i], h.txns[j] = h.txns[j], h.txns[i]
	h.txns[i].SetHeapIndex(i)
	h.txns[j].SetHeapIndex(j)
}
func (h *classHeap) Push(x any) {
	t := x.(*txn.Txn)
	t.SetHeapIndex(len(h.txns))
	h.txns = append(h.txns, t)
}
func (h *classHeap) Pop() any {
	n := len(h.txns)
	t := h.txns[n-1]
	h.txns[n-1] = nil
	h.txns = h.txns[:n-1]
	t.SetHeapIndex(-1)
	return t
}
