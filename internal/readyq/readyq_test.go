package readyq

import (
	"sort"
	"testing"
	"testing/quick"

	"unitdb/internal/stats"
	"unitdb/internal/txn"
)

func q(id int64, deadline float64) *txn.Txn {
	return txn.NewQuery(id, 0, []int{0}, 1, deadline, 0.9)
}

func u(id int64, deadline float64) *txn.Txn {
	return txn.NewUpdate(id, 0, 0, 0.5, deadline)
}

func TestPopOrderClassThenEDF(t *testing.T) {
	rq := New()
	rq.Push(q(1, 1))   // urgent query
	rq.Push(u(2, 100)) // relaxed update
	rq.Push(u(3, 50))
	rq.Push(q(4, 2))
	wantIDs := []int64{3, 2, 1, 4} // updates first (EDF), then queries (EDF)
	for i, want := range wantIDs {
		got := rq.Pop()
		if got == nil || got.ID != want {
			t.Fatalf("pop %d = %v, want id %d", i, got, want)
		}
	}
	if rq.Pop() != nil {
		t.Fatal("empty queue should pop nil")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	rq := New()
	rq.Push(q(1, 5))
	if rq.Peek().ID != 1 || rq.Len() != 1 {
		t.Fatal("peek misbehaved")
	}
	if rq.Peek() != rq.Pop() {
		t.Fatal("peek/pop mismatch")
	}
	if rq.Peek() != nil {
		t.Fatal("peek on empty should be nil")
	}
}

func TestPushDuplicatePanics(t *testing.T) {
	rq := New()
	tx := q(1, 5)
	rq.Push(tx)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate push did not panic")
		}
	}()
	rq.Push(tx)
}

func TestRemove(t *testing.T) {
	rq := New()
	a, b, c := q(1, 5), q(2, 6), u(3, 1)
	rq.Push(a)
	rq.Push(b)
	rq.Push(c)
	if !rq.Remove(b) {
		t.Fatal("remove returned false")
	}
	if rq.Remove(b) {
		t.Fatal("double remove returned true")
	}
	if rq.Len() != 2 || rq.Contains(b) {
		t.Fatal("queue state wrong after remove")
	}
	if rq.Pop() != c || rq.Pop() != a {
		t.Fatal("order corrupted by remove")
	}
}

func TestLenClassAndSnapshots(t *testing.T) {
	rq := New()
	rq.Push(q(1, 5))
	rq.Push(q(2, 6))
	rq.Push(u(3, 1))
	if rq.LenClass(txn.ClassQuery) != 2 || rq.LenClass(txn.ClassUpdate) != 1 {
		t.Fatal("class lengths wrong")
	}
	if len(rq.Queries()) != 2 || len(rq.Updates()) != 1 {
		t.Fatal("snapshot lengths wrong")
	}
	// Snapshots must be copies.
	snap := rq.Queries()
	snap[0] = nil
	if rq.Queries()[0] == nil {
		t.Fatal("snapshot aliased internal storage")
	}
}

func TestUpdateBacklog(t *testing.T) {
	rq := New()
	rq.Push(u(1, 1))
	rq.Push(u(2, 2))
	rq.Push(q(3, 9))
	if got := rq.UpdateBacklog(); got != 1.0 {
		t.Fatalf("backlog = %v, want 1.0 (two updates of 0.5)", got)
	}
}

func TestExpiredQueries(t *testing.T) {
	rq := New()
	a := q(1, 5)
	b := q(2, 50)
	rq.Push(a)
	rq.Push(b)
	exp := rq.ExpiredQueries(10)
	if len(exp) != 1 || exp[0] != a {
		t.Fatalf("expired = %v", exp)
	}
	if len(rq.ExpiredQueries(1)) != 0 {
		t.Fatal("nothing expired at t=1")
	}
}

func TestHeapOrderProperty(t *testing.T) {
	// Popping everything always yields: all updates before all queries,
	// deadlines non-decreasing within each class, regardless of push or
	// remove interleavings.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		rq := New()
		var all []*txn.Txn
		var id int64
		for op := 0; op < 120; op++ {
			if rng.Float64() < 0.7 || len(all) == 0 {
				id++
				var tx *txn.Txn
				if rng.Float64() < 0.5 {
					tx = q(id, rng.Float64()*100)
				} else {
					tx = u(id, rng.Float64()*100)
				}
				rq.Push(tx)
				all = append(all, tx)
			} else {
				i := rng.Intn(len(all))
				if rq.Contains(all[i]) {
					rq.Remove(all[i])
					all = append(all[:i], all[i+1:]...)
				}
			}
		}
		var popped []*txn.Txn
		for {
			tx := rq.Pop()
			if tx == nil {
				break
			}
			popped = append(popped, tx)
		}
		if len(popped) != len(all) {
			return false
		}
		if !sort.SliceIsSorted(popped, func(i, j int) bool {
			return popped[i].HigherPriority(popped[j])
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
