package bench

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: unitdb
cpu: shared
BenchmarkLotterySample-4     	13984680	        84.20 ns/op	       0 B/op	       0 allocs/op
BenchmarkLotterySample-4     	14100000	        86.90 ns/op	       0 B/op	       0 allocs/op
BenchmarkAdmissionDecision-4
BenchmarkAdmissionDecision-4 	 1584000	       742.0 ns/op	      24 B/op	       1 allocs/op
BenchmarkFig4NaiveUSM-4      	       1	1500000000 ns/op	0.5230 USM(UNIT,med-unif)	0.4000 USM(best-other)	12 B/op	 3 allocs/op
BenchmarkEngineRun/UNIT-4    	      50	  22000000 ns/op	    920000 events/sec
PASS
ok  	unitdb	12.3s
`

func TestParse(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Benchmark{}
	for _, b := range bs {
		byName[b.Name] = b
	}
	ls, ok := byName["BenchmarkLotterySample"]
	if !ok {
		t.Fatalf("missing LotterySample in %v", bs)
	}
	if ls.NsPerOp != 84.20 {
		t.Errorf("merge should keep min ns/op, got %v", ls.NsPerOp)
	}
	ad := byName["BenchmarkAdmissionDecision"]
	if ad.AllocsPerOp != 1 || ad.BytesPerOp != 24 {
		t.Errorf("allocs parse: %+v", ad)
	}
	f4 := byName["BenchmarkFig4NaiveUSM"]
	if f4.Metrics["USM(UNIT,med-unif)"] != 0.5230 {
		t.Errorf("custom metric parse: %+v", f4)
	}
	er := byName["BenchmarkEngineRun/UNIT"]
	if er.Metrics["events/sec"] != 920000 {
		t.Errorf("sub-benchmark parse: %+v", er)
	}
	if strings.HasSuffix(er.Name, "-4") {
		t.Errorf("procs suffix not stripped: %s", er.Name)
	}
}

func result(bs ...Benchmark) *Result {
	return &Result{Schema: SchemaVersion, Benchmarks: bs}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := result(
		Benchmark{Name: "BenchmarkA", Iterations: 1000, NsPerOp: 100, AllocsPerOp: 2},
		Benchmark{Name: "BenchmarkB", Iterations: 1000, NsPerOp: 100, Metrics: map[string]float64{"events/sec": 1000}},
	)
	cur := result(
		Benchmark{Name: "BenchmarkA", Iterations: 1000, NsPerOp: 120, AllocsPerOp: 4},
		Benchmark{Name: "BenchmarkB", Iterations: 1000, NsPerOp: 100, Metrics: map[string]float64{"events/sec": 700}},
	)
	regs, missing, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	want := map[string]bool{
		"BenchmarkA ns/op":      true,
		"BenchmarkA allocs/op":  true,
		"BenchmarkB events/sec": true,
	}
	for _, r := range regs {
		key := r.Name + " " + r.Metric
		if !want[key] {
			t.Errorf("unexpected regression %s", r)
		}
		delete(want, key)
	}
	for k := range want {
		t.Errorf("expected regression %s not reported", k)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := result(Benchmark{Name: "BenchmarkA", Iterations: 1000, NsPerOp: 100, AllocsPerOp: 3})
	cur := result(Benchmark{Name: "BenchmarkA", Iterations: 1000, NsPerOp: 110, AllocsPerOp: 3})
	regs, _, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("10%% drift within 15%% tolerance flagged: %v", regs)
	}
}

func TestCompareAllocsNeedWholeIncrease(t *testing.T) {
	// 0 -> 0.4 allocs/op is a rounding artifact of averaged counts, not a
	// regression; 1 -> 2.2 is real.
	base := result(
		Benchmark{Name: "BenchmarkZero", Iterations: 1000, NsPerOp: 10, AllocsPerOp: 0},
		Benchmark{Name: "BenchmarkOne", Iterations: 1000, NsPerOp: 10, AllocsPerOp: 1},
	)
	cur := result(
		Benchmark{Name: "BenchmarkZero", Iterations: 1000, NsPerOp: 10, AllocsPerOp: 0.4},
		Benchmark{Name: "BenchmarkOne", Iterations: 1000, NsPerOp: 10, AllocsPerOp: 2.2},
	)
	regs, _, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkOne" {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareCalibrationScaling(t *testing.T) {
	// The whole machine is 30% slower (calibration 100 -> 130): a
	// benchmark that slowed proportionally is not a regression, one that
	// slowed far beyond the machine is.
	base := result(
		Benchmark{Name: CalibrationName, NsPerOp: 100},
		Benchmark{Name: "BenchmarkProportional", Iterations: 1000, NsPerOp: 1000, Metrics: map[string]float64{"events/sec": 1000}},
		Benchmark{Name: "BenchmarkTrulySlow", Iterations: 1000, NsPerOp: 1000},
	)
	cur := result(
		Benchmark{Name: CalibrationName, NsPerOp: 130},
		Benchmark{Name: "BenchmarkProportional", Iterations: 1000, NsPerOp: 1300, Metrics: map[string]float64{"events/sec": 769}},
		Benchmark{Name: "BenchmarkTrulySlow", Iterations: 1000, NsPerOp: 2000},
	)
	regs, _, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkTrulySlow" {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareLowSampleWidening(t *testing.T) {
	// A seconds-per-op macro benchmark (3 iterations) gets twice the
	// tolerance: 25% drift passes at the doubled 30%, 40% still fails.
	base := result(
		Benchmark{Name: "BenchmarkMacroOK", Iterations: 3, NsPerOp: 1000},
		Benchmark{Name: "BenchmarkMacroBad", Iterations: 3, NsPerOp: 1000},
	)
	cur := result(
		Benchmark{Name: "BenchmarkMacroOK", Iterations: 3, NsPerOp: 1250},
		Benchmark{Name: "BenchmarkMacroBad", Iterations: 3, NsPerOp: 1400},
	)
	regs, _, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkMacroBad" {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareMissing(t *testing.T) {
	base := result(Benchmark{Name: "BenchmarkGone", Iterations: 1000, NsPerOp: 10})
	cur := result(Benchmark{Name: "BenchmarkNew", Iterations: 1000, NsPerOp: 10})
	_, missing, err := Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := result()
	cur := result()
	cur.Schema = SchemaVersion + 1
	if _, _, err := Compare(base, cur, 0); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
