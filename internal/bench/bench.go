// Package bench defines the schema of the repository's benchmark
// artifacts (BENCH_results.json, BENCH_baseline.json), parses the output
// of `go test -bench -benchmem` into it, and compares two artifacts under
// a regression tolerance. cmd/unitbench is the driver; `make bench-check`
// is the CI gate.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the layout of the JSON artifact. Bump it when
// fields change meaning; the comparator refuses to diff artifacts of
// different schemas rather than guessing.
const SchemaVersion = 1

// Result is one benchmark artifact: a full `go test -bench` sweep plus
// the headline experiment USMs recorded at the same commit. Keeping the
// USMs next to the timing numbers makes a perf change that also shifts
// results visible as such.
type Result struct {
	Schema      int                `json:"schema"`
	GoVersion   string             `json:"go_version,omitempty"`
	GOOS        string             `json:"goos,omitempty"`
	GOARCH      string             `json:"goarch,omitempty"`
	Benchmarks  []Benchmark        `json:"benchmarks"`
	HeadlineUSM map[string]float64 `json:"headline_usm,omitempty"`
}

// Benchmark is one benchmark's merged measurements. Name has the
// -GOMAXPROCS suffix stripped so artifacts compare across machines; when
// `-count` produced repeats, the merge keeps the minimum ns/op and
// B/op / allocs/op (the least-noise estimate) and the maximum of
// throughput-style custom metrics.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output and returns the merged benchmarks
// sorted by name. Lines that are not benchmark results (PASS, ok, warmup
// noise) are ignored.
func Parse(r io.Reader) ([]Benchmark, error) {
	merged := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("bench: %q: %w", line, err)
		}
		if b == nil {
			continue
		}
		mergeInto(merged, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Benchmark, 0, len(merged))
	for _, b := range merged {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8  1234  567.8 ns/op  24 B/op  1 allocs/op  0.93 USM
//
// i.e. name, iteration count, then (value, unit) pairs. Returns (nil, nil)
// for benchmark lines without measurements (e.g. a bare name before
// sub-benchmarks).
func parseLine(line string) (*Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return nil, nil
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return nil, nil // "BenchmarkX" header line without measurements
	}
	b := &Benchmark{Name: stripProcs(f[0]), Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", f[i])
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			setMetric(b, "MB/s", v)
		default:
			setMetric(b, unit, v)
		}
	}
	return b, nil
}

func setMetric(b *Benchmark, unit string, v float64) {
	if b.Metrics == nil {
		b.Metrics = map[string]float64{}
	}
	b.Metrics[unit] = v
}

// stripProcs removes the trailing -GOMAXPROCS decoration go test appends.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// mergeInto folds one measurement into the per-name merge: minimum
// ns/op, B/op and allocs/op across repeats (the least-noisy estimate on a
// shared machine), maximum for custom metrics, which are throughputs or
// experiment statistics where the largest observation is the stable one.
func mergeInto(m map[string]*Benchmark, b *Benchmark) {
	prev, ok := m[b.Name]
	if !ok {
		m[b.Name] = b
		return
	}
	prev.Iterations += b.Iterations
	if b.NsPerOp > 0 && (prev.NsPerOp == 0 || b.NsPerOp < prev.NsPerOp) {
		prev.NsPerOp = b.NsPerOp
	}
	if b.BytesPerOp < prev.BytesPerOp {
		prev.BytesPerOp = b.BytesPerOp
	}
	if b.AllocsPerOp < prev.AllocsPerOp {
		prev.AllocsPerOp = b.AllocsPerOp
	}
	for k, v := range b.Metrics {
		if v > prev.Metrics[k] {
			setMetric(prev, k, v)
		}
	}
}

// Regression is one benchmark that got worse than the tolerance allows.
type Regression struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"` // "ns/op", "allocs/op" or a custom unit
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Ratio    float64 `json:"ratio"` // current/baseline for costs, baseline/current for rates
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.0f%% worse)",
		r.Name, r.Metric, r.Baseline, r.Current, (r.Ratio-1)*100)
}

// DefaultTolerance is the CI gate: fail on >15% throughput regression.
const DefaultTolerance = 0.15

// CalibrationName is the machine-speed reference benchmark. When both
// artifacts contain it, Compare rescales the current timings by the
// calibration ratio before applying the tolerance, so a uniformly slower
// (or faster) machine — different CI runner, thermal throttling — does
// not read as a code regression. Allocation counts need no scaling.
const CalibrationName = "BenchmarkCalibrationSpin"

// lowSampleFloor marks benchmarks whose iteration count is too small for
// the headline tolerance: relative timing error grows as samples shrink,
// and the seconds-per-op macro sweeps (Fig4NaiveUSM and friends) manage
// single-digit iterations in a smoke run. Below the floor on either
// side, timing tolerances double; allocation checks stay exact.
const lowSampleFloor = 25

// Compare diffs current against baseline and returns the regressions
// beyond tolerance. When both artifacts carry the CalibrationName
// benchmark, timings are first rescaled by the calibration ratio (see
// CalibrationName). Checked per benchmark present in both artifacts:
//
//   - ns/op may not grow by more than the tolerance (after calibration);
//   - allocs/op may not grow by more than the tolerance (and by at least
//     one whole allocation — allocation counts are exact, not noisy);
//   - custom metrics whose unit ends in "/sec" may not shrink by more
//     than the tolerance (after calibration).
//
// Timing tolerances double for benchmarks below lowSampleFloor
// iterations on either side — their per-op estimates are statistically
// noisy in short smoke runs.
//
// Benchmarks that exist on only one side are reported in missing — a
// renamed benchmark must be renamed in the baseline too, or the gate
// silently loses coverage.
func Compare(baseline, current *Result, tolerance float64) (regs []Regression, missing []string, err error) {
	if baseline.Schema != current.Schema {
		return nil, nil, fmt.Errorf("bench: schema mismatch: baseline v%d vs current v%d", baseline.Schema, current.Schema)
	}
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	scale := calibrationScale(baseline, cur)
	seen := map[string]bool{}
	for _, base := range baseline.Benchmarks {
		now, ok := cur[base.Name]
		if !ok {
			missing = append(missing, "baseline-only: "+base.Name)
			continue
		}
		seen[base.Name] = true
		if base.Name == CalibrationName {
			continue // the reference itself is exempt by construction
		}
		effTol := tolerance
		if base.Iterations < lowSampleFloor || now.Iterations < lowSampleFloor {
			effTol = 2 * tolerance
		}
		if base.NsPerOp > 0 && now.NsPerOp > base.NsPerOp*scale*(1+effTol) {
			regs = append(regs, Regression{
				Name: base.Name, Metric: "ns/op",
				Baseline: base.NsPerOp, Current: now.NsPerOp,
				Ratio: now.NsPerOp / (base.NsPerOp * scale),
			})
		}
		if now.AllocsPerOp > base.AllocsPerOp*(1+tolerance) && now.AllocsPerOp >= base.AllocsPerOp+1 {
			regs = append(regs, Regression{
				Name: base.Name, Metric: "allocs/op",
				Baseline: base.AllocsPerOp, Current: now.AllocsPerOp,
				Ratio: (now.AllocsPerOp + 1) / (base.AllocsPerOp + 1),
			})
		}
		for unit, bv := range base.Metrics {
			if !strings.HasSuffix(unit, "/sec") || bv <= 0 {
				continue
			}
			if nv := now.Metrics[unit]; nv < bv/scale*(1-effTol) {
				ratio := 0.0
				if nv > 0 {
					ratio = bv / scale / nv
				}
				regs = append(regs, Regression{
					Name: base.Name, Metric: unit,
					Baseline: bv, Current: nv, Ratio: ratio,
				})
			}
		}
	}
	for _, b := range current.Benchmarks {
		if !seen[b.Name] {
			missing = append(missing, "current-only: "+b.Name)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	sort.Strings(missing)
	return regs, missing, nil
}

// calibrationScale returns current/baseline speed of the calibration
// spin, or 1 when either side lacks it.
func calibrationScale(baseline *Result, cur map[string]Benchmark) float64 {
	for _, b := range baseline.Benchmarks {
		if b.Name != CalibrationName || b.NsPerOp <= 0 {
			continue
		}
		if now, ok := cur[CalibrationName]; ok && now.NsPerOp > 0 {
			return now.NsPerOp / b.NsPerOp
		}
	}
	return 1
}
