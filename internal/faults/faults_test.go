package faults_test

import (
	"strings"
	"testing"

	"unitdb/internal/engine"
	"unitdb/internal/faults"
)

// The injector must plug into the engine's disturbance hooks, including
// the optional client-behaviour extension.
var (
	_ engine.Disturbance      = (*faults.Injector)(nil)
	_ engine.QueryDisturbance = (*faults.Injector)(nil)
)

func TestFaultValidation(t *testing.T) {
	bad := []faults.Fault{
		{Kind: faults.KindFeedOutage, Start: 20, End: 10}, // inverted
		{Kind: faults.KindFeedOutage, Start: -1, End: 10}, // negative start
		{Kind: faults.KindUpdateBurst, Start: 0, End: 1},  // zero factor
		{Kind: faults.KindCPUSlowdown, Start: 0, End: 1, Factor: -2},
		{Kind: faults.KindSlowConsumer, Start: 0, End: 1},                // zero factor
		{Kind: faults.KindClientDisconnect, Start: 0, End: 1, Factor: 0}, // zero delay
		{Kind: faults.Kind(99), Start: 0, End: 1},                        // unknown kind
		faults.ItemBlackout(0, 1, 3, -4),                                 // negative item
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("fault %d (%v) validated", i, f)
		}
		if _, err := faults.NewSchedule(f); err == nil {
			t.Errorf("schedule accepted bad fault %d (%v)", i, f)
		}
	}
	good := []faults.Fault{
		faults.FeedOutage(0, 5),
		faults.ItemBlackout(1, 2, 7),
		faults.UpdateBurst(0, 1, 4),
		faults.CPUSlowdown(2, 3, 1.5),
		faults.ArrivalStall(0, 10),
		faults.SlowConsumer(3, 4, 2.5),
		faults.ClientDisconnect(4, 5, 0.5),
		faults.FeedOutage(10, 10), // zero-length: legal and inert
	}
	if _, err := faults.NewSchedule(good...); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestZeroLengthWindowIsInert(t *testing.T) {
	f := faults.FeedOutage(10, 10)
	if f.Active(10) {
		t.Fatal("zero-length window active at its own start")
	}
	s := faults.MustSchedule(f, faults.CPUSlowdown(2, 5, 2))
	if got := s.Horizon(); got != 5 {
		t.Fatalf("Horizon = %v, want 5 (zero-length window must not extend it)", got)
	}
	if got := len(s.ActiveAt(10)); got != 0 {
		t.Fatalf("%d faults active at t=10, want 0", got)
	}
	in := faults.NewInjector(faults.MustSchedule(f))
	if in.BlockFeed(0, 10) {
		t.Fatal("zero-length outage blocked a delivery")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		name string
		a, b faults.Fault
		want bool
	}{
		{"disjoint", faults.FeedOutage(0, 10), faults.FeedOutage(20, 30), false},
		{"back-to-back half-open", faults.FeedOutage(0, 10), faults.FeedOutage(10, 20), false},
		{"nested", faults.FeedOutage(0, 10), faults.FeedOutage(2, 5), true},
		{"straddle", faults.FeedOutage(0, 10), faults.FeedOutage(5, 15), true},
		{"zero-length inside", faults.FeedOutage(0, 10), faults.FeedOutage(5, 5), false},
		{"different kinds still overlap in time", faults.FeedOutage(0, 10), faults.UpdateBurst(5, 15, 2), true},
		{"item-scoped disjoint items", faults.ItemBlackout(0, 10, 1, 2), faults.ItemBlackout(0, 10, 3, 4), false},
		{"item-scoped shared item", faults.ItemBlackout(0, 10, 1, 2), faults.ItemBlackout(0, 10, 2, 3), true},
		{"unscoped covers scoped", faults.FeedOutage(0, 10), faults.ItemBlackout(0, 10, 7), true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%s: Overlaps = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("%s (reversed): Overlaps = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConflictsAndMerge(t *testing.T) {
	outages := faults.MustSchedule(faults.ItemBlackout(0, 10, 1))
	bursts := faults.MustSchedule(faults.UpdateBurst(5, 15, 3))
	merged, err := faults.Merge(outages, nil, bursts)
	if err != nil {
		t.Fatalf("clean merge failed: %v", err)
	}
	if got := len(merged.Faults()); got != 2 {
		t.Fatalf("merged %d faults, want 2", got)
	}
	if cs := merged.Conflicts(); len(cs) != 0 {
		t.Fatalf("unexpected conflicts: %v", cs)
	}

	// Same kind, overlapping windows, shared items: a composition mistake.
	clash := faults.MustSchedule(faults.ItemBlackout(5, 15, 1))
	if _, err := faults.Merge(outages, clash); err == nil {
		t.Fatal("merge accepted same-kind overlap on a shared item")
	}
	// Same kind but disjoint item scopes merge fine.
	other := faults.MustSchedule(faults.ItemBlackout(5, 15, 2))
	if _, err := faults.Merge(outages, other); err != nil {
		t.Fatalf("item-disjoint same-kind merge failed: %v", err)
	}
	// Back-to-back same-kind windows do not conflict (half-open).
	tail := faults.MustSchedule(faults.ItemBlackout(10, 20, 1))
	if _, err := faults.Merge(outages, tail); err != nil {
		t.Fatalf("back-to-back merge failed: %v", err)
	}
}

func TestInjectorSlowConsumerAndDisconnect(t *testing.T) {
	in := faults.NewInjector(faults.MustSchedule(
		faults.SlowConsumer(0, 10, 2),
		faults.SlowConsumer(5, 10, 3),
		faults.ClientDisconnect(20, 30, 1.5),
		faults.ClientDisconnect(25, 30, 0.5),
	))
	if got := in.ScaleQueryExec(1); got != 2 {
		t.Fatalf("ScaleQueryExec(1) = %v, want 2", got)
	}
	if got := in.ScaleQueryExec(7); got != 6 { // overlapping windows multiply
		t.Fatalf("ScaleQueryExec(7) = %v, want 6", got)
	}
	if got := in.ScaleQueryExec(15); got != 1 {
		t.Fatalf("ScaleQueryExec(15) = %v, want 1", got)
	}
	if got := in.DisconnectAfter(5); got != 0 {
		t.Fatalf("DisconnectAfter(5) = %v, want 0", got)
	}
	if got := in.DisconnectAfter(22); got != 1.5 {
		t.Fatalf("DisconnectAfter(22) = %v, want 1.5", got)
	}
	if got := in.DisconnectAfter(26); got != 0.5 { // most impatient client wins
		t.Fatalf("DisconnectAfter(26) = %v, want 0.5", got)
	}
	c := in.Counts()
	if c.QueryInflations != 2 {
		t.Fatalf("QueryInflations = %d, want 2", c.QueryInflations)
	}
	if c.Disconnects != 2 {
		t.Fatalf("Disconnects = %d, want 2", c.Disconnects)
	}
}

func TestScheduleOrderingAndAccessors(t *testing.T) {
	s := faults.MustSchedule(
		faults.CPUSlowdown(50, 60, 2),
		faults.FeedOutage(10, 20),
		faults.ArrivalStall(10, 15),
	)
	fs := s.Faults()
	if len(fs) != 3 || fs[0].Start != 10 || fs[2].Start != 50 {
		t.Fatalf("canonical order wrong: %v", fs)
	}
	if got := s.Horizon(); got != 60 {
		t.Fatalf("horizon = %v, want 60", got)
	}
	if got := len(s.ActiveAt(12)); got != 2 {
		t.Fatalf("%d faults active at t=12, want 2", got)
	}
	if got := len(s.ActiveAt(20)); got != 0 { // windows are half-open
		t.Fatalf("%d faults active at t=20, want 0", got)
	}
	if str := s.String(); !strings.Contains(str, "feed-outage") {
		t.Fatalf("schedule string %q", str)
	}
}

func TestInjectorBlockFeed(t *testing.T) {
	in := faults.NewInjector(faults.MustSchedule(
		faults.FeedOutage(10, 20),
		faults.ItemBlackout(30, 40, 5),
	))
	cases := []struct {
		item int
		t    float64
		want bool
	}{
		{0, 5, false}, // before any window
		{0, 10, true}, // whole-feed outage
		{9, 19.9, true},
		{0, 20, false}, // half-open end
		{5, 35, true},  // blackout covers item 5
		{6, 35, false}, // but not item 6
	}
	blocked := 0
	for _, c := range cases {
		if got := in.BlockFeed(c.item, c.t); got != c.want {
			t.Errorf("BlockFeed(%d, %v) = %v, want %v", c.item, c.t, got, c.want)
		}
		if c.want {
			blocked++
		}
	}
	if got := in.Counts().UpdatesBlocked; got != blocked {
		t.Fatalf("UpdatesBlocked = %d, want %d", got, blocked)
	}
}

func TestInjectorComposition(t *testing.T) {
	in := faults.NewInjector(faults.MustSchedule(
		faults.CPUSlowdown(0, 10, 2),
		faults.CPUSlowdown(5, 10, 3),
		faults.UpdateBurst(0, 10, 4),
		faults.UpdateBurst(5, 10, 2, 1),
	))
	if got := in.ScaleExec(1); got != 2 {
		t.Fatalf("ScaleExec(1) = %v, want 2", got)
	}
	if got := in.ScaleExec(7); got != 6 { // overlapping slowdowns multiply
		t.Fatalf("ScaleExec(7) = %v, want 6", got)
	}
	if got := in.ScaleExec(11); got != 1 {
		t.Fatalf("ScaleExec(11) = %v, want 1", got)
	}
	if got := in.FeedRate(0, 7); got != 4 { // item-scoped burst skips item 0
		t.Fatalf("FeedRate(0, 7) = %v, want 4", got)
	}
	if got := in.FeedRate(1, 7); got != 8 { // bursts multiply on item 1
		t.Fatalf("FeedRate(1, 7) = %v, want 8", got)
	}
	if got := in.Counts().ExecInflations; got != 2 {
		t.Fatalf("ExecInflations = %d, want 2", got)
	}
}

func TestInjectorStallChains(t *testing.T) {
	in := faults.NewInjector(faults.MustSchedule(
		faults.ArrivalStall(10, 20),
		faults.ArrivalStall(20, 30), // release of the first lands in the second
	))
	if got := in.ReleaseQuery(5); got != 5 {
		t.Fatalf("ReleaseQuery(5) = %v, want 5", got)
	}
	if got := in.ReleaseQuery(15); got != 30 { // chained through both windows
		t.Fatalf("ReleaseQuery(15) = %v, want 30", got)
	}
	if got := in.ReleaseQuery(30); got != 30 {
		t.Fatalf("ReleaseQuery(30) = %v, want 30", got)
	}
	if got := in.Counts().QueriesStalled; got != 1 {
		t.Fatalf("QueriesStalled = %d, want 1", got)
	}
}

func TestNilScheduleInjectsNothing(t *testing.T) {
	in := faults.NewInjector(nil)
	if in.BlockFeed(0, 1) || in.ScaleExec(1) != 1 || in.FeedRate(0, 1) != 1 || in.ReleaseQuery(1) != 1 ||
		in.ScaleQueryExec(1) != 1 || in.DisconnectAfter(1) != 0 {
		t.Fatal("nil-schedule injector disturbed something")
	}
	if c := in.Counts(); c != (faults.Counts{}) {
		t.Fatalf("counts %+v, want zero", c)
	}
}
