package faults

import "sync"

// Counts tallies what an injector actually perturbed during a run; chaos
// tests assert them against the engine's own accounting.
type Counts struct {
	// UpdatesBlocked is the number of update-feed deliveries lost to
	// outages and blackouts.
	UpdatesBlocked int
	// QueriesStalled is the number of query arrivals held by a stall.
	QueriesStalled int
	// ExecInflations is the number of transactions whose execution demand
	// a CPU slowdown inflated.
	ExecInflations int
	// QueryInflations is the number of queries whose execution demand a
	// slow consumer inflated.
	QueryInflations int
	// Disconnects is the number of queries presented inside a
	// client-disconnect window (every one is armed to abandon; those that
	// resolve before the delay elapses are never actually abandoned, so
	// the engine's QueriesAbandoned counter is at most this tally).
	Disconnects int
}

// Injector replays a fault schedule against a run. It implements the
// engine's Disturbance hooks (engine.Config.Disturbance).
//
// The schedule itself is immutable after construction; the injector only
// mutates its tally, which mu guards so the same type can also serve
// wall-clock harnesses that probe it from another goroutine (the simulator
// itself is single-threaded, where the lock is uncontended).
type Injector struct {
	sched *Schedule // immutable after NewInjector: read freely without mu

	mu     sync.Mutex
	counts Counts // guarded by mu
}

// NewInjector builds an injector for the schedule. A nil schedule injects
// nothing.
func NewInjector(s *Schedule) *Injector {
	if s == nil {
		s = &Schedule{}
	}
	return &Injector{sched: s}
}

// Schedule returns the injector's schedule.
func (in *Injector) Schedule() *Schedule { return in.sched }

// Counts returns a snapshot of the injection tally.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// ScaleExec implements engine.Disturbance: the product of every active CPU
// slowdown's factor at time t (1 when none is active).
func (in *Injector) ScaleExec(t float64) float64 {
	scale := 1.0
	for _, f := range in.sched.faults {
		if f.Kind == KindCPUSlowdown && f.Active(t) {
			scale *= f.Factor
		}
	}
	if scale != 1 {
		in.mu.Lock()
		in.counts.ExecInflations++
		in.mu.Unlock()
	}
	return scale
}

// ScaleQueryExec implements engine.QueryDisturbance: the product of every
// active slow-consumer's factor at time t (1 when none is active). Applies
// on top of ScaleExec, and only to queries.
func (in *Injector) ScaleQueryExec(t float64) float64 {
	scale := 1.0
	for _, f := range in.sched.faults {
		if f.Kind == KindSlowConsumer && f.Active(t) {
			scale *= f.Factor
		}
	}
	if scale != 1 {
		in.mu.Lock()
		in.counts.QueryInflations++
		in.mu.Unlock()
	}
	return scale
}

// DisconnectAfter implements engine.QueryDisturbance: how long after its
// presentation at time t a query keeps its client (0 = the client stays).
// When several disconnect windows cover t the most impatient client wins.
func (in *Injector) DisconnectAfter(t float64) float64 {
	after := 0.0
	for _, f := range in.sched.faults {
		if f.Kind == KindClientDisconnect && f.Active(t) {
			if after == 0 || f.Factor < after {
				after = f.Factor
			}
		}
	}
	if after > 0 {
		in.mu.Lock()
		in.counts.Disconnects++
		in.mu.Unlock()
	}
	return after
}

// BlockFeed implements engine.Disturbance: whether item's delivery at time
// t is lost to an active outage or blackout.
func (in *Injector) BlockFeed(item int, t float64) bool {
	for _, f := range in.sched.faults {
		if f.Kind == KindFeedOutage && f.Active(t) && f.Covers(item) {
			in.mu.Lock()
			in.counts.UpdatesBlocked++
			in.mu.Unlock()
			return true
		}
	}
	return false
}

// FeedRate implements engine.Disturbance: the product of every active
// burst's rate multiplier covering item at time t (1 when none is active).
func (in *Injector) FeedRate(item int, t float64) float64 {
	rate := 1.0
	for _, f := range in.sched.faults {
		if f.Kind == KindUpdateBurst && f.Active(t) && f.Covers(item) {
			rate *= f.Factor
		}
	}
	return rate
}

// ReleaseQuery implements engine.Disturbance: the time a query nominally
// arriving at t is presented. Inside a stall window that is the window
// end; stalls chain, so a release landing inside a later stall is held
// again until clear of every window.
func (in *Injector) ReleaseQuery(t float64) float64 {
	release := t
	// Each pass can only move the release forward into (at most) one later
	// window per fault, so len(faults)+1 passes reach a fixed point.
	for pass := 0; pass <= len(in.sched.faults); pass++ {
		moved := false
		for _, f := range in.sched.faults {
			if f.Kind == KindArrivalStall && f.Active(release) && f.End > release {
				release = f.End
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	if release > t {
		in.mu.Lock()
		in.counts.QueriesStalled++
		in.mu.Unlock()
	}
	return release
}
