// Chaos recovery regression tests: each built-in fault schedule is
// replayed against a UNIT-controlled run and the windowed USM around the
// fault is pinned — it must dip while the fault is active and climb back
// to within recoveryTol of the pre-fault level within recoveryWindows
// measurement windows of the fault ending (DESIGN.md §9 documents the
// contract). Runs are bitwise-reproducible per seed, so every assertion
// here is a regression test, not a statistical one.
//
// `make chaos` runs this file under the race detector.
package faults_test

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"unitdb/internal/core"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/faults"
	"unitdb/internal/txn"
	"unitdb/internal/workload"
)

const (
	// windowWidth is the USM measurement window in virtual seconds —
	// 100 LBC control ticks, 20 grace periods of the default UNIT config.
	windowWidth = 100.0
	// warmupWindows are excluded from the pre-fault baseline while the
	// controller and ticket ledger settle.
	warmupWindows = 5
	// minWindowSamples gates windows too thin to carry a meaningful USM
	// (e.g. the near-empty windows inside an arrival stall).
	minWindowSamples = 50
	// recoveryWindows bounds how long after fault end the windowed USM may
	// stay below baseline − recoveryTol·Range (the documented recovery
	// guarantee, DESIGN.md §9).
	recoveryWindows = 4
	// recoveryTol is the recovery tolerance as a fraction of the USM range
	// 1 + max(Cr, Cfm, Cfs).
	recoveryTol = 0.05
)

var chaosWeights = usm.Weights{Cr: 0.25, Cfm: 0.75, Cfs: 0.25}

// chaosWorkload is a med-unif trace dense enough for ~200 query outcomes
// per measurement window: 6000 queries over 3000 s and 64 items, no flash
// crowds (the injected fault is the disturbance under test). Built once —
// the engine treats workloads as read-only.
var chaosWorkload = sync.OnceValue(func() *workload.Workload {
	qc := workload.SmallQueryConfig()
	qc.NumItems = 64
	qc.NumQueries = 6000
	qc.Duration = 3000
	qc.BurstFraction = 0
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		panic(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(workload.Med, workload.Uniform), 43)
	if err != nil {
		panic(err)
	}
	return w
})

// windowedPolicy wraps UNIT, bucketing every finalized query outcome into
// fixed virtual-time windows and recording the per-query outcome trace.
type windowedPolicy struct {
	engine.Policy
	e       *engine.Engine
	windows []usm.Counts
	trace   []string
}

func (p *windowedPolicy) Attach(e *engine.Engine) {
	p.e = e
	p.Policy.Attach(e)
}

func (p *windowedPolicy) OnQueryDone(q *txn.Txn) {
	idx := int(p.e.Now() / windowWidth)
	for len(p.windows) <= idx {
		p.windows = append(p.windows, usm.Counts{})
	}
	p.windows[idx].Record(q.Outcome)
	p.trace = append(p.trace, fmt.Sprintf("%d:%v", q.ID, q.Outcome))
	p.Policy.OnQueryDone(q)
}

func runChaos(tb testing.TB, sched *faults.Schedule, policySeed, engineSeed uint64) (*windowedPolicy, *engine.Results, faults.Counts) {
	tb.Helper()
	pcfg := core.DefaultConfig(chaosWeights)
	pcfg.Seed = policySeed
	pol := &windowedPolicy{Policy: core.New(pcfg)}
	inj := faults.NewInjector(sched)
	cfg := engine.NewConfig(chaosWorkload(), chaosWeights, engineSeed)
	cfg.Disturbance = inj
	e, err := engine.New(cfg, pol)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		tb.Fatal(err)
	}
	return pol, res, inj.Counts()
}

// dumpWindows renders the window series for failure diagnostics.
func dumpWindows(windows []usm.Counts) string {
	out := ""
	for i, c := range windows {
		out += fmt.Sprintf("  w%02d [%5.0f,%5.0f) n=%3d usm=%+.3f\n",
			i, float64(i)*windowWidth, float64(i+1)*windowWidth, c.Total(), c.USM(chaosWeights))
	}
	return out
}

// baseline averages the per-window USM over the settled pre-fault windows.
func baseline(tb testing.TB, windows []usm.Counts, faultStart float64) float64 {
	tb.Helper()
	end := int(faultStart / windowWidth)
	sum, n := 0.0, 0
	for i := warmupWindows; i < end && i < len(windows); i++ {
		if windows[i].Total() < minWindowSamples {
			continue
		}
		sum += windows[i].USM(chaosWeights)
		n++
	}
	if n == 0 {
		tb.Fatalf("no settled pre-fault windows before t=%v:\n%s", faultStart, dumpWindows(windows))
	}
	return sum / float64(n)
}

// assertDipAndRecovery pins the shape the paper's adaptivity claim
// predicts: the windowed USM dips by at least minDip while the fault (or
// its immediate aftermath) is in effect and returns to within
// recoveryTol·Range of the pre-fault baseline within recoveryWindows
// windows of the fault ending. It returns the number of windows recovery
// took.
func assertDipAndRecovery(t *testing.T, windows []usm.Counts, faultStart, faultEnd, minDip float64) int {
	t.Helper()
	base := baseline(t, windows, faultStart)
	tol := recoveryTol * chaosWeights.Range()

	// Dip: some window overlapping [faultStart, faultEnd+windowWidth) must
	// sit at least minDip below baseline (the extra window catches faults
	// whose damage lands at release time, e.g. an arrival stall's herd).
	dipLo, dipHi := int(faultStart/windowWidth), int((faultEnd)/windowWidth)+1
	worst, worstOK := 0.0, false
	for i := dipLo; i <= dipHi && i < len(windows); i++ {
		if windows[i].Total() < minWindowSamples {
			continue
		}
		if u := windows[i].USM(chaosWeights); !worstOK || u < worst {
			worst, worstOK = u, true
		}
	}
	if !worstOK {
		t.Fatalf("no populated window during fault [%v,%v):\n%s", faultStart, faultEnd, dumpWindows(windows))
	}
	if worst > base-minDip {
		t.Errorf("fault did not bite: worst in-fault window USM %.3f vs baseline %.3f (want dip ≥ %.3f)\n%s",
			worst, base, minDip, dumpWindows(windows))
	}

	// Recovery: within recoveryWindows windows after the fault ends, the
	// windowed USM must be back within tol of baseline.
	first := dipHi
	for k := 0; k < recoveryWindows; k++ {
		i := first + k
		if i >= len(windows) {
			break
		}
		if windows[i].Total() < minWindowSamples {
			continue
		}
		if windows[i].USM(chaosWeights) >= base-tol {
			return k
		}
	}
	t.Fatalf("USM did not recover to %.3f−%.3f within %d windows of fault end %v:\n%s",
		base, tol, recoveryWindows, faultEnd, dumpWindows(windows))
	return -1
}

// builtinSchedules are the fault scenarios the chaos suite pins, keyed for
// stable iteration.
func builtinSchedules() []struct {
	name  string
	sched *faults.Schedule
} {
	return []struct {
		name  string
		sched *faults.Schedule
	}{
		{"feed-outage", faults.MustSchedule(faults.FeedOutage(1200, 1500))},
		{"item-blackout", faults.MustSchedule(faults.ItemBlackout(1200, 1500, 0, 1, 2, 3, 4, 5, 6, 7))},
		{"update-burst", faults.MustSchedule(faults.UpdateBurst(1200, 1500, 4))},
		{"cpu-slowdown", faults.MustSchedule(faults.CPUSlowdown(1200, 1400, 3))},
		{"arrival-stall", faults.MustSchedule(faults.ArrivalStall(1200, 1350))},
		{"composite", faults.MustSchedule(
			faults.FeedOutage(900, 1000),
			faults.CPUSlowdown(1300, 1400, 2),
			faults.UpdateBurst(1700, 1800, 3),
		)},
	}
}

func TestChaosFeedOutageRecovery(t *testing.T) {
	pol, res, counts := runChaos(t, faults.MustSchedule(faults.FeedOutage(1200, 1500)), 7, 11)
	if res.UpdatesLost == 0 || res.UpdatesLost != counts.UpdatesBlocked {
		t.Fatalf("UpdatesLost=%d injector blocked=%d; accounting disagrees", res.UpdatesLost, counts.UpdatesBlocked)
	}
	k := assertDipAndRecovery(t, pol.windows, 1200, 1500, 0.05)
	t.Logf("outage: %d deliveries lost, recovered in %d windows", res.UpdatesLost, k)
}

func TestChaosItemBlackoutRecovery(t *testing.T) {
	hot := []int{0, 1, 2, 3, 4, 5, 6, 7}
	pol, res, counts := runChaos(t, faults.MustSchedule(faults.ItemBlackout(1200, 1500, hot...)), 7, 11)
	if res.UpdatesLost == 0 || res.UpdatesLost != counts.UpdatesBlocked {
		t.Fatalf("UpdatesLost=%d injector blocked=%d", res.UpdatesLost, counts.UpdatesBlocked)
	}
	// A blackout of 8 of 64 uniform feeds must lose far fewer deliveries
	// than a whole-feed outage of the same window.
	_, full, _ := runChaos(t, faults.MustSchedule(faults.FeedOutage(1200, 1500)), 7, 11)
	if res.UpdatesLost*4 > full.UpdatesLost {
		t.Fatalf("blackout lost %d deliveries vs %d for the full outage; scoping is broken",
			res.UpdatesLost, full.UpdatesLost)
	}
	k := assertDipAndRecovery(t, pol.windows, 1200, 1500, 0.005)
	t.Logf("blackout: %d deliveries lost, recovered in %d windows", res.UpdatesLost, k)
}

func TestChaosUpdateBurstRecovery(t *testing.T) {
	pol, res, _ := runChaos(t, faults.MustSchedule(faults.UpdateBurst(1200, 1500, 4)), 7, 11)
	if res.UpdatesLost != 0 {
		t.Fatalf("burst lost %d deliveries; bursts add arrivals, not losses", res.UpdatesLost)
	}
	k := assertDipAndRecovery(t, pol.windows, 1200, 1500, 0.02)
	t.Logf("burst: %d updates dropped (UFM absorbing the burst), recovered in %d windows", res.UpdatesDropped, k)
}

func TestChaosCPUSlowdownRecovery(t *testing.T) {
	pol, _, counts := runChaos(t, faults.MustSchedule(faults.CPUSlowdown(1200, 1400, 3)), 7, 11)
	if counts.ExecInflations == 0 {
		t.Fatal("slowdown inflated nothing")
	}
	k := assertDipAndRecovery(t, pol.windows, 1200, 1400, 0.05)
	t.Logf("slowdown: %d demands inflated, recovered in %d windows", counts.ExecInflations, k)
}

func TestChaosArrivalStallRecovery(t *testing.T) {
	pol, res, counts := runChaos(t, faults.MustSchedule(faults.ArrivalStall(1200, 1350)), 7, 11)
	if res.QueriesStalled == 0 || res.QueriesStalled != counts.QueriesStalled {
		t.Fatalf("QueriesStalled=%d injector stalled=%d", res.QueriesStalled, counts.QueriesStalled)
	}
	k := assertDipAndRecovery(t, pol.windows, 1200, 1350, 0.02)
	t.Logf("stall: %d arrivals held, recovered in %d windows", res.QueriesStalled, k)
}

// TestChaosDeterministicReplay pins the determinism contract for every
// built-in schedule: same seeds → identical results and per-query outcome
// traces; a different engine seed must diverge.
func TestChaosDeterministicReplay(t *testing.T) {
	scheds := builtinSchedules()
	if testing.Short() {
		scheds = scheds[:2]
	}
	for _, sc := range scheds {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			p1, r1, c1 := runChaos(t, sc.sched, 7, 11)
			p2, r2, c2 := runChaos(t, sc.sched, 7, 11)
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("same-seed results diverge:\n  %v\n  %v", r1, r2)
			}
			if !reflect.DeepEqual(p1.trace, p2.trace) {
				t.Errorf("same-seed outcome traces diverge (%d vs %d entries)", len(p1.trace), len(p2.trace))
			}
			if c1 != c2 {
				t.Errorf("same-seed injection counts diverge: %+v vs %+v", c1, c2)
			}
			p3, _, _ := runChaos(t, sc.sched, 7, 12)
			if reflect.DeepEqual(p1.trace, p3.trace) {
				t.Errorf("engine seeds 11 and 12 replayed identical traces under %s; seed is not flowing", sc.name)
			}
		})
	}
}

// TestChaosUndisturbedBitwiseUnchanged guards the nil fast path: an engine
// with a nil Disturbance and one with an empty schedule must replay the
// undisturbed run bit for bit.
func TestChaosUndisturbedBitwiseUnchanged(t *testing.T) {
	runWith := func(d engine.Disturbance) (*engine.Results, []string) {
		pcfg := core.DefaultConfig(chaosWeights)
		pcfg.Seed = 7
		pol := &windowedPolicy{Policy: core.New(pcfg)}
		cfg := engine.NewConfig(chaosWorkload(), chaosWeights, 11)
		cfg.Disturbance = d
		e, err := engine.New(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r, pol.trace
	}
	rNil, tNil := runWith(nil)
	rEmpty, tEmpty := runWith(faults.NewInjector(nil))
	if !reflect.DeepEqual(rNil, rEmpty) || !reflect.DeepEqual(tNil, tEmpty) {
		t.Fatal("empty fault schedule perturbed the run")
	}
	if rNil.UpdatesLost != 0 || rNil.QueriesStalled != 0 {
		t.Fatalf("undisturbed run reported disturbances: %+v", rNil)
	}
}

// TestChaosWindowCoverage sanity-checks the harness itself: window tallies
// must account for every finalized query exactly once.
func TestChaosWindowCoverage(t *testing.T) {
	pol, res, _ := runChaos(t, faults.MustSchedule(faults.FeedOutage(1200, 1500)), 7, 11)
	var sum usm.Counts
	for _, w := range pol.windows {
		sum.Add(w)
	}
	if sum != res.Counts {
		t.Fatalf("window tallies %+v != run counts %+v", sum, res.Counts)
	}
	if len(pol.trace) != res.Counts.Total() {
		t.Fatalf("trace has %d entries, run finalized %d queries", len(pol.trace), res.Counts.Total())
	}
	ids := append([]string(nil), pol.trace...)
	sort.Strings(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			t.Fatalf("query finalized twice: %s", ids[i])
		}
	}
}
