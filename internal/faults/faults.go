// Package faults is the deterministic fault-injection subsystem: composable
// schedules of disturbances — update-feed outages, per-item blackouts,
// update-volume bursts, CPU slowdowns and query-arrival stalls — replayed
// against the simulation engine through its disturbance hooks
// (engine.Config.Disturbance).
//
// Everything here is a pure function of virtual time: a fault schedule
// plus a (workload, weights, seed) triple yields a bitwise-reproducible
// run, so chaos regression tests can pin exact recovery behaviour the same
// way the determinism tests pin the undisturbed runs. No wall clock, no
// hidden randomness (the detclock and seededrand analyzers cover this
// package).
//
// Semantics of each fault kind:
//
//   - FeedOutage / ItemBlackout: the source keeps emitting on its cadence
//     but deliveries inside the window are lost in transit. Each lost
//     delivery still ages the stored copy (one lag unit, paper Eq. 1) —
//     the source moved on, the system just never saw it.
//   - UpdateBurst: the feed's arrival rate is multiplied by Factor inside
//     the window (arrivals land period/Factor apart), modelling a volume
//     spike such as a market open.
//   - CPUSlowdown: execution demands of transactions *presented* inside
//     the window are multiplied by Factor (arrival-scoped inflation; a
//     transaction that arrived before the window keeps its nominal
//     demand). Deadlines and the optimizer's estimates stay nominal — the
//     user's deadline does not move because the CPU got slow, which is
//     exactly what makes the fault bite.
//   - ArrivalStall: queries nominally arriving inside the window are held
//     and presented together at the window end, in original arrival
//     order — an upstream partition followed by a thundering herd.
//     Deadlines anchor at presentation (the server clocks a query from
//     when it first sees it).
package faults

import (
	"fmt"
	"sort"
)

// Kind enumerates the built-in fault kinds.
type Kind int

const (
	// KindFeedOutage blocks update-feed deliveries (all items, or the
	// fault's item set for a per-item blackout).
	KindFeedOutage Kind = iota
	// KindUpdateBurst multiplies update-feed arrival rates by Factor.
	KindUpdateBurst
	// KindCPUSlowdown multiplies execution demands by Factor.
	KindCPUSlowdown
	// KindArrivalStall holds query arrivals until the window ends.
	KindArrivalStall
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFeedOutage:
		return "feed-outage"
	case KindUpdateBurst:
		return "update-burst"
	case KindCPUSlowdown:
		return "cpu-slowdown"
	case KindArrivalStall:
		return "arrival-stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one disturbance window [Start, End).
type Fault struct {
	Kind  Kind
	Start float64
	End   float64
	// Items scopes feed faults (outage, burst) to specific data items;
	// empty means every feed. Ignored by CPU and arrival faults.
	Items []int
	// Factor is the rate multiplier of a burst or the execution-time
	// inflation of a slowdown. Ignored by outages and stalls.
	Factor float64
}

// FeedOutage builds a whole-feed outage over [start, end).
func FeedOutage(start, end float64) Fault {
	return Fault{Kind: KindFeedOutage, Start: start, End: end}
}

// ItemBlackout builds a per-item feed outage over [start, end).
func ItemBlackout(start, end float64, items ...int) Fault {
	return Fault{Kind: KindFeedOutage, Start: start, End: end, Items: items}
}

// UpdateBurst builds a volume burst: every feed (or the given items') runs
// at factor× its nominal rate over [start, end).
func UpdateBurst(start, end, factor float64, items ...int) Fault {
	return Fault{Kind: KindUpdateBurst, Start: start, End: end, Factor: factor, Items: items}
}

// CPUSlowdown inflates execution demands by factor over [start, end).
func CPUSlowdown(start, end, factor float64) Fault {
	return Fault{Kind: KindCPUSlowdown, Start: start, End: end, Factor: factor}
}

// ArrivalStall holds query arrivals over [start, end), releasing them in a
// batch at end.
func ArrivalStall(start, end float64) Fault {
	return Fault{Kind: KindArrivalStall, Start: start, End: end}
}

// Active reports whether the fault covers time t.
func (f Fault) Active(t float64) bool { return t >= f.Start && t < f.End }

// Covers reports whether the fault applies to item (feed faults only; an
// empty item set covers everything).
func (f Fault) Covers(item int) bool {
	if len(f.Items) == 0 {
		return true
	}
	for _, it := range f.Items {
		if it == item {
			return true
		}
	}
	return false
}

// Validate checks one fault's structural invariants.
func (f Fault) Validate() error {
	if f.End <= f.Start || f.Start < 0 {
		return fmt.Errorf("faults: %s window [%v, %v) is empty or negative", f.Kind, f.Start, f.End)
	}
	switch f.Kind {
	case KindUpdateBurst:
		if f.Factor <= 0 {
			return fmt.Errorf("faults: %s factor %v must be positive", f.Kind, f.Factor)
		}
	case KindCPUSlowdown:
		if f.Factor <= 0 {
			return fmt.Errorf("faults: %s factor %v must be positive", f.Kind, f.Factor)
		}
	case KindFeedOutage, KindArrivalStall:
		// Factor unused.
	default:
		return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
	}
	for _, it := range f.Items {
		if it < 0 {
			return fmt.Errorf("faults: %s scoped to negative item %d", f.Kind, it)
		}
	}
	return nil
}

// String renders a fault for logs and traces.
func (f Fault) String() string {
	s := fmt.Sprintf("%s[%g,%g)", f.Kind, f.Start, f.End)
	if f.Factor != 0 {
		s += fmt.Sprintf("×%g", f.Factor)
	}
	if len(f.Items) > 0 {
		s += fmt.Sprintf("@%v", f.Items)
	}
	return s
}

// Schedule is a validated, composable set of faults. Overlapping faults
// compose: rate multipliers and execution inflations multiply, outages and
// stalls union.
type Schedule struct {
	faults []Fault
}

// NewSchedule validates the faults and returns their schedule, sorted by
// start time (ties by end then kind) for reproducible iteration.
func NewSchedule(fs ...Fault) (*Schedule, error) {
	out := make([]Fault, len(fs))
	copy(out, fs)
	for i, f := range out {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Kind < out[j].Kind
	})
	return &Schedule{faults: out}, nil
}

// MustSchedule is NewSchedule, panicking on invalid faults (test fixtures).
func MustSchedule(fs ...Fault) *Schedule {
	s, err := NewSchedule(fs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Faults returns a copy of the schedule's faults in canonical order.
func (s *Schedule) Faults() []Fault {
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// ActiveAt returns the faults covering time t, in canonical order.
func (s *Schedule) ActiveAt(t float64) []Fault {
	var out []Fault
	for _, f := range s.faults {
		if f.Active(t) {
			out = append(out, f)
		}
	}
	return out
}

// Horizon returns the end of the last fault window (0 for an empty
// schedule): after this instant the workload runs undisturbed.
func (s *Schedule) Horizon() float64 {
	h := 0.0
	for _, f := range s.faults {
		if f.End > h {
			h = f.End
		}
	}
	return h
}

// String renders the schedule.
func (s *Schedule) String() string {
	if len(s.faults) == 0 {
		return "faults{}"
	}
	out := "faults{"
	for i, f := range s.faults {
		if i > 0 {
			out += " "
		}
		out += f.String()
	}
	return out + "}"
}
