// Package faults is the deterministic fault-injection subsystem: composable
// schedules of disturbances — update-feed outages, per-item blackouts,
// update-volume bursts, CPU slowdowns and query-arrival stalls — replayed
// against the simulation engine through its disturbance hooks
// (engine.Config.Disturbance).
//
// Everything here is a pure function of virtual time: a fault schedule
// plus a (workload, weights, seed) triple yields a bitwise-reproducible
// run, so chaos regression tests can pin exact recovery behaviour the same
// way the determinism tests pin the undisturbed runs. No wall clock, no
// hidden randomness (the detclock and seededrand analyzers cover this
// package).
//
// Semantics of each fault kind:
//
//   - FeedOutage / ItemBlackout: the source keeps emitting on its cadence
//     but deliveries inside the window are lost in transit. Each lost
//     delivery still ages the stored copy (one lag unit, paper Eq. 1) —
//     the source moved on, the system just never saw it.
//   - UpdateBurst: the feed's arrival rate is multiplied by Factor inside
//     the window (arrivals land period/Factor apart), modelling a volume
//     spike such as a market open.
//   - CPUSlowdown: execution demands of transactions *presented* inside
//     the window are multiplied by Factor (arrival-scoped inflation; a
//     transaction that arrived before the window keeps its nominal
//     demand). Deadlines and the optimizer's estimates stay nominal — the
//     user's deadline does not move because the CPU got slow, which is
//     exactly what makes the fault bite.
//   - ArrivalStall: queries nominally arriving inside the window are held
//     and presented together at the window end, in original arrival
//     order — an upstream partition followed by a thundering herd.
//     Deadlines anchor at presentation (the server clocks a query from
//     when it first sees it).
//   - SlowConsumer: execution demands of *queries* presented inside the
//     window are multiplied by Factor — the client drains its result so
//     slowly that the worker serving it is held hostage. Updates keep
//     their nominal demand (the feed is a machine, not a slow reader).
//   - ClientDisconnect: a query presented inside the window loses its
//     client Factor seconds after presentation. If it is still unresolved
//     at that instant it is abandoned — removed from wherever it sits and
//     excluded from the USM, mirroring the live server's canceled path
//     (nobody is listening for the answer, so no outcome can satisfy or
//     disappoint them).
package faults

import (
	"fmt"
	"sort"
)

// Kind enumerates the built-in fault kinds.
type Kind int

const (
	// KindFeedOutage blocks update-feed deliveries (all items, or the
	// fault's item set for a per-item blackout).
	KindFeedOutage Kind = iota
	// KindUpdateBurst multiplies update-feed arrival rates by Factor.
	KindUpdateBurst
	// KindCPUSlowdown multiplies execution demands by Factor.
	KindCPUSlowdown
	// KindArrivalStall holds query arrivals until the window ends.
	KindArrivalStall
	// KindSlowConsumer multiplies the execution demands of queries (only)
	// presented inside the window by Factor.
	KindSlowConsumer
	// KindClientDisconnect abandons queries presented inside the window
	// Factor seconds after presentation if they are still unresolved.
	KindClientDisconnect
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFeedOutage:
		return "feed-outage"
	case KindUpdateBurst:
		return "update-burst"
	case KindCPUSlowdown:
		return "cpu-slowdown"
	case KindArrivalStall:
		return "arrival-stall"
	case KindSlowConsumer:
		return "slow-consumer"
	case KindClientDisconnect:
		return "client-disconnect"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one disturbance window [Start, End).
type Fault struct {
	Kind  Kind
	Start float64
	End   float64
	// Items scopes feed faults (outage, burst) to specific data items;
	// empty means every feed. Ignored by CPU and arrival faults.
	Items []int
	// Factor is the rate multiplier of a burst, the execution-time
	// inflation of a slowdown or slow consumer, or the seconds-until-
	// disconnect of a client disconnect. Ignored by outages and stalls.
	Factor float64
}

// FeedOutage builds a whole-feed outage over [start, end).
func FeedOutage(start, end float64) Fault {
	return Fault{Kind: KindFeedOutage, Start: start, End: end}
}

// ItemBlackout builds a per-item feed outage over [start, end).
func ItemBlackout(start, end float64, items ...int) Fault {
	return Fault{Kind: KindFeedOutage, Start: start, End: end, Items: items}
}

// UpdateBurst builds a volume burst: every feed (or the given items') runs
// at factor× its nominal rate over [start, end).
func UpdateBurst(start, end, factor float64, items ...int) Fault {
	return Fault{Kind: KindUpdateBurst, Start: start, End: end, Factor: factor, Items: items}
}

// CPUSlowdown inflates execution demands by factor over [start, end).
func CPUSlowdown(start, end, factor float64) Fault {
	return Fault{Kind: KindCPUSlowdown, Start: start, End: end, Factor: factor}
}

// ArrivalStall holds query arrivals over [start, end), releasing them in a
// batch at end.
func ArrivalStall(start, end float64) Fault {
	return Fault{Kind: KindArrivalStall, Start: start, End: end}
}

// SlowConsumer inflates the execution demands of queries presented over
// [start, end) by factor — slow result drains holding workers hostage.
func SlowConsumer(start, end, factor float64) Fault {
	return Fault{Kind: KindSlowConsumer, Start: start, End: end, Factor: factor}
}

// ClientDisconnect abandons queries presented over [start, end) once they
// have been in the system for after seconds without resolving.
func ClientDisconnect(start, end, after float64) Fault {
	return Fault{Kind: KindClientDisconnect, Start: start, End: end, Factor: after}
}

// Active reports whether the fault covers time t.
func (f Fault) Active(t float64) bool { return t >= f.Start && t < f.End }

// Covers reports whether the fault applies to item (feed faults only; an
// empty item set covers everything).
func (f Fault) Covers(item int) bool {
	if len(f.Items) == 0 {
		return true
	}
	for _, it := range f.Items {
		if it == item {
			return true
		}
	}
	return false
}

// Overlaps reports whether two faults can be active at the same instant on
// at least one shared item. Windows are half-open, so back-to-back faults
// ([a,b) followed by [b,c)) do not overlap, and a zero-length window
// overlaps nothing. Item scoping follows Covers: an empty item set touches
// every item, so it shares items with any scope.
func (f Fault) Overlaps(g Fault) bool {
	if f.End <= f.Start || g.End <= g.Start {
		return false // zero-length windows cover no instant
	}
	if f.Start >= g.End || g.Start >= f.End {
		return false
	}
	return f.sharesItems(g)
}

// sharesItems reports whether the two faults' item scopes intersect.
func (f Fault) sharesItems(g Fault) bool {
	if len(f.Items) == 0 || len(g.Items) == 0 {
		return true
	}
	for _, a := range f.Items {
		for _, b := range g.Items {
			if a == b {
				return true
			}
		}
	}
	return false
}

// Validate checks one fault's structural invariants. A zero-length window
// (End == Start) is legal and inert: the half-open [Start, End) covers no
// instant, so the fault never activates — schedule generators may emit one
// rather than special-casing a degenerate knob.
func (f Fault) Validate() error {
	if f.End < f.Start || f.Start < 0 {
		return fmt.Errorf("faults: %s window [%v, %v) is negative", f.Kind, f.Start, f.End)
	}
	switch f.Kind {
	case KindUpdateBurst, KindCPUSlowdown, KindSlowConsumer:
		if f.Factor <= 0 {
			return fmt.Errorf("faults: %s factor %v must be positive", f.Kind, f.Factor)
		}
	case KindClientDisconnect:
		if f.Factor <= 0 {
			return fmt.Errorf("faults: %s disconnect delay %v must be positive", f.Kind, f.Factor)
		}
	case KindFeedOutage, KindArrivalStall:
		// Factor unused.
	default:
		return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
	}
	for _, it := range f.Items {
		if it < 0 {
			return fmt.Errorf("faults: %s scoped to negative item %d", f.Kind, it)
		}
	}
	return nil
}

// String renders a fault for logs and traces.
func (f Fault) String() string {
	s := fmt.Sprintf("%s[%g,%g)", f.Kind, f.Start, f.End)
	if f.Factor != 0 {
		s += fmt.Sprintf("×%g", f.Factor)
	}
	if len(f.Items) > 0 {
		s += fmt.Sprintf("@%v", f.Items)
	}
	return s
}

// Schedule is a validated, composable set of faults. Overlapping faults
// compose: rate multipliers and execution inflations multiply, outages and
// stalls union.
type Schedule struct {
	faults []Fault
}

// NewSchedule validates the faults and returns their schedule, sorted by
// start time (ties by end then kind) for reproducible iteration.
func NewSchedule(fs ...Fault) (*Schedule, error) {
	out := make([]Fault, len(fs))
	copy(out, fs)
	for i, f := range out {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Kind < out[j].Kind
	})
	return &Schedule{faults: out}, nil
}

// MustSchedule is NewSchedule, panicking on invalid faults (test fixtures).
func MustSchedule(fs ...Fault) *Schedule {
	s, err := NewSchedule(fs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Faults returns a copy of the schedule's faults in canonical order.
func (s *Schedule) Faults() []Fault {
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// ActiveAt returns the faults covering time t, in canonical order.
func (s *Schedule) ActiveAt(t float64) []Fault {
	var out []Fault
	for _, f := range s.faults {
		if f.Active(t) {
			out = append(out, f)
		}
	}
	return out
}

// Horizon returns the end of the last non-empty fault window (0 for an
// empty schedule): after this instant the workload runs undisturbed.
// Zero-length windows cover no instant, so they do not extend the horizon.
func (s *Schedule) Horizon() float64 {
	h := 0.0
	for _, f := range s.faults {
		if f.End > f.Start && f.End > h {
			h = f.End
		}
	}
	return h
}

// Conflicts returns every pair of same-kind faults whose windows overlap on
// shared items, in canonical order. Such pairs compose multiplicatively
// (bursts, slowdowns, slow consumers) or redundantly (outages, stalls),
// which is almost always a scenario-authoring mistake rather than a story:
// Merge rejects them, while NewSchedule stays permissive for callers who
// compose deliberately.
func (s *Schedule) Conflicts() [][2]Fault {
	var out [][2]Fault
	for i, f := range s.faults {
		for _, g := range s.faults[i+1:] {
			if f.Kind == g.Kind && f.Overlaps(g) {
				out = append(out, [2]Fault{f, g})
			}
		}
	}
	return out
}

// Merge combines schedules into one validated schedule, rejecting any
// same-kind faults whose windows overlap on shared items (see Conflicts).
// Nil schedules are skipped, so optional story layers merge cleanly.
func Merge(scheds ...*Schedule) (*Schedule, error) {
	var fs []Fault
	for _, s := range scheds {
		if s == nil {
			continue
		}
		fs = append(fs, s.faults...)
	}
	merged, err := NewSchedule(fs...)
	if err != nil {
		return nil, err
	}
	if cs := merged.Conflicts(); len(cs) > 0 {
		return nil, fmt.Errorf("faults: merge conflict: %s overlaps %s (same kind, shared items)", cs[0][0], cs[0][1])
	}
	return merged, nil
}

// String renders the schedule.
func (s *Schedule) String() string {
	if len(s.faults) == 0 {
		return "faults{}"
	}
	out := "faults{"
	for i, f := range s.faults {
		if i > 0 {
			out += " "
		}
		out += f.String()
	}
	return out + "}"
}
