// Package trace records the query lifecycle and the controller's
// allocation decisions into bounded ring buffers, for the live server's
// /debug endpoints and for deterministic offline dumps from the
// simulator (unitsim -trace).
//
// A Recorder never reads a clock: callers stamp every record with their
// own time base — virtual seconds in the engine, wall seconds since
// start in the live server — so attaching one to the deterministic
// engine cannot perturb a run, and same-seed runs dump byte-identical
// JSONL streams. Events and decisions share one sequence counter, so a
// merged dump totally orders the run.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Kind discriminates the span events of one query's lifecycle.
type Kind string

// Query lifecycle span events, in the order a query can emit them:
// arrive, then admit or reject, then queue, execute and outcome. A
// preempted or restarted query may execute more than once; its terminal
// outcome is emitted exactly once. Between queue and outcome the stage
// boundaries block (lock wait begins), preempt (execution suspended,
// back to the queue with progress kept) and restart (HP-abort discarded
// the attempt's work) mark where the query's time goes; the finalized
// per-stage attribution travels on the outcome event as a
// StageBreakdown. KindDecision tags controller records in merged dumps.
const (
	KindArrive   Kind = "arrive"
	KindAdmit    Kind = "admit"
	KindReject   Kind = "reject"
	KindQueue    Kind = "queue"
	KindExecute  Kind = "execute"
	KindBlock    Kind = "block"
	KindPreempt  Kind = "preempt"
	KindRestart  Kind = "restart"
	KindOutcome  Kind = "outcome"
	KindDecision Kind = "decision"
)

// StageBreakdown attributes one query's lifetime to pipeline stages, in
// the recorder's time base (virtual seconds in the engine, wall seconds
// in the live server). The stages partition the interval from admission
// to the terminal outcome:
//
//   - QueueWait: time in the ready queue, including re-queues after a
//     preemption or restart (preemption itself wastes no work — the
//     transaction resumes with its progress kept — so "preempt overhead"
//     surfaces here, as extra queueing).
//   - LockWait: time parked as a 2PL-HP lock waiter.
//   - Exec: CPU time of the attempt that reached the outcome.
//   - Overhead: CPU time discarded by HP-abort restarts (work executed
//     and thrown away; the restarted attempt starts from zero).
//
// Total is the sum of the four, which equals the span from admission to
// finalization up to float rounding — the conservation law the engine's
// stage tests assert. A rejected query has an all-zero breakdown.
type StageBreakdown struct {
	QueueWait float64 `json:"queue_wait"`
	LockWait  float64 `json:"lock_wait"`
	Exec      float64 `json:"exec"`
	Overhead  float64 `json:"overhead"`
	Total     float64 `json:"total"`
}

// Sum returns the stage durations' sum, for conservation checks against
// Total.
func (b StageBreakdown) Sum() float64 {
	return b.QueueWait + b.LockWait + b.Exec + b.Overhead
}

// Event is one span event of a query's lifecycle. T is in the caller's
// time base (sim seconds or wall seconds since server start).
type Event struct {
	Seq      uint64  `json:"seq"`
	T        float64 `json:"t"`
	Kind     Kind    `json:"kind"`
	Query    int64   `json:"query"`
	Items    int     `json:"items,omitempty"`    // item count, on arrive
	Deadline float64 `json:"deadline,omitempty"` // absolute deadline, on arrive
	Wait     float64 `json:"wait,omitempty"`     // time since arrival, on execute
	Outcome  string  `json:"outcome,omitempty"`  // terminal outcome, on outcome
	Fresh    float64 `json:"fresh,omitempty"`    // freshness read, on outcome
	// Shard is the 1-based shard index in streams merged from a sharded
	// run (see Merge); zero — and absent from the JSON — in single-engine
	// streams, so pre-sharding dumps stay byte-identical.
	Shard int `json:"shard,omitempty"`

	// Stages is the finalized per-stage latency attribution, set on
	// outcome events when the caller tracks stage boundaries (the engine
	// does whenever a recorder is attached; the live server stamps its
	// wall-clock equivalent). Nil on all other kinds and in pre-stage
	// dumps, so old traces still parse.
	Stages *StageBreakdown `json:"stages,omitempty"`
}

// Decision is one Load Balancing Controller firing: the windowed inputs
// it decided on (weighted costs R, F_m, F_s of paper Eq. 4 and the
// window USM), the chosen action (Fig. 2 lines 5–11), and the actuator
// settings after applying it — admission's C_flex and the number of
// update-degraded items.
type Decision struct {
	Seq           uint64  `json:"seq"`
	T             float64 `json:"t"`
	Samples       int     `json:"samples"`
	WindowUSM     float64 `json:"window_usm"`
	RCost         float64 `json:"r_cost"`
	FmCost        float64 `json:"fm_cost"`
	FsCost        float64 `json:"fs_cost"`
	DropTriggered bool    `json:"drop_triggered,omitempty"`
	Action        string  `json:"action"`
	CFlex         float64 `json:"cflex"`
	DegradedItems int     `json:"degraded_items"`
	// Shard is the 1-based shard index in merged streams (see Merge);
	// zero and absent in single-engine streams.
	Shard int `json:"shard,omitempty"`
}

// Default ring capacities.
const (
	DefaultEventCap    = 4096
	DefaultDecisionCap = 1024
)

// Recorder buffers the last EventCap events and DecisionCap decisions.
// It is safe for concurrent use; the engine drives it from a single
// goroutine, the live server from many. Because callers differ in
// goroutine structure, the rings are guarded by mu rather than carrying
// "owned by" annotations — ownership here belongs to whoever holds the
// lock, which the locksafe/guardedflow analyzers verify.
type Recorder struct {
	mu        sync.Mutex
	seq       uint64     // guarded by mu; shared by events and decisions
	events    []Event    // guarded by mu; ring, grown lazily to cap
	eventCap  int        // immutable after New
	head      int        // guarded by mu; next write slot once full
	dropped   uint64     // guarded by mu; events overwritten
	decisions []Decision // guarded by mu; ring, grown lazily to cap
	decCap    int        // immutable after New
	dhead     int        // guarded by mu
	ddropped  uint64     // guarded by mu; decisions overwritten
}

// New creates a recorder keeping the last eventCap events and decCap
// decisions; non-positive capacities take the defaults.
func New(eventCap, decCap int) *Recorder {
	if eventCap <= 0 {
		eventCap = DefaultEventCap
	}
	if decCap <= 0 {
		decCap = DefaultDecisionCap
	}
	return &Recorder{eventCap: eventCap, decCap: decCap}
}

// Record appends one span event, stamping its sequence number.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	if len(r.events) < r.eventCap {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.head] = ev
	r.head = (r.head + 1) % r.eventCap
	r.dropped++
}

// RecordDecision appends one controller decision, stamping its sequence
// number from the shared counter.
func (r *Recorder) RecordDecision(d Decision) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	d.Seq = r.seq
	if len(r.decisions) < r.decCap {
		r.decisions = append(r.decisions, d)
		return
	}
	r.decisions[r.dhead] = d
	r.dhead = (r.dhead + 1) % r.decCap
	r.ddropped++
}

// eventsLocked returns the buffered events oldest-first; callers hold mu.
func (r *Recorder) eventsLocked() []Event {
	out := make([]Event, 0, len(r.events))
	if len(r.events) < r.eventCap {
		return append(out, r.events...)
	}
	out = append(out, r.events[r.head:]...)
	return append(out, r.events[:r.head]...)
}

// decisionsLocked returns the buffered decisions oldest-first; callers
// hold mu.
func (r *Recorder) decisionsLocked() []Decision {
	out := make([]Decision, 0, len(r.decisions))
	if len(r.decisions) < r.decCap {
		return append(out, r.decisions...)
	}
	out = append(out, r.decisions[r.dhead:]...)
	return append(out, r.decisions[:r.dhead]...)
}

// Events returns the most recent n events, oldest-first. n <= 0 or
// n beyond the buffer returns everything buffered.
func (r *Recorder) Events(n int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	all := r.eventsLocked()
	if n > 0 && n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}

// Decisions returns the most recent n decisions, oldest-first. n <= 0 or
// n beyond the buffer returns everything buffered.
func (r *Recorder) Decisions(n int) []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	all := r.decisionsLocked()
	if n > 0 && n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}

// EventsFor returns every buffered span event of one query, oldest-
// first — the /debug/trace?query=<id> filter, and the hop an exemplar
// id from a histogram bucket links through to its trace span.
func (r *Recorder) EventsFor(query int64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, ev := range r.eventsLocked() {
		if ev.Query == query {
			out = append(out, ev)
		}
	}
	return out
}

// EventCap returns the span-event ring capacity; Events can never return
// more than this many, so handlers clamp their n parameter against it.
func (r *Recorder) EventCap() int { return r.eventCap }

// DecisionCap returns the decision ring capacity.
func (r *Recorder) DecisionCap() int { return r.decCap }

// Dropped reports how many events and decisions the rings have
// overwritten since creation.
func (r *Recorder) Dropped() (events, decisions uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped, r.ddropped
}

// Merge folds the buffered streams of srcs into dst as one totally
// ordered logical stream: records sort by timestamp, ties break by
// source index and then by the source's own sequence order, and every
// record is stamped with its 1-based source shard before being
// re-recorded (dst assigns fresh sequence numbers). The result is a
// pure function of the sources' buffer contents, so merged dumps from a
// sharded run replay byte-identically — the property the scenario
// shard-replay tests pin. Records beyond dst's ring capacities fall off
// oldest-first, exactly as if dst had recorded them live.
func Merge(dst *Recorder, srcs ...*Recorder) {
	type rec struct {
		t   float64
		src int
		seq uint64 // source-local sequence
		ev  *Event
		dec *Decision
	}
	var all []rec
	for s, r := range srcs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		events := r.eventsLocked()
		decisions := r.decisionsLocked()
		r.mu.Unlock()
		for i := range events {
			all = append(all, rec{t: events[i].T, src: s, seq: events[i].Seq, ev: &events[i]})
		}
		for i := range decisions {
			all = append(all, rec{t: decisions[i].T, src: s, seq: decisions[i].Seq, dec: &decisions[i]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t < all[j].t
		}
		if all[i].src != all[j].src {
			return all[i].src < all[j].src
		}
		return all[i].seq < all[j].seq
	})
	for _, r := range all {
		if r.ev != nil {
			ev := *r.ev
			ev.Shard = r.src + 1
			dst.Record(ev)
			continue
		}
		d := *r.dec
		d.Shard = r.src + 1
		dst.RecordDecision(d)
	}
}

// decisionLine is a Decision tagged for the merged JSONL stream.
type decisionLine struct {
	Kind Kind `json:"kind"`
	Decision
}

// WriteJSONL dumps the buffered events and decisions as one JSON object
// per line, merged into sequence order. Events carry their lifecycle
// kind; decisions are tagged kind "decision". The encoding is a pure
// function of the buffer contents, so same-seed simulator runs dump
// byte-identical files.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	r.mu.Lock()
	events := r.eventsLocked()
	decisions := r.decisionsLocked()
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	i, j := 0, 0
	for i < len(events) || j < len(decisions) {
		var v any
		if j >= len(decisions) || (i < len(events) && events[i].Seq < decisions[j].Seq) {
			v = events[i]
			i++
		} else {
			v = decisionLine{Kind: KindDecision, Decision: decisions[j]}
			j++
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	return bw.Flush()
}
