package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRingKeepsLastN(t *testing.T) {
	r := New(4, 2)
	for i := 0; i < 10; i++ {
		r.Record(Event{T: float64(i), Kind: KindArrive, Query: int64(i)})
	}
	got := r.Events(0)
	if len(got) != 4 {
		t.Fatalf("buffered %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := int64(6 + i); ev.Query != want {
			t.Fatalf("event %d is query %d, want %d (ring not oldest-first)", i, ev.Query, want)
		}
	}
	if got[0].Seq >= got[1].Seq {
		t.Fatal("sequence numbers not increasing")
	}
	if last := r.Events(1); len(last) != 1 || last[0].Query != 9 {
		t.Fatalf("Events(1) = %+v, want the newest", last)
	}
	evDropped, _ := r.Dropped()
	if evDropped != 6 {
		t.Fatalf("dropped = %d, want 6", evDropped)
	}
}

func TestDecisionsShareSequence(t *testing.T) {
	r := New(8, 8)
	r.Record(Event{T: 1, Kind: KindArrive, Query: 1})
	r.RecordDecision(Decision{T: 2, Action: "LAC"})
	r.Record(Event{T: 3, Kind: KindOutcome, Query: 1, Outcome: "success"})
	d := r.Decisions(0)
	if len(d) != 1 || d[0].Seq != 2 {
		t.Fatalf("decision seq = %+v, want shared counter value 2", d)
	}
}

func TestWriteJSONLMergesBySeq(t *testing.T) {
	r := New(8, 8)
	r.Record(Event{T: 1, Kind: KindArrive, Query: 7})
	r.RecordDecision(Decision{T: 2, Action: "DU TAC", Samples: 30})
	r.Record(Event{T: 3, Kind: KindOutcome, Query: 7, Outcome: "success", Fresh: 0.95})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"kind":"arrive"`) ||
		!strings.Contains(lines[1], `"kind":"decision"`) ||
		!strings.Contains(lines[2], `"kind":"outcome"`) {
		t.Fatalf("lines out of sequence order:\n%s", buf.String())
	}
	if !strings.Contains(lines[1], `"action":"DU TAC"`) {
		t.Fatalf("decision line lost its action:\n%s", lines[1])
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	dump := func() string {
		r := New(16, 16)
		r.Record(Event{T: 0.5, Kind: KindArrive, Query: 1, Items: 3, Deadline: 1.5})
		r.Record(Event{T: 0.5, Kind: KindAdmit, Query: 1})
		r.RecordDecision(Decision{T: 1, WindowUSM: 0.25, RCost: 0.1, Action: "UU"})
		r.Record(Event{T: 1.2, Kind: KindOutcome, Query: 1, Outcome: "data-stale", Fresh: 0.4})
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := dump(), dump(); a != b {
		t.Fatalf("identical recordings dumped different bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestEventsForFiltersOneQuery(t *testing.T) {
	r := New(16, 4)
	r.Record(Event{T: 1, Kind: KindArrive, Query: 1})
	r.Record(Event{T: 1, Kind: KindArrive, Query: 2})
	r.Record(Event{T: 2, Kind: KindExecute, Query: 1})
	r.Record(Event{T: 3, Kind: KindOutcome, Query: 1, Outcome: "success",
		Stages: &StageBreakdown{QueueWait: 1, Exec: 1, Total: 2}})
	got := r.EventsFor(1)
	if len(got) != 3 {
		t.Fatalf("EventsFor(1) returned %d events, want 3: %+v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatal("filtered events out of sequence order")
		}
	}
	if got[2].Stages == nil || got[2].Stages.Total != 2 {
		t.Fatalf("outcome event lost its stage breakdown: %+v", got[2])
	}
	if miss := r.EventsFor(99); len(miss) != 0 {
		t.Fatalf("EventsFor(99) = %+v, want empty", miss)
	}
}

func TestCapsReportRingCapacities(t *testing.T) {
	r := New(4, 2)
	if r.EventCap() != 4 || r.DecisionCap() != 2 {
		t.Fatalf("caps = (%d, %d), want (4, 2)", r.EventCap(), r.DecisionCap())
	}
	d := New(0, 0)
	if d.EventCap() != DefaultEventCap || d.DecisionCap() != DefaultDecisionCap {
		t.Fatalf("default caps = (%d, %d)", d.EventCap(), d.DecisionCap())
	}
}

func TestStageBreakdownSum(t *testing.T) {
	b := StageBreakdown{QueueWait: 0.5, LockWait: 0.25, Exec: 1, Overhead: 0.125, Total: 1.875}
	if b.Sum() != b.Total {
		t.Fatalf("Sum() = %v, Total = %v", b.Sum(), b.Total)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(128, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Event{T: float64(i), Kind: KindQueue, Query: int64(w)})
			}
		}(w)
	}
	wg.Wait()
	evs := r.Events(0)
	if len(evs) != 128 {
		t.Fatalf("ring holds %d, want 128", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("sequence not strictly increasing at %d", i)
		}
	}
}
