// Package metrics is a lock-cheap metrics registry for the live server:
// counters, gauges and fixed-bucket latency histograms whose hot-path
// updates are single atomic operations, so query workers never contend
// with a /metrics scrape. Registration (naming a series) takes the
// registry mutex once; the returned handle is then updated lock-free.
// Reads are snapshot-on-read: Snapshot walks the registered series and
// loads their atomics without stopping writers, which is the standard
// Prometheus collection contract (per-series values are exact, cross-
// series consistency is approximate).
//
// The histogram shares its bucket layout with internal/stats.Histogram —
// equal-width buckets over [lo, hi) with underflow and overflow — and a
// snapshot can be rehydrated into one (Stats) for quantile estimation.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"unitdb/internal/stats"
)

// Kind is the exposition type of a metric family.
type Kind string

// Metric family kinds, matching Prometheus TYPE values.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name="value" pair qualifying a series within a family.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing integer. Inc and Add are a single
// atomic add; Value is a single atomic load.
type Counter struct {
	v atomic.Int64 // atomic-only access (atomicsafe); a plain read/write races Inc
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: counter add of negative %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value. Set and Value are a single
// atomic store/load of the float bits.
type Gauge struct {
	bits atomic.Uint64 // float64 bits; atomic-only access (atomicsafe)
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value Set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram over [lo, hi) with underflow and
// overflow buckets — the same layout as stats.Histogram, observed through
// atomics so Observe never blocks. The sum accumulates via CAS on the
// float bits; bucket counts are plain atomic adds.
//
// Each bucket additionally remembers an exemplar: the opaque id (a
// query/trace id) of the most recent observation that landed in it,
// recorded by ObserveEx. An exemplar links a fat tail bucket back to the
// exact trace span that fattened it — /debug/slow and
// /debug/trace?query=<id> complete the loop. Exemplar id 0 means "none"
// (callers allocate ids starting at 1).
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []atomic.Int64
	exemplars []atomic.Int64 // per-bucket most recent id; atomic-only access (atomicsafe)
	under     atomic.Int64   // atomic-only access (atomicsafe)
	over      atomic.Int64   // atomic-only access (atomicsafe)
	underEx   atomic.Int64   // atomic-only access (atomicsafe)
	overEx    atomic.Int64   // atomic-only access (atomicsafe)
	sumBits   atomic.Uint64  // float64 bits, CAS loop in Observe; atomic-only access
}

func newHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("metrics: histogram with non-positive bucket count")
	}
	if hi <= lo {
		panic("metrics: histogram with empty range")
	}
	return &Histogram{
		lo: lo, hi: hi, width: (hi - lo) / float64(n),
		buckets:   make([]atomic.Int64, n),
		exemplars: make([]atomic.Int64, n),
	}
}

// Observe records one sample without an exemplar.
func (h *Histogram) Observe(x float64) { h.ObserveEx(x, 0) }

// ObserveEx records one sample and, when exemplar is non-zero, stamps it
// as the landing bucket's most recent exemplar. The bucket count and the
// exemplar are separate atomics — a racing snapshot may pair a count
// with a neighboring observation's id, which is fine: an exemplar is a
// representative, not an inventory.
func (h *Histogram) ObserveEx(x float64, exemplar int64) {
	switch {
	case x < h.lo:
		h.under.Add(1)
		if exemplar != 0 {
			h.underEx.Store(exemplar)
		}
	case x >= h.hi:
		h.over.Add(1)
		if exemplar != 0 {
			h.overEx.Store(exemplar)
		}
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // rounding at the top edge
			i = len(h.buckets) - 1
		}
		h.buckets[i].Add(1)
		if exemplar != 0 {
			h.exemplars[i].Store(exemplar)
		}
	}
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// HistSnapshot is a point-in-time read of a histogram, in Prometheus
// cumulative-bucket form. UpperBounds holds the finite le bounds in
// ascending order; Cumulative[i] counts observations <= UpperBounds[i]
// (underflow included, since underflow is below every bound). Count is
// the total including overflow (the implicit le="+Inf" bucket).
type HistSnapshot struct {
	Lo          float64   `json:"lo"`
	Hi          float64   `json:"hi"`
	UpperBounds []float64 `json:"upper_bounds"`
	Cumulative  []int64   `json:"cumulative"`
	Under       int64     `json:"under"`
	Over        int64     `json:"over"`
	Count       int64     `json:"count"`
	Sum         float64   `json:"sum"`
	// Exemplars[i] is the most recent ObserveEx id that landed in bucket
	// i (aligned with UpperBounds); UnderEx/OverEx cover the two edge
	// buckets. 0 means the bucket has seen no exemplar.
	Exemplars []int64 `json:"exemplars,omitempty"`
	UnderEx   int64   `json:"under_exemplar,omitempty"`
	OverEx    int64   `json:"over_exemplar,omitempty"`
}

// snapshot loads the histogram's atomics. The total is derived from the
// bucket reads themselves so the cumulative series is internally
// monotone even while writers race the read.
func (h *Histogram) snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Lo:          h.lo,
		Hi:          h.hi,
		UpperBounds: make([]float64, len(h.buckets)),
		Cumulative:  make([]int64, len(h.buckets)),
		Exemplars:   make([]int64, len(h.buckets)),
		Under:       h.under.Load(),
		Over:        h.over.Load(),
		UnderEx:     h.underEx.Load(),
		OverEx:      h.overEx.Load(),
		Sum:         math.Float64frombits(h.sumBits.Load()),
	}
	acc := s.Under
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		s.UpperBounds[i] = h.lo + h.width*float64(i+1)
		s.Cumulative[i] = acc
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	s.Count = acc + s.Over
	return s
}

// Stats rehydrates the snapshot into a stats.Histogram, reusing its
// quantile and mean estimators for reporting.
func (s *HistSnapshot) Stats() *stats.Histogram {
	buckets := make([]int, len(s.Cumulative))
	prev := s.Under
	for i, c := range s.Cumulative {
		buckets[i] = int(c - prev)
		prev = c
	}
	return stats.HistogramFromBuckets(s.Lo, s.Hi, buckets, int(s.Under), int(s.Over), s.Sum)
}

// series is one registered (family, labels) pair.
type series struct {
	labels []Label
	key    string // rendered label set, the sort key
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is one metric name with its help text, kind, and series.
type family struct {
	name   string
	help   string
	kind   Kind
	lo, hi float64 // histogram layout
	n      int
	series map[string]*series
}

// Registry holds metric families. The mutex only guards registration and
// snapshotting bookkeeping — never the handles' update paths. No field
// is goroutine-owned ("owned by" annotations do not apply): handles are
// shared by design and updated through atomics, and Snapshot sorts its
// output so map iteration over families never leaks into the exposition
// order (the maporder analyzer checks exactly that).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders a label set into a canonical sort/lookup key.
func labelKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// checkName panics on malformed metric or label names — registration is
// init-time programmer input, not request data.
func checkName(name string, labels []Label) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Key, name))
		}
	}
}

// lookup finds or creates the family and series slot.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *series {
	checkName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), key: key}
		f.series[key] = s
	}
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or returns the existing) histogram series with n
// equal-width buckets over [lo, hi). Conflicting layouts for the same
// family panic.
func (r *Registry) Histogram(name, help string, lo, hi float64, n int, labels ...Label) *Histogram {
	s := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f.n == 0 {
		f.lo, f.hi, f.n = lo, hi, n
	} else if f.lo != lo || f.hi != hi || f.n != n {
		panic(fmt.Sprintf("metrics: %s bucket layout conflict", name))
	}
	if s.hist == nil {
		s.hist = newHistogram(lo, hi, n)
	}
	return s.hist
}

// SeriesSnapshot is one series' point-in-time read.
type SeriesSnapshot struct {
	Labels []Label       `json:"labels,omitempty"`
	Value  float64       `json:"value"`
	Hist   *HistSnapshot `json:"hist,omitempty"`
}

// FamilySnapshot is one family's point-in-time read, series sorted by
// label key.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Kind   Kind             `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot reads every registered series without blocking writers:
// the registry mutex pins the family/series tables while the values are
// plain atomic loads. Families are sorted by name, series by label set,
// so two snapshots of the same registry expose in the same order.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.ctr != nil:
				ss.Value = float64(s.ctr.Value())
			case s.gauge != nil:
				ss.Value = s.gauge.Value()
			case s.hist != nil:
				ss.Hist = s.hist.snapshot()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
