package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("unit_test_total", "a counter", Label{Key: "outcome", Value: "success"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same handle.
	if again := r.Counter("unit_test_total", "a counter", Label{Key: "outcome", Value: "success"}); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("unit_test_gauge", "a gauge")
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", got)
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("unit_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("unit_conflict", "")
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("unit_lat", "latency", 0, 1, 4) // buckets .25 wide
	for _, v := range []float64{-0.1, 0.1, 0.3, 0.3, 0.9, 1.5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Under != 1 || s.Over != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", s.Under, s.Over)
	}
	// Cumulative: bucket bounds .25/.5/.75/1.0 → 2 (under + 0.1), 4, 4, 5.
	want := []int64{2, 4, 4, 5}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	if math.Abs(s.Sum-(-0.1+0.1+0.3+0.3+0.9+1.5)) > 1e-12 {
		t.Fatalf("sum = %v", s.Sum)
	}
	// Rehydration into stats.Histogram reuses its estimators.
	sh := s.Stats()
	if sh.Count() != 6 {
		t.Fatalf("rehydrated count = %d, want 6", sh.Count())
	}
	if mean := sh.Mean(); math.Abs(mean-s.Sum/6) > 1e-12 {
		t.Fatalf("rehydrated mean = %v, want %v", mean, s.Sum/6)
	}
	if q := sh.Quantile(0.5); q < 0.25 || q > 0.5 {
		t.Fatalf("median estimate %v outside the occupied bucket", q)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("unit_lat_ex", "latency", 0, 1, 4) // buckets .25 wide
	h.ObserveEx(0.1, 7)
	h.ObserveEx(0.3, 8)
	h.ObserveEx(0.3, 9)   // same bucket: most recent id wins
	h.ObserveEx(-0.5, 10) // underflow
	h.ObserveEx(1.5, 11)  // overflow
	h.Observe(0.9)        // no exemplar: bucket stays id-less
	s := h.snapshot()
	if want := []int64{7, 9, 0, 0}; len(s.Exemplars) != 4 ||
		s.Exemplars[0] != want[0] || s.Exemplars[1] != want[1] ||
		s.Exemplars[2] != want[2] || s.Exemplars[3] != want[3] {
		t.Fatalf("exemplars = %v, want %v", s.Exemplars, want)
	}
	if s.UnderEx != 10 || s.OverEx != 11 {
		t.Fatalf("edge exemplars = %d/%d, want 10/11", s.UnderEx, s.OverEx)
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6 (ObserveEx must still count)", s.Count)
	}
}

func TestObserveExZeroKeepsPriorExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("unit_lat_keep", "latency", 0, 1, 2)
	h.ObserveEx(0.1, 42)
	h.Observe(0.1) // exemplar-less observation must not erase id 42
	if s := h.snapshot(); s.Exemplars[0] != 42 {
		t.Fatalf("exemplar = %d, want 42 preserved", s.Exemplars[0])
	}
}

func TestSnapshotOrderingIsStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("unit_b_total", "", Label{Key: "x", Value: "2"})
	r.Counter("unit_b_total", "", Label{Key: "x", Value: "1"})
	r.Counter("unit_a_total", "")
	s := r.Snapshot()
	if len(s) != 2 || s[0].Name != "unit_a_total" || s[1].Name != "unit_b_total" {
		t.Fatalf("families out of order: %+v", s)
	}
	if s[1].Series[0].Labels[0].Value != "1" || s[1].Series[1].Labels[0].Value != "2" {
		t.Fatalf("series out of order: %+v", s[1].Series)
	}
}

// TestConcurrentHotPath hammers one counter, gauge and histogram from
// many goroutines while snapshots run — under -race this pins the
// lock-free hot path, and the final counts must be exact.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("unit_hammer_total", "")
	g := r.Gauge("unit_hammer_gauge", "")
	h := r.Histogram("unit_hammer_hist", "", 0, 1, 10)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%10) / 10)
			}
		}(w)
	}
	for c.Value() < workers*perWorker {
	}
	close(stop)
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
