// Package promtext renders a metrics.Registry snapshot in the Prometheus
// text exposition format (version 0.0.4) and lints exposition streams
// for the obs-smoke CI check. Only the stdlib is used; the writer covers
// the three family kinds the registry supports (counter, gauge,
// histogram with cumulative le buckets) and the escaping rules for help
// text and label values.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"unitdb/internal/obs/metrics"
)

// ContentType is the HTTP Content-Type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value; infinities use the exposition
// spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders {k="v",...}; empty label sets render nothing.
func renderLabels(labels []metrics.Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Write renders the snapshot families in their given (sorted) order.
func Write(w io.Writer, families []metrics.FamilySnapshot) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			if f.Kind == metrics.KindHistogram && s.Hist != nil {
				writeHistogram(bw, f.Name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.Name, renderLabels(s.Labels), formatFloat(s.Value))
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative le buckets,
// the implicit +Inf bucket, then _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, s metrics.SeriesSnapshot) {
	h := s.Hist
	for i, ub := range h.UpperBounds {
		labels := append(append([]metrics.Label(nil), s.Labels...),
			metrics.Label{Key: "le", Value: formatFloat(ub)})
		fmt.Fprintf(bw, "%s_bucket%s %d\n", name, renderLabels(labels), h.Cumulative[i])
	}
	inf := append(append([]metrics.Label(nil), s.Labels...), metrics.Label{Key: "le", Value: "+Inf"})
	fmt.Fprintf(bw, "%s_bucket%s %d\n", name, renderLabels(inf), h.Count)
	fmt.Fprintf(bw, "%s_sum%s %s\n", name, renderLabels(s.Labels), formatFloat(h.Sum))
	fmt.Fprintf(bw, "%s_count%s %d\n", name, renderLabels(s.Labels), h.Count)
}

var (
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+-?\d+)?$`)
	labelRE  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	helpRE   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	typeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// histSuffixes are the sample-name suffixes a histogram or summary
// family declares via one TYPE line for the base name.
var histSuffixes = []string{"_bucket", "_sum", "_count"}

// baseName maps a sample name to its family name given the declared
// types: histogram samples report under their base family.
func baseName(name string, types map[string]string) string {
	for _, suf := range histSuffixes {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// bucketPoint is one histogram bucket sample: its le bound, cumulative
// count, and the line it appeared on (for error messages).
type bucketPoint struct {
	le    float64
	count float64
	line  int
}

// Lint validates an exposition stream: every line is a well-formed
// comment, HELP, TYPE or sample; TYPE lines are unique per family and
// precede that family's samples; label pairs and sample values parse.
// Histogram bucket series (grouped per family and non-le label set) must
// carry an le="+Inf" bucket and cumulative counts that are non-decreasing
// in ascending le order. It returns the families that exposed at least
// one sample, so callers can assert required metrics are present.
func Lint(r io.Reader) (families map[string]int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	types := make(map[string]string)
	seen := make(map[string]int)
	buckets := make(map[string][]bucketPoint)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# HELP ") {
				if !helpRE.MatchString(line) {
					return seen, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
				}
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				m := typeRE.FindStringSubmatch(line)
				if m == nil {
					return seen, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
				}
				name := m[1]
				if _, dup := types[name]; dup {
					return seen, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if seen[name] > 0 {
					return seen, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				types[name] = m[2]
				continue
			}
			continue // plain comment
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return seen, fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if m[2] != "" && labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRE.MatchString(pair) {
					return seen, fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
				}
			}
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, perr := strconv.ParseFloat(value, 64); perr != nil {
				return seen, fmt.Errorf("line %d: unparseable value %q", lineNo, value)
			}
		}
		base := baseName(name, types)
		if types[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, key, berr := bucketKey(base, labels)
			if berr != nil {
				return seen, fmt.Errorf("line %d: %v", lineNo, berr)
			}
			cnt, _ := strconv.ParseFloat(value, 64)
			buckets[key] = append(buckets[key], bucketPoint{le: le, count: cnt, line: lineNo})
		}
		seen[base]++
	}
	if serr := sc.Err(); serr != nil {
		return seen, serr
	}
	if herr := lintBuckets(buckets); herr != nil {
		return seen, herr
	}
	return seen, nil
}

// bucketKey extracts the le bound of a _bucket sample and builds its
// series group key: the family name plus the sorted non-le label pairs,
// so one histogram family with labels lints each series independently.
func bucketKey(base, labels string) (le float64, key string, err error) {
	var rest []string
	leVal, haveLE := "", false
	for _, pair := range splitLabels(labels) {
		m := labelRE.FindStringSubmatch(pair)
		if m == nil {
			continue // already rejected above
		}
		if m[1] == "le" {
			leVal, haveLE = m[2], true
			continue
		}
		rest = append(rest, pair)
	}
	if !haveLE {
		return 0, "", fmt.Errorf("histogram bucket %s missing le label", base)
	}
	switch leVal {
	case "+Inf":
		le = math.Inf(1)
	default:
		le, err = strconv.ParseFloat(leVal, 64)
		if err != nil {
			return 0, "", fmt.Errorf("histogram bucket %s: bad le bound %q", base, leVal)
		}
	}
	sort.Strings(rest)
	key = base
	if len(rest) > 0 {
		key += "{" + strings.Join(rest, ",") + "}"
	}
	return le, key, nil
}

// lintBuckets enforces the two structural histogram rules over the
// collected bucket samples: every series must close with an le="+Inf"
// bucket, and cumulative counts must be non-decreasing in ascending le
// order. Groups are checked in sorted key order so the reported error is
// deterministic.
func lintBuckets(buckets map[string][]bucketPoint) error {
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pts := append([]bucketPoint(nil), buckets[k]...)
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].le < pts[j].le })
		hasInf := false
		for i, p := range pts {
			if math.IsInf(p.le, 1) {
				hasInf = true
			}
			// The negated >= also rejects NaN counts.
			if i > 0 && !(p.count >= pts[i-1].count) {
				return fmt.Errorf("line %d: histogram %s: non-monotone bucket counts (le=%s count %g after count %g)",
					p.line, k, formatFloat(p.le), p.count, pts[i-1].count)
			}
		}
		if !hasInf {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", k)
		}
	}
	return nil
}

// splitLabels splits a rendered label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
