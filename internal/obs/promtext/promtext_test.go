package promtext

import (
	"bytes"
	"strings"
	"testing"

	"unitdb/internal/obs/metrics"
)

// TestGoldenExposition pins the exact text rendering: family ordering by
// name, series ordering by label set, histogram bucket/sum/count layout,
// and escaping of help text and label values.
func TestGoldenExposition(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("unit_queries_total", "Finalized query outcomes.",
		metrics.Label{Key: "outcome", Value: "success"}).Add(12)
	r.Counter("unit_queries_total", "Finalized query outcomes.",
		metrics.Label{Key: "outcome", Value: "rejected"}).Add(3)
	r.Gauge("unit_usm_window", "Windowed USM.").Set(0.75)
	h := r.Histogram("unit_query_latency_seconds", "Query latency.", 0, 1, 2)
	h.Observe(0.1)
	h.Observe(0.6)
	h.Observe(2) // overflow → +Inf bucket only
	r.Counter("unit_escapes_total", "Help with \\ backslash\nand newline.",
		metrics.Label{Key: "path", Value: "a\"b\\c\nd"}).Inc()

	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP unit_escapes_total Help with \\ backslash\nand newline.`,
		`# TYPE unit_escapes_total counter`,
		`unit_escapes_total{path="a\"b\\c\nd"} 1`,
		`# HELP unit_queries_total Finalized query outcomes.`,
		`# TYPE unit_queries_total counter`,
		`unit_queries_total{outcome="rejected"} 3`,
		`unit_queries_total{outcome="success"} 12`,
		`# HELP unit_query_latency_seconds Query latency.`,
		`# TYPE unit_query_latency_seconds histogram`,
		`unit_query_latency_seconds_bucket{le="0.5"} 1`,
		`unit_query_latency_seconds_bucket{le="1"} 2`,
		`unit_query_latency_seconds_bucket{le="+Inf"} 3`,
		`unit_query_latency_seconds_sum 2.7`,
		`unit_query_latency_seconds_count 3`,
		`# HELP unit_usm_window Windowed USM.`,
		`# TYPE unit_usm_window gauge`,
		`unit_usm_window 0.75`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteOutputPassesLint(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("unit_a_total", "a", metrics.Label{Key: "k", Value: `quo"te,comma`}).Inc()
	r.Histogram("unit_h", "h", 0, 2, 4).Observe(0.5)
	r.Gauge("unit_g", "g").Set(-1.25)
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, err := Lint(&buf)
	if err != nil {
		t.Fatalf("self-produced exposition failed lint: %v", err)
	}
	for _, name := range []string{"unit_a_total", "unit_h", "unit_g"} {
		if fams[name] == 0 {
			t.Errorf("family %s not seen by lint (got %v)", name, fams)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad sample name", "9metric 1\n"},
		{"missing value", "unit_x\n"},
		{"bad value", "unit_x notanumber\n"},
		{"bad label pair", `unit_x{k=unquoted} 1` + "\n"},
		{"bad TYPE", "# TYPE unit_x flavor\n"},
		{"duplicate TYPE", "# TYPE unit_x counter\n# TYPE unit_x counter\n"},
		{"TYPE after samples", "unit_x 1\n# TYPE unit_x counter\n"},
	}
	for _, tc := range cases {
		if _, err := Lint(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: lint accepted %q", tc.name, tc.in)
		}
	}
	// Valid corner cases must pass.
	ok := "# a free comment\n" +
		"# TYPE unit_ok counter\nunit_ok{a=\"x,y\",b=\"z\"} 5 1700000000\n" +
		"unit_inf +Inf\nunit_nan NaN\n"
	if _, err := Lint(strings.NewReader(ok)); err != nil {
		t.Errorf("lint rejected valid input: %v", err)
	}
}
