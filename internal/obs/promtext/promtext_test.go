package promtext

import (
	"bytes"
	"strings"
	"testing"

	"unitdb/internal/obs/metrics"
)

// TestGoldenExposition pins the exact text rendering: family ordering by
// name, series ordering by label set, histogram bucket/sum/count layout,
// and escaping of help text and label values.
func TestGoldenExposition(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("unit_queries_total", "Finalized query outcomes.",
		metrics.Label{Key: "outcome", Value: "success"}).Add(12)
	r.Counter("unit_queries_total", "Finalized query outcomes.",
		metrics.Label{Key: "outcome", Value: "rejected"}).Add(3)
	r.Gauge("unit_usm_window", "Windowed USM.").Set(0.75)
	h := r.Histogram("unit_query_latency_seconds", "Query latency.", 0, 1, 2)
	h.Observe(0.1)
	h.Observe(0.6)
	h.Observe(2) // overflow → +Inf bucket only
	r.Counter("unit_escapes_total", "Help with \\ backslash\nand newline.",
		metrics.Label{Key: "path", Value: "a\"b\\c\nd"}).Inc()

	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP unit_escapes_total Help with \\ backslash\nand newline.`,
		`# TYPE unit_escapes_total counter`,
		`unit_escapes_total{path="a\"b\\c\nd"} 1`,
		`# HELP unit_queries_total Finalized query outcomes.`,
		`# TYPE unit_queries_total counter`,
		`unit_queries_total{outcome="rejected"} 3`,
		`unit_queries_total{outcome="success"} 12`,
		`# HELP unit_query_latency_seconds Query latency.`,
		`# TYPE unit_query_latency_seconds histogram`,
		`unit_query_latency_seconds_bucket{le="0.5"} 1`,
		`unit_query_latency_seconds_bucket{le="1"} 2`,
		`unit_query_latency_seconds_bucket{le="+Inf"} 3`,
		`unit_query_latency_seconds_sum 2.7`,
		`unit_query_latency_seconds_count 3`,
		`# HELP unit_usm_window Windowed USM.`,
		`# TYPE unit_usm_window gauge`,
		`unit_usm_window 0.75`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteOutputPassesLint(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("unit_a_total", "a", metrics.Label{Key: "k", Value: `quo"te,comma`}).Inc()
	r.Histogram("unit_h", "h", 0, 2, 4).Observe(0.5)
	r.Gauge("unit_g", "g").Set(-1.25)
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, err := Lint(&buf)
	if err != nil {
		t.Fatalf("self-produced exposition failed lint: %v", err)
	}
	for _, name := range []string{"unit_a_total", "unit_h", "unit_g"} {
		if fams[name] == 0 {
			t.Errorf("family %s not seen by lint (got %v)", name, fams)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad sample name", "9metric 1\n"},
		{"missing value", "unit_x\n"},
		{"bad value", "unit_x notanumber\n"},
		{"bad label pair", `unit_x{k=unquoted} 1` + "\n"},
		{"bad TYPE", "# TYPE unit_x flavor\n"},
		{"duplicate TYPE", "# TYPE unit_x counter\n# TYPE unit_x counter\n"},
		{"TYPE after samples", "unit_x 1\n# TYPE unit_x counter\n"},
	}
	for _, tc := range cases {
		if _, err := Lint(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: lint accepted %q", tc.name, tc.in)
		}
	}
	// Valid corner cases must pass.
	ok := "# a free comment\n" +
		"# TYPE unit_ok counter\nunit_ok{a=\"x,y\",b=\"z\"} 5 1700000000\n" +
		"unit_inf +Inf\nunit_nan NaN\n"
	if _, err := Lint(strings.NewReader(ok)); err != nil {
		t.Errorf("lint rejected valid input: %v", err)
	}
}

// TestLintHistogramRules covers the structural histogram checks: every
// bucket series needs an le="+Inf" bucket, cumulative counts must be
// non-decreasing in ascending le order, and series of one family are
// grouped by their non-le labels so interleaved label sets lint
// independently.
func TestLintHistogramRules(t *testing.T) {
	const typ = "# TYPE unit_h histogram\n"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"complete series", typ +
			`unit_h_bucket{le="0.5"} 1` + "\n" +
			`unit_h_bucket{le="1"} 2` + "\n" +
			`unit_h_bucket{le="+Inf"} 3` + "\n" +
			"unit_h_sum 1.9\nunit_h_count 3\n", true},
		{"missing +Inf", typ +
			`unit_h_bucket{le="0.5"} 1` + "\n" +
			`unit_h_bucket{le="1"} 2` + "\n", false},
		{"non-monotone counts", typ +
			`unit_h_bucket{le="0.5"} 5` + "\n" +
			`unit_h_bucket{le="1"} 3` + "\n" +
			`unit_h_bucket{le="+Inf"} 9` + "\n", false},
		{"+Inf below a bucket", typ +
			`unit_h_bucket{le="0.5"} 1` + "\n" +
			`unit_h_bucket{le="+Inf"} 2` + "\n" +
			`unit_h_bucket{le="1"} 9` + "\n", false},
		{"NaN count", typ +
			`unit_h_bucket{le="0.5"} 1` + "\n" +
			`unit_h_bucket{le="+Inf"} NaN` + "\n", false},
		{"bucket missing le", typ +
			`unit_h_bucket{stage="exec"} 1` + "\n", false},
		{"unparseable le bound", typ +
			`unit_h_bucket{le="wide"} 1` + "\n", false},
		{"labeled series lint independently", typ +
			`unit_h_bucket{stage="exec",le="0.5"} 4` + "\n" +
			`unit_h_bucket{stage="queue_wait",le="0.5"} 1` + "\n" +
			`unit_h_bucket{stage="exec",le="+Inf"} 4` + "\n" +
			`unit_h_bucket{stage="queue_wait",le="+Inf"} 2` + "\n", true},
		{"one labeled series missing +Inf", typ +
			`unit_h_bucket{stage="exec",le="+Inf"} 4` + "\n" +
			`unit_h_bucket{stage="queue_wait",le="0.5"} 1` + "\n", false},
		{"buckets of an undeclared family are plain samples", "" +
			`unit_x_bucket{le="0.5"} 9` + "\n" +
			`unit_x_bucket{le="1"} 3` + "\n", true},
	}
	for _, tc := range cases {
		_, err := Lint(strings.NewReader(tc.in))
		if tc.ok && err != nil {
			t.Errorf("%s: lint rejected valid histogram: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: lint accepted %q", tc.name, tc.in)
		}
	}
}

// TestLintEscapedLabelValues: escape sequences inside label values —
// quotes, backslashes, embedded commas and braces — neither break the
// sample parse nor the histogram series grouping.
func TestLintEscapedLabelValues(t *testing.T) {
	in := "# TYPE unit_h histogram\n" +
		`unit_h_bucket{path="a\"b\\c,d{e}",le="0.5"} 1` + "\n" +
		`unit_h_bucket{path="a\"b\\c,d{e}",le="+Inf"} 2` + "\n" +
		"# TYPE unit_esc counter\n" +
		`unit_esc{k="line\nbreak",q="\\\""} 7` + "\n"
	fams, err := Lint(strings.NewReader(in))
	if err != nil {
		t.Fatalf("lint rejected escaped label values: %v", err)
	}
	if fams["unit_h"] != 2 || fams["unit_esc"] != 1 {
		t.Fatalf("unexpected family counts: %v", fams)
	}
	// The same escapes rejected when the grouping would be ambiguous:
	// an unterminated quote swallows the rest of the line.
	if _, err := Lint(strings.NewReader(`unit_esc{k="open} 1` + "\n")); err == nil {
		t.Error("lint accepted an unterminated label quote")
	}
}

// FuzzLint: Lint must never panic and must always return a usable family
// map, whatever bytes arrive. Registry-rendered expositions seed the
// corpus alongside malformed fragments.
func FuzzLint(f *testing.F) {
	r := metrics.NewRegistry()
	r.Counter("unit_q_total", "q", metrics.Label{Key: "outcome", Value: "success"}).Inc()
	h := r.Histogram("unit_lat", "lat", 0, 1, 4, metrics.Label{Key: "stage", Value: "exec"})
	h.Observe(0.3)
	h.Observe(5)
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("# TYPE unit_h histogram\nunit_h_bucket{le=\"+Inf\"} 1\n")
	f.Add("# TYPE unit_h histogram\nunit_h_bucket{le=\"0.5\"} 2\nunit_h_bucket{le=\"1\"} 1\n")
	f.Add("unit_x{k=\"v\\\"w\"} 1 1700000000\n")
	f.Add("# HELP broken")
	f.Add("{} 1\n9bad 2\nunit_ok NaN\n")
	f.Fuzz(func(t *testing.T, in string) {
		fams, err := Lint(strings.NewReader(in))
		if fams == nil {
			t.Fatal("Lint returned a nil family map")
		}
		if err == nil {
			// A clean pass must be stable: linting the same bytes again
			// yields the same family counts.
			again, err2 := Lint(strings.NewReader(in))
			if err2 != nil {
				t.Fatalf("second lint of accepted input failed: %v", err2)
			}
			if len(again) != len(fams) {
				t.Fatalf("lint not deterministic: %v vs %v", fams, again)
			}
		}
	})
}
