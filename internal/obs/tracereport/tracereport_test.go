package tracereport

import (
	"bytes"
	"strings"
	"testing"

	"unitdb/internal/core"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/obs/trace"
	"unitdb/internal/workload"
)

// synthDump builds a small hand-written dump covering every event kind.
func synthDump(t *testing.T) []byte {
	t.Helper()
	r := trace.New(64, 8)
	r.Record(trace.Event{T: 0.0, Kind: trace.KindArrive, Query: 1, Items: 2, Deadline: 1})
	r.Record(trace.Event{T: 0.0, Kind: trace.KindAdmit, Query: 1})
	r.Record(trace.Event{T: 0.0, Kind: trace.KindQueue, Query: 1})
	r.Record(trace.Event{T: 0.1, Kind: trace.KindExecute, Query: 1, Wait: 0.1})
	r.Record(trace.Event{T: 0.2, Kind: trace.KindPreempt, Query: 1})
	r.Record(trace.Event{T: 0.3, Kind: trace.KindExecute, Query: 1, Wait: 0.3})
	r.Record(trace.Event{T: 0.4, Kind: trace.KindRestart, Query: 1})
	r.Record(trace.Event{T: 0.45, Kind: trace.KindBlock, Query: 1})
	r.Record(trace.Event{T: 0.5, Kind: trace.KindExecute, Query: 1, Wait: 0.5})
	r.RecordDecision(trace.Decision{T: 0.55, Action: "UU", WindowUSM: 0.5})
	r.Record(trace.Event{T: 0.6, Kind: trace.KindOutcome, Query: 1, Outcome: "success", Fresh: 1,
		Stages: &trace.StageBreakdown{QueueWait: 0.25, LockWait: 0.05, Exec: 0.1, Overhead: 0.2, Total: 0.6}})
	r.Record(trace.Event{T: 0.1, Kind: trace.KindArrive, Query: 2, Items: 1, Deadline: 1.1})
	r.Record(trace.Event{T: 0.1, Kind: trace.KindReject, Query: 2})
	r.Record(trace.Event{T: 0.1, Kind: trace.KindOutcome, Query: 2, Outcome: "rejected", Stages: &trace.StageBreakdown{}})
	r.RecordDecision(trace.Decision{T: 0.9, Action: "DU TAC", WindowUSM: 0.25})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeSynthetic(t *testing.T) {
	rep, err := Analyze(bytes.NewReader(synthDump(t)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 2 || rep.WithStage != 2 || rep.Decisions != 2 {
		t.Fatalf("counts: %d queries, %d with stages, %d decisions", rep.Queries, rep.WithStage, rep.Decisions)
	}
	var total StageStats
	for _, s := range rep.PerStage {
		if s.Stage == "total" {
			total = s
		}
	}
	if total.Max != 0.6 || total.Count != 2 {
		t.Fatalf("total stats = %+v", total)
	}
	if len(rep.Critical) != 2 || rep.Critical[0].Query != 1 {
		t.Fatalf("critical path = %+v", rep.Critical)
	}
	if rep.Critical[0].Restarts != 1 || rep.Critical[0].Preempts != 1 || rep.Critical[0].Blocks != 1 {
		t.Fatalf("query 1's span counters = %+v", rep.Critical[0])
	}
	// Outcomes sorted lexically: rejected before success.
	if len(rep.Outcomes) != 2 || rep.Outcomes[0].Outcome != "rejected" || rep.Outcomes[1].Outcome != "success" {
		t.Fatalf("outcomes = %+v", rep.Outcomes)
	}
	if rep.Outcomes[1].Dominant != "queue_wait" {
		t.Fatalf("success dominant = %q, want queue_wait", rep.Outcomes[1].Dominant)
	}
	// Query 2 resolves at 0.1 (first window, t <= 0.55); query 1 at 0.6
	// (second window, (0.55, 0.9]).
	if len(rep.Windows) != 2 {
		t.Fatalf("windows = %+v", rep.Windows)
	}
	if rep.Windows[0].Resolved != 1 || rep.Windows[1].Resolved != 1 {
		t.Fatalf("window resolution counts = %+v", rep.Windows)
	}
	if rep.Windows[1].MeanTotal != 0.6 {
		t.Fatalf("second window mean total = %v, want 0.6", rep.Windows[1].MeanTotal)
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := Analyze(strings.NewReader("{not json\n"), 5); err == nil {
		t.Fatal("garbage line did not error")
	}
	rep, err := Analyze(strings.NewReader(""), 5)
	if err != nil || rep.Queries != 0 {
		t.Fatalf("empty dump: rep=%+v err=%v", rep, err)
	}
}

// engineDump runs the deterministic UNIT workload with tracing and
// returns the JSONL dump.
func engineDump(t *testing.T) []byte {
	t.Helper()
	qc := workload.SmallQueryConfig()
	qc.NumItems = 96
	qc.NumQueries = 2000
	qc.Duration = 8000
	qc.NumBursts = 4
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(workload.Med, workload.Uniform), 43)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(1<<20, 1<<20)
	weights := usm.Weights{Cr: 0.25, Cfm: 0.75, Cfs: 0.25}
	pcfg := core.DefaultConfig(weights)
	pcfg.Seed = 7
	e, err := engine.New(engine.Config{Workload: w, Weights: weights, Seed: 11, PhaseUpdates: true, Trace: rec}, core.New(pcfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReportByteIdentical: analyzing the same engine dump twice — and
// dumps of two same-seed runs — renders byte-identical text and JSON
// reports, the acceptance criterion for offline analysis.
func TestReportByteIdentical(t *testing.T) {
	d1, d2 := engineDump(t), engineDump(t)
	if !bytes.Equal(d1, d2) {
		t.Fatal("same-seed dumps differ; determinism broke upstream of the analyzer")
	}
	render := func(d []byte) string {
		rep, err := Analyze(bytes.NewReader(d), 10)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	r1, r2 := render(d1), render(d2)
	if r1 != r2 {
		t.Fatal("same dump rendered different reports")
	}
	if !strings.Contains(r1, "per-stage latency") || !strings.Contains(r1, "critical path") {
		t.Fatalf("report missing sections:\n%s", r1)
	}
}

// TestReportConservesEngineRun: the analyzer's view of an engine dump
// obeys the stage model — totals match spans and the per-stage means
// stay within the total.
func TestReportConservesEngineRun(t *testing.T) {
	rep, err := Analyze(bytes.NewReader(engineDump(t)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.WithStage != rep.Queries {
		t.Fatalf("engine dump: %d queries, %d with stages — every outcome must carry a breakdown", rep.Queries, rep.WithStage)
	}
	var sumShares float64
	for _, s := range rep.PerStage {
		if s.Stage == "total" {
			continue
		}
		sumShares += s.Share
	}
	if sumShares < 0.999 || sumShares > 1.001 {
		t.Fatalf("stage shares sum to %v, want ~1 (conservation)", sumShares)
	}
	if len(rep.Critical) != 5 {
		t.Fatalf("critical path has %d entries, want 5", len(rep.Critical))
	}
	for i := 1; i < len(rep.Critical); i++ {
		if rep.Critical[i].Stages.Total > rep.Critical[i-1].Stages.Total {
			t.Fatal("critical path not sorted by total")
		}
	}
	if rep.Decisions == 0 || len(rep.Windows) != rep.Decisions {
		t.Fatalf("decision windows: %d for %d decisions", len(rep.Windows), rep.Decisions)
	}
}
