// Package tracereport analyzes trace JSONL dumps (from `unitsim -trace`
// and `unitscenario run -outdir`) offline: it rebuilds each query's
// lifecycle from its span events, aggregates the per-stage latency
// attribution finalized on the outcome events, and renders a
// deterministic critical-path report — per-stage percentile tables,
// outcome-sliced breakdowns, the top-N slowest queries, and the
// query-latency picture around each Load Balancing Controller decision.
//
// Everything here is a pure function of the input bytes: maps are never
// iterated without sorting, floats render with fixed precision, and no
// clock is read — same-seed dumps produce byte-identical reports (the
// property cmd/unittrace's tests pin).
package tracereport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"unitdb/internal/obs/trace"
)

// StageNames orders the attribution stages in every table; "total" is
// the derived end-to-end row.
var StageNames = []string{"queue_wait", "lock_wait", "exec", "overhead", "total"}

// QueryRecord is one query's rebuilt lifecycle.
type QueryRecord struct {
	Query    int64                 `json:"query"`
	ArriveT  float64               `json:"arrive_t"`
	OutcomeT float64               `json:"outcome_t"`
	Outcome  string                `json:"outcome"`
	Stages   *trace.StageBreakdown `json:"stages,omitempty"`
	Restarts int                   `json:"restarts,omitempty"`
	Preempts int                   `json:"preempts,omitempty"`
	Blocks   int                   `json:"blocks,omitempty"`
}

// StageStats is the distribution of one stage across the resolved
// queries that carry breakdowns.
type StageStats struct {
	Stage string  `json:"stage"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	// Share is the stage's fraction of the summed total latency — where
	// the run's query time went.
	Share float64 `json:"share"`
}

// OutcomeSlice aggregates the breakdowns of one terminal outcome: which
// stage dominates DSF vs success is read straight off the means.
type OutcomeSlice struct {
	Outcome    string             `json:"outcome"`
	Count      int                `json:"count"`
	StageMeans map[string]float64 `json:"stage_means"`
	// Dominant is the stage with the largest mean ("" when no query of
	// this outcome carried a breakdown).
	Dominant string `json:"dominant"`
}

// DecisionWindow correlates one LBC decision with the queries resolved
// since the previous decision (or the start of the trace).
type DecisionWindow struct {
	T         float64 `json:"t"`
	Action    string  `json:"action"`
	WindowUSM float64 `json:"window_usm"`
	Resolved  int     `json:"resolved"`
	MeanTotal float64 `json:"mean_total"`
	Dominant  string  `json:"dominant"`
}

// Report is the full analysis of one dump.
type Report struct {
	Events    int `json:"events"`
	Decisions int `json:"decisions"`
	Queries   int `json:"queries"` // queries with a terminal outcome
	WithStage int `json:"with_stages"`

	PerStage []StageStats     `json:"per_stage"`
	Outcomes []OutcomeSlice   `json:"outcomes"`
	Critical []QueryRecord    `json:"critical_path"` // slowest first
	Windows  []DecisionWindow `json:"decision_windows"`
}

// stageValue extracts one named stage from a breakdown.
func stageValue(b *trace.StageBreakdown, stage string) float64 {
	switch stage {
	case "queue_wait":
		return b.QueueWait
	case "lock_wait":
		return b.LockWait
	case "exec":
		return b.Exec
	case "overhead":
		return b.Overhead
	default:
		return b.Total
	}
}

// percentile is the nearest-rank percentile of an ascending-sorted
// slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Analyze reads one trace JSONL dump and builds the report. topN bounds
// the critical-path table (non-positive means 10).
func Analyze(r io.Reader, topN int) (*Report, error) {
	if topN <= 0 {
		topN = 10
	}
	type probe struct {
		Kind string `json:"kind"`
	}
	rep := &Report{}
	records := map[int64]*QueryRecord{}
	var decisions []trace.Decision
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var p probe
		if err := json.Unmarshal(line, &p); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if p.Kind == string(trace.KindDecision) {
			var d trace.Decision
			if err := json.Unmarshal(line, &d); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			rep.Decisions++
			decisions = append(decisions, d)
			continue
		}
		var ev trace.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		rep.Events++
		rec := records[ev.Query]
		if rec == nil {
			rec = &QueryRecord{Query: ev.Query, ArriveT: ev.T}
			records[ev.Query] = rec
		}
		switch ev.Kind {
		case trace.KindArrive:
			rec.ArriveT = ev.T
		case trace.KindRestart:
			rec.Restarts++
		case trace.KindPreempt:
			rec.Preempts++
		case trace.KindBlock:
			rec.Blocks++
		case trace.KindOutcome:
			//unitlint:ignore outcomeonce -- offline report assembly: this copies an already-recorded outcome string out of a trace dump, it does not resolve a live transaction
			rec.Outcome = ev.Outcome
			rec.OutcomeT = ev.T
			rec.Stages = ev.Stages
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Resolved queries in deterministic id order.
	resolved := make([]*QueryRecord, 0, len(records))
	for _, rec := range records {
		if rec.Outcome != "" {
			resolved = append(resolved, rec)
		}
	}
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].Query < resolved[j].Query })
	rep.Queries = len(resolved)

	// Per-stage percentile tables.
	var totalSum float64
	stageSums := map[string]float64{}
	for _, st := range StageNames {
		var vals []float64
		var sum float64
		for _, rec := range resolved {
			if rec.Stages == nil {
				continue
			}
			v := stageValue(rec.Stages, st)
			vals = append(vals, v)
			sum += v
		}
		sort.Float64s(vals)
		s := StageStats{Stage: st, Count: len(vals), Max: percentile(vals, 1),
			P50: percentile(vals, 0.50), P90: percentile(vals, 0.90), P99: percentile(vals, 0.99)}
		if len(vals) > 0 {
			s.Mean = sum / float64(len(vals))
		}
		stageSums[st] = sum
		if st == "total" {
			totalSum = sum
			rep.WithStage = len(vals)
		}
		rep.PerStage = append(rep.PerStage, s)
	}
	for i := range rep.PerStage {
		if totalSum > 0 && rep.PerStage[i].Stage != "total" {
			rep.PerStage[i].Share = stageSums[rep.PerStage[i].Stage] / totalSum
		}
	}

	// Outcome-sliced breakdowns.
	byOutcome := map[string][]*QueryRecord{}
	for _, rec := range resolved {
		byOutcome[rec.Outcome] = append(byOutcome[rec.Outcome], rec)
	}
	outcomes := make([]string, 0, len(byOutcome))
	for o := range byOutcome {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		slice := OutcomeSlice{Outcome: o, Count: len(byOutcome[o]), StageMeans: map[string]float64{}}
		n := 0
		for _, rec := range byOutcome[o] {
			if rec.Stages == nil {
				continue
			}
			n++
			for _, st := range StageNames {
				slice.StageMeans[st] += stageValue(rec.Stages, st)
			}
		}
		best := ""
		for _, st := range StageNames {
			if n > 0 {
				slice.StageMeans[st] /= float64(n)
			}
			if st != "total" && (best == "" || slice.StageMeans[st] > slice.StageMeans[best]) && n > 0 {
				best = st
			}
		}
		slice.Dominant = best
		rep.Outcomes = append(rep.Outcomes, slice)
	}

	// Critical path: slowest queries by total attributed latency, ties
	// broken by id so the table is deterministic.
	withStages := make([]*QueryRecord, 0, len(resolved))
	for _, rec := range resolved {
		if rec.Stages != nil {
			withStages = append(withStages, rec)
		}
	}
	sort.Slice(withStages, func(i, j int) bool {
		if withStages[i].Stages.Total != withStages[j].Stages.Total {
			return withStages[i].Stages.Total > withStages[j].Stages.Total
		}
		return withStages[i].Query < withStages[j].Query
	})
	if len(withStages) > topN {
		withStages = withStages[:topN]
	}
	for _, rec := range withStages {
		rep.Critical = append(rep.Critical, *rec)
	}

	// Decision correlation windows: queries resolved in (prev, d.T].
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].Seq < decisions[j].Seq })
	prev := math.Inf(-1)
	for _, d := range decisions {
		w := DecisionWindow{T: d.T, Action: d.Action, WindowUSM: d.WindowUSM}
		sums := map[string]float64{}
		for _, rec := range resolved {
			if rec.OutcomeT <= prev || rec.OutcomeT > d.T || rec.Stages == nil {
				continue
			}
			w.Resolved++
			w.MeanTotal += rec.Stages.Total
			for _, st := range StageNames[:4] {
				sums[st] += stageValue(rec.Stages, st)
			}
		}
		if w.Resolved > 0 {
			w.MeanTotal /= float64(w.Resolved)
			best := StageNames[0]
			for _, st := range StageNames[:4] {
				if sums[st] > sums[best] {
					best = st
				}
			}
			w.Dominant = best
		}
		rep.Windows = append(rep.Windows, w)
		prev = d.T
	}
	return rep, nil
}

// WriteText renders the report as a fixed-layout human-readable table
// set. The rendering is a pure function of the report.
func (rep *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace: %d events, %d decisions, %d resolved queries (%d with stage breakdowns)\n",
		rep.Events, rep.Decisions, rep.Queries, rep.WithStage)
	fmt.Fprintf(bw, "\nper-stage latency (seconds):\n")
	fmt.Fprintf(bw, "  %-10s %8s %10s %10s %10s %10s %10s %7s\n",
		"stage", "count", "mean", "p50", "p90", "p99", "max", "share")
	for _, s := range rep.PerStage {
		share := "-"
		if s.Stage != "total" {
			share = fmt.Sprintf("%6.2f%%", 100*s.Share)
		}
		fmt.Fprintf(bw, "  %-10s %8d %10.6f %10.6f %10.6f %10.6f %10.6f %7s\n",
			s.Stage, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max, share)
	}
	fmt.Fprintf(bw, "\nper-outcome stage means (seconds):\n")
	fmt.Fprintf(bw, "  %-12s %8s %10s %10s %10s %10s %10s  %s\n",
		"outcome", "count", "queue", "lock", "exec", "overhead", "total", "dominant")
	for _, o := range rep.Outcomes {
		fmt.Fprintf(bw, "  %-12s %8d %10.6f %10.6f %10.6f %10.6f %10.6f  %s\n",
			o.Outcome, o.Count, o.StageMeans["queue_wait"], o.StageMeans["lock_wait"],
			o.StageMeans["exec"], o.StageMeans["overhead"], o.StageMeans["total"], o.Dominant)
	}
	fmt.Fprintf(bw, "\ncritical path (slowest %d):\n", len(rep.Critical))
	fmt.Fprintf(bw, "  %-8s %-10s %10s %10s %10s %10s %10s %4s %4s %4s\n",
		"query", "outcome", "total", "queue", "lock", "exec", "overhead", "rst", "pre", "blk")
	for _, c := range rep.Critical {
		fmt.Fprintf(bw, "  %-8d %-10s %10.6f %10.6f %10.6f %10.6f %10.6f %4d %4d %4d\n",
			c.Query, c.Outcome, c.Stages.Total, c.Stages.QueueWait, c.Stages.LockWait,
			c.Stages.Exec, c.Stages.Overhead, c.Restarts, c.Preempts, c.Blocks)
	}
	fmt.Fprintf(bw, "\nLBC decision windows (queries resolved since previous decision):\n")
	fmt.Fprintf(bw, "  %-10s %-22s %10s %8s %10s  %s\n",
		"t", "action", "usm", "resolved", "mean_total", "dominant")
	for _, d := range rep.Windows {
		fmt.Fprintf(bw, "  %-10.3f %-22s %10.6f %8d %10.6f  %s\n",
			d.T, d.Action, d.WindowUSM, d.Resolved, d.MeanTotal, d.Dominant)
	}
	return bw.Flush()
}
