package eventsim

import (
	"testing"
	"testing/quick"

	"unitdb/internal/stats"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New()
	var at float64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 15 {
		t.Fatalf("After fired at %v", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // idempotent
	s.Cancel(nil)
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestCancelFromInsideEvent(t *testing.T) {
	s := New()
	fired := false
	e := s.At(2, func() { fired = true })
	s.At(1, func() { s.Cancel(e) })
	s.RunAll()
	if fired {
		t.Fatal("event cancelled at t=1 still fired at t=2")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { got = append(got, tt) })
	}
	n := s.Run(3)
	if n != 3 || len(got) != 3 {
		t.Fatalf("ran %d events, got %v", n, got)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want clamped to 3", s.Now())
	}
	s.Run(10)
	if len(got) != 5 || s.Now() != 10 {
		t.Fatalf("resume failed: %v now=%v", got, s.Now())
	}
}

func TestRunAdvancesClockWhenIdle(t *testing.T) {
	s := New()
	s.Run(42)
	if s.Now() != 42 {
		t.Fatalf("idle Run did not advance clock: %v", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("past scheduling did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(float64(i), func() {})
	}
	s.RunAll()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d", s.Fired())
	}
}

func TestSelfSchedulingChain(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	s.RunAll()
	if count != 100 || s.Now() != 100 {
		t.Fatalf("chain count=%d now=%v", count, s.Now())
	}
}

func TestRandomScheduleProperty(t *testing.T) {
	// Under random schedule/cancel traffic, events always fire in
	// non-decreasing time order and the clock never goes backwards.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := New()
		ok := true
		last := -1.0
		var events []*Event
		for i := 0; i < 200; i++ {
			tt := rng.Float64() * 100
			events = append(events, s.At(tt, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			}))
		}
		for _, e := range events {
			if rng.Float64() < 0.3 {
				s.Cancel(e)
			}
		}
		s.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
