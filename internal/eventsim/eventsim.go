// Package eventsim is a small deterministic discrete-event simulation
// kernel: a virtual clock and a time-ordered event heap with stable
// tie-breaking (schedule order), cancellation, and run-until semantics.
// The web-database engine is built on top of it.
package eventsim

import (
	"fmt"
	"math"
)

// Event is a scheduled callback. It can be cancelled until it fires.
type Event struct {
	time      float64
	seq       int64
	fn        func()
	index     int
	cancelled bool
}

// Time returns the scheduled firing time.
func (e *Event) Time() float64 { return e.time }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// Sim is the simulation kernel. Not safe for concurrent use.
type Sim struct {
	now    float64
	nextID int64
	events eventHeap
	fired  int64
}

// New creates a simulator with the clock at zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() int64 { return s.fired }

// Pending returns the number of scheduled, uncancelled events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn at absolute time t. Events scheduled for the current
// instant run after the currently executing event returns. Scheduling in
// the past panics — it would silently corrupt causality.
func (s *Sim) At(t float64, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("eventsim: scheduling at non-finite time %v", t))
	}
	e := &Event{time: t, seq: s.nextID, fn: fn}
	s.nextID++
	s.events.push(e)
	return e
}

// After schedules fn after a delay d >= 0.
func (s *Sim) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel marks e so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 { // still queued: unlink now to keep the heap small
		s.events.removeAt(e.index)
	}
}

// Step executes the next event. It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		e := s.events.pop()
		if e.cancelled {
			continue
		}
		if e.time < s.now {
			panic("eventsim: time went backwards")
		}
		s.now = e.time
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue empties or the next event lies
// strictly beyond until; the clock finishes at min(until, last event time)
// or exactly until when limited. It returns the number of events executed.
func (s *Sim) Run(until float64) int64 {
	start := s.fired
	for len(s.events) > 0 {
		next := s.events[0]
		if next.cancelled {
			s.events.pop()
			continue
		}
		if next.time > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
	return s.fired - start
}

// RunAll executes every scheduled event. It returns the number executed.
func (s *Sim) RunAll() int64 {
	start := s.fired
	for s.Step() {
	}
	return s.fired - start
}

// eventHeap is a hand-rolled binary min-heap over (time, seq). It used
// to implement container/heap.Interface; the concrete sift functions
// below keep the exact same total order (seq makes the comparator
// strict, so extraction order is identical) while avoiding the
// interface-dispatch cost on every comparison and swap — the heap is
// the simulation kernel's hottest code.
type eventHeap []*Event

// eventBefore is the heap order: earlier time first, schedule order
// (seq) breaking ties.
func eventBefore(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *Event) {
	e.index = len(*h)
	*h = append(*h, e)
	h.siftUp(e.index)
}

// pop removes and returns the minimum. The caller guarantees the heap
// is non-empty.
func (h *eventHeap) pop() *Event {
	s := *h
	n := len(s) - 1
	e := s[0]
	if n > 0 {
		s[0] = s[n]
		s[0].index = 0
	}
	s[n] = nil
	*h = s[:n]
	h.siftDown(0)
	e.index = -1
	return e
}

// removeAt unlinks the event at heap position i (Cancel's path).
func (h *eventHeap) removeAt(i int) {
	s := *h
	n := len(s) - 1
	e := s[i]
	if i != n {
		s[i] = s[n]
		s[i].index = i
	}
	s[n] = nil
	*h = s[:n]
	if i < n {
		h.siftDown(i)
		h.siftUp(i)
	}
	e.index = -1
}

func (h *eventHeap) siftUp(i int) {
	s := *h
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(s[i], s[p]) {
			return
		}
		s[i], s[p] = s[p], s[i]
		s[i].index = i
		s[p].index = p
		i = p
	}
}

func (h *eventHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && eventBefore(s[r], s[l]) {
			m = r
		}
		if !eventBefore(s[m], s[i]) {
			return
		}
		s[i], s[m] = s[m], s[i]
		s[i].index = i
		s[m].index = m
		i = m
	}
}
