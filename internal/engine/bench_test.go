// Engine micro-benchmarks, in the external test package so they can
// drive the engine with the real policies. Each full-run benchmark
// reports simulated events/sec — the engine's throughput currency and
// the number the BENCH_baseline.json gate watches.
package engine_test

import (
	"fmt"
	"testing"

	"unitdb/internal/baseline"
	"unitdb/internal/baseline/qmf"
	"unitdb/internal/core"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/workload"
)

// benchTrace synthesizes one small med-unif trace shared by the
// benchmarks below (2k queries — large enough to exercise steady state,
// small enough for tight benchmark loops).
func benchTrace(b *testing.B) *workload.Workload {
	b.Helper()
	qc := workload.SmallQueryConfig()
	qc.NumQueries = 2000
	qc.Duration = 8000
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(workload.Med, workload.Uniform), 43)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchPolicy(b *testing.B, name string) engine.Policy {
	b.Helper()
	switch name {
	case "IMU":
		return baseline.NewIMU()
	case "ODU":
		return baseline.NewODU()
	case "QMF":
		cfg := qmf.DefaultConfig()
		cfg.Seed = 1
		return qmf.New(cfg)
	case "UNIT":
		cfg := core.DefaultConfig(usm.Weights{})
		cfg.Seed = 1
		return core.New(cfg)
	default:
		b.Fatalf("unknown policy %s", name)
		return nil
	}
}

// BenchmarkEngineRun measures a full simulation run per policy and
// reports simulated events/sec.
func BenchmarkEngineRun(b *testing.B) {
	w := benchTrace(b)
	for _, name := range []string{"IMU", "ODU", "QMF", "UNIT"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			for i := 0; i < b.N; i++ {
				e, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), benchPolicy(b, name))
				if err != nil {
					b.Fatal(err)
				}
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				events += r.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/sec")
			}
		})
	}
}

// shardBenchTrace is the sharded router's own trace: sparse (500
// queries over 4000 time units, so the per-shard control loops the
// router multiplies are well represented) and 8 items per query, so
// nearly every query scatters across shards and the partition/merge
// path — the code this benchmark exists to watch — carries real
// weight. BenchmarkEngineRun keeps covering raw single-engine query
// execution.
func shardBenchTrace(b *testing.B) *workload.Workload {
	b.Helper()
	qc := workload.SmallQueryConfig()
	qc.NumQueries = 500
	qc.Duration = 4000
	qc.ItemsPerQuery = 8
	q, err := workload.GenerateQueries(qc, 42)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.GenerateUpdates(q, workload.DefaultUpdateConfig(workload.Med, workload.Uniform), 43)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkEngineRunSharded measures the front-door router end to end:
// the trace partitioned across N UNIT shards (Workers=0: one goroutine
// per shard, parallel up to GOMAXPROCS), reporting merged simulated
// events/sec. shards=1 is the router's passthrough overhead floor;
// shards=4 is the scaling point the baseline gate watches — its
// recorded aggregate throughput clears 1.5x the shards=1 entry even on
// one core, and the gap widens with real cores.
func BenchmarkEngineRunSharded(b *testing.B) {
	w := shardBenchTrace(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			for i := 0; i < b.N; i++ {
				r, err := engine.RunSharded(engine.ShardedConfig{
					Shards:   shards,
					Workload: w,
					Weights:  usm.Weights{},
					Seed:     7,
					Policy: func(_ int, seed uint64) (engine.Policy, error) {
						cfg := core.DefaultConfig(usm.Weights{})
						cfg.Seed = seed
						return core.New(cfg), nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				events += r.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/sec")
			}
		})
	}
}

// BenchmarkEngineConstruct isolates engine setup (event scheduling for
// every arrival in the trace) from the run loop.
func BenchmarkEngineConstruct(b *testing.B) {
	w := benchTrace(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.New(engine.NewConfig(w, usm.Weights{}, 7), baseline.NewIMU()); err != nil {
			b.Fatal(err)
		}
	}
}
