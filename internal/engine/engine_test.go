package engine

import (
	"math"
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/txn"
	"unitdb/internal/workload"
)

// mkWorkload builds a tiny hand-authored workload.
func mkWorkload(items int, duration float64, qs []workload.QuerySpec, us []workload.UpdateSpec) *workload.Workload {
	w := &workload.Workload{
		Name:         "test",
		NumItems:     items,
		Duration:     duration,
		Queries:      qs,
		Updates:      us,
		QueryCounts:  make([]int, items),
		UpdateCounts: make([]int, items),
	}
	for _, q := range qs {
		for _, it := range q.Items {
			w.QueryCounts[it]++
		}
	}
	return w
}

func q(arrival float64, item int, exec, rel float64) workload.QuerySpec {
	return workload.QuerySpec{
		Arrival: arrival, Items: []int{item}, Exec: exec, EstExec: exec,
		RelDeadline: rel, FreshReq: 0.9,
	}
}

func runWith(t *testing.T, w *workload.Workload, p Policy) *Results {
	t.Helper()
	cfg := NewConfig(w, usm.Weights{}, 7)
	cfg.PhaseUpdates = false // deterministic feed alignment for tests
	e, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// admitAll is the trivial policy (IMU without the name).
type admitAll struct{ Base }

func (admitAll) Name() string { return "admit-all" }

func TestSingleQuerySucceeds(t *testing.T) {
	w := mkWorkload(2, 100, []workload.QuerySpec{q(10, 0, 2, 5)}, nil)
	r := runWith(t, w, admitAll{})
	if r.Counts.Success != 1 || r.Counts.Total() != 1 {
		t.Fatalf("counts = %+v", r.Counts)
	}
	if math.Abs(r.AvgLatency-2) > 1e-9 {
		t.Fatalf("latency = %v, want exec time 2", r.AvgLatency)
	}
	if r.AvgFreshness != 1 {
		t.Fatalf("freshness = %v", r.AvgFreshness)
	}
	if math.Abs(r.QueryCPU*w.Duration-2) > 1e-9 {
		t.Fatalf("query CPU = %v", r.QueryCPU*w.Duration)
	}
}

func TestFirmDeadlineInQueue(t *testing.T) {
	// Two queries, same arrival; the EDF-earlier one runs 5s; the later one
	// has a 3s deadline and must die in the queue.
	w := mkWorkload(2, 100, []workload.QuerySpec{
		q(0, 0, 5, 4), // runs first (earlier deadline)
		q(0, 1, 1, 3), // waits, deadline at t=3 < first completion at 5
	}, nil)
	r := runWith(t, w, admitAll{})
	if r.Counts.DMF != 1 {
		t.Fatalf("expected one queue DMF, got %+v", r.Counts)
	}
	// The first query misses its own 4s deadline too (needs 5s).
	if r.Counts.Success != 0 || r.Counts.DMF != 1 {
		t.Logf("counts: %+v", r.Counts)
	}
}

func TestDoomedQueryBurnsCPUUntilDeadline(t *testing.T) {
	// A query needing 10s with a 4s deadline runs and is aborted at its
	// deadline — the paper's firm-deadline semantics, with the CPU waste.
	w := mkWorkload(1, 100, []workload.QuerySpec{q(0, 0, 10, 4)}, nil)
	r := runWith(t, w, admitAll{})
	if r.Counts.DMF != 1 {
		t.Fatalf("counts = %+v", r.Counts)
	}
	if got := r.QueryCPU * w.Duration; math.Abs(got-4) > 1e-9 {
		t.Fatalf("burned %v CPU, want 4 (ran until the deadline)", got)
	}
}

func TestUpdatePreemptsQuery(t *testing.T) {
	// Query starts at 0 (exec 10, generous deadline). An update feed with
	// period 3 (exec 1) preempts it repeatedly; the query still finishes.
	w := mkWorkload(2, 12,
		[]workload.QuerySpec{q(0, 0, 6, 100)},
		[]workload.UpdateSpec{{Item: 1, Period: 3, Exec: 1}},
	)
	r := runWith(t, w, admitAll{})
	if r.Counts.Success != 1 {
		t.Fatalf("counts = %+v", r.Counts)
	}
	if r.Preemptions == 0 {
		t.Fatal("expected preemptions")
	}
	if r.UpdatesApplied == 0 {
		t.Fatal("updates never ran")
	}
	// The query reads item 0, which has no feed: fully fresh.
	if r.AvgFreshness != 1 {
		t.Fatalf("freshness = %v", r.AvgFreshness)
	}
}

func TestHPAbortAndRestart(t *testing.T) {
	// The query reads the updated item; an update arriving mid-execution
	// grabs the X lock via 2PL-HP, aborting and restarting the query.
	w := mkWorkload(1, 50,
		[]workload.QuerySpec{q(2.5, 0, 2, 40)},
		[]workload.UpdateSpec{{Item: 0, Period: 4, Exec: 1}},
	)
	r := runWith(t, w, admitAll{})
	if r.HPAborts == 0 {
		t.Fatal("expected a 2PL-HP abort")
	}
	if r.Restarts == 0 {
		t.Fatal("victim never restarted")
	}
	if r.Counts.Success != 1 {
		t.Fatalf("restarted query should still succeed: %+v", r.Counts)
	}
}

func TestIMUAlwaysFresh(t *testing.T) {
	// Whatever the load, queries that commit under admit-everything with
	// all updates executed read fresh data (paper §4.1 on IMU).
	var qs []workload.QuerySpec
	for i := 0; i < 50; i++ {
		qs = append(qs, q(float64(i)*2, i%4, 0.5, 5))
	}
	w := mkWorkload(4, 120, qs, []workload.UpdateSpec{
		{Item: 0, Period: 1.5, Exec: 0.3},
		{Item: 1, Period: 2.5, Exec: 0.3},
		{Item: 2, Period: 4, Exec: 0.3},
	})
	r := runWith(t, w, admitAll{})
	if r.Counts.DSF != 0 {
		t.Fatalf("IMU-style run produced DSFs: %+v", r.Counts)
	}
	if r.Counts.Total() != 50 {
		t.Fatalf("outcome count %d != submitted 50", r.Counts.Total())
	}
}

// dropUpdates rejects every source update.
type dropUpdates struct{ Base }

func (dropUpdates) Name() string         { return "drop-updates" }
func (dropUpdates) AdmitUpdate(int) bool { return false }

func TestDroppedUpdatesCauseDSF(t *testing.T) {
	// All updates dropped: once the feed has emitted, queries read stale.
	w := mkWorkload(1, 60,
		[]workload.QuerySpec{q(10, 0, 1, 20), q(30, 0, 1, 20)},
		[]workload.UpdateSpec{{Item: 0, Period: 4, Exec: 1}},
	)
	r := runWith(t, w, dropUpdates{})
	if r.Counts.DSF != 2 {
		t.Fatalf("counts = %+v, want 2 DSFs", r.Counts)
	}
	if r.UpdatesApplied != 0 || r.UpdatesDropped == 0 {
		t.Fatalf("updates applied=%d dropped=%d", r.UpdatesApplied, r.UpdatesDropped)
	}
}

// rejectAll bounces every query.
type rejectAll struct{ Base }

func (rejectAll) Name() string             { return "reject-all" }
func (rejectAll) AdmitQuery(*txn.Txn) bool { return false }

func TestRejectionAccounting(t *testing.T) {
	w := mkWorkload(1, 50, []workload.QuerySpec{q(1, 0, 1, 5), q(2, 0, 1, 5)}, nil)
	r := runWith(t, w, rejectAll{})
	if r.Counts.Rejected != 2 || r.Counts.Total() != 2 {
		t.Fatalf("counts = %+v", r.Counts)
	}
	if r.CPUUtilization != 0 {
		t.Fatalf("rejected queries consumed CPU: %v", r.CPUUtilization)
	}
}

func TestSupersedeBoundsQueue(t *testing.T) {
	// A long-running query with the earliest deadline blocks updates?
	// No — updates outrank queries. Instead occupy the CPU with an
	// expensive update feed so a second feed's updates queue and supersede.
	w := mkWorkload(2, 40, nil, []workload.UpdateSpec{
		{Item: 0, Period: 2, Exec: 1.9}, // nearly saturates the CPU
		{Item: 1, Period: 2, Exec: 1.9},
	})
	r := runWith(t, w, admitAll{})
	if r.UpdatesSuperseded == 0 {
		t.Fatal("no supersedes under update overload")
	}
	// Conservation: every source update is applied, dropped, or still
	// pending at the drain.
	if r.UpdatesApplied+r.UpdatesDropped > 2*int(40/2) {
		t.Fatalf("more outcomes than arrivals: applied=%d dropped=%d",
			r.UpdatesApplied, r.UpdatesDropped)
	}
}

func TestRefreshFlow(t *testing.T) {
	// ODU-style: drop the feed, but refresh on demand before the query.
	p := &refreshPolicy{}
	w := mkWorkload(1, 60,
		[]workload.QuerySpec{q(10, 0, 1, 30)},
		[]workload.UpdateSpec{{Item: 0, Period: 4, Exec: 1}},
	)
	r := runWith(t, w, p)
	if r.Counts.Success != 1 {
		t.Fatalf("counts = %+v", r.Counts)
	}
	if r.RefreshesIssued == 0 {
		t.Fatal("no refresh issued")
	}
	if r.AvgFreshness != 1 {
		t.Fatalf("freshness after refresh = %v", r.AvgFreshness)
	}
}

type refreshPolicy struct {
	Base
	e *Engine
}

func (p *refreshPolicy) Name() string         { return "refresh" }
func (p *refreshPolicy) Attach(e *Engine)     { p.e = e }
func (p *refreshPolicy) AdmitUpdate(int) bool { return false }
func (p *refreshPolicy) BeforeQueryDispatch(q *txn.Txn) bool {
	stale := false
	for _, item := range q.Items {
		if p.e.Store().Drops(item) > 0 {
			stale = true
			if p.e.PendingUpdateFor(item) == nil {
				if exec, ok := p.e.FeedExec(item); ok {
					p.e.EnqueueRefresh(item, exec, q.Deadline)
				}
			}
		}
	}
	return !stale
}

func TestDeterminism(t *testing.T) {
	build := func() *workload.Workload {
		qc := workload.SmallQueryConfig()
		qc.NumQueries = 800
		qc.Duration = 4000
		qw, err := workload.GenerateQueries(qc, 5)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.GenerateUpdates(qw, workload.DefaultUpdateConfig(workload.Med, workload.Uniform), 6)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	r1 := runWith(t, build(), admitAll{})
	r2 := runWith(t, build(), admitAll{})
	if r1.Counts != r2.Counts || r1.Events != r2.Events || r1.USM != r2.USM {
		t.Fatalf("same seeds diverged: %+v vs %+v", r1.Counts, r2.Counts)
	}
}

func TestOutcomeConservation(t *testing.T) {
	// Every submitted query gets exactly one outcome, under real load.
	qc := workload.SmallQueryConfig()
	qc.NumQueries = 1500
	qc.Duration = 6000
	qw, err := workload.GenerateQueries(qc, 11)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.GenerateUpdates(qw, workload.DefaultUpdateConfig(workload.High, workload.Uniform), 12)
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, w, admitAll{})
	if r.Counts.Total() != 1500 {
		t.Fatalf("outcomes %d != submitted 1500", r.Counts.Total())
	}
}

func TestRunTwicePanics(t *testing.T) {
	w := mkWorkload(1, 10, nil, nil)
	e, err := New(NewConfig(w, usm.Weights{}, 1), admitAll{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run did not error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, admitAll{}); err == nil {
		t.Fatal("nil workload accepted")
	}
	w := mkWorkload(1, 10, nil, nil)
	if _, err := New(NewConfig(w, usm.Weights{Cr: -1}, 1), admitAll{}); err == nil {
		t.Fatal("bad weights accepted")
	}
	bad := mkWorkload(1, 10, nil, nil)
	bad.Queries = []workload.QuerySpec{q(0, 5, 1, 1)} // reads item 5 of 1
	if _, err := New(NewConfig(bad, usm.Weights{}, 1), admitAll{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestControlTicks(t *testing.T) {
	p := &tickCounter{}
	w := mkWorkload(1, 10, nil, nil)
	runWith(t, w, p)
	if p.ticks != 10 {
		t.Fatalf("ticks = %d, want 10 (period 1 over duration 10)", p.ticks)
	}
}

type tickCounter struct {
	Base
	ticks int
}

func (p *tickCounter) Name() string           { return "ticks" }
func (p *tickCounter) ControlPeriod() float64 { return 1 }
func (p *tickCounter) OnControlTick()         { p.ticks++ }

func TestBusyTimeSnapshot(t *testing.T) {
	w := mkWorkload(1, 100, []workload.QuerySpec{q(0, 0, 4, 50)}, nil)
	var seen float64
	p := &busyProbe{probe: &seen}
	runWith(t, w, p)
	if seen <= 0 || seen > 4 {
		t.Fatalf("mid-run busy snapshot = %v, want in (0,4]", seen)
	}
}

type busyProbe struct {
	Base
	e     *Engine
	probe *float64
}

func (p *busyProbe) Name() string           { return "busy-probe" }
func (p *busyProbe) Attach(e *Engine)       { p.e = e }
func (p *busyProbe) ControlPeriod() float64 { return 2 }
func (p *busyProbe) OnControlTick() {
	q, u := p.e.BusyTime()
	if q+u > *p.probe {
		*p.probe = q + u
	}
}
