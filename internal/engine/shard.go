// Sharding: N independent UNIT engines behind one front door. Data items
// are partitioned across shards by a hash of the item id; each shard is a
// complete engine — its own ready queue, lottery, LBC, accountant, and a
// seed derived from the run seed by the shard index — so a sharded run is
// deterministic and replayable at any shard count. Multi-item queries
// scatter across the shards owning their items and gather at the front
// door:
//
//   - freshness composes as the min over shard answers (Eq. 1 is itself a
//     min over items, so partitioning the read set cannot change it);
//   - admission is admit-iff-every-touched-shard-admits: one shard's
//     rejection rejects the logical query, and the rejection is counted
//     exactly once, at the front door, never per shard;
//   - a deadline miss on any slice is a logical DMF; an abandoned slice
//     (client disconnect) abandons the logical query, which then produces
//     no outcome at all, mirroring the single-engine contract.
//
// DESIGN.md §13 documents the full story.
package engine

import (
	"fmt"
	"math"
	"strconv"

	"unitdb/internal/core/usm"
	"unitdb/internal/experiments/runner"
	"unitdb/internal/obs/trace"
	"unitdb/internal/txn"
	"unitdb/internal/workload"
)

// ShardOf maps a data item id to its owning shard. The splitmix64
// finalizer decorrelates adjacent ids (a range of hot items spreads over
// all shards instead of landing on one), and the conversion through
// uint64 is total, so any int — including the negative ids a fuzzer
// feeds the router — maps to a shard in [0, shards).
func ShardOf(item, shards int) int {
	if shards <= 1 {
		return 0
	}
	z := uint64(int64(item))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// ShardSeed derives shard's seed from a base seed using the same
// DeriveSeed scheme the experiment sweeps use for cells, so a shard
// draws the same randomness no matter how the fan-out is scheduled.
// At shards <= 1 the base seed passes through untouched — sharding is a
// strict no-op at N=1, bitwise included.
func ShardSeed(base uint64, shard, shards int) uint64 {
	if shards <= 1 {
		return base
	}
	return runner.DeriveSeed(base, "shard", strconv.Itoa(shard))
}

// PartitionItems routes an item-id list to per-shard groups. Input order
// is preserved within each group; duplicates and out-of-range ids pass
// through untouched (the router routes, the engine validates), so the
// groups' concatenation is always a permutation-by-shard of the input.
func PartitionItems(items []int, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	groups := make([][]int, shards)
	for _, it := range items {
		s := ShardOf(it, shards)
		groups[s] = append(groups[s], it)
	}
	return groups
}

// PartitionWorkload splits a workload into shards per-shard workloads.
// Every shard keeps the full NumItems id space (untouched items simply
// stay fresh), updates route to the shard owning their item, and each
// multi-item query splits into one slice per touched shard with its
// execution demand divided proportionally to the slice's share of the
// read set. Slices carry GatherID = logical query index + 1 so the
// front door can reassemble them. The second result counts the slices
// of each logical query (the gather layer's expectation: fewer answers
// than slices means a slice was abandoned).
func PartitionWorkload(w *workload.Workload, shards int) ([]*workload.Workload, []int) {
	if shards < 1 {
		shards = 1
	}
	parts := make([]*workload.Workload, shards)
	for s := range parts {
		parts[s] = &workload.Workload{
			Name:        w.Name,
			NumItems:    w.NumItems,
			Duration:    w.Duration,
			QueryCounts: make([]int, w.NumItems),
			Preferences: w.Preferences,
		}
		if w.UpdateCounts != nil {
			parts[s].UpdateCounts = make([]int, w.NumItems)
		}
	}
	sliceCounts := make([]int, len(w.Queries))
	for i := range w.Queries {
		q := &w.Queries[i]
		gather := int64(i) + 1
		if len(q.Items) == 1 {
			// Single-item fast path: no split, full demand, one slice.
			s := ShardOf(q.Items[0], shards)
			spec := *q
			spec.GatherID = gather
			parts[s].Queries = append(parts[s].Queries, spec)
			parts[s].QueryCounts[q.Items[0]]++
			sliceCounts[i] = 1
			continue
		}
		groups := PartitionItems(q.Items, shards)
		for s, group := range groups {
			if len(group) == 0 {
				continue
			}
			sliceCounts[i]++
			frac := float64(len(group)) / float64(len(q.Items))
			parts[s].Queries = append(parts[s].Queries, workload.QuerySpec{
				Arrival:     q.Arrival,
				Items:       group,
				Exec:        q.Exec * frac,
				EstExec:     q.EstExec * frac,
				RelDeadline: q.RelDeadline,
				FreshReq:    q.FreshReq,
				PrefClass:   q.PrefClass,
				GatherID:    gather,
			})
			for _, it := range group {
				parts[s].QueryCounts[it]++
			}
		}
	}
	for _, u := range w.Updates {
		s := ShardOf(u.Item, shards)
		parts[s].Updates = append(parts[s].Updates, u)
		if parts[s].UpdateCounts != nil && u.Item < len(w.UpdateCounts) {
			parts[s].UpdateCounts[u.Item] = w.UpdateCounts[u.Item]
		}
	}
	return parts, sliceCounts
}

// GatherAnswer is one shard's answer for one slice of a logical query.
type GatherAnswer struct {
	Gather  int64 // logical query index + 1
	Shard   int
	Outcome txn.Outcome
	Fresh   float64 // read freshness (committed slices)
	Latency float64 // presentation → resolution, virtual seconds
}

// shardObserver wraps one shard's policy to capture every finalized
// slice outcome for the front door's gather pass. It is pure
// observation — every hook delegates to the wrapped policy unchanged —
// so a shard runs bitwise-identically to the same engine without it.
// Abandoned slices never reach OnQueryDone (the engine contract), which
// is exactly how the gather layer detects them: fewer answers than
// slices.
type shardObserver struct {
	inner   Policy
	e       *Engine
	answers []GatherAnswer
}

// Name implements Policy.
func (o *shardObserver) Name() string { return o.inner.Name() }

// Attach implements Policy.
func (o *shardObserver) Attach(e *Engine) {
	o.e = e
	o.inner.Attach(e)
}

// AdmitQuery implements Policy.
func (o *shardObserver) AdmitQuery(q *txn.Txn) bool { return o.inner.AdmitQuery(q) }

// AdmitUpdate implements Policy.
func (o *shardObserver) AdmitUpdate(item int) bool { return o.inner.AdmitUpdate(item) }

// OnSourceUpdate implements Policy.
func (o *shardObserver) OnSourceUpdate(item int, exec float64) { o.inner.OnSourceUpdate(item, exec) }

// BeforeQueryDispatch implements Policy.
func (o *shardObserver) BeforeQueryDispatch(q *txn.Txn) bool { return o.inner.BeforeQueryDispatch(q) }

// OnQueryDone implements Policy, capturing the slice's answer.
func (o *shardObserver) OnQueryDone(q *txn.Txn) {
	if q.GatherID > 0 {
		o.answers = append(o.answers, GatherAnswer{
			Gather:  q.GatherID,
			Outcome: q.Outcome,
			Fresh:   q.ReadFreshness,
			Latency: o.e.Now() - q.Arrival,
		})
	}
	o.inner.OnQueryDone(q)
}

// OnUpdateApplied implements Policy.
func (o *shardObserver) OnUpdateApplied(u *txn.Txn) { o.inner.OnUpdateApplied(u) }

// ControlPeriod implements Policy.
func (o *shardObserver) ControlPeriod() float64 { return o.inner.ControlPeriod() }

// OnControlTick implements Policy.
func (o *shardObserver) OnControlTick() { o.inner.OnControlTick() }

// ShardedConfig parameterizes one sharded run behind the front door.
type ShardedConfig struct {
	// Shards is the shard count; values <= 1 run the plain single engine
	// (bitwise-identical to a direct New+Run with the same Config).
	Shards   int
	Workload *workload.Workload
	Weights  usm.Weights
	// Seed is the engine seed base; shard i runs at ShardSeed(Seed, i, N).
	Seed uint64
	// PolicySeed is the policy seed base, derived per shard the same way
	// and handed to the Policy factory.
	PolicySeed   uint64
	PhaseUpdates bool
	// Policy builds shard's policy from its derived seed. Factories are
	// invoked sequentially in shard order before any engine runs, so a
	// harness may capture per-shard state (observers, injectors) by index.
	Policy func(shard int, seed uint64) (Policy, error)
	// Disturbance, when non-nil, builds shard's fault injector (also
	// called sequentially in shard order). Each shard needs its own
	// instance: injectors keep tallies.
	Disturbance func(shard int) Disturbance
	// Trace, when non-nil, supplies shard's trace recorder; use
	// trace.Merge afterwards for one deterministic logical stream.
	Trace func(shard int) *trace.Recorder
	// Workers bounds the fan-out concurrency (runner.Options semantics:
	// 0 means GOMAXPROCS, 1 is the reference sequential path). Results
	// are identical at any worker count.
	Workers int
}

// ShardRun is the full detail of one sharded run.
type ShardRun struct {
	// Merged is the front door's logical view: outcomes gathered per
	// logical query, freshness as the min over slices, one rejection per
	// rejected query.
	Merged *Results
	// PerShard holds each shard's own Results (index = shard). At
	// Shards <= 1 it is the single engine's Results.
	PerShard []*Results
	// Answers holds, per logical query index, its slice answers in shard
	// order. Nil at Shards <= 1 (no gather happens).
	Answers [][]GatherAnswer
}

// RunSharded runs the workload across cfg.Shards engine shards and
// returns the merged, front-door view of the results.
func RunSharded(cfg ShardedConfig) (*Results, error) {
	run, err := RunShardedDetail(cfg)
	if err != nil {
		return nil, err
	}
	return run.Merged, nil
}

// RunShardedDetail runs the workload across cfg.Shards engine shards and
// returns the merged results plus the per-shard detail the invariance
// tests pin.
func RunShardedDetail(cfg ShardedConfig) (*ShardRun, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("engine: nil workload")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("engine: nil policy factory")
	}
	if cfg.Shards <= 1 {
		// The N=1 front door is the pre-sharding engine, verbatim: same
		// undecorated seeds, same config, no gather layer. The golden
		// tests pin this bitwise.
		pol, err := cfg.Policy(0, cfg.PolicySeed)
		if err != nil {
			return nil, err
		}
		ecfg := Config{Workload: cfg.Workload, Weights: cfg.Weights, Seed: cfg.Seed, PhaseUpdates: cfg.PhaseUpdates}
		if cfg.Disturbance != nil {
			ecfg.Disturbance = cfg.Disturbance(0)
		}
		if cfg.Trace != nil {
			ecfg.Trace = cfg.Trace(0)
		}
		e, err := New(ecfg, pol)
		if err != nil {
			return nil, err
		}
		res, err := e.Run()
		if err != nil {
			return nil, err
		}
		return &ShardRun{Merged: res, PerShard: []*Results{res}}, nil
	}

	n := cfg.Shards
	parts, sliceCounts := PartitionWorkload(cfg.Workload, n)
	engines := make([]*Engine, n)
	observers := make([]*shardObserver, n)
	for i := 0; i < n; i++ {
		pol, err := cfg.Policy(i, ShardSeed(cfg.PolicySeed, i, n))
		if err != nil {
			return nil, fmt.Errorf("engine: shard %d policy: %w", i, err)
		}
		obs := &shardObserver{inner: pol}
		ecfg := Config{Workload: parts[i], Weights: cfg.Weights, Seed: ShardSeed(cfg.Seed, i, n), PhaseUpdates: cfg.PhaseUpdates}
		if cfg.Disturbance != nil {
			ecfg.Disturbance = cfg.Disturbance(i)
		}
		if cfg.Trace != nil {
			ecfg.Trace = cfg.Trace(i)
		}
		e, err := New(ecfg, obs)
		if err != nil {
			return nil, fmt.Errorf("engine: shard %d: %w", i, err)
		}
		engines[i] = e
		observers[i] = obs
	}
	// Shards are independent simulations over disjoint item sets, so they
	// fan out across the deterministic pool; results land by shard index
	// regardless of scheduling.
	perShard, err := runner.Map(runner.Options{Workers: cfg.Workers}, engines,
		func(_ int, e *Engine) (*Results, error) { return e.Run() })
	if err != nil {
		return nil, err
	}
	byQuery := gatherAnswers(len(cfg.Workload.Queries), observers)
	merged := mergeShardResults(cfg.Weights, cfg.Workload, perShard, byQuery, sliceCounts)
	return &ShardRun{Merged: merged, PerShard: perShard, Answers: byQuery}, nil
}

// gatherAnswers regroups the shards' answer streams by logical query.
// Iteration is shard order, then per-shard completion order — both
// deterministic — so the grouped slices replay identically.
func gatherAnswers(numQueries int, observers []*shardObserver) [][]GatherAnswer {
	byQuery := make([][]GatherAnswer, numQueries)
	for s, obs := range observers {
		for _, a := range obs.answers {
			i := int(a.Gather) - 1
			if i < 0 || i >= numQueries {
				continue
			}
			a.Shard = s
			byQuery[i] = append(byQuery[i], a)
		}
	}
	return byQuery
}

// mergeSlices folds one logical query's slice answers into its logical
// outcome. Precedence: any rejected slice rejects the query (admit iff
// every touched shard admits, one rejection tallied); else any deadline
// miss is a logical DMF; else every slice committed and Eq. 1 composes —
// freshness is the min over slices, the query succeeds iff that min
// meets the requirement (equivalently: iff no slice was stale), and
// latency is the slowest slice's.
func mergeSlices(subs []GatherAnswer, freshReq float64) (o txn.Outcome, fresh, latency float64) {
	rejected, dmf := false, false
	minFresh, maxLat := math.Inf(1), 0.0
	for _, a := range subs {
		switch a.Outcome {
		case txn.OutcomeRejected:
			rejected = true
		case txn.OutcomeDMF:
			dmf = true
		default: // success or DSF: the slice committed and sampled freshness
			if a.Fresh < minFresh {
				minFresh = a.Fresh
			}
			if a.Latency > maxLat {
				maxLat = a.Latency
			}
		}
	}
	if rejected {
		return txn.OutcomeRejected, 0, 0
	}
	if dmf {
		return txn.OutcomeDMF, 0, 0
	}
	if minFresh >= freshReq {
		return txn.OutcomeSuccess, minFresh, maxLat
	}
	return txn.OutcomeDSF, minFresh, maxLat
}

// mergeShardResults assembles the front door's logical Results. Outcomes
// are re-tallied per logical query through a fresh accountant (so the
// merged USM is Eq. 5 over logical queries, not a sum of per-slice
// tallies); engine-internal counters sum across shards (their item sets
// are disjoint, so the sums are exact); CPU utilizations average (N
// shards are N CPUs); QueriesAbandoned counts logical queries that lost
// at least one slice to a disconnect, preserving the conservation law
// Counts.Total() + QueriesAbandoned == logical queries presented.
func mergeShardResults(weights usm.Weights, w *workload.Workload, perShard []*Results, byQuery [][]GatherAnswer, sliceCounts []int) *Results {
	macct := usm.NewClassAccountant(weights, w.Preferences)
	freshSum, latencySum := 0.0, 0.0
	committed, abandoned := 0, 0
	for i := range w.Queries {
		subs := byQuery[i]
		if len(subs) < sliceCounts[i] {
			// A slice vanished without an outcome: its client disconnected.
			// Nobody is listening for the logical answer either.
			abandoned++
			continue
		}
		o, fresh, lat := mergeSlices(subs, w.Queries[i].FreshReq)
		if o == txn.OutcomeSuccess || o == txn.OutcomeDSF {
			freshSum += fresh
			latencySum += lat
			committed++
		}
		macct.Record(o, w.Queries[i].PrefClass)
	}

	tally := macct.Total()
	counts := tally.Counts
	rs, rr, rfm, rfs := counts.Ratios()
	r := &Results{
		Policy:           perShard[0].Policy,
		Trace:            w.Name,
		Weights:          weights,
		Counts:           counts,
		USM:              tally.USM(),
		Duration:         w.Duration,
		SuccessRatio:     rs,
		RejectionRatio:   rr,
		DMFRatio:         rfm,
		DSFRatio:         rfs,
		QueriesAbandoned: abandoned,
		AccessCounts:     make([]int, w.NumItems),
		AppliedCounts:    make([]int, w.NumItems),
		DroppedCounts:    make([]int, w.NumItems),
	}
	if committed > 0 {
		r.AvgFreshness = freshSum / float64(committed)
		r.AvgLatency = latencySum / float64(committed)
	}
	for _, p := range perShard {
		r.UpdatesApplied += p.UpdatesApplied
		r.UpdatesDropped += p.UpdatesDropped
		r.UpdatesSuperseded += p.UpdatesSuperseded
		r.RefreshesIssued += p.RefreshesIssued
		r.UpdatesLost += p.UpdatesLost
		r.QueriesStalled += p.QueriesStalled
		r.HPAborts += p.HPAborts
		r.Preemptions += p.Preemptions
		r.Restarts += p.Restarts
		r.CPUUtilization += p.CPUUtilization
		r.QueryCPU += p.QueryCPU
		r.UpdateCPU += p.UpdateCPU
		r.Events += p.Events
		addCounts(r.AccessCounts, p.AccessCounts)
		addCounts(r.AppliedCounts, p.AppliedCounts)
		addCounts(r.DroppedCounts, p.DroppedCounts)
	}
	n := float64(len(perShard))
	r.CPUUtilization /= n
	r.QueryCPU /= n
	r.UpdateCPU /= n
	classes := macct.Classes()
	perClass := macct.PerClass()
	for i := range classes {
		r.PerClass = append(r.PerClass, ClassResult{
			Weights:  classes[i],
			Counts:   perClass[i],
			ClassUSM: perClass[i].USM(classes[i]),
		})
	}
	return r
}

// addCounts accumulates src into dst element-wise. Shards own disjoint
// item sets, so per-item sums across shards are exact unions.
func addCounts(dst, src []int) {
	for i := range src {
		if i < len(dst) {
			dst[i] += src[i]
		}
	}
}
