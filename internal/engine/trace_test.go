// Trace-recorder regression tests: attaching a recorder must not perturb
// a run (the recorder is write-only, like the Disturbance hooks pinned in
// faults), and the recorded stream must itself be a pure function of
// (workload, weights, seed) — same-seed dumps are byte-identical.
package engine_test

import (
	"bytes"
	"reflect"
	"testing"

	"unitdb/internal/core"
	"unitdb/internal/core/usm"
	"unitdb/internal/engine"
	"unitdb/internal/obs/trace"
)

// runTraced runs UNIT on the deterministic workload with an attached
// recorder (nil rec = tracing off) and returns the results plus the
// JSONL dump (empty for nil).
func runTraced(t *testing.T, rec *trace.Recorder) (*engine.Results, []byte) {
	t.Helper()
	w := detWorkload(t)
	weights := usm.Weights{Cr: 0.25, Cfm: 0.75, Cfs: 0.25}
	pcfg := core.DefaultConfig(weights)
	pcfg.Seed = 7
	cfg := engine.Config{Workload: w, Weights: weights, Seed: 11, PhaseUpdates: true, Trace: rec}
	e, err := engine.New(cfg, core.New(pcfg))
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if rec != nil {
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return r, buf.Bytes()
}

const traceCap = 1 << 20 // hold the whole small run, no ring drops

// TestNilRecorderBitwiseUnchanged: results with tracing on and off must
// be DeepEqual — the recorder feeds nothing back into the run.
func TestNilRecorderBitwiseUnchanged(t *testing.T) {
	rOff, _ := runTraced(t, nil)
	rOn, dump := runTraced(t, trace.New(traceCap, traceCap))
	if !reflect.DeepEqual(rOff, rOn) {
		t.Errorf("attaching a trace recorder changed the run:\n  off: %v\n  on:  %v", rOff, rOn)
	}
	if len(dump) == 0 {
		t.Fatal("traced run dumped nothing")
	}
}

// TestSameSeedTraceByteIdentical: two same-seed runs must dump
// byte-identical JSONL streams, spans and controller decisions included.
func TestSameSeedTraceByteIdentical(t *testing.T) {
	_, d1 := runTraced(t, trace.New(traceCap, traceCap))
	_, d2 := runTraced(t, trace.New(traceCap, traceCap))
	if !bytes.Equal(d1, d2) {
		a, b := firstDiffLine(d1, d2)
		t.Errorf("same-seed trace dumps differ (%d vs %d bytes):\n  %s\nvs\n  %s", len(d1), len(d2), a, b)
	}
	if !bytes.Contains(d1, []byte(`"kind":"decision"`)) {
		t.Error("trace carries no controller decisions; the LBC never logged")
	}
	for _, kind := range []string{"arrive", "admit", "queue", "execute", "outcome"} {
		if !bytes.Contains(d1, []byte(`"kind":"`+kind+`"`)) {
			t.Errorf("trace carries no %q span events", kind)
		}
	}
}

// TestDifferentSeedTraceDiverges: the stream must actually depend on the
// seed, or the byte-identity above would be vacuous.
func TestDifferentSeedTraceDiverges(t *testing.T) {
	w := detWorkload(t)
	dump := func(seed uint64) []byte {
		rec := trace.New(traceCap, traceCap)
		weights := usm.Weights{Cr: 0.25, Cfm: 0.75, Cfs: 0.25}
		pcfg := core.DefaultConfig(weights)
		pcfg.Seed = 7
		e, err := engine.New(engine.Config{Workload: w, Weights: weights, Seed: seed, PhaseUpdates: true, Trace: rec}, core.New(pcfg))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if bytes.Equal(dump(11), dump(12)) {
		t.Error("different engine seeds dumped identical traces; the stream is not seed-sensitive")
	}
}

// TestTraceSpansConserveOutcomes: every query in the stream shows exactly
// one arrive and exactly one terminal outcome — the trace-level image of
// the USM conservation law.
func TestTraceSpansConserveOutcomes(t *testing.T) {
	rec := trace.New(traceCap, traceCap)
	res, _ := runTraced(t, rec)
	arrives := map[int64]int{}
	outcomes := map[int64]int{}
	for _, ev := range rec.Events(0) {
		switch ev.Kind {
		case trace.KindArrive:
			arrives[ev.Query]++
		case trace.KindOutcome:
			outcomes[ev.Query]++
		}
	}
	if len(arrives) != res.Counts.Total() {
		t.Errorf("trace saw %d queries arrive, results finalized %d", len(arrives), res.Counts.Total())
	}
	for q, n := range arrives {
		if n != 1 {
			t.Fatalf("query %d arrived %d times", q, n)
		}
		if outcomes[q] != 1 {
			t.Fatalf("query %d has %d outcome events, want exactly 1", q, outcomes[q])
		}
	}
	if evDropped, _ := rec.Dropped(); evDropped != 0 {
		t.Fatalf("ring dropped %d events; capacity too small for the run", evDropped)
	}
}

// firstDiffLine locates the first differing line of two dumps.
func firstDiffLine(a, b []byte) (string, string) {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return string(la[i]), string(lb[i])
		}
	}
	return "<one dump is a prefix of the other>", ""
}
