package engine

import (
	"testing"

	"unitdb/internal/core/usm"
	"unitdb/internal/workload"
)

// stubQD is a hand-rolled disturbance implementing the optional
// client-behaviour extension with fixed answers.
type stubQD struct {
	queryScale float64
	after      float64
}

func (stubQD) ScaleExec(float64) float64        { return 1 }
func (stubQD) BlockFeed(int, float64) bool      { return false }
func (stubQD) FeedRate(int, float64) float64    { return 1 }
func (s stubQD) ReleaseQuery(t float64) float64 { return t }

func (s stubQD) ScaleQueryExec(float64) float64 { return s.queryScale }
func (s stubQD) DisconnectAfter(float64) float64 {
	return s.after
}

func runDisturbed(t *testing.T, w *workload.Workload, d Disturbance) *Results {
	t.Helper()
	cfg := NewConfig(w, usm.Weights{}, 7)
	cfg.PhaseUpdates = false
	cfg.Disturbance = d
	e, err := New(cfg, admitAll{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSlowConsumerInflatesQueriesOnly(t *testing.T) {
	// One query (exec 2, deadline 5) and one update feed. With a 3×
	// query-only inflation the query needs 6 > 5 and misses its deadline,
	// while the update keeps its nominal demand and still applies.
	w := mkWorkload(2, 40,
		[]workload.QuerySpec{q(10, 0, 2, 5)},
		[]workload.UpdateSpec{{Item: 1, Period: 10, Exec: 1}},
	)
	r := runDisturbed(t, w, stubQD{queryScale: 3})
	if r.Counts.DMF != 1 || r.Counts.Total() != 1 {
		t.Fatalf("counts = %+v, want the inflated query to DMF", r.Counts)
	}
	if r.UpdatesApplied == 0 {
		t.Fatal("updates stopped applying under a query-only inflation")
	}
	// Control: without the disturbance the same query succeeds.
	rc := runWith(t, w, admitAll{})
	if rc.Counts.Success != 1 {
		t.Fatalf("control counts = %+v", rc.Counts)
	}
}

func TestClientDisconnectAbandonsPendingQuery(t *testing.T) {
	// Two queries: the first (exec 2) resolves at t=12, before its client
	// disconnects at t=14; the second lands behind it with a long deadline
	// and disconnects at t=14.5 while still queued.
	w := mkWorkload(2, 100, []workload.QuerySpec{
		q(10, 0, 2, 30),
		q(10.5, 1, 50, 80),
	}, nil)
	r := runDisturbed(t, w, stubQD{queryScale: 1, after: 4})
	if r.QueriesAbandoned != 1 {
		t.Fatalf("QueriesAbandoned = %d, want 1", r.QueriesAbandoned)
	}
	if r.Counts.Success != 1 {
		t.Fatalf("counts = %+v, want the fast query to succeed", r.Counts)
	}
	// Conservation: outcomes + abandoned == presented.
	if got := r.Counts.Total() + r.QueriesAbandoned; got != len(w.Queries) {
		t.Fatalf("outcomes (%d) + abandoned (%d) != presented (%d)", r.Counts.Total(), r.QueriesAbandoned, len(w.Queries))
	}
}

func TestAbandonedRunningQueryFreesCPU(t *testing.T) {
	// A long query (exec 50) starts running at t=0 and is abandoned at
	// t=2; a later short query must then find the CPU free and succeed.
	w := mkWorkload(2, 100, []workload.QuerySpec{
		q(0, 0, 50, 90),
		q(10, 1, 1, 5),
	}, nil)
	d := disconnectFirst{}
	r := runDisturbed(t, w, d)
	if r.QueriesAbandoned != 1 {
		t.Fatalf("QueriesAbandoned = %d, want 1", r.QueriesAbandoned)
	}
	if r.Counts.Success != 1 || r.Counts.DMF != 0 {
		t.Fatalf("counts = %+v, want the short query to succeed on a freed CPU", r.Counts)
	}
	// The abandoned query consumed exactly the 2s before its client left.
	if got := r.QueryCPU * w.Duration; got < 2.9 || got > 3.1 {
		t.Fatalf("query CPU = %v, want ~3 (2s abandoned + 1s success)", got)
	}
}

// disconnectFirst abandons only queries presented at t=0, 2 seconds in.
type disconnectFirst struct{ stubQD }

func (disconnectFirst) ScaleQueryExec(float64) float64 { return 1 }
func (disconnectFirst) DisconnectAfter(t float64) float64 {
	if t == 0 {
		return 2
	}
	return 0
}
