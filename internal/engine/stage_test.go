// Stage-accounting conservation tests: the per-query StageBreakdown on
// outcome events must partition each query's admitted lifetime exactly —
// the latency-attribution analogue of the USM conservation law.
package engine_test

import (
	"math"
	"testing"

	"unitdb/internal/obs/trace"
	"unitdb/internal/txn"
)

// TestStageBreakdownConservation checks, for every outcome event of a
// traced run: the four stages sum to Total; Total equals the span from
// the arrive event to the outcome event (admission and arrival share an
// instant in the engine); rejected queries carry all-zero breakdowns.
func TestStageBreakdownConservation(t *testing.T) {
	rec := trace.New(traceCap, traceCap)
	res, _ := runTraced(t, rec)
	arriveT := map[int64]float64{}
	outcomes := 0
	var committedTotal float64
	for _, ev := range rec.Events(0) {
		switch ev.Kind {
		case trace.KindArrive:
			arriveT[ev.Query] = ev.T
		case trace.KindOutcome:
			outcomes++
			if ev.Stages == nil {
				t.Fatalf("outcome event for query %d has no stage breakdown: %+v", ev.Query, ev)
			}
			b := ev.Stages
			if math.Abs(b.Sum()-b.Total) > 1e-9 {
				t.Fatalf("query %d: stage sum %v != total %v", ev.Query, b.Sum(), b.Total)
			}
			span := ev.T - arriveT[ev.Query]
			if math.Abs(b.Total-span) > 1e-9 {
				t.Fatalf("query %d: breakdown total %v != arrive→outcome span %v (%+v)",
					ev.Query, b.Total, span, *b)
			}
			if ev.Outcome == txn.OutcomeRejected.String() && b.Total != 0 {
				t.Fatalf("rejected query %d accrued stage time: %+v", ev.Query, *b)
			}
			if ev.Outcome == txn.OutcomeSuccess.String() || ev.Outcome == txn.OutcomeDSF.String() {
				committedTotal += b.Total
			}
		}
	}
	if outcomes == 0 {
		t.Fatal("run produced no outcome events")
	}
	// The committed queries' stage totals are exactly the latencies the
	// engine averaged into Results.AvgLatency.
	committed := res.Counts.Success + res.Counts.DSF
	if committed > 0 {
		wantSum := res.AvgLatency * float64(committed)
		if math.Abs(committedTotal-wantSum) > 1e-6 {
			t.Errorf("committed stage totals sum to %v, Results latency sum is %v", committedTotal, wantSum)
		}
	}
}

// TestStageEventsPresent: the workload contends enough that the new span
// kinds actually fire, and each corresponds to its engine counter.
func TestStageEventsPresent(t *testing.T) {
	rec := trace.New(traceCap, traceCap)
	res, _ := runTraced(t, rec)
	kinds := map[trace.Kind]int{}
	for _, ev := range rec.Events(0) {
		kinds[ev.Kind]++
	}
	if res.Preemptions > 0 && kinds[trace.KindPreempt] == 0 {
		t.Errorf("engine counted %d preemptions but no preempt events recorded", res.Preemptions)
	}
	if kinds[trace.KindPreempt] > res.Preemptions {
		t.Errorf("%d preempt events exceed engine's %d preemptions", kinds[trace.KindPreempt], res.Preemptions)
	}
	// Restart events cover query restarts only (update restarts are not
	// query lifecycle), so the event count is bounded by the counter.
	if kinds[trace.KindRestart] > res.Restarts {
		t.Errorf("%d restart events exceed engine's %d restarts", kinds[trace.KindRestart], res.Restarts)
	}
	if kinds[trace.KindExecute] == 0 || kinds[trace.KindOutcome] == 0 {
		t.Fatalf("lifecycle kinds missing: %v", kinds)
	}
}

// TestStageOverheadOnlyAfterRestart: a query with no restart events must
// show zero overhead, and one with restarts shows the discarded work —
// overhead is exclusively HP-abort damage.
func TestStageOverheadOnlyAfterRestart(t *testing.T) {
	rec := trace.New(traceCap, traceCap)
	runTraced(t, rec)
	restarted := map[int64]bool{}
	for _, ev := range rec.Events(0) {
		if ev.Kind == trace.KindRestart {
			restarted[ev.Query] = true
		}
	}
	for _, ev := range rec.Events(0) {
		if ev.Kind != trace.KindOutcome || ev.Stages == nil {
			continue
		}
		if !restarted[ev.Query] && ev.Stages.Overhead != 0 {
			t.Fatalf("query %d never restarted but has overhead %v", ev.Query, ev.Stages.Overhead)
		}
	}
}
