package engine

import (
	"unitdb/internal/obs/trace"
	"unitdb/internal/txn"
)

// Stage accounting: while a trace recorder is attached, the engine keeps
// a per-query stageState partitioning the query's admitted lifetime into
// the trace.StageBreakdown stages. At any virtual instant an admitted,
// unresolved query is in exactly one of three states — waiting in the
// ready queue, parked as a 2PL-HP lock waiter, or running on the CPU —
// so attributing the interval since the last transition to the bucket of
// the state being left makes the buckets partition the admission→outcome
// span exactly (the conservation law stage_test.go asserts). The whole
// subsystem is write-only bookkeeping keyed off e.stages, which New
// allocates only when tracing is on: with a nil recorder every hook here
// is a no-op and runs stay bitwise-unchanged (pinned by
// TestNilRecorderBitwiseUnchanged).

// Stage states an admitted query moves through.
const (
	stQueued  = iota // in the ready queue (including re-queues after preempt/restart)
	stBlocked        // parked as a lock waiter
	stRunning        // on the CPU
)

// stageState accumulates one query's latency attribution in virtual
// seconds. attempt holds the CPU time of the in-progress attempt; an
// HP-abort restart moves it into overhead (that work is discarded), and
// finalization folds it into Exec (the attempt that reached the
// outcome). Preemption moves nothing — progress is kept, so the attempt
// keeps accruing across resumes.
type stageState struct {
	state    int     // current stage, one of stQueued/stBlocked/stRunning
	since    float64 // virtual time the current interval began
	queue    float64 // accumulated ready-queue wait
	lock     float64 // accumulated lock wait
	attempt  float64 // CPU time of the attempt in progress
	overhead float64 // CPU time discarded by HP-abort restarts
}

// stageAccumulate closes the interval [st.since, now), crediting it to
// the bucket of the current state.
func stageAccumulate(st *stageState, now float64) {
	d := now - st.since
	switch st.state {
	case stQueued:
		st.queue += d
	case stBlocked:
		st.lock += d
	case stRunning:
		st.attempt += d
	}
	st.since = now
}

// stageTransition moves a traced query into state at the current virtual
// instant, creating its stageState on first call (admission). No-op for
// updates and when tracing is off.
func (e *Engine) stageTransition(t *txn.Txn, state int) {
	if e.stages == nil || t.Class != txn.ClassQuery {
		return
	}
	now := e.sim.Now()
	st := e.stages[t]
	if st == nil {
		e.stages[t] = &stageState{state: state, since: now}
		return
	}
	stageAccumulate(st, now)
	st.state = state
}

// stageRestart accounts an HP-abort restart: the aborted attempt's CPU
// time becomes overhead and the query re-enters the queue stage.
func (e *Engine) stageRestart(t *txn.Txn) {
	if e.stages == nil || t.Class != txn.ClassQuery {
		return
	}
	st := e.stages[t]
	if st == nil {
		return
	}
	stageAccumulate(st, e.sim.Now())
	st.overhead += st.attempt
	st.attempt = 0
	st.state = stQueued
}

// stageFinalize closes a traced query's breakdown at the current instant
// and releases its state. It returns nil when tracing is off (so outcome
// events in untraced runs carry no stages), and an all-zero breakdown
// for queries rejected at admission (they never held a stageState).
func (e *Engine) stageFinalize(t *txn.Txn) *trace.StageBreakdown {
	if e.stages == nil || t.Class != txn.ClassQuery {
		return nil
	}
	st := e.stages[t]
	if st == nil {
		return &trace.StageBreakdown{}
	}
	delete(e.stages, t)
	stageAccumulate(st, e.sim.Now())
	b := &trace.StageBreakdown{
		QueueWait: st.queue,
		LockWait:  st.lock,
		Exec:      st.attempt,
		Overhead:  st.overhead,
	}
	b.Total = b.Sum()
	return b
}
